#!/usr/bin/env bash
# Regenerates results/BENCH_5.json — the hot-path throughput benchmark.
#
# Runs the PAPER_10_ENVS sweep plus the workload x environment grid at
# --quick scale on a single worker, keeping the minimum wall time across
# repeats, and embeds the speedup against the pre-mv-fast baseline
# (results/bench5_baseline.json, recorded on the same machine).
#
# Throughput numbers are machine-dependent; run on an otherwise idle box
# (check `uptime` first) or the min-wall repeats will still be inflated.
set -euo pipefail
cd "$(dirname "$0")/.."

REPEATS="${REPEATS:-10}"
OUT="${OUT:-results/BENCH_5.json}"

echo "==> cargo build --release -p mv-bench --bin hotpath"
cargo build --release -p mv-bench --bin hotpath

echo "==> hotpath --quick --jobs 1 --repeats $REPEATS -> $OUT"
target/release/hotpath --quick --jobs 1 --repeats "$REPEATS" \
    --baseline results/bench5_baseline.json \
    --out "$OUT"

echo "BENCH OK: $OUT"
