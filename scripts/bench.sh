#!/usr/bin/env bash
# Regenerates a hot-path throughput record (results/BENCH_<id>.json) and
# appends the run to the perf trajectory (results/bench_history.jsonl).
#
# Runs the PAPER_10_ENVS sweep plus the workload x environment grid on a
# single worker, keeping the minimum wall time across repeats. The classic
# invocation (no variables set) reproduces the historical BENCH_5.json
# configuration; BENCH_6.json is the profiler-overhead record:
#
#   BENCH_ID=6 PROFILE_OVERHEAD=1 scripts/bench.sh
#
# Parameters (environment variables):
#
#   BENCH_ID          id of the record to write       (default: 7; 5 and 6
#                                                      are historical records)
#   OUT               output JSON path                (default: results/BENCH_${BENCH_ID}.json)
#   BASELINE          JSON to embed a speedup against (default: results/bench5_baseline.json;
#                                                      skipped when the file is missing)
#   HISTORY           trajectory JSONL to append to   (default: results/bench_history.jsonl;
#                                                      set empty to skip)
#   REPEATS           min-wall repeats per point      (default: 10)
#   SCALE             smoke | quick | full            (default: quick)
#   PROFILE_OVERHEAD  1 = also measure the sweep with the attribution
#                     profiler attached and record the wall ratio
#
# Throughput numbers are machine-dependent; run on an otherwise idle box
# (check `uptime` first) or the min-wall repeats will still be inflated.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_ID="${BENCH_ID:-7}"
OUT="${OUT:-results/BENCH_${BENCH_ID}.json}"

# Bench records are append-only history: refuse to clobber one (the
# BENCH_6.json numbering drift happened exactly this way). Pick a fresh
# BENCH_ID, or point OUT somewhere else explicitly.
if [[ -e "$OUT" ]]; then
    echo "refusing to overwrite existing bench record: $OUT" >&2
    echo "(choose a new BENCH_ID or set OUT to a fresh path)" >&2
    exit 2
fi
BASELINE="${BASELINE:-results/bench5_baseline.json}"
HISTORY="${HISTORY:-results/bench_history.jsonl}"
REPEATS="${REPEATS:-10}"
SCALE="${SCALE:-quick}"

flags=(--jobs 1 --repeats "$REPEATS" --out "$OUT")
case "$SCALE" in
    smoke) flags+=(--smoke) ;;
    quick) flags+=(--quick) ;;
    full) ;;
    *) echo "unknown SCALE '$SCALE' (want smoke|quick|full)" >&2; exit 2 ;;
esac
[[ -f "$BASELINE" ]] && flags+=(--baseline "$BASELINE")
[[ -n "$HISTORY" ]] && flags+=(--history "$HISTORY")
[[ "${PROFILE_OVERHEAD:-0}" == "1" ]] && flags+=(--profile-overhead)

echo "==> cargo build --release -p mv-bench --bin hotpath"
cargo build --release -p mv-bench --bin hotpath

echo "==> hotpath ${flags[*]}"
target/release/hotpath "${flags[@]}"

echo "BENCH OK: $OUT"
