#!/usr/bin/env bash
# Regenerates a hot-path throughput record (results/BENCH_<id>.json) and
# appends the run to the perf trajectory (results/bench_history.jsonl).
#
# Runs the PAPER_10_ENVS sweep plus the workload x environment grid on a
# single worker, keeping the minimum wall time across repeats. Historical
# records: BENCH_5.json is the mv-fast hot-path configuration (plain
# sweep), BENCH_6.json the profiler-overhead record
# (`BENCH_ID=6 PROFILE_OVERHEAD=1`), and BENCH_8.json the scheduler +
# sampled-execution record:
#
#   SAMPLE=1 COMPARE_CURSOR=1 scripts/bench.sh
#
# (BENCH_7 was reserved when the layer-stack PR bumped the default id
# but no record was ever written under it; the id stays retired so the
# sequence in results/ reads unambiguously.)
#
# Parameters (environment variables):
#
#   BENCH_ID          id of the record to write       (default: 8; 5 and 6
#                                                      are historical records)
#   OUT               output JSON path                (default: results/BENCH_${BENCH_ID}.json)
#   BASELINE          JSON to embed a speedup against (default: results/bench5_baseline.json;
#                                                      skipped when the file is missing)
#   HISTORY           trajectory JSONL to append to   (default: results/bench_history.jsonl;
#                                                      set empty to skip)
#   REPEATS           min-wall repeats per point      (default: 10)
#   SCALE             smoke | quick | full            (default: quick)
#   PROFILE_OVERHEAD  1 = also measure the sweep with the attribution
#                     profiler attached and record the wall ratio
#   SAMPLE            1 = also run the sampled-execution leg (full vs.
#                     sampled wall + estimate error on PAPER_10 envs)
#   COMPARE_CURSOR    1 = also time the deque scheduler against the
#                     retired fetch-add cursor at this --jobs
#
# Throughput numbers are machine-dependent; run on an otherwise idle box
# (check `uptime` first) or the min-wall repeats will still be inflated.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_ID="${BENCH_ID:-8}"
OUT="${OUT:-results/BENCH_${BENCH_ID}.json}"

# Bench records are append-only history: refuse to clobber one (the
# BENCH_6.json numbering drift happened exactly this way). Pick a fresh
# BENCH_ID, or point OUT somewhere else explicitly.
if [[ -e "$OUT" ]]; then
    echo "refusing to overwrite existing bench record: $OUT" >&2
    echo "(choose a new BENCH_ID or set OUT to a fresh path)" >&2
    exit 2
fi
BASELINE="${BASELINE:-results/bench5_baseline.json}"
HISTORY="${HISTORY:-results/bench_history.jsonl}"
REPEATS="${REPEATS:-10}"
SCALE="${SCALE:-quick}"

flags=(--jobs 1 --repeats "$REPEATS" --out "$OUT")
case "$SCALE" in
    smoke) flags+=(--smoke) ;;
    quick) flags+=(--quick) ;;
    full) ;;
    *) echo "unknown SCALE '$SCALE' (want smoke|quick|full)" >&2; exit 2 ;;
esac
[[ -f "$BASELINE" ]] && flags+=(--baseline "$BASELINE")
[[ -n "$HISTORY" ]] && flags+=(--history "$HISTORY")
[[ "${PROFILE_OVERHEAD:-0}" == "1" ]] && flags+=(--profile-overhead)
[[ "${SAMPLE:-0}" == "1" ]] && flags+=(--sample)
[[ "${COMPARE_CURSOR:-0}" == "1" ]] && flags+=(--compare-cursor)

echo "==> cargo build --release -p mv-bench --bin hotpath"
cargo build --release -p mv-bench --bin hotpath

echo "==> hotpath ${flags[*]}"
target/release/hotpath "${flags[@]}"

echo "BENCH OK: $OUT"
