#!/usr/bin/env bash
# The repo's CI gate: everything here must pass before merging.
# Runs fully offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> determinism smoke: run --quick --trials 6 at --jobs 1 vs --jobs 4"
# The parallel runner's core contract: worker count must not change a
# single output byte. Compare per-trial CSV rows and merged telemetry.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
run_bin=target/release/run
"$run_bin" --quick --trials 6 --jobs 1 --quiet --csv \
    --telemetry-out "$tmpdir/t1.jsonl" > "$tmpdir/out1.csv"
"$run_bin" --quick --trials 6 --jobs 4 --quiet --csv \
    --telemetry-out "$tmpdir/t4.jsonl" > "$tmpdir/out4.csv"
diff -u "$tmpdir/out1.csv" "$tmpdir/out4.csv"
diff -u "$tmpdir/t1.jsonl" "$tmpdir/t4.jsonl"

echo "CI OK"
