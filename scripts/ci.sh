#!/usr/bin/env bash
# The repo's CI gate: everything here must pass before merging.
# Runs fully offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --all-targets"
# Benches, examples, and every bin — the figure binaries must never rot.
cargo build --release --all-targets

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> determinism smoke: run --quick --trials 6 at --jobs 1 vs --jobs 4"
# The parallel runner's core contract: worker count must not change a
# single output byte. Compare per-trial CSV rows and merged telemetry.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
run_bin=target/release/run
"$run_bin" --quick --trials 6 --jobs 1 --quiet --csv \
    --telemetry-out "$tmpdir/t1.jsonl" > "$tmpdir/out1.csv"
"$run_bin" --quick --trials 6 --jobs 4 --quiet --csv \
    --telemetry-out "$tmpdir/t4.jsonl" > "$tmpdir/out4.csv"
diff -u "$tmpdir/out1.csv" "$tmpdir/out4.csv"
diff -u "$tmpdir/t1.jsonl" "$tmpdir/t4.jsonl"

echo "==> epoch-len-zero regression: run --quick --epoch-len 0 must be rejected"
# A zero epoch length used to silently drop every telemetry event; the
# harness must refuse it up front (usage error, exit 2) instead.
if "$run_bin" --quick --epoch-len 0 --quiet > /dev/null 2>&1; then
    echo "run accepted --epoch-len 0" >&2
    exit 1
elif [ $? -ne 2 ]; then
    echo "run rejected --epoch-len 0 with the wrong exit code" >&2
    exit 1
fi

echo "==> machine-equivalence smoke: repeatability across envs and job counts"
# The unified Machine driver must be stable run-to-run and across worker
# counts for every environment family (native, nested, direct modes,
# shadow). The full byte-identical proof against the pre-refactor fixture
# lives in tests/tests/machine_equiv.rs; this smoke re-checks the live
# binary end to end.
for env in native ds 4k+2m vd dd shadow; do
    "$run_bin" --quick --env "$env" --trials 2 --jobs 1 --quiet --csv \
        > "$tmpdir/env1.csv"
    "$run_bin" --quick --env "$env" --trials 2 --jobs 1 --quiet --csv \
        > "$tmpdir/env1b.csv"
    "$run_bin" --quick --env "$env" --trials 2 --jobs 4 --quiet --csv \
        > "$tmpdir/env4.csv"
    diff -u "$tmpdir/env1.csv" "$tmpdir/env1b.csv"
    diff -u "$tmpdir/env1.csv" "$tmpdir/env4.csv"
done

echo "==> L2 smoke: 3-level stack determinism, gups --quick at --jobs 1/4"
# The nested-nested machine walks a 3-deep layer stack; the 3D walker
# must be exactly as deterministic as the 2-level machines it grew from.
for env in l2; do
    "$run_bin" --quick --env "$env" --workload gups --trials 2 --jobs 1 \
        --quiet --csv > "$tmpdir/env1.csv"
    "$run_bin" --quick --env "$env" --workload gups --trials 2 --jobs 1 \
        --quiet --csv > "$tmpdir/env1b.csv"
    "$run_bin" --quick --env "$env" --workload gups --trials 2 --jobs 4 \
        --quiet --csv > "$tmpdir/env4.csv"
    diff -u "$tmpdir/env1.csv" "$tmpdir/env1b.csv"
    diff -u "$tmpdir/env1.csv" "$tmpdir/env4.csv"
done

echo "==> hotpath smoke: digests diffed across --jobs 1/4"
# The perf harness must report the same counter digests no matter how the
# grid stage is parallelized; --quiet suppresses all wall-clock lines so
# the outputs are byte-comparable.
hotpath_bin=target/release/hotpath
"$hotpath_bin" --smoke --jobs 1 --quiet > "$tmpdir/hot1.txt"
"$hotpath_bin" --smoke --jobs 4 --quiet > "$tmpdir/hot4.txt"
diff -u "$tmpdir/hot1.txt" "$tmpdir/hot4.txt"

echo "==> profiler smoke: run --quick --profile, two seeds, diffed across --jobs 1/4"
# Attribution profiles merge associatively, so worker count must not
# change a byte of the profile JSONL — and attaching the profiler must
# not perturb the simulation (profiled CSV rows must match unprofiled).
prof_bin=target/release/mv-prof
for seed in 7 42; do
    "$run_bin" --quick --seed "$seed" --trials 3 --jobs 1 --quiet --csv \
        --profile --telemetry-out "$tmpdir/p_${seed}_j1.jsonl" \
        > "$tmpdir/p_${seed}_j1.csv"
    "$run_bin" --quick --seed "$seed" --trials 3 --jobs 4 --quiet --csv \
        --profile --telemetry-out "$tmpdir/p_${seed}_j4.jsonl" \
        > "$tmpdir/p_${seed}_j4.csv"
    diff -u "$tmpdir/p_${seed}_j1.jsonl" "$tmpdir/p_${seed}_j4.jsonl"
    diff -u "$tmpdir/p_${seed}_j1.csv" "$tmpdir/p_${seed}_j4.csv"
    "$run_bin" --quick --seed "$seed" --trials 3 --jobs 4 --quiet --csv \
        > "$tmpdir/p_${seed}_plain.csv"
    diff -u "$tmpdir/p_${seed}_plain.csv" "$tmpdir/p_${seed}_j1.csv"
done
if cmp -s "$tmpdir/p_7_j1.jsonl" "$tmpdir/p_42_j1.jsonl"; then
    echo "profiles for seeds 7 and 42 are identical" >&2
    exit 1
fi
# mv-prof must round-trip its own exports.
"$prof_bin" show "$tmpdir/p_7_j1.jsonl" > /dev/null
"$prof_bin" fold "$tmpdir/p_7_j1.jsonl" > /dev/null
"$prof_bin" diff "$tmpdir/p_7_j1.jsonl" "$tmpdir/p_42_j1.jsonl" > /dev/null

echo "==> bench regression gate: hotpath --smoke --gate vs results/bench_history.jsonl"
# Tolerance-gated wall-clock check against the last accepted smoke-scale
# trajectory entry. The default bar is generous (CI machines vary);
# tighten or loosen with BENCH_TOL_PCT, or accept a known regression with
# BENCH_ALLOW_REGRESSION=1. A passing run appends its own entry.
"$hotpath_bin" --smoke --repeats 3 --quiet \
    --gate --gate-tol-pct "${BENCH_TOL_PCT:-30}" \
    --history results/bench_history.jsonl > /dev/null

echo "==> sampled-mode error gate: hotpath --sample, estimates within 2%"
# The sampled fast-forward leg runs every PAPER_10 env full-fidelity and
# sampled at a fixed steady-state sizing and exits 1 if any scaled
# estimate lands more than 2% from the full-fidelity counter (the bound
# EXPERIMENTS.md documents). Wall speedup is reported but not gated —
# this leg is about estimate fidelity, not CI hardware speed.
"$hotpath_bin" --smoke --repeats 2 --quiet --sample > /dev/null

echo "==> chaos smoke: two seeds x --quick, diffed across --jobs 1/4/8"
# The fault plan is a pure function of (chaos seed, access index), so the
# degradation study must be byte-identical at any worker count — and
# different seeds must actually change the injection stream. The chaos
# grid is the most irregular one the harness runs (degraded cells take
# several times longer than healthy ones), so the jobs-8 diff is the
# steal-determinism check for the work-stealing deque: with 8 workers on
# this grid, idle workers must steal, and stolen cells must still land
# in their own result slots.
chaos_bin=target/release/chaos_study
for seed in 11 42; do
    "$chaos_bin" --quick --quiet --chaos-seed "$seed" --jobs 1 \
        > "$tmpdir/chaos_${seed}_j1.txt"
    "$chaos_bin" --quick --quiet --chaos-seed "$seed" --jobs 4 \
        > "$tmpdir/chaos_${seed}_j4.txt"
    "$chaos_bin" --quick --quiet --chaos-seed "$seed" --jobs 8 \
        > "$tmpdir/chaos_${seed}_j8.txt"
    diff -u "$tmpdir/chaos_${seed}_j1.txt" "$tmpdir/chaos_${seed}_j4.txt"
    diff -u "$tmpdir/chaos_${seed}_j1.txt" "$tmpdir/chaos_${seed}_j8.txt"
done
if cmp -s "$tmpdir/chaos_11_j1.txt" "$tmpdir/chaos_42_j1.txt"; then
    echo "chaos seeds 11 and 42 produced identical output" >&2
    exit 1
fi

echo "==> adapt smoke: two seeds x --quick, diffed across --jobs 1/4, plus thrash backoff cap"
# Controller decisions are pure functions of the epoch-snapshot sequence,
# so the adaptive study (and its transition accounting) must be
# byte-identical at any worker count. The binary itself asserts the
# storm-mode headline (adaptive beats every static cell, recovery to
# Direct) and exits nonzero otherwise. The thrash leg paces sustained
# faults to keep tempting promotions into balloon denials; seed 42 is a
# forced-thrash seed (6 rollbacks) and the binary asserts the rollback
# backoff never exceeds its cap and the window budget holds.
adapt_bin=target/release/adapt_study
for seed in 11 42; do
    "$adapt_bin" --quick --quiet --chaos-seed "$seed" --jobs 1 \
        > "$tmpdir/adapt_${seed}_j1.txt"
    "$adapt_bin" --quick --quiet --chaos-seed "$seed" --jobs 4 \
        > "$tmpdir/adapt_${seed}_j4.txt"
    diff -u "$tmpdir/adapt_${seed}_j1.txt" "$tmpdir/adapt_${seed}_j4.txt"
done
if cmp -s "$tmpdir/adapt_11_j1.txt" "$tmpdir/adapt_42_j1.txt"; then
    echo "adapt seeds 11 and 42 produced identical output" >&2
    exit 1
fi
"$adapt_bin" --quick --quiet --thrash --chaos-seed 42 --jobs 4 > /dev/null

echo "==> trace smoke: record --quick, replay, diff output vs the live run"
# Record/replay fidelity end to end through the real binaries: a replay
# of a recording must reproduce the live run byte for byte (CSV and
# telemetry), at any worker count. The format itself is pinned by the
# golden fixture in tests/fixtures/trace_small.mvtr.
trace_bin=target/release/mv-trace
"$run_bin" --quick --workload gups --env 4k+4k --quiet --csv \
    --record-trace "$tmpdir/gups.mvtr" \
    --telemetry-out "$tmpdir/tr_live.jsonl" > "$tmpdir/tr_live.csv"
"$run_bin" --quick --env 4k+4k --quiet --csv \
    --replay-trace "$tmpdir/gups.mvtr" \
    --telemetry-out "$tmpdir/tr_replay.jsonl" > "$tmpdir/tr_replay.csv"
diff -u "$tmpdir/tr_live.csv" "$tmpdir/tr_replay.csv"
diff -u "$tmpdir/tr_live.jsonl" "$tmpdir/tr_replay.jsonl"
# Replayed grids keep the --jobs contract.
"$run_bin" --quick --env dd --quiet --csv --trials 3 --jobs 1 \
    --replay-trace "$tmpdir/gups.mvtr" > "$tmpdir/tr_j1.csv"
"$run_bin" --quick --env dd --quiet --csv --trials 3 --jobs 4 \
    --replay-trace "$tmpdir/gups.mvtr" > "$tmpdir/tr_j4.csv"
diff -u "$tmpdir/tr_j1.csv" "$tmpdir/tr_j4.csv"
# The trace tool validates recordings, the pinned fixture, and its own
# synthesizers.
"$trace_bin" info "$tmpdir/gups.mvtr" > /dev/null
"$trace_bin" info tests/fixtures/trace_small.mvtr > /dev/null
"$trace_bin" dump tests/fixtures/trace_small.mvtr --limit 3 > /dev/null
"$trace_bin" synth-gc "$tmpdir/gc.mvtr" --footprint 16M --records 50000 > /dev/null
"$trace_bin" synth-serving "$tmpdir/sv.mvtr" --footprint 16M --records 50000 > /dev/null
"$run_bin" --quiet --env 4k+4k --replay-trace "$tmpdir/gc.mvtr" --csv > /dev/null
"$run_bin" --quiet --env 4k+4k --replay-trace "$tmpdir/sv.mvtr" --csv > /dev/null

echo "==> markdown link check over docs"
# Every relative link in the markdown docs must resolve to a real file;
# the docs index can't rot. Offline, no tooling beyond grep/sed.
for doc in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
    dir="$(dirname "$doc")"
    # Extract ](target) link destinations; keep only relative paths.
    # (|| true: a doc with no links at all is fine.)
    { grep -o '](\([^)]*\))' "$doc" || true; } | sed 's/^](//; s/)$//' | \
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link in $doc: $target" >&2
            echo broken >> "$tmpdir/link_failures"
        fi
    done
done
if [ -s "$tmpdir/link_failures" ]; then
    echo "markdown link check failed" >&2
    exit 1
fi

echo "CI OK"
