//! The simulation engine: drives a workload's reference stream through the
//! MMU, servicing faults through the OS/VMM models.

use core::fmt;

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, OsError, PageSizePolicy};
use mv_obs::{SharedTelemetry, Telemetry, TelemetryConfig};
use mv_types::{AddrRange, Gpa, Gva, PageSize, Prot, MIB};
use mv_vmm::{SegmentOptions, ShadowPaging, VmConfig, Vmm, VmmError, VM_EXIT_CYCLES};

use crate::config::{Env, GuestPaging, SimConfig};
use crate::native::NativeOs;
use crate::result::RunResult;

/// Errors surfaced while constructing or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// Guest/native OS failure.
    Os(OsError),
    /// Hypervisor failure.
    Vmm(VmmError),
    /// An access faulted repeatedly without converging (a wiring bug).
    FaultLoop {
        /// The address that kept faulting.
        va: u64,
        /// The last fault observed.
        last: TranslationFault,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Os(e) => write!(f, "os error: {e}"),
            SimError::Vmm(e) => write!(f, "vmm error: {e}"),
            SimError::FaultLoop { va, last } => {
                write!(f, "access at {va:#x} kept faulting: {last}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Os(e) => Some(e),
            SimError::Vmm(e) => Some(e),
            SimError::FaultLoop { .. } => None,
        }
    }
}

impl From<OsError> for SimError {
    fn from(e: OsError) -> Self {
        SimError::Os(e)
    }
}

impl From<VmmError> for SimError {
    fn from(e: VmmError) -> Self {
        SimError::Vmm(e)
    }
}

/// Entry point: runs one configuration to completion.
#[derive(Debug)]
pub struct Simulation;

/// Size of the auxiliary region used to model allocation churn.
const CHURN_REGION: u64 = 8 * MIB;
/// Retry budget per access (a correct setup needs at most a handful).
const MAX_FAULTS_PER_ACCESS: u32 = 64;

impl Simulation {
    /// Runs the configuration and reports its measurements.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the environment cannot be constructed
    /// (e.g. fragmented memory without compaction) or faults cannot be
    /// serviced.
    pub fn run(cfg: &SimConfig) -> Result<RunResult, SimError> {
        Self::run_with_mmu(cfg, MmuConfig::default())
    }

    /// Like [`Simulation::run`], but with explicit MMU hardware parameters
    /// (TLB geometry, cost model, walk caching) for ablation studies. The
    /// `mode` field of `hw` is ignored — the environment determines it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_with_mmu(cfg: &SimConfig, hw: MmuConfig) -> Result<RunResult, SimError> {
        Ok(Self::run_traced(cfg, hw, None)?.0)
    }

    /// Like [`Simulation::run_with_mmu`], optionally attaching a DTLB-miss
    /// trace of `trace_capacity` records (the simulator's BadgerTrap,
    /// Section VII) and returning it alongside the measurements. The trace
    /// captures post-warmup misses only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_traced(
        cfg: &SimConfig,
        hw: MmuConfig,
        trace_capacity: Option<usize>,
    ) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
        Self::run_instrumented(cfg, hw, trace_capacity, None)
    }

    /// Like [`Simulation::run_with_mmu`], attaching a walk-event telemetry
    /// collector over the measured window. The returned result carries the
    /// collected [`mv_obs::Telemetry`] in [`RunResult::telemetry`];
    /// attaching it does not change any measured counter (the observer
    /// rides the miss path and reads counter deltas).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_observed(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: TelemetryConfig,
    ) -> Result<RunResult, SimError> {
        Ok(Self::run_instrumented(cfg, hw, None, Some(telemetry))?.0)
    }

    /// The fully-instrumented entry point: optional miss trace plus
    /// optional telemetry in one run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_instrumented(
        cfg: &SimConfig,
        hw: MmuConfig,
        trace_capacity: Option<usize>,
        telemetry: Option<TelemetryConfig>,
    ) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
        let instr = Instruments {
            trace_capacity,
            telemetry,
        };
        match cfg.env {
            Env::Native { .. } => run_native(cfg, hw, &instr),
            Env::Virtualized { .. } => run_virtualized(cfg, hw, &instr),
            Env::Shadow { .. } => run_shadow(cfg, hw, &instr),
        }
    }
}

/// Instrumentation requested for a run. Both instruments attach at the
/// warmup boundary so they cover exactly the measured window.
#[derive(Debug, Clone, Copy, Default)]
struct Instruments {
    trace_capacity: Option<usize>,
    telemetry: Option<TelemetryConfig>,
}

impl Instruments {
    /// Attaches the requested instruments to the MMU (called at the warmup
    /// boundary), returning the handle to collect telemetry from later.
    fn attach(&self, mmu: &mut Mmu) -> Option<SharedTelemetry> {
        if let Some(cap) = self.trace_capacity {
            mmu.enable_miss_trace(cap);
        }
        self.telemetry.map(|tc| {
            let shared = SharedTelemetry::new(tc);
            mmu.set_observer(shared.observer());
            shared
        })
    }
}

/// Detaches the observer and closes the telemetry window at `accesses`.
fn collect_telemetry(
    mmu: &mut Mmu,
    shared: Option<SharedTelemetry>,
    accesses: u64,
) -> Option<Telemetry> {
    drop(mmu.take_observer());
    shared.map(|s| s.take(accesses))
}

fn mmu_for(hw: MmuConfig, mode: TranslationMode) -> Mmu {
    Mmu::new(MmuConfig { mode, ..hw })
}

fn run_native(
    cfg: &SimConfig,
    hw: MmuConfig,
    instr: &Instruments,
) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
    let Env::Native { direct_segment } = cfg.env else {
        unreachable!("dispatched on env");
    };
    let phys = cfg.footprint + cfg.footprint / 2 + 64 * MIB;
    let mut os = NativeOs::boot(phys, cfg.footprint, cfg.guest_paging)?;
    let mut mmu = mmu_for(hw, if direct_segment {
        TranslationMode::NativeDirect
    } else {
        TranslationMode::BaseNative
    });
    if direct_segment {
        let seg = os.setup_direct_segment()?;
        mmu.set_native_segment(seg);
    }

    let base = os.arena_base().as_u64();
    // Big-memory applications initialize their dataset up front; measuring
    // from a populated arena gives the steady state the paper reports.
    if !direct_segment {
        let step = match cfg.guest_paging {
            GuestPaging::Fixed(s) => s.bytes(),
            GuestPaging::Thp => PageSize::Size2M.bytes(),
        };
        let mut va = base;
        while va < base + cfg.footprint {
            os.handle_page_fault(Gva::new(va))?;
            va += step;
        }
    }
    let mut workload = cfg.workload.build(cfg.footprint, cfg.seed);
    let mut telemetry = None;
    let total = cfg.warmup + cfg.accesses;
    for i in 0..total {
        if i == cfg.warmup {
            mmu.reset_counters();
            telemetry = instr.attach(&mut mmu);
        }
        let acc = workload.next_access();
        let va = Gva::new(base + acc.offset);
        let mut tries = 0;
        loop {
            let outcome = {
                let (pt, mem) = os.pt_and_mem();
                let ctx = MemoryContext::Native { pt, mem };
                mmu.access(&ctx, 0, va, acc.write)
            };
            match outcome {
                Ok(_) => break,
                Err(TranslationFault::GuestNotMapped { gva }) => os.handle_page_fault(gva)?,
                Err(fault) => return Err(SimError::FaultLoop { va: va.as_u64(), last: fault }),
            }
            tries += 1;
            if tries > MAX_FAULTS_PER_ACCESS {
                return Err(SimError::FaultLoop {
                    va: va.as_u64(),
                    last: TranslationFault::GuestNotMapped { gva: va },
                });
            }
        }
    }

    let telemetry = collect_telemetry(&mut mmu, telemetry, cfg.accesses);
    let trace = mmu.take_miss_trace();
    Ok((
        finish(cfg, &mmu, workload.cycles_per_access(), 0.0, 0, telemetry),
        trace,
    ))
}

fn run_virtualized(
    cfg: &SimConfig,
    hw: MmuConfig,
    instr: &Instruments,
) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
    let Env::Virtualized { nested, mode } = cfg.env else {
        unreachable!("dispatched on env");
    };
    let (mut vmm, vm, mut guest, pid, base) = build_guest(cfg, nested, mode)?;
    let mut mmu = mmu_for(hw, mode);
    if matches!(mode, TranslationMode::GuestDirect | TranslationMode::DualDirect) {
        let seg = guest.setup_guest_segment(pid)?;
        mmu.set_guest_segment(seg);
    }
    if matches!(mode, TranslationMode::VmmDirect | TranslationMode::DualDirect) {
        let span = guest.mem().size_bytes();
        let seg = vmm.create_vmm_segment(
            vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(span)),
            SegmentOptions::default(),
        )?;
        mmu.set_vmm_segment(seg);
    }

    // Steady state: populate the guest page table (unless the guest
    // segment covers the arena) and the nested backing (unless the VMM
    // segment does).
    let guest_seg_covers = matches!(
        mode,
        TranslationMode::GuestDirect | TranslationMode::DualDirect
    );
    if !guest_seg_covers {
        guest.populate(pid, Gva::new(base), cfg.footprint)?;
    }
    if !matches!(mode, TranslationMode::VmmDirect | TranslationMode::DualDirect) {
        let span = guest.mem().size_bytes();
        vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(span)))?;
    }

    let mut workload = cfg.workload.build(cfg.footprint, cfg.seed);
    let churn = churn_plan(cfg, workload.churn_per_million());
    let churn_base = guest.mmap(pid, CHURN_REGION, Prot::RW)?;
    let mut churn_cursor = 0u64;

    let mut telemetry = None;
    let mut exits_at_reset = 0u64;
    let total = cfg.warmup + cfg.accesses;
    for i in 0..total {
        if i == cfg.warmup {
            mmu.reset_counters();
            exits_at_reset = vmm.vm(vm).counters().vm_exits;
            telemetry = instr.attach(&mut mmu);
        }
        if churn.due(i) {
            churn_event(&mut guest, pid, churn_base, &mut churn_cursor, &mut mmu)?;
        }
        let acc = workload.next_access();
        let va = Gva::new(base + acc.offset);
        let mut tries = 0;
        loop {
            let outcome = {
                let (gpt, gmem) = guest.pt_and_mem(pid);
                let (npt, hmem) = vmm.npt_and_hmem(vm);
                let ctx = MemoryContext::Virtualized {
                    gpt,
                    gmem,
                    npt,
                    hmem,
                };
                mmu.access(&ctx, pid as u16, va, acc.write)
            };
            match outcome {
                Ok(_) => break,
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    guest.handle_page_fault(pid, gva)?;
                }
                Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                    vmm.handle_nested_fault(vm, gpa)?;
                }
                Err(fault) => {
                    return Err(SimError::FaultLoop { va: va.as_u64(), last: fault });
                }
            }
            tries += 1;
            if tries > MAX_FAULTS_PER_ACCESS {
                return Err(SimError::FaultLoop {
                    va: va.as_u64(),
                    last: TranslationFault::GuestNotMapped { gva: va },
                });
            }
        }
    }

    let exit_cycles =
        (vmm.vm(vm).counters().vm_exits - exits_at_reset) as f64 * VM_EXIT_CYCLES as f64;
    let vm_exits = vmm.vm(vm).counters().vm_exits - exits_at_reset;
    let telemetry = collect_telemetry(&mut mmu, telemetry, cfg.accesses);
    let trace = mmu.take_miss_trace();
    Ok((
        finish(cfg, &mmu, workload.cycles_per_access(), exit_cycles, vm_exits, telemetry),
        trace,
    ))
}

fn run_shadow(
    cfg: &SimConfig,
    hw: MmuConfig,
    instr: &Instruments,
) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
    let Env::Shadow { nested } = cfg.env else {
        unreachable!("dispatched on env");
    };
    let (mut vmm, vm, mut guest, pid, base) =
        build_guest(cfg, nested, TranslationMode::BaseVirtualized)?;
    let mut shadow = ShadowPaging::new(vm);
    shadow.shadow_for(&mut vmm, pid)?;
    // The hardware walks the shadow table: a native-style 1D configuration.
    let mut mmu = mmu_for(hw, TranslationMode::BaseNative);

    // Steady state: populate the guest table, then bulk-sync the shadow
    // (boot-time churn; the measurement window starts after warmup).
    guest.populate(pid, Gva::new(base), cfg.footprint)?;
    let mut leaves = Vec::new();
    {
        let (gpt, gmem) = guest.pt_and_mem(pid);
        gpt.for_each_leaf(gmem, &mut |va, pte, size| {
            leaves.push(mv_guestos::FaultFix {
                va_page: va,
                gpa: pte.addr(),
                size,
                prot: pte.prot(),
            });
        });
    }
    for fix in &leaves {
        shadow.on_guest_update(&mut vmm, pid, fix)?;
    }

    let mut workload = cfg.workload.build(cfg.footprint, cfg.seed);
    let churn = churn_plan(cfg, workload.churn_per_million());
    let churn_base = guest.mmap(pid, CHURN_REGION, Prot::RW)?;
    let mut churn_cursor = 0u64;

    let mut telemetry = None;
    let mut exit_cycles_at_reset = 0u64;
    let mut exits_at_reset = 0u64;
    let total = cfg.warmup + cfg.accesses;
    for i in 0..total {
        if i == cfg.warmup {
            mmu.reset_counters();
            exit_cycles_at_reset = shadow.exit_cycles();
            exits_at_reset = shadow.vm_exits();
            telemetry = instr.attach(&mut mmu);
        }
        if churn.due(i) {
            shadow_churn_event(
                &mut guest,
                &mut vmm,
                &mut shadow,
                pid,
                churn_base,
                &mut churn_cursor,
                &mut mmu,
            )?;
        }
        let acc = workload.next_access();
        let va = Gva::new(base + acc.offset);
        let mut tries = 0;
        loop {
            let outcome = {
                let pt = shadow.table(pid);
                let ctx = MemoryContext::Native { pt, mem: vmm.hmem() };
                mmu.access(&ctx, pid as u16, va, acc.write)
            };
            match outcome {
                Ok(_) => break,
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    // Shadow miss: either the guest lacks the page (real
                    // fault) or only the shadow is stale (hidden fault).
                    let fix = match guest.process(pid).page_table().translate(guest.mem(), gva) {
                        Some(t) => mv_guestos::FaultFix {
                            va_page: Gva::new(gva.as_u64() & !t.size.offset_mask()),
                            gpa: t.page_base,
                            size: t.size,
                            prot: t.prot,
                        },
                        None => guest.handle_page_fault(pid, gva)?,
                    };
                    shadow.on_guest_update(&mut vmm, pid, &fix)?;
                }
                Err(fault) => {
                    return Err(SimError::FaultLoop { va: va.as_u64(), last: fault })
                }
            }
            tries += 1;
            if tries > MAX_FAULTS_PER_ACCESS {
                return Err(SimError::FaultLoop {
                    va: va.as_u64(),
                    last: TranslationFault::GuestNotMapped { gva: va },
                });
            }
        }
    }

    let exit_cycles = (shadow.exit_cycles() - exit_cycles_at_reset) as f64;
    let vm_exits = shadow.vm_exits() - exits_at_reset;
    let telemetry = collect_telemetry(&mut mmu, telemetry, cfg.accesses);
    let trace = mmu.take_miss_trace();
    Ok((
        finish(cfg, &mmu, workload.cycles_per_access(), exit_cycles, vm_exits, telemetry),
        trace,
    ))
}

/// Builds the virtualized stack: host, VM, guest OS, and one process with
/// the workload arena mapped (as a primary region when the mode uses a
/// guest segment).
fn build_guest(
    cfg: &SimConfig,
    nested: PageSize,
    mode: TranslationMode,
) -> Result<(Vmm, mv_vmm::VmId, GuestOs, u32, u64), SimError> {
    let installed = cfg.footprint + cfg.footprint / 2 + 96 * MIB;
    // Nested backing is allocated at the VMM page granularity, so the host
    // must hold the guest span rounded up to whole nested pages (plus the
    // VMM-segment copy and table slack).
    let rounded = installed.next_multiple_of(nested.bytes());
    let host = 2 * rounded + 128 * MIB;
    let mut vmm = Vmm::new(host);
    let vm = vmm.create_vm(VmConfig::new(installed, nested));
    let mut guest = GuestOs::boot(GuestConfig::small(installed));
    let policy = match cfg.guest_paging {
        GuestPaging::Fixed(s) => PageSizePolicy::Fixed(s),
        GuestPaging::Thp => PageSizePolicy::Thp,
    };
    let pid = guest.create_process(policy);
    let base = if matches!(
        mode,
        TranslationMode::GuestDirect | TranslationMode::DualDirect
    ) {
        guest.create_primary_region(pid, cfg.footprint)?
    } else {
        guest.mmap(pid, cfg.footprint, Prot::RW)?
    };
    Ok((vmm, vm, guest, pid, base.as_u64()))
}

/// Churn schedule: `events_per_million / 1e6` events per access.
#[derive(Debug, Clone, Copy)]
struct ChurnPlan {
    interval: u64,
}

impl ChurnPlan {
    fn due(&self, i: u64) -> bool {
        self.interval > 0 && i % self.interval == 0 && i > 0
    }
}

fn churn_plan(_cfg: &SimConfig, per_million: u64) -> ChurnPlan {
    ChurnPlan {
        interval: 1_000_000u64
            .checked_div(per_million)
            .map_or(0, |i| i.max(1)),
    }
}

/// One allocation-churn event: alternately map and unmap pages of the
/// churn region, as a heap allocator would.
fn churn_event(
    guest: &mut GuestOs,
    pid: u32,
    base: Gva,
    cursor: &mut u64,
    mmu: &mut Mmu,
) -> Result<(), SimError> {
    let va = Gva::new(base.as_u64() + (*cursor % CHURN_REGION));
    *cursor += PageSize::Size4K.bytes();
    if let Some((va_page, _)) = guest.unmap_page(pid, va)? {
        mmu.invalidate_page(pid as u16, va_page);
    } else {
        guest.handle_page_fault(pid, va)?;
    }
    Ok(())
}

/// Shadow-mode churn: every guest page-table change takes a VM exit.
fn shadow_churn_event(
    guest: &mut GuestOs,
    vmm: &mut Vmm,
    shadow: &mut ShadowPaging,
    pid: u32,
    base: Gva,
    cursor: &mut u64,
    mmu: &mut Mmu,
) -> Result<(), SimError> {
    let va = Gva::new(base.as_u64() + (*cursor % CHURN_REGION));
    *cursor += PageSize::Size4K.bytes();
    if let Some((va_page, size)) = guest.unmap_page(pid, va)? {
        mmu.invalidate_page(pid as u16, va_page);
        shadow.on_guest_unmap(vmm, pid, va_page, size)?;
    } else {
        let fix = guest.handle_page_fault(pid, va)?;
        shadow.on_guest_update(vmm, pid, &fix)?;
    }
    Ok(())
}

fn finish(
    cfg: &SimConfig,
    mmu: &Mmu,
    cycles_per_access: f64,
    exit_cycles: f64,
    vm_exits: u64,
    telemetry: Option<Telemetry>,
) -> RunResult {
    let counters = *mmu.counters();
    let ideal = cfg.accesses as f64 * cycles_per_access;
    let translation = counters.translation_cycles as f64 + exit_cycles;
    RunResult {
        label: cfg.label(),
        workload: cfg.workload.label(),
        accesses: cfg.accesses,
        counters,
        ideal_cycles: ideal,
        translation_cycles: translation,
        overhead: mv_metrics::overhead(translation, ideal),
        vm_exits,
        nested_l2: mmu.nested_l2_stats(),
        telemetry,
    }
}
