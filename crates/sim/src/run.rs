//! The simulation entry points: one [`Simulation`] facade that dispatches
//! every environment to the single generic driver loop in
//! [`crate::machine`].

use core::fmt;

use mv_adapt::AdaptSpec;
use mv_chaos::ChaosSpec;
use mv_core::{MmuConfig, TranslationFault};
use mv_guestos::OsError;
use mv_obs::TelemetryConfig;
use mv_prof::ProfileConfig;
use mv_trace::{ReplaySource, SharedTraceWriter, TraceError};
use mv_vmm::VmmError;

use crate::config::{Env, SimConfig};
use crate::machine::{drive, Instruments, L2Machine, NativeMachine, ShadowMachine, VirtualizedMachine};
use crate::result::RunResult;
use crate::sample::{SampleError, SampleSpec};

/// Errors surfaced while constructing or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// Guest/native OS failure.
    Os(OsError),
    /// Hypervisor failure.
    Vmm(VmmError),
    /// An access faulted repeatedly without converging (a wiring bug).
    FaultLoop {
        /// The address that kept faulting.
        va: u64,
        /// The last fault observed.
        last: TranslationFault,
    },
    /// A replayed or recorded trace failed (malformed bytes, I/O, or a
    /// footprint mismatch against the run configuration).
    Trace(TraceError),
    /// A sampled run was rejected (invalid schedule, or sampling combined
    /// with an instrument that needs every access detailed).
    Sample(SampleError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Os(e) => write!(f, "os error: {e}"),
            SimError::Vmm(e) => write!(f, "vmm error: {e}"),
            SimError::FaultLoop { va, last } => {
                write!(f, "access at {va:#x} kept faulting: {last}")
            }
            SimError::Trace(e) => write!(f, "trace error: {e}"),
            SimError::Sample(e) => write!(f, "sampled run rejected: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Os(e) => Some(e),
            SimError::Vmm(e) => Some(e),
            SimError::FaultLoop { .. } => None,
            SimError::Trace(e) => Some(e),
            SimError::Sample(e) => Some(e),
        }
    }
}

impl From<OsError> for SimError {
    fn from(e: OsError) -> Self {
        SimError::Os(e)
    }
}

impl From<VmmError> for SimError {
    fn from(e: VmmError) -> Self {
        SimError::Vmm(e)
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

/// Entry point: runs one configuration to completion.
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Runs the configuration and reports its measurements.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the environment cannot be constructed
    /// (e.g. fragmented memory without compaction) or faults cannot be
    /// serviced.
    pub fn run(cfg: &SimConfig) -> Result<RunResult, SimError> {
        Self::run_with_mmu(cfg, MmuConfig::default())
    }

    /// Like [`Simulation::run`], but with explicit MMU hardware parameters
    /// (TLB geometry, cost model, walk caching) for ablation studies. The
    /// `mode` field of `hw` is ignored — the environment determines it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_with_mmu(cfg: &SimConfig, hw: MmuConfig) -> Result<RunResult, SimError> {
        Ok(Self::run_traced(cfg, hw, None)?.0)
    }

    /// Like [`Simulation::run_with_mmu`], optionally attaching a DTLB-miss
    /// trace of `trace_capacity` records (the simulator's BadgerTrap,
    /// Section VII) and returning it alongside the measurements. The trace
    /// captures post-warmup misses only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_traced(
        cfg: &SimConfig,
        hw: MmuConfig,
        trace_capacity: Option<usize>,
    ) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
        Self::run_instrumented(cfg, hw, trace_capacity, None)
    }

    /// Like [`Simulation::run_with_mmu`], attaching a walk-event telemetry
    /// collector over the measured window. The returned result carries the
    /// collected [`mv_obs::Telemetry`] in [`RunResult::telemetry`];
    /// attaching it does not change any measured counter (the observer
    /// rides the miss path and reads counter deltas).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_observed(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: TelemetryConfig,
    ) -> Result<RunResult, SimError> {
        Ok(Self::run_instrumented(cfg, hw, None, Some(telemetry))?.0)
    }

    /// The fully-instrumented entry point: optional miss trace plus
    /// optional telemetry in one run. Every environment goes through the
    /// same generic driver loop; only the [`crate::machine::Machine`]
    /// implementation differs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_instrumented(
        cfg: &SimConfig,
        hw: MmuConfig,
        trace_capacity: Option<usize>,
        telemetry: Option<TelemetryConfig>,
    ) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
        let instr = Instruments {
            trace_capacity,
            telemetry,
            ..Instruments::default()
        };
        Self::dispatch(cfg, hw, &instr)
    }

    /// Like [`Simulation::run_with_mmu`], attaching the walk-cost
    /// attribution profiler (optionally alongside telemetry — the two
    /// share the observer hook through a tee). The returned result carries
    /// the collected [`mv_prof::Profile`] in [`RunResult::profile`]: a
    /// per-epoch and run-total matrix of modeled cycles per (guest level ×
    /// nested level) cell, plus TLB/PWC hit tiers and VM-exit costs.
    ///
    /// Attribution never perturbs the simulation: the MMU records per-cell
    /// costs only while a profiling observer is attached, and the costs
    /// are the same charges already summed into the counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_profiled(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: Option<TelemetryConfig>,
        profile: ProfileConfig,
    ) -> Result<RunResult, SimError> {
        let instr = Instruments {
            telemetry,
            profile: Some(profile),
            ..Instruments::default()
        };
        Ok(Self::dispatch(cfg, hw, &instr)?.0)
    }

    /// Runs with the driver's batching disabled: every access is paced
    /// one at a time, re-checking the warmup boundary and churn schedule
    /// before each, exactly as the pre-batching driver did. Scheduling
    /// granularity is the *only* difference from the batched path, so the
    /// results must be byte-identical — the batch-boundary equivalence
    /// tests assert exactly that. Not part of the supported API.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    #[doc(hidden)]
    pub fn run_reference_paced(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: Option<TelemetryConfig>,
        chaos: Option<ChaosSpec>,
    ) -> Result<RunResult, SimError> {
        let instr = Instruments {
            telemetry,
            chaos,
            reference_pacing: true,
            ..Instruments::default()
        };
        Ok(Self::dispatch(cfg, hw, &instr)?.0)
    }

    /// Like [`Simulation::run_with_mmu`], with deterministic fault
    /// injection and the translation oracle active for the whole run
    /// (optionally alongside telemetry, whose export then carries the
    /// degradation transitions). The returned result carries the
    /// [`mv_chaos::ChaosReport`] in [`RunResult::chaos`]. An inactive spec
    /// (rate 0) takes the exact chaos-free path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`]; injected faults degrade the
    /// run rather than failing it.
    pub fn run_chaos(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: Option<TelemetryConfig>,
        chaos: ChaosSpec,
    ) -> Result<RunResult, SimError> {
        let instr = Instruments {
            telemetry,
            chaos: Some(chaos),
            ..Instruments::default()
        };
        Ok(Self::dispatch(cfg, hw, &instr)?.0)
    }

    /// Like [`Simulation::run_chaos`], with the telemetry-driven adaptive
    /// mode controller deciding per-layer translation modes online. The
    /// controller consumes the run's own epoch snapshots (telemetry is
    /// attached automatically, in lockstep with the decision epoch length,
    /// when the caller does not supply a config) plus the chaos driver's
    /// fault signals, and switches plans live between epochs — demotions
    /// immediately on segment loss, promotions through the hysteresis
    /// gates. The returned result carries the [`mv_adapt::AdaptReport`] in
    /// [`RunResult::adapt`], and the telemetry export carries every plan
    /// transition.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_adaptive(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: Option<TelemetryConfig>,
        chaos: Option<ChaosSpec>,
        adapt: AdaptSpec,
    ) -> Result<RunResult, SimError> {
        let telemetry = telemetry.unwrap_or(TelemetryConfig {
            epoch_len: adapt.epoch_len,
            flight_capacity: 0,
        });
        let instr = Instruments {
            telemetry: Some(telemetry),
            chaos,
            adapt: Some(adapt),
            ..Instruments::default()
        };
        Ok(Self::dispatch(cfg, hw, &instr)?.0)
    }

    /// Like [`Simulation::run_with_mmu`], but the access stream comes
    /// from a recorded trace instead of the configured generator
    /// (optionally with telemetry attached). The trace is fully
    /// validated before any machine is built, and its footprint must
    /// equal `cfg.footprint` — the header's churn rate and ideal
    /// cycles-per-access drive the run, so replaying a recording of the
    /// same configuration reproduces the live run byte for byte.
    ///
    /// # Errors
    ///
    /// [`SimError::Trace`] for malformed, unreadable, or mismatched
    /// traces; otherwise the same conditions as [`Simulation::run`].
    pub fn run_replayed(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: Option<TelemetryConfig>,
        trace: ReplaySource,
    ) -> Result<RunResult, SimError> {
        let instr = Instruments {
            telemetry,
            replay: Some(trace),
            ..Instruments::default()
        };
        Ok(Self::dispatch(cfg, hw, &instr)?.0)
    }

    /// Like [`Simulation::run_with_mmu`], additionally teeing every
    /// workload access into `recorder` as the run plays. Recording rides
    /// outside the measured path (the generator's stream is forwarded
    /// unchanged), so the run's results are identical with or without
    /// it. Call [`SharedTraceWriter::finish`] afterwards to seal the
    /// trace and surface any deferred write error.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_recorded(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: Option<TelemetryConfig>,
        recorder: SharedTraceWriter,
    ) -> Result<RunResult, SimError> {
        let instr = Instruments {
            telemetry,
            record: Some(recorder),
            ..Instruments::default()
        };
        Ok(Self::dispatch(cfg, hw, &instr)?.0)
    }

    /// Like [`Simulation::run_with_mmu`], but sampled: the measured
    /// region alternates detailed windows with functional fast-forward
    /// gaps per `spec` (optionally with telemetry attached over the
    /// detailed windows), and the returned counters and cycle totals are
    /// full-run **estimates** scaled from the windows. The result carries
    /// the schedule and the raw measured-access count in
    /// [`RunResult::sample`]. VM exits are exact (faults are serviced at
    /// full cadence through the gaps), and the TLBs stay architecturally
    /// warm across gaps; the walk caches are re-heated by each interval's
    /// warm tail instead.
    ///
    /// # Errors
    ///
    /// [`SimError::Sample`] for an invalid schedule; otherwise the same
    /// conditions as [`Simulation::run`].
    pub fn run_sampled(
        cfg: &SimConfig,
        hw: MmuConfig,
        telemetry: Option<TelemetryConfig>,
        spec: SampleSpec,
    ) -> Result<RunResult, SimError> {
        let instr = Instruments {
            telemetry,
            sample: Some(spec),
            ..Instruments::default()
        };
        Ok(Self::dispatch(cfg, hw, &instr)?.0)
    }

    /// Dispatches to the generic driver loop on the configured environment.
    pub(crate) fn dispatch(
        cfg: &SimConfig,
        hw: MmuConfig,
        instr: &Instruments,
    ) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
        match cfg.env {
            Env::Native { .. } => drive::<NativeMachine>(cfg, hw, instr),
            Env::Virtualized { .. } => drive::<VirtualizedMachine>(cfg, hw, instr),
            Env::Shadow { .. } => drive::<ShadowMachine>(cfg, hw, instr),
            Env::L2 { .. } => drive::<L2Machine>(cfg, hw, instr),
        }
    }
}
