//! Experiment configurations and their paper-style labels.

use mv_core::TranslationMode;
use mv_types::PageSize;
use mv_workloads::WorkloadKind;

/// How the guest (or native) OS maps application memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestPaging {
    /// Explicitly requested page size (big-memory applications).
    Fixed(PageSize),
    /// 4 KiB demand paging with transparent huge pages (SPEC/PARSEC).
    Thp,
}

impl GuestPaging {
    /// Label fragment used in configuration names.
    pub fn label(self) -> &'static str {
        match self {
            GuestPaging::Fixed(s) => s.label(),
            GuestPaging::Thp => "THP",
        }
    }
}

/// The execution environment of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Env {
    /// Native execution; `direct_segment` selects the Section III.D mode.
    Native {
        /// Use the (unvirtualized) direct segment for the primary region.
        direct_segment: bool,
    },
    /// Virtualized with hardware nested paging, possibly with the proposed
    /// segment modes.
    Virtualized {
        /// VMM page size for nested mappings.
        nested: PageSize,
        /// Translation mode (BaseVirtualized / VmmDirect / GuestDirect /
        /// DualDirect).
        mode: TranslationMode,
    },
    /// Virtualized with shadow paging (Section IX.D): the hardware walks a
    /// VMM-maintained gVA→hPA shadow table; guest page-table updates take
    /// VM exits.
    Shadow {
        /// VMM page size used when composing shadow leaves.
        nested: PageSize,
    },
}

impl Env {
    /// Plain native paging.
    pub fn native() -> Env {
        Env::Native {
            direct_segment: false,
        }
    }

    /// Native with a direct segment (`DS`).
    pub fn native_direct() -> Env {
        Env::Native {
            direct_segment: true,
        }
    }

    /// Base virtualized with the given VMM page size.
    pub fn base_virtualized(nested: PageSize) -> Env {
        Env::Virtualized {
            nested,
            mode: TranslationMode::BaseVirtualized,
        }
    }

    /// VMM Direct (`…+VD`).
    pub fn vmm_direct() -> Env {
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::VmmDirect,
        }
    }

    /// Guest Direct (`…+GD`) with the given VMM page size.
    pub fn guest_direct(nested: PageSize) -> Env {
        Env::Virtualized {
            nested,
            mode: TranslationMode::GuestDirect,
        }
    }

    /// Dual Direct (`DD`).
    pub fn dual_direct() -> Env {
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::DualDirect,
        }
    }
}

/// One experiment configuration: workload × environment × sizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Which Table V workload to run.
    pub workload: WorkloadKind,
    /// Workload arena size in bytes.
    pub footprint: u64,
    /// Guest (or native) OS paging policy.
    pub guest_paging: GuestPaging,
    /// Environment.
    pub env: Env,
    /// Measured accesses (after warmup).
    pub accesses: u64,
    /// Warmup accesses (caches/TLBs fill; counters then reset).
    pub warmup: u64,
    /// Random seed for the workload and any stochastic machinery.
    pub seed: u64,
}

impl SimConfig {
    /// The configuration label used in the paper's figures: `4K`, `2M+2M`,
    /// `DD`, `4K+VD`, `4K+shadow`, …
    pub fn label(&self) -> String {
        match self.env {
            Env::Native { direct_segment } => {
                if direct_segment {
                    "DS".to_string()
                } else {
                    self.guest_paging.label().to_string()
                }
            }
            Env::Virtualized { nested, mode } => match mode {
                TranslationMode::BaseVirtualized => {
                    format!("{}+{}", self.guest_paging.label(), nested.label())
                }
                TranslationMode::DualDirect => "DD".to_string(),
                TranslationMode::VmmDirect => format!("{}+VD", self.guest_paging.label()),
                TranslationMode::GuestDirect => format!("{}+GD", self.guest_paging.label()),
                m => format!("{}+{}", self.guest_paging.label(), m.label()),
            },
            Env::Shadow { .. } => format!("{}+shadow", self.guest_paging.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(guest: GuestPaging, env: Env) -> SimConfig {
        SimConfig {
            workload: WorkloadKind::Gups,
            footprint: 1 << 20,
            guest_paging: guest,
            env,
            accesses: 1,
            warmup: 0,
            seed: 0,
        }
    }

    #[test]
    fn labels_match_the_paper() {
        use GuestPaging::Fixed;
        use PageSize::*;
        assert_eq!(cfg(Fixed(Size4K), Env::native()).label(), "4K");
        assert_eq!(cfg(Fixed(Size2M), Env::native()).label(), "2M");
        assert_eq!(cfg(GuestPaging::Thp, Env::native()).label(), "THP");
        assert_eq!(cfg(Fixed(Size4K), Env::native_direct()).label(), "DS");
        assert_eq!(
            cfg(Fixed(Size4K), Env::base_virtualized(Size2M)).label(),
            "4K+2M"
        );
        assert_eq!(cfg(Fixed(Size4K), Env::vmm_direct()).label(), "4K+VD");
        assert_eq!(
            cfg(Fixed(Size4K), Env::guest_direct(Size4K)).label(),
            "4K+GD"
        );
        assert_eq!(cfg(Fixed(Size4K), Env::dual_direct()).label(), "DD");
        assert_eq!(
            cfg(Fixed(Size4K), Env::Shadow { nested: Size4K }).label(),
            "4K+shadow"
        );
    }
}
