//! Experiment configurations and their paper-style labels.

use mv_core::{LayerMode, LayerStack, TranslationMode};
use mv_types::PageSize;
use mv_workloads::WorkloadKind;

/// The [`LayerMode`] a paging layer runs at for a given leaf size. The
/// stack model distinguishes base (4 KiB) from large leaves; 1 GiB rides
/// with 2 MiB since both are the "large leaf" class — walk shape and
/// dimensionality are identical, only TLB reach differs.
fn paging_layer_mode(size: PageSize) -> LayerMode {
    match size {
        PageSize::Size4K => LayerMode::Base4K,
        PageSize::Size2M | PageSize::Size1G => LayerMode::Base2M,
    }
}

/// Re-types each *paging* layer of `stack` with the given per-layer
/// modes, leaving direct-segment layers untouched.
fn refine_stack(stack: LayerStack, sizes: [LayerMode; LayerStack::MAX_DEPTH]) -> LayerStack {
    let mut modes = [LayerMode::Base4K; LayerStack::MAX_DEPTH];
    for (i, layer) in stack.layers().iter().enumerate() {
        modes[i] = match layer.mode {
            LayerMode::DirectSegment => LayerMode::DirectSegment,
            _ => sizes[i],
        };
    }
    LayerStack::from_modes(&modes[..stack.depth()]).unwrap_or(stack)
}

/// How the guest (or native) OS maps application memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestPaging {
    /// Explicitly requested page size (big-memory applications).
    Fixed(PageSize),
    /// 4 KiB demand paging with transparent huge pages (SPEC/PARSEC).
    Thp,
}

impl GuestPaging {
    /// Label fragment used in configuration names.
    pub fn label(self) -> &'static str {
        match self {
            GuestPaging::Fixed(s) => s.label(),
            GuestPaging::Thp => "THP",
        }
    }

    /// The [`LayerMode`] the guest's paging layer runs at (THP demand
    /// pages at 4 KiB; promotion is a reach optimization, not a walk-shape
    /// change).
    pub fn layer_mode(self) -> LayerMode {
        match self {
            GuestPaging::Fixed(s) => paging_layer_mode(s),
            GuestPaging::Thp => LayerMode::Base4K,
        }
    }
}

/// The execution environment of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Env {
    /// Native execution; `direct_segment` selects the Section III.D mode.
    Native {
        /// Use the (unvirtualized) direct segment for the primary region.
        direct_segment: bool,
    },
    /// Virtualized with hardware nested paging, possibly with the proposed
    /// segment modes.
    Virtualized {
        /// VMM page size for nested mappings.
        nested: PageSize,
        /// Translation mode (BaseVirtualized / VmmDirect / GuestDirect /
        /// DualDirect).
        mode: TranslationMode,
    },
    /// Virtualized with shadow paging (Section IX.D): the hardware walks a
    /// VMM-maintained gVA→hPA shadow table; guest page-table updates take
    /// VM exits.
    Shadow {
        /// VMM page size used when composing shadow leaves.
        nested: PageSize,
    },
    /// Nested-nested (L2) virtualization: an L2 guest on an L1 hypervisor
    /// on the L0 host — a 3-deep translation-layer stack extending the
    /// paper's dimensionality study.
    L2 {
        /// L1 hypervisor page size for mid (A→B) mappings.
        mid: PageSize,
        /// L0 VMM page size for nested (B→hPA) mappings.
        nested: PageSize,
        /// The L2 translation mode; must be
        /// [`TranslationMode::L2Nested`], whose flags place a direct
        /// segment per layer.
        mode: TranslationMode,
        /// How the L1 hypervisor virtualizes the L2 guest's translation.
        strategy: L2Strategy,
    },
}

/// How an [`Env::L2`] stack translates the L2 guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Strategy {
    /// Hardware walks all three layers: 3D nested-nested walks.
    NestedNested,
    /// The L1 hypervisor shadow-collapses the top two layers into one
    /// gVA→B table; hardware does ordinary 2D walks (shadow × host), and
    /// every shadow resync costs an L0-emulated L1 exit.
    ShadowOnNested,
}

impl Env {
    /// Plain native paging.
    pub fn native() -> Env {
        Env::Native {
            direct_segment: false,
        }
    }

    /// Native with a direct segment (`DS`).
    pub fn native_direct() -> Env {
        Env::Native {
            direct_segment: true,
        }
    }

    /// Base virtualized with the given VMM page size.
    pub fn base_virtualized(nested: PageSize) -> Env {
        Env::Virtualized {
            nested,
            mode: TranslationMode::BaseVirtualized,
        }
    }

    /// VMM Direct (`…+VD`).
    pub fn vmm_direct() -> Env {
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::VmmDirect,
        }
    }

    /// Guest Direct (`…+GD`) with the given VMM page size.
    pub fn guest_direct(nested: PageSize) -> Env {
        Env::Virtualized {
            nested,
            mode: TranslationMode::GuestDirect,
        }
    }

    /// Dual Direct (`DD`).
    pub fn dual_direct() -> Env {
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::DualDirect,
        }
    }

    /// Nested-nested L2 virtualization with per-layer direct-segment
    /// placement (all `false` = fully paged 3D walks) and 4 KiB mid and
    /// nested leaves.
    pub fn l2(guest_ds: bool, mid_ds: bool, host_ds: bool) -> Env {
        Env::l2_sized(guest_ds, mid_ds, host_ds, PageSize::Size4K, PageSize::Size4K)
    }

    /// [`Env::l2`] with explicit mid (L1 hypervisor) and nested (L0 host)
    /// page sizes; the sizes flow into the machine's mapping granularity
    /// *and* into the reported [`LayerStack`](Env::layer_stack).
    pub const fn l2_sized(
        guest_ds: bool,
        mid_ds: bool,
        host_ds: bool,
        mid: PageSize,
        nested: PageSize,
    ) -> Env {
        Env::L2 {
            mid,
            nested,
            mode: TranslationMode::L2Nested {
                guest_ds,
                mid_ds,
                host_ds,
            },
            strategy: L2Strategy::NestedNested,
        }
    }

    /// L2 virtualization where the L1 hypervisor shadow-collapses the top
    /// two layers (no direct segments; the hardware walks 2D).
    pub fn l2_shadow() -> Env {
        Env::L2 {
            mid: PageSize::Size4K,
            nested: PageSize::Size4K,
            mode: TranslationMode::L2Nested {
                guest_ds: false,
                mid_ds: false,
                host_ds: false,
            },
            strategy: L2Strategy::ShadowOnNested,
        }
    }

    /// The translation-layer stack this environment programs, with every
    /// paging layer carrying its *actual* leaf size rather than the 4 KiB
    /// that [`TranslationMode::stack`] assumes (the mode alone cannot know
    /// the environment's page-size choices). Direct-segment placement,
    /// depth, walk dimensionality, and the `T(d)` reference budget are
    /// identical to the mode's canonical stack — large leaves change TLB
    /// reach, not walk shape — so all Table II cost math is unaffected;
    /// only the per-layer mode labels become truthful.
    ///
    /// Shadow environments report the stack the hardware actually walks:
    /// one layer for classic shadow paging, two (shadow × nested) for
    /// shadow-on-nested L2.
    pub fn layer_stack(&self, guest: GuestPaging) -> LayerStack {
        let g = guest.layer_mode();
        match *self {
            Env::Native { direct_segment } => {
                if direct_segment {
                    LayerStack::native(LayerMode::DirectSegment)
                } else {
                    LayerStack::native(g)
                }
            }
            Env::Virtualized { nested, mode } => {
                refine_stack(mode.stack(), [g, paging_layer_mode(nested), paging_layer_mode(nested)])
            }
            Env::Shadow { .. } => LayerStack::native(g),
            Env::L2 {
                mid,
                nested,
                mode,
                strategy,
            } => match strategy {
                L2Strategy::NestedNested => refine_stack(
                    mode.stack(),
                    [g, paging_layer_mode(mid), paging_layer_mode(nested)],
                ),
                L2Strategy::ShadowOnNested => {
                    LayerStack::virtualized(g, paging_layer_mode(nested))
                }
            },
        }
    }
}

/// One experiment configuration: workload × environment × sizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Which Table V workload to run.
    pub workload: WorkloadKind,
    /// Workload arena size in bytes.
    pub footprint: u64,
    /// Guest (or native) OS paging policy.
    pub guest_paging: GuestPaging,
    /// Environment.
    pub env: Env,
    /// Measured accesses (after warmup).
    pub accesses: u64,
    /// Warmup accesses (caches/TLBs fill; counters then reset).
    pub warmup: u64,
    /// Random seed for the workload and any stochastic machinery.
    pub seed: u64,
}

impl SimConfig {
    /// The configuration label used in the paper's figures: `4K`, `2M+2M`,
    /// `DD`, `4K+VD`, `4K+shadow`, …
    pub fn label(&self) -> String {
        match self.env {
            Env::Native { direct_segment } => {
                if direct_segment {
                    "DS".to_string()
                } else {
                    self.guest_paging.label().to_string()
                }
            }
            Env::Virtualized { nested, mode } => match mode {
                TranslationMode::BaseVirtualized => {
                    format!("{}+{}", self.guest_paging.label(), nested.label())
                }
                TranslationMode::DualDirect => "DD".to_string(),
                TranslationMode::VmmDirect => format!("{}+VD", self.guest_paging.label()),
                TranslationMode::GuestDirect => format!("{}+GD", self.guest_paging.label()),
                m => format!("{}+{}", self.guest_paging.label(), m.label()),
            },
            Env::Shadow { .. } => format!("{}+shadow", self.guest_paging.label()),
            Env::L2 {
                mid,
                nested,
                mode,
                strategy,
            } => match strategy {
                L2Strategy::NestedNested => {
                    let base = format!("{}+{}", self.guest_paging.label(), mode.label());
                    // Non-default mid/nested leaf sizes are part of the
                    // configuration's identity.
                    if mid == PageSize::Size4K && nested == PageSize::Size4K {
                        base
                    } else {
                        format!("{base}[{}/{}]", mid.label(), nested.label())
                    }
                }
                L2Strategy::ShadowOnNested => {
                    format!("{}+L2shadow", self.guest_paging.label())
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(guest: GuestPaging, env: Env) -> SimConfig {
        SimConfig {
            workload: WorkloadKind::Gups,
            footprint: 1 << 20,
            guest_paging: guest,
            env,
            accesses: 1,
            warmup: 0,
            seed: 0,
        }
    }

    #[test]
    fn labels_match_the_paper() {
        use GuestPaging::Fixed;
        use PageSize::*;
        assert_eq!(cfg(Fixed(Size4K), Env::native()).label(), "4K");
        assert_eq!(cfg(Fixed(Size2M), Env::native()).label(), "2M");
        assert_eq!(cfg(GuestPaging::Thp, Env::native()).label(), "THP");
        assert_eq!(cfg(Fixed(Size4K), Env::native_direct()).label(), "DS");
        assert_eq!(
            cfg(Fixed(Size4K), Env::base_virtualized(Size2M)).label(),
            "4K+2M"
        );
        assert_eq!(cfg(Fixed(Size4K), Env::vmm_direct()).label(), "4K+VD");
        assert_eq!(
            cfg(Fixed(Size4K), Env::guest_direct(Size4K)).label(),
            "4K+GD"
        );
        assert_eq!(cfg(Fixed(Size4K), Env::dual_direct()).label(), "DD");
        assert_eq!(
            cfg(Fixed(Size4K), Env::Shadow { nested: Size4K }).label(),
            "4K+shadow"
        );
        assert_eq!(cfg(Fixed(Size4K), Env::l2(false, false, false)).label(), "4K+L2");
        assert_eq!(
            cfg(Fixed(Size4K), Env::l2(true, true, true)).label(),
            "4K+L2+TD"
        );
        assert_eq!(
            cfg(Fixed(Size4K), Env::l2(false, true, false)).label(),
            "4K+L2+MD"
        );
        assert_eq!(cfg(Fixed(Size4K), Env::l2_shadow()).label(), "4K+L2shadow");
        assert_eq!(
            cfg(
                Fixed(Size4K),
                Env::l2_sized(false, false, false, Size2M, Size4K)
            )
            .label(),
            "4K+L2[2M/4K]"
        );
        assert_eq!(
            cfg(
                Fixed(Size4K),
                Env::l2_sized(true, false, false, Size4K, Size2M)
            )
            .label(),
            "4K+L2+GD[4K/2M]"
        );
    }

    #[test]
    fn layer_stack_reflects_per_layer_page_sizes() {
        use GuestPaging::Fixed;
        use PageSize::*;

        // The L2 mid/nested leaf sizes reach the reported stack…
        let env = Env::l2_sized(false, false, false, Size2M, Size4K);
        let stack = env.layer_stack(Fixed(Size4K));
        let labels: Vec<&str> = stack.layers().iter().map(|l| l.mode.label()).collect();
        assert_eq!(labels, ["4K", "2M", "4K"]);
        // …without changing any derived Table II quantity.
        let Env::L2 { mode, .. } = env else {
            unreachable!()
        };
        let canonical = mode.stack();
        assert_eq!(stack.walk_dimensions(), canonical.walk_dimensions());
        assert_eq!(stack.common_walk_refs(), canonical.common_walk_refs());
        assert_eq!(stack.bound_checks(), canonical.bound_checks());

        // Direct-segment layers are never re-typed by a page size.
        let env = Env::l2_sized(true, true, false, Size2M, Size2M);
        let stack = env.layer_stack(Fixed(Size2M));
        let labels: Vec<&str> = stack.layers().iter().map(|l| l.mode.label()).collect();
        assert_eq!(labels, ["ds", "ds", "2M"]);
        assert_eq!(stack.walk_dimensions(), 1);

        // Classic virtualization refines the host layer the same way.
        let stack = Env::base_virtualized(Size2M).layer_stack(Fixed(Size4K));
        let labels: Vec<&str> = stack.layers().iter().map(|l| l.mode.label()).collect();
        assert_eq!(labels, ["4K", "2M"]);
        assert_eq!(stack.common_walk_refs(), 24);

        // Shadow environments report the walked stack, not the software
        // stack they collapse.
        assert_eq!(Env::Shadow { nested: Size4K }.layer_stack(Fixed(Size4K)).depth(), 1);
        assert_eq!(Env::l2_shadow().layer_stack(Fixed(Size4K)).depth(), 2);
    }
}
