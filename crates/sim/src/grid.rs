//! Parallel experiment grids: many independent [`SimConfig`] cells run on
//! a worker pool, with deterministic assembly and merge of the results.
//!
//! The paper's evaluation is a grid — {workloads} × {translation modes} ×
//! {trials} — and each cell builds its own guest, VMM, and MMU from its
//! own seed, so cells are embarrassingly parallel. [`Simulation::run_grid`]
//! runs them on an [`mv_par`] pool and returns results **in cell order**:
//! the output (and any [`GridReport::merged`] reduction) is byte-identical
//! whether the grid ran on 1 worker or 16, in whatever completion order.
//!
//! Per-trial seeds come from [`GridCell::trial`], which splits the cell's
//! base seed through [`mv_types::rng::split_seed`] — a pure function of
//! (seed, trial index), never of shared state — so adding workers cannot
//! reassign randomness between cells.

use std::fmt;
use std::num::NonZeroUsize;

use mv_adapt::AdaptSpec;
use mv_chaos::ChaosSpec;
use mv_core::MmuConfig;
use mv_obs::TelemetryConfig;
use mv_par::Reporter;
use mv_prof::ProfileConfig;
use mv_trace::{ReplaySource, SharedTraceWriter};
use mv_types::rng::split_seed;

use crate::config::SimConfig;
use crate::machine::Instruments;
use crate::result::RunResult;
use crate::run::{SimError, Simulation};
use crate::sample::SampleSpec;

/// One cell of an experiment grid: a configuration plus the hardware
/// parameters and instrumentation it should run with.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The experiment configuration (workload, environment, sizing, seed).
    pub cfg: SimConfig,
    /// MMU hardware parameters (TLB geometry, cost model, walk caching).
    pub hw: MmuConfig,
    /// Walk-event telemetry to collect over the measured window, if any.
    pub telemetry: Option<TelemetryConfig>,
    /// Walk-cost attribution profiling over the measured window, if any.
    pub profile: Option<ProfileConfig>,
    /// Fault injection + translation oracle for the cell, if any.
    pub chaos: Option<ChaosSpec>,
    /// Adaptive mode controller for the cell, if any.
    pub adapt: Option<AdaptSpec>,
    /// Trace to replay instead of the configured generator, if any. The
    /// source is shared by reference, so one trace fans out to every
    /// trial cell without copying the bytes.
    pub replay: Option<ReplaySource>,
    /// Recorder every workload access is teed into, if any.
    pub record: Option<SharedTraceWriter>,
    /// Sampled-execution schedule for the cell, if any (see
    /// [`Simulation::run_sampled`]).
    pub sample: Option<SampleSpec>,
}

impl GridCell {
    /// A cell running `cfg` on default hardware, unobserved.
    pub fn new(cfg: SimConfig) -> GridCell {
        GridCell {
            cfg,
            hw: MmuConfig::default(),
            telemetry: None,
            profile: None,
            chaos: None,
            adapt: None,
            replay: None,
            record: None,
            sample: None,
        }
    }

    /// Replaces the MMU hardware parameters (ablation sweeps).
    #[must_use]
    pub fn with_hw(mut self, hw: MmuConfig) -> GridCell {
        self.hw = hw;
        self
    }

    /// Attaches walk-event telemetry collection to the cell.
    #[must_use]
    pub fn observed(mut self, telemetry: TelemetryConfig) -> GridCell {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches walk-cost attribution profiling to the cell. Profiles from
    /// all trials of a cell merge associatively (same discipline as
    /// telemetry), so [`GridReport::merged`] is byte-identical for any
    /// worker count.
    #[must_use]
    pub fn profiled(mut self, profile: ProfileConfig) -> GridCell {
        self.profile = Some(profile);
        self
    }

    /// Attaches deterministic fault injection (and the translation oracle)
    /// to the cell. The chaos seed is independent of the workload seed and
    /// is *not* split per trial — the plan is a pure function of the access
    /// index, so trials of one cell see the same fault schedule.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> GridCell {
        self.chaos = Some(chaos);
        self
    }

    /// Attaches the adaptive mode controller to the cell. Telemetry is
    /// attached too when the cell has none — the controller reads epoch
    /// snapshots, so the telemetry epoch length is forced into lockstep
    /// with the decision epoch length.
    #[must_use]
    pub fn adaptive(mut self, adapt: AdaptSpec) -> GridCell {
        let mut telemetry = self.telemetry.unwrap_or(TelemetryConfig {
            epoch_len: adapt.epoch_len,
            flight_capacity: 0,
        });
        telemetry.epoch_len = adapt.epoch_len;
        self.telemetry = Some(telemetry);
        self.adapt = Some(adapt);
        self
    }

    /// Replays the cell's access stream from `trace` instead of building
    /// the configured generator. Replay is deterministic for any worker
    /// count — the stream is a pure function of the trace bytes — so
    /// trials of a replayed cell differ only in machine-side randomness
    /// (of which there is none today: replayed trials are identical, and
    /// their merge is byte-identical at any `--jobs`).
    #[must_use]
    pub fn replayed(mut self, trace: ReplaySource) -> GridCell {
        self.replay = Some(trace);
        self
    }

    /// Tees every workload access of this cell into `recorder`. Meant
    /// for a single-cell grid: multiple recording cells would interleave
    /// their streams into one trace in completion order.
    #[must_use]
    pub fn recorded(mut self, recorder: SharedTraceWriter) -> GridCell {
        self.record = Some(recorder);
        self
    }

    /// Runs the cell sampled: functional fast-forward between detailed
    /// windows per `spec`, with counters scaled to full-run estimates
    /// (see [`Simulation::run_sampled`]). Incompatible with chaos,
    /// adaptation, replay, and recording — such a cell fails with
    /// [`SimError::Sample`] instead of running.
    #[must_use]
    pub fn sampled(mut self, spec: SampleSpec) -> GridCell {
        self.sample = Some(spec);
        self
    }

    /// Derives the cell for trial `index`: the configuration's seed is
    /// split through [`split_seed`], so every trial gets a statistically
    /// independent stream that is a pure function of (base seed, index).
    /// Trial 0 is *also* split — a grid's trials are peers, none reuses
    /// the base seed directly.
    #[must_use]
    pub fn trial(mut self, index: u64) -> GridCell {
        self.cfg.seed = split_seed(self.cfg.seed, index);
        self
    }
}

/// Why a grid cell produced no result. The failure is contained to its
/// row: the rest of the sweep completes normally.
#[derive(Debug)]
#[non_exhaustive]
pub enum CellFailure {
    /// The simulation returned an error (mis-wired configuration).
    Sim(SimError),
    /// The cell's job panicked; the message is the panic payload.
    Panicked(String),
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Sim(e) => write!(f, "simulation error: {e}"),
            CellFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl std::error::Error for CellFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CellFailure::Sim(e) => Some(e),
            CellFailure::Panicked(_) => None,
        }
    }
}

/// The outcome of one grid cell, carrying the cell it came from.
#[derive(Debug)]
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: GridCell,
    /// Its measurement, or the contained failure.
    pub outcome: Result<RunResult, CellFailure>,
}

/// Results of a grid run, in cell order (independent of worker count).
#[derive(Debug, Default)]
pub struct GridReport {
    outcomes: Vec<CellOutcome>,
}

impl GridReport {
    /// Per-cell outcomes, in the order the cells were submitted.
    pub fn outcomes(&self) -> &[CellOutcome] {
        &self.outcomes
    }

    /// Consumes the report into its per-cell outcomes.
    pub fn into_outcomes(self) -> Vec<CellOutcome> {
        self.outcomes
    }

    /// Number of cells the grid ran.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the grid was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Successful results, in cell order.
    pub fn results(&self) -> impl Iterator<Item = &RunResult> {
        self.outcomes.iter().filter_map(|o| o.outcome.as_ref().ok())
    }

    /// Failed cells as `(cell index, failure)`, in cell order.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &CellFailure)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.outcome.as_ref().err().map(|e| (i, e)))
    }

    /// Deterministically reduces the successful results into one:
    /// counters, cycles, VM exits, and telemetry all merge (see
    /// [`RunResult::merge`]), folding in cell order so the reduction is
    /// identical for any worker count. `None` if no cell succeeded.
    ///
    /// Meaningful when the cells are trials of one configuration (the
    /// label of the first successful cell is kept).
    pub fn merged(&self) -> Option<RunResult> {
        let mut it = self.results();
        let mut acc = it.next()?.clone();
        for r in it {
            acc.merge(r);
        }
        Some(acc)
    }
}

impl Simulation {
    /// Runs every cell of an experiment grid on up to `jobs` worker
    /// threads, silently. See [`Simulation::run_grid_reported`].
    pub fn run_grid(cells: &[GridCell], jobs: NonZeroUsize) -> GridReport {
        Self::run_grid_reported(cells, jobs, &Reporter::new(true))
    }

    /// Runs every cell of an experiment grid on up to `jobs` worker
    /// threads, announcing per-cell progress through `reporter`.
    ///
    /// Results come back in cell order regardless of worker count or
    /// completion order. A cell that fails (simulation error or panic)
    /// becomes a failed row in the report instead of aborting the sweep.
    pub fn run_grid_reported(
        cells: &[GridCell],
        jobs: NonZeroUsize,
        reporter: &Reporter,
    ) -> GridReport {
        let total = cells.len();
        let raw = mv_par::par_map(jobs, cells, |i, cell| {
            reporter.line(format!(
                "  [{:>3}/{total}] {} / {} (seed {})...",
                i + 1,
                cell.cfg.workload.label(),
                cell.cfg.label(),
                cell.cfg.seed
            ));
            let instr = Instruments {
                telemetry: cell.telemetry,
                profile: cell.profile,
                chaos: cell.chaos,
                adapt: cell.adapt,
                replay: cell.replay.clone(),
                record: cell.record.clone(),
                sample: cell.sample,
                ..Instruments::default()
            };
            Simulation::dispatch(&cell.cfg, cell.hw, &instr).map(|(result, _)| result)
        });
        let outcomes = cells
            .iter()
            .zip(raw)
            .map(|(cell, job)| CellOutcome {
                cell: cell.clone(),
                outcome: match job {
                    Ok(Ok(result)) => Ok(result),
                    Ok(Err(sim)) => Err(CellFailure::Sim(sim)),
                    Err(panic) => Err(CellFailure::Panicked(panic.message)),
                },
            })
            .collect();
        GridReport { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Env, GuestPaging};
    use mv_types::{PageSize, MIB};
    use mv_workloads::WorkloadKind;

    fn cell() -> GridCell {
        GridCell::new(SimConfig {
            workload: WorkloadKind::Gups,
            footprint: 4 * MIB,
            guest_paging: GuestPaging::Fixed(PageSize::Size4K),
            env: Env::native(),
            accesses: 2_000,
            warmup: 500,
            seed: 42,
        })
    }

    #[test]
    fn trial_splitting_is_pure_and_distinct() {
        let t3 = cell().trial(3);
        let t4 = cell().trial(4);
        assert_eq!(t3.cfg.seed, cell().trial(3).cfg.seed);
        assert_ne!(t3.cfg.seed, t4.cfg.seed);
        assert_ne!(t3.cfg.seed, 42, "trials never reuse the base seed");
    }

    #[test]
    fn empty_grid_reports_empty() {
        let report = Simulation::run_grid(&[], NonZeroUsize::new(4).unwrap());
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
        assert!(report.merged().is_none());
    }

    #[test]
    fn single_cell_matches_direct_run() {
        let c = cell();
        let report = Simulation::run_grid(std::slice::from_ref(&c), NonZeroUsize::new(2).unwrap());
        assert_eq!(report.len(), 1);
        let grid = report.merged().expect("cell succeeded");
        let direct = Simulation::run(&c.cfg).unwrap();
        assert_eq!(grid.counters, direct.counters);
        assert_eq!(grid.csv_row(), direct.csv_row());
    }
}
