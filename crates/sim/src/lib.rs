//! Simulation façade: wires host memory, VMM, guest OS, workloads, and the
//! MMU into runnable experiment configurations.
//!
//! A [`Simulation`] reproduces one bar of the paper's figures: a workload
//! (Table V) under a configuration (native/virtualized, guest and VMM page
//! sizes, translation mode — the `4K+2M` / `DD` / `4K+VD` labels of
//! Figures 1, 11, and 12). It drives the workload's reference stream
//! through the [`mv_core::Mmu`], services guest and nested faults through
//! the OS and VMM models, and reports counters plus the paper's
//! execution-time-overhead metric.
//!
//! # Example
//!
//! ```
//! use mv_sim::{Env, GuestPaging, SimConfig, Simulation};
//! use mv_types::{PageSize, MIB};
//! use mv_workloads::WorkloadKind;
//!
//! let cfg = SimConfig {
//!     workload: WorkloadKind::Gups,
//!     footprint: 8 * MIB,
//!     guest_paging: GuestPaging::Fixed(PageSize::Size4K),
//!     env: Env::base_virtualized(PageSize::Size4K),
//!     accesses: 20_000,
//!     warmup: 5_000,
//!     seed: 42,
//! };
//! let result = Simulation::run(&cfg)?;
//! assert!(result.overhead > 0.0, "virtualized gups pays for 2D walks");
//! # Ok::<(), mv_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The translation hot path and the machine layer must degrade via typed
// errors, never abort (tests may still unwrap freely) — the same
// discipline as mv-vmm/mv-guestos, extended here with the layer-stack
// refactor.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod grid;
pub mod machine;
mod native;
mod result;
mod run;
mod sample;

pub use config::{Env, GuestPaging, L2Strategy, SimConfig};
pub use grid::{CellFailure, CellOutcome, GridCell, GridReport};
pub use machine::{
    ExitStats, FaultService, Machine, NativeMachine, ShadowMachine, VirtualizedMachine,
};
pub use native::NativeOs;
pub use result::RunResult;
pub use run::{SimError, Simulation};
pub use sample::{SampleError, SampleParseError, SampleSpec, SampleSpecError, SampleSummary};

// Adaptive-controller vocabulary, re-exported so harness binaries can
// configure adaptive runs without naming `mv-adapt` directly.
pub use mv_adapt::{AdaptReport, AdaptSpec, ControllerConfig, ModePlan};

// Telemetry vocabulary, re-exported so harness binaries can configure
// observed runs without naming `mv-obs` directly.
pub use mv_obs::{EpochSnapshot, Telemetry, TelemetryConfig, TelemetryConfigError};

// Profiler vocabulary, re-exported so harness binaries can configure
// profiled runs without naming `mv-prof` directly.
pub use mv_prof::{Profile, ProfileConfig, WalkMatrix};

// Parallelism vocabulary, re-exported so harness binaries can drive
// grids without naming `mv-par` directly.
pub use mv_par::{default_jobs, Reporter};

// Trace vocabulary, re-exported so harness binaries can record and
// replay access streams without naming `mv-trace` directly.
pub use mv_trace::{
    write_serving, MemSink, ReplaySource, ServingParams, SharedTraceWriter, TraceError,
    TraceHeader, TraceWorkload, TraceWriter,
};
