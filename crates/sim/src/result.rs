//! Results of a simulation run.

use mv_adapt::AdaptReport;
use mv_chaos::ChaosReport;
use mv_core::MmuCounters;
use mv_obs::Telemetry;
use mv_prof::Profile;

use crate::sample::SampleSummary;

/// Measurements from one configuration run — one bar of a paper figure.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Configuration label (`4K`, `4K+2M`, `DD`, …).
    pub label: String,
    /// Workload name.
    pub workload: &'static str,
    /// Measured accesses (after warmup).
    pub accesses: u64,
    /// MMU counters over the measured window.
    pub counters: MmuCounters,
    /// Ideal (translation-free) execution cycles for the window.
    pub ideal_cycles: f64,
    /// Cycles attributable to address translation (walks, checks, L2-hit
    /// latency) plus any VM-exit cycles charged to the window.
    pub translation_cycles: f64,
    /// The paper's overhead metric: `translation_cycles / ideal_cycles`.
    pub overhead: f64,
    /// VM exits charged to the measured window (shadow paging, churn).
    pub vm_exits: u64,
    /// Nested-kind lookups and hits in the shared L2 TLB.
    pub nested_l2: (u64, u64),
    /// Walk-event telemetry over the measured window, when the run was
    /// started through [`crate::Simulation::run_observed`].
    pub telemetry: Option<Telemetry>,
    /// Walk-cost attribution profile over the measured window, when the
    /// run was started through [`crate::Simulation::run_profiled`].
    pub profile: Option<Profile>,
    /// Fault-injection outcome (survival, degradation residency, oracle
    /// checks), when the run was started through
    /// [`crate::Simulation::run_chaos`].
    pub chaos: Option<ChaosReport>,
    /// Adaptive-controller outcome (promotions, rollbacks, backoff), when
    /// the run was started through [`crate::Simulation::run_adaptive`].
    pub adapt: Option<AdaptReport>,
    /// Sampling summary, when the run was started through
    /// [`crate::Simulation::run_sampled`]. Counters and cycle totals are
    /// then full-run **estimates** scaled from the measured windows; this
    /// records the schedule and the raw measured-access denominator.
    pub sample: Option<SampleSummary>,
}

impl RunResult {
    /// TLB (L1) misses per thousand accesses.
    pub fn mpka(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.counters.l1_misses as f64 / self.accesses as f64
        }
    }

    /// Average translation cycles per TLB miss (the paper's C_n / C_v).
    pub fn cycles_per_miss(&self) -> f64 {
        self.counters.cycles_per_miss()
    }

    /// Fraction of TLB misses covered by both segments (F_DD).
    pub fn f_dd(&self) -> f64 {
        self.fraction(self.counters.cat_both)
    }

    /// Fraction covered by the VMM segment only (F_VD).
    pub fn f_vd(&self) -> f64 {
        self.fraction(self.counters.cat_vmm_only)
    }

    /// Fraction covered by the guest segment only (F_GD).
    pub fn f_gd(&self) -> f64 {
        self.fraction(self.counters.cat_guest_only)
    }

    /// Fraction covered by the native direct segment (F_DS).
    pub fn f_ds(&self) -> f64 {
        self.fraction(self.counters.ds_hits)
    }

    fn fraction(&self, n: u64) -> f64 {
        if self.counters.l1_misses == 0 {
            0.0
        } else {
            n as f64 / self.counters.l1_misses as f64
        }
    }

    /// Overhead as a percentage string (`"28.3%"`).
    pub fn overhead_pct(&self) -> String {
        format!("{:.1}%", self.overhead * 100.0)
    }

    /// Folds another run of the **same configuration** (e.g. another trial
    /// of a parallel sweep) into this one: accesses, counters, cycle
    /// totals, VM exits, and nested-L2 statistics add; the overhead metric
    /// is recomputed from the summed cycle totals (so it is the
    /// access-weighted aggregate, not a mean of ratios); telemetry merges
    /// through [`Telemetry::merge`] when both runs carried it.
    ///
    /// Every component reduction is commutative and associative except
    /// which label/workload is kept (the first operand's) — so folding in
    /// a fixed cell order yields identical bytes for any worker count.
    pub fn merge(&mut self, other: &RunResult) {
        self.accesses += other.accesses;
        self.counters.merge(&other.counters);
        self.ideal_cycles += other.ideal_cycles;
        self.translation_cycles += other.translation_cycles;
        self.overhead = mv_metrics::overhead(self.translation_cycles, self.ideal_cycles);
        self.vm_exits += other.vm_exits;
        self.nested_l2.0 += other.nested_l2.0;
        self.nested_l2.1 += other.nested_l2.1;
        match (&mut self.telemetry, &other.telemetry) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.telemetry = Some(theirs.clone()),
            (_, None) => {}
        }
        match (&mut self.profile, &other.profile) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.profile = Some(theirs.clone()),
            (_, None) => {}
        }
        match (&mut self.chaos, &other.chaos) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.chaos = Some(*theirs),
            (_, None) => {}
        }
        match (&mut self.adapt, &other.adapt) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.adapt = Some(*theirs),
            (_, None) => {}
        }
        // A merged aggregate is no longer one sampled run: the per-run
        // scale factors differ, so no single summary describes it.
        if self.sample.is_some() || other.sample.is_some() {
            self.sample = None;
        }
    }

    /// Renders this run's telemetry — and, on chaos runs, the degradation
    /// and oracle counters — as Prometheus text exposition, labeled with
    /// the run's workload and configuration. `None` when the run carried
    /// neither instrument.
    pub fn prometheus(&self) -> Option<String> {
        let labels = [("workload", self.workload), ("config", self.label.as_str())];
        let telemetry = self.telemetry.as_ref().map(|t| t.prometheus(&labels));
        let chaos = self.chaos.as_ref().map(|c| c.prometheus(&labels));
        match (telemetry, chaos) {
            (None, None) => None,
            (t, c) => Some(t.unwrap_or_default() + c.as_deref().unwrap_or_default()),
        }
    }

    /// CSV header matching [`RunResult::csv_row`], for scripting around
    /// the experiment binaries.
    pub fn csv_header() -> &'static str {
        "workload,config,accesses,overhead,mpka,cycles_per_miss,l1_misses,l2_misses,\
         guest_walk_refs,nested_walk_refs,bound_checks,translation_cycles,ideal_cycles,\
         cat_both,cat_vmm_only,cat_guest_only,cat_neither,ds_hits,escape_hits,vm_exits"
    }

    /// One CSV row of the measurement.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.6},{:.3},{:.3},{},{},{},{},{},{:.0},{:.0},{},{},{},{},{},{},{}",
            self.workload,
            self.label,
            self.accesses,
            self.overhead,
            self.mpka(),
            self.cycles_per_miss(),
            self.counters.l1_misses,
            self.counters.l2_misses,
            self.counters.guest_walk_refs,
            self.counters.nested_walk_refs,
            self.counters.bound_checks,
            self.translation_cycles,
            self.ideal_cycles,
            self.counters.cat_both,
            self.counters.cat_vmm_only,
            self.counters.cat_guest_only,
            self.counters.cat_neither,
            self.counters.ds_hits,
            self.counters.escape_hits,
            self.vm_exits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_matches_header_width() {
        let r = RunResult {
            label: "4K".into(),
            workload: "gups",
            accesses: 10,
            counters: MmuCounters::default(),
            ideal_cycles: 1.0,
            translation_cycles: 0.0,
            overhead: 0.0,
            vm_exits: 0,
            nested_l2: (0, 0),
            telemetry: None,
            profile: None,
            chaos: None,
            adapt: None,
            sample: None,
        };
        let cols = RunResult::csv_header().split(',').count();
        assert_eq!(r.csv_row().split(',').count(), cols);
    }

    #[test]
    fn prometheus_appends_chaos_counters_when_present() {
        let mut r = RunResult {
            label: "DD".into(),
            workload: "gups",
            accesses: 10,
            counters: MmuCounters::default(),
            ideal_cycles: 1.0,
            translation_cycles: 0.0,
            overhead: 0.0,
            vm_exits: 0,
            nested_l2: (0, 0),
            telemetry: None,
            profile: None,
            chaos: None,
            adapt: None,
            sample: None,
        };
        assert!(r.prometheus().is_none(), "no instruments, no exposition");
        r.chaos = Some(ChaosReport {
            oracle_checks: 10,
            residency: [8, 2, 0],
            final_level: mv_chaos::DegradeLevel::EscapeHeavy,
            ..ChaosReport::default()
        });
        let text = r.prometheus().expect("chaos alone produces exposition");
        assert!(
            text.contains("mv_degrade_level{workload=\"gups\",config=\"DD\",level=\"escape_heavy\"} 1\n"),
            "got: {text}"
        );
        assert!(text.contains("mv_oracle_checks_total{workload=\"gups\",config=\"DD\"} 10\n"));
    }

    #[test]
    fn derived_metrics() {
        let r = RunResult {
            label: "4K".into(),
            workload: "gups",
            accesses: 1000,
            counters: MmuCounters {
                l1_misses: 100,
                cat_both: 50,
                cat_vmm_only: 25,
                translation_cycles: 5000,
                ..MmuCounters::default()
            },
            ideal_cycles: 10_000.0,
            translation_cycles: 5000.0,
            overhead: 0.5,
            vm_exits: 0,
            nested_l2: (0, 0),
            telemetry: None,
            profile: None,
            chaos: None,
            adapt: None,
            sample: None,
        };
        assert!((r.mpka() - 100.0).abs() < 1e-12);
        assert!((r.cycles_per_miss() - 50.0).abs() < 1e-12);
        assert!((r.f_dd() - 0.5).abs() < 1e-12);
        assert!((r.f_vd() - 0.25).abs() < 1e-12);
        assert_eq!(r.f_gd(), 0.0);
        assert_eq!(r.overhead_pct(), "50.0%");
    }
}
