//! Minimal native OS model for the unvirtualized baselines.
//!
//! Mirrors the guest OS's demand paging and primary-region handling, but
//! over host-physical memory directly (one translation level). Used for
//! the `4K`/`2M`/`1G`/`THP` native bars and the `DS` direct-segment mode.

use mv_core::Segment;
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gva, Hpa, PageSize, Prot};

use crate::config::GuestPaging;
use crate::run::SimError;

/// Base virtual address of the native process's data arena.
const ARENA_BASE: u64 = 0x100_0000_0000;

/// A single-process native OS: physical memory, one page table, demand
/// paging, and an optional direct segment over the arena.
#[derive(Debug)]
pub struct NativeOs {
    mem: PhysMem<Hpa>,
    pt: PageTable<Gva, Hpa>,
    paging: GuestPaging,
    arena: AddrRange<Gva>,
    segment: Option<Segment<Gva, Hpa>>,
    faults: u64,
}

impl NativeOs {
    /// Boots a native system with `phys_bytes` of memory and an arena of
    /// `arena_bytes` at a fixed base.
    ///
    /// # Errors
    ///
    /// Fails if physical memory cannot hold the root page table.
    pub fn boot(
        phys_bytes: u64,
        arena_bytes: u64,
        paging: GuestPaging,
    ) -> Result<NativeOs, SimError> {
        let mut mem = PhysMem::new(phys_bytes);
        let pt = PageTable::new(&mut mem).map_err(mv_guestos::OsError::from)?;
        Ok(NativeOs {
            mem,
            pt,
            paging,
            arena: AddrRange::from_start_len(Gva::new(ARENA_BASE), arena_bytes),
            segment: None,
            faults: 0,
        })
    }

    /// The arena's base address.
    pub fn arena_base(&self) -> Gva {
        self.arena.start()
    }

    /// Establishes a direct segment over the whole arena (the `DS` mode):
    /// reserves contiguous physical backing and programs BASE/LIMIT/OFFSET.
    ///
    /// # Errors
    ///
    /// Fails if physical memory is fragmented.
    pub fn setup_direct_segment(&mut self) -> Result<Segment<Gva, Hpa>, SimError> {
        let backing = self
            .mem
            .reserve_contiguous(self.arena.len(), PageSize::Size2M)
            .map_err(mv_guestos::OsError::from)?;
        let seg = Segment::map(self.arena, backing.start());
        self.segment = Some(seg);
        Ok(seg)
    }

    /// Services a demand fault at `va` per the paging policy.
    ///
    /// # Errors
    ///
    /// Fails on out-of-memory or a fault outside the arena.
    pub fn handle_page_fault(&mut self, va: Gva) -> Result<(), SimError> {
        if !self.arena.contains(va) {
            return Err(SimError::Os(mv_guestos::OsError::SegmentationFault {
                va: va.as_u64(),
            }));
        }
        // Segment-covered pages map their segment-computed frame (used
        // only for escaped pages; normally the segment translates them).
        if let Some(seg) = self.segment {
            if let Some(pa) = seg.translate(va) {
                let va_page = Gva::new(va.as_u64() & !0xfff);
                let pa_page = Hpa::new(pa.as_u64() & !0xfff);
                self.pt
                    .map(&mut self.mem, va_page, pa_page, PageSize::Size4K, Prot::RW)
                    .map_err(mv_guestos::OsError::from)?;
                self.faults += 1;
                return Ok(());
            }
        }
        let size = match self.paging {
            GuestPaging::Fixed(s) => s,
            GuestPaging::Thp => {
                // Try a huge page when the arena covers the aligned region.
                let huge_va = Gva::new(va.as_u64() & !PageSize::Size2M.offset_mask());
                let huge = AddrRange::from_start_len(huge_va, PageSize::Size2M.bytes());
                if self.arena.contains_range(&huge) {
                    if let Ok(frame) = self.mem.alloc(PageSize::Size2M) {
                        self.pt
                            .map(&mut self.mem, huge_va, frame, PageSize::Size2M, Prot::RW)
                            .map_err(mv_guestos::OsError::from)?;
                        self.faults += 1;
                        return Ok(());
                    }
                }
                PageSize::Size4K
            }
        };
        let va_page = Gva::new(va.as_u64() & !size.offset_mask());
        let frame = self.mem.alloc(size).map_err(mv_guestos::OsError::from)?;
        self.pt
            .map(&mut self.mem, va_page, frame, size, Prot::RW)
            .map_err(mv_guestos::OsError::from)?;
        self.faults += 1;
        Ok(())
    }

    /// Demand faults serviced.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Borrows the page table and memory for an MMU context.
    pub fn pt_and_mem(&self) -> (&PageTable<Gva, Hpa>, &PhysMem<Hpa>) {
        (&self.pt, &self.mem)
    }

    /// Physical memory (read-only).
    pub fn mem(&self) -> &PhysMem<Hpa> {
        &self.mem
    }

    /// Physical memory, mutably (fault injection, hotplug experiments).
    pub fn mem_mut(&mut self) -> &mut PhysMem<Hpa> {
        &mut self.mem
    }

    /// The direct segment, if established.
    pub fn segment(&self) -> Option<Segment<Gva, Hpa>> {
        self.segment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::MIB;

    #[test]
    fn demand_faults_map_pages() {
        let mut os = NativeOs::boot(64 * MIB, 8 * MIB, GuestPaging::Fixed(PageSize::Size4K))
            .unwrap();
        let va = os.arena_base();
        os.handle_page_fault(va).unwrap();
        let (pt, mem) = os.pt_and_mem();
        assert!(pt.translate(mem, va).is_some());
        assert_eq!(os.fault_count(), 1);
    }

    #[test]
    fn fault_outside_arena_is_rejected() {
        let mut os = NativeOs::boot(64 * MIB, MIB, GuestPaging::Fixed(PageSize::Size4K)).unwrap();
        assert!(os.handle_page_fault(Gva::new(0x1000)).is_err());
    }

    #[test]
    fn thp_prefers_huge_pages() {
        let mut os = NativeOs::boot(64 * MIB, 8 * MIB, GuestPaging::Thp).unwrap();
        let va = os.arena_base();
        os.handle_page_fault(va).unwrap();
        let (pt, mem) = os.pt_and_mem();
        assert_eq!(pt.translate(mem, va).unwrap().size, PageSize::Size2M);
    }

    #[test]
    fn direct_segment_covers_the_arena() {
        let mut os = NativeOs::boot(64 * MIB, 8 * MIB, GuestPaging::Fixed(PageSize::Size4K))
            .unwrap();
        let seg = os.setup_direct_segment().unwrap();
        assert!(seg.contains(os.arena_base()));
        assert!(seg.contains(Gva::new(os.arena_base().as_u64() + 8 * MIB - 1)));
    }
}
