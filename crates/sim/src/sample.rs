//! Sampled execution: fast-forward between detailed measurement windows.
//!
//! A full-fidelity run prices every access. Sampling trades a bounded
//! accuracy loss for wall-clock: the run alternates short **detailed
//! windows** (the normal [`Mmu::access`](mv_core::Mmu::access) path, all
//! counters and costs) with long **functional gaps** driven through
//! [`Mmu::access_functional`](mv_core::Mmu::access_functional) — TLB
//! state is kept warm and faults are still serviced, but no walk is
//! priced, no counters move, and no walk events fire. Window-measured
//! counters are then scaled by `configured_accesses / measured_accesses`
//! to estimate the full run (the Virtuoso-style functional fast-forward;
//! arXiv 2403.04635).
//!
//! The functional path cannot keep the walk caches (PWCs, nested/mid
//! TLBs, PTE cache) warm — only the L1/L2 TLBs. A configurable **warm-up
//! tail** of detailed-but-unmeasured accesses
//! ([`Mmu::access_warm`](mv_core::Mmu::access_warm)) at the end of each
//! gap re-heats those structures before the next window opens, so the
//! window measures steady-state miss costs rather than cold-cache
//! transients.

use std::fmt;
use std::num::ParseIntError;

/// Sampling schedule: after the run's warmup, the access stream is tiled
/// into intervals of `interval` accesses; the first `window` accesses of
/// each interval run detailed (measured), the last `warmup` accesses run
/// detailed-unmeasured (cache re-heat), and the middle runs functional.
///
/// `window = interval` degenerates to a full-fidelity run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Detailed (measured) accesses at the head of each interval.
    pub window: u64,
    /// Interval length in accesses (window + gap).
    pub interval: u64,
    /// Detailed-unmeasured accesses at the tail of each interval's gap,
    /// re-heating the walk caches before the next window.
    pub warmup: u64,
}

/// Why a [`SampleSpec`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SampleSpecError {
    /// `window` is zero — nothing would ever be measured, leaving every
    /// counter at zero and the scale factor undefined.
    ZeroWindow,
    /// `interval` does not exceed `window` — the schedule must contain a
    /// gap; for a full-fidelity run simply omit sampling.
    WindowFillsInterval,
    /// `warmup` exceeds the gap (`interval - window`) — the re-heat tail
    /// cannot be longer than the gap it sits in.
    WarmupExceedsGap,
}

impl fmt::Display for SampleSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleSpecError::ZeroWindow => {
                write!(f, "sample window must be at least 1 access")
            }
            SampleSpecError::WindowFillsInterval => {
                write!(
                    f,
                    "sample interval must exceed the window (omit sampling for a full run)"
                )
            }
            SampleSpecError::WarmupExceedsGap => {
                write!(f, "sample warmup must fit in the gap (interval - window)")
            }
        }
    }
}

impl std::error::Error for SampleSpecError {}

/// How a [`SampleSpec`] string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SampleParseError {
    /// Not three `:`-separated fields.
    Shape,
    /// A field was not an unsigned integer.
    Int(ParseIntError),
    /// The fields parsed but the spec is invalid.
    Spec(SampleSpecError),
}

impl fmt::Display for SampleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleParseError::Shape => {
                write!(f, "expected WINDOW:INTERVAL:WARMUP (three integers)")
            }
            SampleParseError::Int(e) => write!(f, "bad integer: {e}"),
            SampleParseError::Spec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SampleParseError {}

/// Why a sampled run could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SampleError {
    /// The schedule itself is invalid.
    Spec(SampleSpecError),
    /// Sampling was combined with an instrument that needs every access
    /// detailed (chaos, the adaptive controller, trace replay/recording,
    /// or reference pacing).
    Incompatible(&'static str),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Spec(e) => write!(f, "{e}"),
            SampleError::Incompatible(what) => {
                write!(f, "sampling is incompatible with {what} (every access must be detailed)")
            }
        }
    }
}

impl std::error::Error for SampleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SampleError::Spec(e) => Some(e),
            SampleError::Incompatible(_) => None,
        }
    }
}

/// What the driver does with one span of accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Full detailed accesses, counted and priced.
    Detailed,
    /// Detailed accesses with measurement suppressed (cache re-heat).
    Warm,
    /// Functional-only accesses (TLB state, no pricing).
    Functional,
}

impl SampleSpec {
    /// Validates the schedule's invariants.
    ///
    /// # Errors
    ///
    /// See [`SampleSpecError`] for each rejected shape.
    pub fn validate(&self) -> Result<(), SampleSpecError> {
        if self.window == 0 {
            return Err(SampleSpecError::ZeroWindow);
        }
        if self.interval <= self.window {
            return Err(SampleSpecError::WindowFillsInterval);
        }
        if self.warmup > self.interval - self.window {
            return Err(SampleSpecError::WarmupExceedsGap);
        }
        Ok(())
    }

    /// Parses `"WINDOW:INTERVAL:WARMUP"` (e.g. `2000:20000:500`) and
    /// validates it.
    ///
    /// # Errors
    ///
    /// Returns [`SampleParseError`] on the wrong shape, a non-integer
    /// field, or an invalid schedule.
    pub fn parse(s: &str) -> Result<SampleSpec, SampleParseError> {
        let mut parts = s.split(':');
        let (Some(w), Some(i), Some(u), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(SampleParseError::Shape);
        };
        let spec = SampleSpec {
            window: w.trim().parse().map_err(SampleParseError::Int)?,
            interval: i.trim().parse().map_err(SampleParseError::Int)?,
            warmup: u.trim().parse().map_err(SampleParseError::Int)?,
        };
        spec.validate().map_err(SampleParseError::Spec)?;
        Ok(spec)
    }

    /// The phase at offset `off` into the measured region, and the
    /// (exclusive) offset at which that phase ends. Requires a validated
    /// spec (`interval > 0`).
    pub(crate) fn phase_at(&self, off: u64) -> (Phase, u64) {
        let p = off % self.interval;
        let start = off - p;
        if p < self.window {
            (Phase::Detailed, start + self.window)
        } else if p >= self.interval - self.warmup {
            (Phase::Warm, start + self.interval)
        } else {
            (Phase::Functional, start + self.interval - self.warmup)
        }
    }
}

/// What a sampled run measured, attached to the
/// [`RunResult`](crate::RunResult). The result's counters are already
/// scaled to full-run estimates; this records the raw denominator so the
/// scale factor is auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSummary {
    /// The schedule the run used.
    pub spec: SampleSpec,
    /// Detailed accesses actually measured (the scaling denominator).
    pub measured_accesses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_each_bad_shape() {
        let ok = SampleSpec {
            window: 100,
            interval: 1_000,
            warmup: 50,
        };
        assert_eq!(ok.validate(), Ok(()));
        assert_eq!(
            SampleSpec { window: 0, ..ok }.validate(),
            Err(SampleSpecError::ZeroWindow)
        );
        assert_eq!(
            SampleSpec {
                window: 1_000,
                ..ok
            }
            .validate(),
            Err(SampleSpecError::WindowFillsInterval)
        );
        assert_eq!(
            SampleSpec { warmup: 901, ..ok }.validate(),
            Err(SampleSpecError::WarmupExceedsGap)
        );
        // Warmup may fill the whole gap (every gap access re-heats).
        assert_eq!(SampleSpec { warmup: 900, ..ok }.validate(), Ok(()));
    }

    #[test]
    fn parse_round_trips_and_rejects() {
        assert_eq!(
            SampleSpec::parse("2000:20000:500"),
            Ok(SampleSpec {
                window: 2_000,
                interval: 20_000,
                warmup: 500,
            })
        );
        assert_eq!(SampleSpec::parse("2000:20000"), Err(SampleParseError::Shape));
        assert_eq!(
            SampleSpec::parse("1:2:3:4"),
            Err(SampleParseError::Shape)
        );
        assert!(matches!(
            SampleSpec::parse("a:2:3"),
            Err(SampleParseError::Int(_))
        ));
        assert_eq!(
            SampleSpec::parse("0:100:0"),
            Err(SampleParseError::Spec(SampleSpecError::ZeroWindow))
        );
    }

    #[test]
    fn phases_tile_the_stream_exactly() {
        let spec = SampleSpec {
            window: 3,
            interval: 10,
            warmup: 2,
        };
        // Walk 3 intervals phase by phase and record each span.
        let mut spans = Vec::new();
        let mut off = 0u64;
        while off < 30 {
            let (phase, end) = spec.phase_at(off);
            assert!(end > off, "phases advance");
            spans.push((phase, off, end.min(30)));
            off = end;
        }
        assert_eq!(
            spans,
            vec![
                (Phase::Detailed, 0, 3),
                (Phase::Functional, 3, 8),
                (Phase::Warm, 8, 10),
                (Phase::Detailed, 10, 13),
                (Phase::Functional, 13, 18),
                (Phase::Warm, 18, 20),
                (Phase::Detailed, 20, 23),
                (Phase::Functional, 23, 28),
                (Phase::Warm, 28, 30),
            ]
        );
        // A mid-span query reports the same span end.
        assert_eq!(spec.phase_at(1), (Phase::Detailed, 3));
        assert_eq!(spec.phase_at(5), (Phase::Functional, 8));
        assert_eq!(spec.phase_at(9), (Phase::Warm, 10));
    }

    #[test]
    fn zero_warmup_gap_is_all_functional() {
        let spec = SampleSpec {
            window: 2,
            interval: 6,
            warmup: 0,
        };
        assert_eq!(spec.phase_at(2), (Phase::Functional, 6));
        assert_eq!(spec.phase_at(5), (Phase::Functional, 6));
        assert_eq!(spec.phase_at(6), (Phase::Detailed, 8));
    }
}
