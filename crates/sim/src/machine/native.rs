//! Native execution (± direct segment): the paper's `4K`/`2M`/`1G`/`THP`
//! and `DS` bars.

use mv_adapt::ModePlan;
use mv_chaos::DegradeLevel;
use mv_core::{
    LayerStack, MemoryContext, Mmu, MmuConfig, Segment, TranslationFault, TranslationMode,
};
use mv_types::rng::StdRng;
use mv_types::{AddrRange, Gva, Hpa, PageSize, MIB};

use crate::config::{Env, GuestPaging, SimConfig};
use crate::machine::degrade::guard_filter;
use crate::machine::{mmu_for, ExitStats, FaultService, Machine};
use crate::native::NativeOs;
use crate::run::SimError;

/// Native execution over one page table (and optionally one direct
/// segment): a single translation dimension, no hypervisor.
#[derive(Debug)]
pub struct NativeMachine {
    os: NativeOs,
    base: u64,
    stack: LayerStack,
}

impl Machine for NativeMachine {
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
        let Env::Native { direct_segment } = cfg.env else {
            unreachable!("dispatched on env");
        };
        let phys = cfg.footprint + cfg.footprint / 2 + 64 * MIB;
        let mut os = NativeOs::boot(phys, cfg.footprint, cfg.guest_paging)?;
        let mode = if direct_segment {
            TranslationMode::NativeDirect
        } else {
            TranslationMode::BaseNative
        };
        // The single layer of the native stack drives the build: a
        // direct-segment layer programs its registers, a paging layer gets
        // its table pre-populated.
        let stack = cfg.env.layer_stack(cfg.guest_paging);
        let layer = stack.layers()[0];
        let mut mmu = mmu_for(hw, mode);
        if layer.needs_escape_handling() {
            let seg = os.setup_direct_segment()?;
            mmu.set_native_segment(seg);
        }

        let base = os.arena_base().as_u64();
        // Big-memory applications initialize their dataset up front;
        // measuring from a populated arena gives the steady state the
        // paper reports.
        if layer.mode.is_paging() {
            let step = match cfg.guest_paging {
                GuestPaging::Fixed(s) => s.bytes(),
                GuestPaging::Thp => PageSize::Size2M.bytes(),
            };
            let mut va = base;
            while va < base + cfg.footprint {
                os.handle_page_fault(Gva::new(va))?;
                va += step;
            }
        }
        Ok((NativeMachine { os, base, stack }, mmu))
    }

    fn layer_stack(&self) -> LayerStack {
        self.stack
    }

    fn arena_base(&self) -> u64 {
        self.base
    }

    fn asid(&self) -> u16 {
        0
    }

    fn ctx(&mut self) -> MemoryContext<'_> {
        MemoryContext::native(self.os.pt_and_mem())
    }

    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
        match fault {
            TranslationFault::GuestNotMapped { gva } => {
                self.os.handle_page_fault(gva)?;
                Ok(FaultService::Serviced)
            }
            _ => Ok(FaultService::Unserviceable),
        }
    }

    /// Native runs do not model allocation churn: the paper's native bars
    /// measure translation only, and churn is a property of the guest OS
    /// models. The shared schedule still ticks (identically across
    /// machines); this machine just has nothing to do on it.
    fn churn_event(&mut self, _mmu: &mut Mmu) -> Result<(), SimError> {
        Ok(())
    }

    fn window_open(&mut self) {}

    fn exit_stats(&self) -> ExitStats {
        ExitStats::default()
    }

    fn chaos_frame_loss(&mut self, draw: u64) -> u64 {
        let range = AddrRange::new(Hpa::ZERO, Hpa::new(self.os.mem().size_bytes()));
        let n = 1 + (draw % 4) as usize;
        let mut rng = StdRng::seed_from_u64(draw);
        self.os
            .mem_mut()
            .inject_bad_frames(&mut rng, &range, n)
            .map_or(0, |lost| lost.len() as u64)
    }

    fn chaos_frag_storm(&mut self, draw: u64) -> u64 {
        // Another tenant grabs scattered frames and never returns them.
        let n = 2 + draw % 6;
        let mut taken = 0;
        for _ in 0..n {
            if self.os.mem_mut().alloc(PageSize::Size4K).is_err() {
                break;
            }
            taken += 1;
        }
        taken
    }

    fn segment_layers(&self) -> [bool; 3] {
        [self.os.segment().is_some(), false, false]
    }

    fn apply_plan(&mut self, mmu: &mut Mmu, from: &ModePlan, to: &ModePlan, draw: u64) -> bool {
        let Some(seg) = self.os.segment() else {
            return false;
        };
        if from.level(0) == to.level(0) {
            return false;
        }
        mmu.mode_switch(|ms| match to.level(0) {
            DegradeLevel::Direct => {
                ms.set_guest_escape_filter(None);
                ms.set_native_segment(seg);
            }
            DegradeLevel::EscapeHeavy => {
                let range = seg.range();
                ms.set_guest_escape_filter(Some(guard_filter(
                    None,
                    range.start().as_u64(),
                    range.len(),
                    draw,
                )));
                ms.set_native_segment(seg);
            }
            DegradeLevel::Paging => {
                ms.set_guest_escape_filter(None);
                ms.set_native_segment(Segment::nullified());
            }
        });
        true
    }

    fn reference_translate(&self, va: Gva) -> Option<u64> {
        // Page table first: escaped and pre-populated pages live there (at
        // their segment-computed frames when a segment exists), so the
        // table is authoritative wherever it has an entry.
        let (pt, mem) = self.os.pt_and_mem();
        if let Some(t) = pt.translate(mem, va) {
            return Some(t.pa.as_u64());
        }
        self.os
            .segment()
            .and_then(|s| s.translate(va))
            .map(|pa| pa.as_u64())
    }
}
