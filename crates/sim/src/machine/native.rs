//! Native execution (± direct segment): the paper's `4K`/`2M`/`1G`/`THP`
//! and `DS` bars.

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_types::{Gva, PageSize, MIB};

use crate::config::{Env, GuestPaging, SimConfig};
use crate::machine::{mmu_for, ExitStats, FaultService, Machine};
use crate::native::NativeOs;
use crate::run::SimError;

/// Native execution over one page table (and optionally one direct
/// segment): a single translation dimension, no hypervisor.
#[derive(Debug)]
pub struct NativeMachine {
    os: NativeOs,
    base: u64,
}

impl Machine for NativeMachine {
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
        let Env::Native { direct_segment } = cfg.env else {
            unreachable!("dispatched on env");
        };
        let phys = cfg.footprint + cfg.footprint / 2 + 64 * MIB;
        let mut os = NativeOs::boot(phys, cfg.footprint, cfg.guest_paging)?;
        let mut mmu = mmu_for(
            hw,
            if direct_segment {
                TranslationMode::NativeDirect
            } else {
                TranslationMode::BaseNative
            },
        );
        if direct_segment {
            let seg = os.setup_direct_segment()?;
            mmu.set_native_segment(seg);
        }

        let base = os.arena_base().as_u64();
        // Big-memory applications initialize their dataset up front;
        // measuring from a populated arena gives the steady state the
        // paper reports.
        if !direct_segment {
            let step = match cfg.guest_paging {
                GuestPaging::Fixed(s) => s.bytes(),
                GuestPaging::Thp => PageSize::Size2M.bytes(),
            };
            let mut va = base;
            while va < base + cfg.footprint {
                os.handle_page_fault(Gva::new(va))?;
                va += step;
            }
        }
        Ok((NativeMachine { os, base }, mmu))
    }

    fn arena_base(&self) -> u64 {
        self.base
    }

    fn asid(&self) -> u16 {
        0
    }

    fn ctx(&mut self) -> MemoryContext<'_> {
        MemoryContext::native(self.os.pt_and_mem())
    }

    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
        match fault {
            TranslationFault::GuestNotMapped { gva } => {
                self.os.handle_page_fault(gva)?;
                Ok(FaultService::Serviced)
            }
            _ => Ok(FaultService::Unserviceable),
        }
    }

    /// Native runs do not model allocation churn: the paper's native bars
    /// measure translation only, and churn is a property of the guest OS
    /// models. The shared schedule still ticks (identically across
    /// machines); this machine just has nothing to do on it.
    fn churn_event(&mut self, _mmu: &mut Mmu) -> Result<(), SimError> {
        Ok(())
    }

    fn window_open(&mut self) {}

    fn exit_stats(&self) -> ExitStats {
        ExitStats::default()
    }
}
