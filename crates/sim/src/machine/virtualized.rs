//! Hardware nested paging in all four translation modes: the paper's
//! `4K+4K` … `1G+1G` base bars and the proposed `VD`/`GD`/`DD` modes.

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::{AddrRange, Gpa, Gva, PageSize, Prot, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm, VM_EXIT_CYCLES};

use crate::config::{Env, GuestPaging, SimConfig};
use crate::machine::{mmu_for, ExitStats, FaultService, Machine, CHURN_REGION};
use crate::run::SimError;

/// A guest OS running over hardware nested paging, with the translation
/// mode's segments programmed at build time.
#[derive(Debug)]
pub struct VirtualizedMachine {
    vmm: Vmm,
    vm: mv_vmm::VmId,
    guest: GuestOs,
    pid: u32,
    base: u64,
    churn_base: Gva,
    churn_cursor: u64,
    exits_at_reset: u64,
}

impl Machine for VirtualizedMachine {
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
        let Env::Virtualized { nested, mode } = cfg.env else {
            unreachable!("dispatched on env");
        };
        let (mut vmm, vm, mut guest, pid, base) = build_guest(cfg, nested, mode)?;
        let mut mmu = mmu_for(hw, mode);
        if matches!(mode, TranslationMode::GuestDirect | TranslationMode::DualDirect) {
            let seg = guest.setup_guest_segment(pid)?;
            mmu.set_guest_segment(seg);
        }
        if matches!(mode, TranslationMode::VmmDirect | TranslationMode::DualDirect) {
            let span = guest.mem().size_bytes();
            let seg = vmm.create_vmm_segment(
                vm,
                AddrRange::new(Gpa::ZERO, Gpa::new(span)),
                SegmentOptions::default(),
            )?;
            mmu.set_vmm_segment(seg);
        }

        // Steady state: populate the guest page table (unless the guest
        // segment covers the arena) and the nested backing (unless the VMM
        // segment does).
        let guest_seg_covers = matches!(
            mode,
            TranslationMode::GuestDirect | TranslationMode::DualDirect
        );
        if !guest_seg_covers {
            guest.populate(pid, Gva::new(base), cfg.footprint)?;
        }
        if !matches!(mode, TranslationMode::VmmDirect | TranslationMode::DualDirect) {
            let span = guest.mem().size_bytes();
            vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(span)))?;
        }

        let churn_base = guest.mmap(pid, CHURN_REGION, Prot::RW)?;
        Ok((
            VirtualizedMachine {
                vmm,
                vm,
                guest,
                pid,
                base,
                churn_base,
                churn_cursor: 0,
                exits_at_reset: 0,
            },
            mmu,
        ))
    }

    fn arena_base(&self) -> u64 {
        self.base
    }

    fn asid(&self) -> u16 {
        self.pid as u16
    }

    fn ctx(&mut self) -> MemoryContext<'_> {
        MemoryContext::virtualized(
            self.guest.pt_and_mem(self.pid),
            self.vmm.npt_and_hmem(self.vm),
        )
    }

    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
        match fault {
            TranslationFault::GuestNotMapped { gva } => {
                self.guest.handle_page_fault(self.pid, gva)?;
                Ok(FaultService::Serviced)
            }
            TranslationFault::NestedNotMapped { gpa, .. } => {
                self.vmm.handle_nested_fault(self.vm, gpa)?;
                Ok(FaultService::Serviced)
            }
            _ => Ok(FaultService::Unserviceable),
        }
    }

    /// One allocation-churn event: alternately map and unmap pages of the
    /// churn region, as a heap allocator would.
    fn churn_event(&mut self, mmu: &mut Mmu) -> Result<(), SimError> {
        let va = Gva::new(self.churn_base.as_u64() + (self.churn_cursor % CHURN_REGION));
        self.churn_cursor += PageSize::Size4K.bytes();
        if let Some((va_page, _)) = self.guest.unmap_page(self.pid, va)? {
            mmu.invalidate_page(self.pid as u16, va_page);
        } else {
            self.guest.handle_page_fault(self.pid, va)?;
        }
        Ok(())
    }

    fn window_open(&mut self) {
        self.exits_at_reset = self.vmm.vm_exits(self.vm);
    }

    fn exit_stats(&self) -> ExitStats {
        let vm_exits = self.vmm.vm_exits(self.vm) - self.exits_at_reset;
        ExitStats {
            cycles: vm_exits as f64 * VM_EXIT_CYCLES as f64,
            vm_exits,
        }
    }
}

/// Builds the virtualized stack: host, VM, guest OS, and one process with
/// the workload arena mapped (as a primary region when the mode uses a
/// guest segment). Shared with [`super::ShadowMachine`].
pub(crate) fn build_guest(
    cfg: &SimConfig,
    nested: PageSize,
    mode: TranslationMode,
) -> Result<(Vmm, mv_vmm::VmId, GuestOs, u32, u64), SimError> {
    let installed = cfg.footprint + cfg.footprint / 2 + 96 * MIB;
    // Nested backing is allocated at the VMM page granularity, so the host
    // must hold the guest span rounded up to whole nested pages (plus the
    // VMM-segment copy and table slack).
    let rounded = installed.next_multiple_of(nested.bytes());
    let host = 2 * rounded + 128 * MIB;
    let mut vmm = Vmm::new(host);
    let vm = vmm.create_vm(VmConfig::new(installed, nested));
    let mut guest = GuestOs::boot(GuestConfig::small(installed));
    let policy = match cfg.guest_paging {
        GuestPaging::Fixed(s) => PageSizePolicy::Fixed(s),
        GuestPaging::Thp => PageSizePolicy::Thp,
    };
    let pid = guest.create_process(policy);
    let base = if matches!(
        mode,
        TranslationMode::GuestDirect | TranslationMode::DualDirect
    ) {
        guest.create_primary_region(pid, cfg.footprint)?
    } else {
        guest.mmap(pid, cfg.footprint, Prot::RW)?
    };
    Ok((vmm, vm, guest, pid, base.as_u64()))
}
