//! Hardware nested paging in all four translation modes: the paper's
//! `4K+4K` … `1G+1G` base bars and the proposed `VD`/`GD`/`DD` modes.

use mv_adapt::ModePlan;
use mv_chaos::DegradeLevel;
use mv_core::{
    LayerStack, MemoryContext, Mmu, MmuConfig, Segment, TranslationFault, TranslationMode,
};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::rng::StdRng;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm, VM_EXIT_CYCLES};

use crate::config::{Env, GuestPaging, SimConfig};
use crate::machine::degrade::guard_filter;
use crate::machine::{mmu_for, ExitStats, FaultService, Machine, CHURN_REGION};
use crate::run::SimError;

/// A guest OS running over hardware nested paging, with the translation
/// mode's segments programmed at build time.
#[derive(Debug)]
pub struct VirtualizedMachine {
    vmm: Vmm,
    vm: mv_vmm::VmId,
    guest: GuestOs,
    pid: u32,
    base: u64,
    churn_base: Gva,
    churn_cursor: u64,
    exits_at_reset: u64,
    stack: LayerStack,
}

impl Machine for VirtualizedMachine {
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
        let Env::Virtualized { nested, mode } = cfg.env else {
            unreachable!("dispatched on env");
        };
        let (mut vmm, vm, mut guest, pid, base) = build_guest(cfg, nested, mode)?;
        let mut mmu = mmu_for(hw, mode);
        // The mode's layer stack dictates the build: each direct-segment
        // layer gets its registers programmed, and each paging layer gets
        // its table pre-populated to steady state.
        let [guest_layer, host_layer] = stack_layers(mode.stack());
        if guest_layer.needs_escape_handling() {
            let seg = guest.setup_guest_segment(pid)?;
            mmu.set_guest_segment(seg);
        }
        if host_layer.needs_escape_handling() {
            let span = guest.mem().size_bytes();
            let seg = vmm.create_vmm_segment(
                vm,
                AddrRange::new(Gpa::ZERO, Gpa::new(span)),
                SegmentOptions::default(),
            )?;
            mmu.set_vmm_segment(seg);
        }
        if guest_layer.mode.is_paging() {
            guest.populate(pid, Gva::new(base), cfg.footprint)?;
        }
        if host_layer.mode.is_paging() {
            let span = guest.mem().size_bytes();
            vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(span)))?;
        }

        let churn_base = guest.mmap(pid, CHURN_REGION, Prot::RW)?;
        Ok((
            VirtualizedMachine {
                vmm,
                vm,
                guest,
                pid,
                base,
                churn_base,
                churn_cursor: 0,
                exits_at_reset: 0,
                stack: cfg.env.layer_stack(cfg.guest_paging),
            },
            mmu,
        ))
    }

    fn layer_stack(&self) -> LayerStack {
        self.stack
    }

    fn arena_base(&self) -> u64 {
        self.base
    }

    fn asid(&self) -> u16 {
        self.pid as u16
    }

    fn ctx(&mut self) -> MemoryContext<'_> {
        MemoryContext::virtualized(
            self.guest.pt_and_mem(self.pid),
            self.vmm.npt_and_hmem(self.vm),
        )
    }

    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
        match fault {
            TranslationFault::GuestNotMapped { gva } => {
                self.guest.handle_page_fault(self.pid, gva)?;
                Ok(FaultService::Serviced)
            }
            TranslationFault::NestedNotMapped { gpa, .. } => {
                self.vmm.handle_nested_fault(self.vm, gpa)?;
                Ok(FaultService::Serviced)
            }
            _ => Ok(FaultService::Unserviceable),
        }
    }

    /// One allocation-churn event: alternately map and unmap pages of the
    /// churn region, as a heap allocator would.
    fn churn_event(&mut self, mmu: &mut Mmu) -> Result<(), SimError> {
        let va = Gva::new(self.churn_base.as_u64() + (self.churn_cursor % CHURN_REGION));
        self.churn_cursor += PageSize::Size4K.bytes();
        if let Some((va_page, _)) = self.guest.unmap_page(self.pid, va)? {
            mmu.invalidate_page(self.pid as u16, va_page);
        } else {
            self.guest.handle_page_fault(self.pid, va)?;
        }
        Ok(())
    }

    fn window_open(&mut self) {
        self.exits_at_reset = self.vmm.vm_exits(self.vm);
    }

    fn exit_stats(&self) -> ExitStats {
        let vm_exits = self.vmm.vm_exits(self.vm) - self.exits_at_reset;
        ExitStats {
            cycles: vm_exits as f64 * VM_EXIT_CYCLES as f64,
            vm_exits,
        }
    }

    fn chaos_frame_loss(&mut self, draw: u64) -> u64 {
        let range = AddrRange::new(Hpa::ZERO, Hpa::new(self.vmm.hmem().size_bytes()));
        let n = 1 + (draw % 4) as usize;
        let mut rng = StdRng::seed_from_u64(draw);
        self.vmm
            .hmem_mut()
            .inject_bad_frames(&mut rng, &range, n)
            .map_or(0, |lost| lost.len() as u64)
    }

    fn chaos_frag_storm(&mut self, draw: u64) -> u64 {
        let n = 2 + draw % 6;
        let mut taken = 0;
        for _ in 0..n {
            if self.vmm.hmem_mut().alloc(PageSize::Size4K).is_err() {
                break;
            }
            taken += 1;
        }
        taken
    }

    fn chaos_spurious_exit(&mut self) {
        let _ = self.vmm.record_spurious_exit(self.vm);
    }

    fn segment_layers(&self) -> [bool; 3] {
        let [guest_layer, host_layer] = stack_layers(self.stack);
        [
            guest_layer.needs_escape_handling()
                && self.guest.process(self.pid).segment().is_some(),
            host_layer.needs_escape_handling() && self.vmm.vm(self.vm).segment().is_some(),
            false,
        ]
    }

    fn apply_plan(&mut self, mmu: &mut Mmu, from: &ModePlan, to: &ModePlan, draw: u64) -> bool {
        let seg_layers = self.segment_layers();
        if !(0..2).any(|k| seg_layers[k] && from.level(k) != to.level(k)) {
            return false;
        }
        let guest_seg = seg_layers[0]
            .then(|| self.guest.process(self.pid).segment())
            .flatten();
        let vmm_seg = seg_layers[1].then(|| self.vmm.vm(self.vm).segment()).flatten();
        // The VM's authoritative filter: direct operation on the host layer
        // restores it as-is, escape-heavy extends it — bad frames must keep
        // escaping either way.
        let vm_filter = self.vmm.vm(self.vm).escape_filter().cloned();
        mmu.mode_switch(|ms| {
            if let Some(seg) = guest_seg {
                if from.level(0) != to.level(0) {
                    match to.level(0) {
                        DegradeLevel::Direct => {
                            ms.set_guest_escape_filter(None);
                            ms.set_guest_segment(seg);
                        }
                        DegradeLevel::EscapeHeavy => {
                            let range = seg.range();
                            ms.set_guest_escape_filter(Some(guard_filter(
                                None,
                                range.start().as_u64(),
                                range.len(),
                                draw,
                            )));
                            ms.set_guest_segment(seg);
                        }
                        DegradeLevel::Paging => {
                            ms.set_guest_escape_filter(None);
                            ms.set_guest_segment(Segment::nullified());
                        }
                    }
                }
            }
            if let Some(seg) = vmm_seg {
                if from.level(1) != to.level(1) {
                    match to.level(1) {
                        DegradeLevel::Direct => {
                            ms.set_vmm_escape_filter(vm_filter.clone());
                            ms.set_vmm_segment(seg);
                        }
                        DegradeLevel::EscapeHeavy => {
                            let range = seg.range();
                            ms.set_vmm_escape_filter(Some(guard_filter(
                                vm_filter.clone(),
                                range.start().as_u64(),
                                range.len(),
                                draw,
                            )));
                            ms.set_vmm_segment(seg);
                        }
                        DegradeLevel::Paging => {
                            ms.set_vmm_escape_filter(None);
                            ms.set_vmm_segment(Segment::nullified());
                        }
                    }
                }
            }
        });
        true
    }

    fn reference_translate(&self, va: Gva) -> Option<u64> {
        // Guest dimension: guest page table first (escaped pages map their
        // segment-computed gpa there), then guest-segment arithmetic.
        let (gpt, gmem) = self.guest.pt_and_mem(self.pid);
        let gpa = gpt.translate(gmem, va).map(|t| t.pa).or_else(|| {
            self.guest
                .process(self.pid)
                .segment()
                .and_then(|s| s.translate(va))
        })?;
        // Nested dimension: nested page table first, then VMM-segment
        // arithmetic.
        let (npt, hmem) = self.vmm.npt_and_hmem(self.vm);
        npt.translate(hmem, gpa)
            .map(|t| t.pa.as_u64())
            .or_else(|| {
                self.vmm
                    .vm(self.vm)
                    .segment()
                    .and_then(|s| s.translate(gpa))
                    .map(|h| h.as_u64())
            })
    }
}

/// Splits a virtualized mode's 2-deep layer stack into its guest and host
/// layers.
fn stack_layers(stack: LayerStack) -> [mv_core::TranslationLayer; 2] {
    match *stack.layers() {
        [g, h] => [g, h],
        _ => unreachable!("virtualized modes build 2-layer stacks"),
    }
}

/// Builds the virtualized stack: host, VM, guest OS, and one process with
/// the workload arena mapped (as a primary region when the mode uses a
/// guest segment). Shared with [`super::ShadowMachine`].
pub(crate) fn build_guest(
    cfg: &SimConfig,
    nested: PageSize,
    mode: TranslationMode,
) -> Result<(Vmm, mv_vmm::VmId, GuestOs, u32, u64), SimError> {
    let installed = cfg.footprint + cfg.footprint / 2 + 96 * MIB;
    // Nested backing is allocated at the VMM page granularity, so the host
    // must hold the guest span rounded up to whole nested pages (plus the
    // VMM-segment copy and table slack).
    let rounded = installed.next_multiple_of(nested.bytes());
    let host = 2 * rounded + 128 * MIB;
    let mut vmm = Vmm::new(host);
    let vm = vmm.create_vm(VmConfig::new(installed, nested))?;
    let mut guest = GuestOs::boot(GuestConfig::small(installed))?;
    let policy = match cfg.guest_paging {
        GuestPaging::Fixed(s) => PageSizePolicy::Fixed(s),
        GuestPaging::Thp => PageSizePolicy::Thp,
    };
    let pid = guest.create_process(policy)?;
    // A direct-segment guest layer needs the arena as a primary region so
    // the segment registers can cover it contiguously.
    let base = if stack_layers(mode.stack())[0].needs_escape_handling() {
        guest.create_primary_region(pid, cfg.footprint)?
    } else {
        guest.mmap(pid, cfg.footprint, Prot::RW)?
    };
    Ok((vmm, vm, guest, pid, base.as_u64()))
}
