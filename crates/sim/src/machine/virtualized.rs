//! Hardware nested paging in all four translation modes: the paper's
//! `4K+4K` … `1G+1G` base bars and the proposed `VD`/`GD`/`DD` modes.

use mv_chaos::DegradeLevel;
use mv_core::{
    EscapeFilter, LayerStack, MemoryContext, Mmu, MmuConfig, Segment, TranslationFault,
    TranslationMode,
};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::rng::StdRng;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm, VM_EXIT_CYCLES};

use crate::config::{Env, GuestPaging, SimConfig};
use crate::machine::degrade::escape_pages;
use crate::machine::{mmu_for, ExitStats, FaultService, Machine, CHURN_REGION};
use crate::run::SimError;

/// A guest OS running over hardware nested paging, with the translation
/// mode's segments programmed at build time.
#[derive(Debug)]
pub struct VirtualizedMachine {
    vmm: Vmm,
    vm: mv_vmm::VmId,
    guest: GuestOs,
    pid: u32,
    base: u64,
    churn_base: Gva,
    churn_cursor: u64,
    exits_at_reset: u64,
    stack: LayerStack,
}

impl Machine for VirtualizedMachine {
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
        let Env::Virtualized { nested, mode } = cfg.env else {
            unreachable!("dispatched on env");
        };
        let (mut vmm, vm, mut guest, pid, base) = build_guest(cfg, nested, mode)?;
        let mut mmu = mmu_for(hw, mode);
        // The mode's layer stack dictates the build: each direct-segment
        // layer gets its registers programmed, and each paging layer gets
        // its table pre-populated to steady state.
        let [guest_layer, host_layer] = stack_layers(mode.stack());
        if guest_layer.needs_escape_handling() {
            let seg = guest.setup_guest_segment(pid)?;
            mmu.set_guest_segment(seg);
        }
        if host_layer.needs_escape_handling() {
            let span = guest.mem().size_bytes();
            let seg = vmm.create_vmm_segment(
                vm,
                AddrRange::new(Gpa::ZERO, Gpa::new(span)),
                SegmentOptions::default(),
            )?;
            mmu.set_vmm_segment(seg);
        }
        if guest_layer.mode.is_paging() {
            guest.populate(pid, Gva::new(base), cfg.footprint)?;
        }
        if host_layer.mode.is_paging() {
            let span = guest.mem().size_bytes();
            vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(span)))?;
        }

        let churn_base = guest.mmap(pid, CHURN_REGION, Prot::RW)?;
        Ok((
            VirtualizedMachine {
                vmm,
                vm,
                guest,
                pid,
                base,
                churn_base,
                churn_cursor: 0,
                exits_at_reset: 0,
                stack: mode.stack(),
            },
            mmu,
        ))
    }

    fn layer_stack(&self) -> LayerStack {
        self.stack
    }

    fn arena_base(&self) -> u64 {
        self.base
    }

    fn asid(&self) -> u16 {
        self.pid as u16
    }

    fn ctx(&mut self) -> MemoryContext<'_> {
        MemoryContext::virtualized(
            self.guest.pt_and_mem(self.pid),
            self.vmm.npt_and_hmem(self.vm),
        )
    }

    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
        match fault {
            TranslationFault::GuestNotMapped { gva } => {
                self.guest.handle_page_fault(self.pid, gva)?;
                Ok(FaultService::Serviced)
            }
            TranslationFault::NestedNotMapped { gpa, .. } => {
                self.vmm.handle_nested_fault(self.vm, gpa)?;
                Ok(FaultService::Serviced)
            }
            _ => Ok(FaultService::Unserviceable),
        }
    }

    /// One allocation-churn event: alternately map and unmap pages of the
    /// churn region, as a heap allocator would.
    fn churn_event(&mut self, mmu: &mut Mmu) -> Result<(), SimError> {
        let va = Gva::new(self.churn_base.as_u64() + (self.churn_cursor % CHURN_REGION));
        self.churn_cursor += PageSize::Size4K.bytes();
        if let Some((va_page, _)) = self.guest.unmap_page(self.pid, va)? {
            mmu.invalidate_page(self.pid as u16, va_page);
        } else {
            self.guest.handle_page_fault(self.pid, va)?;
        }
        Ok(())
    }

    fn window_open(&mut self) {
        self.exits_at_reset = self.vmm.vm_exits(self.vm);
    }

    fn exit_stats(&self) -> ExitStats {
        let vm_exits = self.vmm.vm_exits(self.vm) - self.exits_at_reset;
        ExitStats {
            cycles: vm_exits as f64 * VM_EXIT_CYCLES as f64,
            vm_exits,
        }
    }

    fn chaos_frame_loss(&mut self, draw: u64) -> u64 {
        let range = AddrRange::new(Hpa::ZERO, Hpa::new(self.vmm.hmem().size_bytes()));
        let n = 1 + (draw % 4) as usize;
        let mut rng = StdRng::seed_from_u64(draw);
        self.vmm
            .hmem_mut()
            .inject_bad_frames(&mut rng, &range, n)
            .map_or(0, |lost| lost.len() as u64)
    }

    fn chaos_frag_storm(&mut self, draw: u64) -> u64 {
        let n = 2 + draw % 6;
        let mut taken = 0;
        for _ in 0..n {
            if self.vmm.hmem_mut().alloc(PageSize::Size4K).is_err() {
                break;
            }
            taken += 1;
        }
        taken
    }

    fn chaos_spurious_exit(&mut self) {
        let _ = self.vmm.record_spurious_exit(self.vm);
    }

    fn degrade_to(&mut self, mmu: &mut Mmu, level: DegradeLevel, draw: u64) -> bool {
        let [guest_layer, host_layer] = stack_layers(mmu.mode().stack());
        let guest_seg = guest_layer
            .needs_escape_handling()
            .then(|| self.guest.process(self.pid).segment())
            .flatten();
        let vmm_seg = host_layer
            .needs_escape_handling()
            .then(|| self.vmm.vm(self.vm).segment())
            .flatten();
        if guest_seg.is_none() && vmm_seg.is_none() {
            return false;
        }
        match level {
            DegradeLevel::EscapeHeavy => {
                // Guard the (outermost available) segment with a populated
                // escape filter: the segment stays programmed, but a
                // meaningful fraction of pages now escape to the walk path.
                if let Some(seg) = guest_seg {
                    let mut filter = EscapeFilter::new(draw);
                    let range = seg.range();
                    for page in escape_pages(range.start().as_u64(), range.len(), draw) {
                        filter.insert(page);
                    }
                    mmu.set_guest_escape_filter(Some(filter));
                } else if let Some(seg) = vmm_seg {
                    // Extend the VM's own filter (bad frames must keep
                    // escaping) when one exists; its seed is kept.
                    let mut filter = self
                        .vmm
                        .vm(self.vm)
                        .escape_filter()
                        .cloned()
                        .unwrap_or_else(|| EscapeFilter::new(draw));
                    let range = seg.range();
                    for page in escape_pages(range.start().as_u64(), range.len(), draw) {
                        filter.insert(page);
                    }
                    mmu.set_vmm_escape_filter(Some(filter));
                }
                true
            }
            DegradeLevel::Paging => {
                if guest_seg.is_some() {
                    mmu.set_guest_escape_filter(None);
                    mmu.set_guest_segment(Segment::nullified());
                }
                if vmm_seg.is_some() {
                    mmu.set_vmm_escape_filter(None);
                    mmu.set_vmm_segment(Segment::nullified());
                }
                true
            }
            DegradeLevel::Direct => false,
        }
    }

    fn try_recover(&mut self, mmu: &mut Mmu) -> bool {
        let [guest_layer, host_layer] = stack_layers(mmu.mode().stack());
        let mut restored = false;
        if guest_layer.needs_escape_handling() {
            if let Some(seg) = self.guest.process(self.pid).segment() {
                mmu.set_guest_escape_filter(None);
                mmu.set_guest_segment(seg);
                restored = true;
            }
        }
        if host_layer.needs_escape_handling() {
            if let Some(seg) = self.vmm.vm(self.vm).segment() {
                // Restore the VM's authoritative escape filter, not a blank
                // one — bad frames must keep escaping after recovery.
                mmu.set_vmm_escape_filter(self.vmm.vm(self.vm).escape_filter().cloned());
                mmu.set_vmm_segment(seg);
                restored = true;
            }
        }
        restored
    }

    fn reference_translate(&self, va: Gva) -> Option<u64> {
        // Guest dimension: guest page table first (escaped pages map their
        // segment-computed gpa there), then guest-segment arithmetic.
        let (gpt, gmem) = self.guest.pt_and_mem(self.pid);
        let gpa = gpt.translate(gmem, va).map(|t| t.pa).or_else(|| {
            self.guest
                .process(self.pid)
                .segment()
                .and_then(|s| s.translate(va))
        })?;
        // Nested dimension: nested page table first, then VMM-segment
        // arithmetic.
        let (npt, hmem) = self.vmm.npt_and_hmem(self.vm);
        npt.translate(hmem, gpa)
            .map(|t| t.pa.as_u64())
            .or_else(|| {
                self.vmm
                    .vm(self.vm)
                    .segment()
                    .and_then(|s| s.translate(gpa))
                    .map(|h| h.as_u64())
            })
    }
}

/// Splits a virtualized mode's 2-deep layer stack into its guest and host
/// layers.
fn stack_layers(stack: LayerStack) -> [mv_core::TranslationLayer; 2] {
    match *stack.layers() {
        [g, h] => [g, h],
        _ => unreachable!("virtualized modes build 2-layer stacks"),
    }
}

/// Builds the virtualized stack: host, VM, guest OS, and one process with
/// the workload arena mapped (as a primary region when the mode uses a
/// guest segment). Shared with [`super::ShadowMachine`].
pub(crate) fn build_guest(
    cfg: &SimConfig,
    nested: PageSize,
    mode: TranslationMode,
) -> Result<(Vmm, mv_vmm::VmId, GuestOs, u32, u64), SimError> {
    let installed = cfg.footprint + cfg.footprint / 2 + 96 * MIB;
    // Nested backing is allocated at the VMM page granularity, so the host
    // must hold the guest span rounded up to whole nested pages (plus the
    // VMM-segment copy and table slack).
    let rounded = installed.next_multiple_of(nested.bytes());
    let host = 2 * rounded + 128 * MIB;
    let mut vmm = Vmm::new(host);
    let vm = vmm.create_vm(VmConfig::new(installed, nested))?;
    let mut guest = GuestOs::boot(GuestConfig::small(installed))?;
    let policy = match cfg.guest_paging {
        GuestPaging::Fixed(s) => PageSizePolicy::Fixed(s),
        GuestPaging::Thp => PageSizePolicy::Thp,
    };
    let pid = guest.create_process(policy)?;
    // A direct-segment guest layer needs the arena as a primary region so
    // the segment registers can cover it contiguously.
    let base = if stack_layers(mode.stack())[0].needs_escape_handling() {
        guest.create_primary_region(pid, cfg.footprint)?
    } else {
        guest.mmap(pid, cfg.footprint, Prot::RW)?
    };
    Ok((vmm, vm, guest, pid, base.as_u64()))
}
