//! The unified machine layer: one generic access loop over pluggable
//! execution environments.
//!
//! A [`Machine`] packages everything below the driver — the OS / VMM /
//! shadow-pager software stack plus an [`Mmu`] programmed for the
//! environment's translation mode — behind five operations: build the
//! stack, lend the translation structures for one access, service a
//! fault, take an allocation-churn event, and report VM-exit statistics.
//! The driver (`drive`, reached through
//! [`Simulation::run_instrumented`](crate::Simulation::run_instrumented))
//! owns everything environment-independent: the warmup counter reset,
//! instrument attachment, churn scheduling, the per-access fault-retry
//! budget, and result assembly.
//!
//! The machines reproduce the paper's environments — [`NativeMachine`]
//! (native ± direct segment), [`VirtualizedMachine`] (nested paging in
//! all four translation modes), and [`ShadowMachine`] (shadow paging,
//! §IX.D) — plus [`L2Machine`], which extends the study one layer down
//! (nested-nested and shadow-on-nested L2 virtualization). A new
//! translation scheme drops in as one more `impl Machine` without
//! touching the driver. The
//! `tests/machine_equiv.rs` golden fixture proves this loop reproduces
//! the three pre-refactor copy-pasted drivers byte for byte.

mod degrade;
mod l2;
mod native;
mod shadow;
mod virtualized;

pub use l2::L2Machine;
pub use native::NativeMachine;
pub use shadow::ShadowMachine;
pub use virtualized::VirtualizedMachine;

use mv_adapt::{AdaptReport, AdaptSpec, ModePlan};
use mv_chaos::{ChaosReport, ChaosSpec};
use mv_core::{LayerStack, MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_obs::{SharedTelemetry, Telemetry, TelemetryConfig, WalkEvent, WalkObserver};
use mv_prof::{Profile, ProfileConfig, SharedProfile};
use mv_trace::{RecordingWorkload, ReplaySource, SharedTraceWriter, TraceError};
use mv_types::{Gva, MIB};
use mv_workloads::Workload;

use crate::machine::degrade::{AdaptDriver, ChaosDriver};

use crate::config::SimConfig;
use crate::result::RunResult;
use crate::run::SimError;
use crate::sample::{Phase, SampleError, SampleSpec, SampleSummary};

/// Size of the auxiliary region used to model allocation churn.
pub(crate) const CHURN_REGION: u64 = 8 * MIB;

/// Retry budget per access (a correct setup needs at most a handful).
pub(crate) const MAX_FAULTS_PER_ACCESS: u32 = 64;

/// What a machine did about a translation fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultService {
    /// The fault was serviced (page demand-mapped, nested backing
    /// installed, shadow entry resynced, …) — retry the access.
    Serviced,
    /// No layer of this machine services this fault kind — the driver
    /// aborts with [`SimError::FaultLoop`] carrying the fault.
    Unserviceable,
}

/// VM-exit statistics accumulated over the measured window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExitStats {
    /// Cycles charged for VM exits within the window.
    pub cycles: f64,
    /// Number of VM exits within the window.
    pub vm_exits: u64,
}

/// One execution environment: the software stack under the driver loop
/// plus the MMU programmed for it.
///
/// Implementations must keep [`Machine::ctx`] side-effect free: the
/// driver calls it once per access attempt, and all state changes happen
/// in `build`, `service_fault`, and `churn_event`.
pub trait Machine: Sized {
    /// Builds the full stack for `cfg` — OS, hypervisor, segments, the
    /// pre-populated steady-state mappings — plus the [`Mmu`] programmed
    /// with the environment's translation mode and segment registers on
    /// the `hw` parameters (whose `mode` field is overridden).
    ///
    /// # Errors
    ///
    /// Any construction failure (fragmented memory, exhausted physical
    /// memory, …) surfaces as a [`SimError`].
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError>;

    /// The translation-layer stack this machine's MMU walks: 1 layer
    /// native, 2 virtualized, 3 nested-nested. Shadow paging returns the
    /// *walked* stack (one layer), not the software stack it collapses —
    /// the stack is the ground truth for per-mode walk pricing.
    fn layer_stack(&self) -> LayerStack;

    /// Base virtual address of the workload arena; the driver adds the
    /// workload's offsets to it.
    fn arena_base(&self) -> u64;

    /// Address-space identifier accesses are tagged with.
    fn asid(&self) -> u16;

    /// Lends the translation structures the MMU walks for one access.
    fn ctx(&mut self) -> MemoryContext<'_>;

    /// Services `fault` through the owning layer (guest OS for guest
    /// faults, VMM for nested faults, shadow pager for shadow misses).
    ///
    /// # Errors
    ///
    /// A servicing failure (e.g. out of memory) surfaces as a
    /// [`SimError`]; an unknown fault kind is reported as
    /// [`FaultService::Unserviceable`], not an error.
    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError>;

    /// Takes one allocation-churn event (alternately unmapping and
    /// re-faulting pages of the churn region, as a heap allocator would),
    /// invalidating stale TLB entries through `mmu`. Machines that do not
    /// model churn (native) implement this as a no-op.
    ///
    /// # Errors
    ///
    /// Propagates fault-servicing failures.
    fn churn_event(&mut self, mmu: &mut Mmu) -> Result<(), SimError>;

    /// Called exactly once, at the warmup boundary, right after the MMU
    /// counters reset: the machine snapshots its own cumulative counters
    /// (VM exits, exit cycles) so [`Machine::exit_stats`] can report
    /// window deltas.
    fn window_open(&mut self);

    /// Exit statistics accumulated since [`Machine::window_open`].
    fn exit_stats(&self) -> ExitStats;

    /// Chaos hook: permanently lose physical frames (a DIMM going bad),
    /// returning how many were marked. Only *free* frames are lost; a
    /// machine that cannot inject (or has nothing left to lose) returns 0
    /// — injected chaos failing to land is a no-op, never an abort.
    fn chaos_frame_loss(&mut self, _draw: u64) -> u64 {
        0
    }

    /// Chaos hook: a fragmentation storm — another tenant grabs scattered
    /// free frames that are never returned. Returns frames taken.
    fn chaos_frag_storm(&mut self, _draw: u64) -> u64 {
        0
    }

    /// Chaos hook: a spurious VM exit (interrupt storm, host preemption)
    /// charged to the run without any mapping work. No-op for machines
    /// with no hypervisor.
    fn chaos_spurious_exit(&mut self) {}

    /// Which layers of this machine's translation stack own a direct
    /// segment (outermost first, padded with `false` beyond the stack
    /// depth). Drives per-layer mode planning; machines without segments
    /// (base paging, shadow) report all-`false` and never switch modes.
    fn segment_layers(&self) -> [bool; 3] {
        [false; 3]
    }

    /// Re-programs the MMU from plan `from` to plan `to`, returning
    /// whether anything changed. Only layers whose level differs between
    /// the plans are touched, and all re-programming happens inside one
    /// [`Mmu::mode_switch`] batch — a live transition costs exactly one
    /// full flush. The authoritative segments stay intact in the software
    /// models — only the MMU's copy is nullified or guarded by an escape
    /// filter — so frames demand-mapped while degraded remain
    /// segment-consistent and a later promotion (or a mid-switch rollback)
    /// cannot diverge. `draw` seeds deterministic escape-page placement
    /// for escape-heavy layers.
    fn apply_plan(&mut self, _mmu: &mut Mmu, _from: &ModePlan, _to: &ModePlan, _draw: u64) -> bool {
        false
    }

    /// Independently derives the reference translation for `va` from the
    /// authoritative software structures (page tables first, segment
    /// arithmetic as fallback), for the chaos oracle. `None` means the
    /// reference has no mapping — which the oracle counts as a divergence
    /// for any completed access.
    fn reference_translate(&self, _va: Gva) -> Option<u64> {
        None
    }
}

/// Instrumentation requested for a run. Both instruments attach at the
/// warmup boundary so they cover exactly the measured window.
#[derive(Debug, Clone, Default)]
pub(crate) struct Instruments {
    pub(crate) trace_capacity: Option<usize>,
    pub(crate) telemetry: Option<TelemetryConfig>,
    /// Walk-cost attribution profiling for the run. Only a profiling
    /// observer reports `wants_attribution`, so telemetry-only and
    /// uninstrumented runs take the exact pre-profiler MMU path.
    pub(crate) profile: Option<ProfileConfig>,
    /// Fault injection + oracle for the run; `None` (or an inactive spec)
    /// takes the exact chaos-free path, keeping golden replays
    /// byte-identical.
    pub(crate) chaos: Option<ChaosSpec>,
    /// Replay the access stream from this trace instead of building the
    /// configured generator. The trace is fully validated (and its
    /// footprint checked against the run's) before any machine is built.
    pub(crate) replay: Option<ReplaySource>,
    /// Tee every workload access into this recorder as the run plays.
    /// The stream itself is forwarded unchanged, so recording never
    /// perturbs the measured results.
    pub(crate) record: Option<SharedTraceWriter>,
    /// Online adaptive mode control for the run. When set alongside an
    /// active chaos spec, the chaos driver keeps injection and the oracle
    /// but hands mode policy to the controller; without chaos the
    /// controller still runs (it just never sees faults).
    pub(crate) adapt: Option<AdaptSpec>,
    /// Forces single-access batches in the driver loop. Exists solely so
    /// equivalence tests can run the reference access-at-a-time pacing
    /// against the batched default and assert byte-identical results; it
    /// changes scheduling granularity, never behavior.
    pub(crate) reference_pacing: bool,
    /// Sampled execution: fast-forward functionally between detailed
    /// measurement windows and scale window counters to full-run
    /// estimates. Incompatible with chaos, adaptation, replay, recording,
    /// and reference pacing (all of which need every access detailed).
    pub(crate) sample: Option<SampleSpec>,
}

/// Fans one walk event out to both the telemetry and profile observers.
/// `wants_attribution` ORs, so the MMU attributes whenever either side
/// asks (in practice: whenever the profiler is attached).
#[derive(Debug)]
struct TeeObserver(Box<dyn WalkObserver>, Box<dyn WalkObserver>);

impl WalkObserver for TeeObserver {
    fn on_walk(&mut self, event: &WalkEvent) {
        self.0.on_walk(event);
        self.1.on_walk(event);
    }

    fn wants_attribution(&self) -> bool {
        self.0.wants_attribution() || self.1.wants_attribution()
    }
}

impl Instruments {
    /// Attaches the requested instruments to the MMU (called at the warmup
    /// boundary), returning the handles to collect telemetry and the
    /// profile from later.
    fn attach(&self, mmu: &mut Mmu) -> (Option<SharedTelemetry>, Option<SharedProfile>) {
        if let Some(cap) = self.trace_capacity {
            mmu.enable_miss_trace(cap);
        }
        let telemetry = self.telemetry.map(SharedTelemetry::new);
        let profile = self.profile.map(SharedProfile::new);
        match (&telemetry, &profile) {
            (Some(t), Some(p)) => {
                mmu.set_observer(Box::new(TeeObserver(t.observer(), p.observer())));
            }
            (Some(t), None) => mmu.set_observer(t.observer()),
            (None, Some(p)) => mmu.set_observer(p.observer()),
            (None, None) => {}
        }
        (telemetry, profile)
    }
}

/// Detaches the observer and closes the telemetry window at `accesses`.
fn collect_telemetry(
    mmu: &mut Mmu,
    shared: Option<SharedTelemetry>,
    accesses: u64,
) -> Option<Telemetry> {
    drop(mmu.take_observer());
    shared.map(|s| s.take(accesses))
}

/// Constructs an MMU on `hw` with the environment's translation `mode`.
pub(crate) fn mmu_for(hw: MmuConfig, mode: TranslationMode) -> Mmu {
    Mmu::new(MmuConfig { mode, ..hw })
}

/// Churn schedule: `events_per_million / 1e6` events per access.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChurnPlan {
    interval: u64,
}

impl ChurnPlan {
    pub(crate) fn new(per_million: u64) -> ChurnPlan {
        ChurnPlan {
            interval: 1_000_000u64
                .checked_div(per_million)
                .map_or(0, |i| i.max(1)),
        }
    }

    /// Whether a churn event is due before access `i`.
    ///
    /// Invariant (identical for every machine, guarded by
    /// `churn_never_fires_at_access_zero` below): `due(0)` is false, so a
    /// churn event can never coincide with the boot-time population of
    /// the arena — at `i == 0` the counters were just reset by the
    /// machine build (and again by the warmup boundary when `warmup ==
    /// 0`), and firing churn there would charge a boot event to the
    /// measured window and double-count the reset edge. When the schedule
    /// is due exactly at the warmup boundary (`i == warmup`), the driver
    /// evaluates it *after* the counter reset, so the event is charged to
    /// the measured window — again identically for every machine.
    pub(crate) fn due(&self, i: u64) -> bool {
        self.interval > 0 && i % self.interval == 0 && i > 0
    }

    /// The first index strictly after `i` at which a churn event is due —
    /// `u64::MAX` for a churn-free schedule. Together with `due` this is
    /// the batching contract: `due(j)` is false for every `j` in
    /// `(i, next_due(i))`, and true at `next_due(i)` itself, so the
    /// driver may run that whole span without re-checking the schedule.
    pub(crate) fn next_due(&self, i: u64) -> u64 {
        i.checked_div(self.interval)
            .map_or(u64::MAX, |q| (q + 1) * self.interval)
    }
}

/// The end (exclusive) of the batch starting at access `i`: the driver
/// services accesses `[i, end)` back to back, re-checking per-access
/// schedules only at `end`. The boundary is the earliest of the run end,
/// the warmup boundary (counter reset + instrument attach), and the next
/// due churn event — so every scheduled event still fires at exactly the
/// index it would under access-at-a-time pacing. `per_access` (chaos
/// active, or the reference pacing used by equivalence tests) degenerates
/// the batch to a single access, since fault injection and the oracle
/// hook in before and after every access.
fn batch_end(i: u64, total: u64, warmup: u64, churn: &ChurnPlan, per_access: bool) -> u64 {
    if per_access {
        return i + 1;
    }
    let mut end = total;
    if i < warmup {
        end = end.min(warmup);
    }
    end.min(churn.next_due(i))
}

/// The single driver loop: runs `cfg` on machine type `M`.
///
/// Owns everything environment-independent — warmup counter reset and
/// instrument attachment, churn scheduling, the per-access retry budget,
/// and result assembly — and delegates the rest to the [`Machine`].
pub(crate) fn drive<M: Machine>(
    cfg: &SimConfig,
    hw: MmuConfig,
    instr: &Instruments,
) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
    if let Some(spec) = instr.sample {
        return drive_sampled::<M>(cfg, hw, instr, spec);
    }
    let (mut machine, mut mmu) = M::build(cfg, hw)?;
    let mut workload: Box<dyn Workload> = match &instr.replay {
        Some(src) => {
            // Fully validated up front (header, every chunk and record,
            // trailer), so a malformed trace is a typed error here — not
            // a panic or a fault storm mid-run.
            let replayed = src.open_workload()?;
            if replayed.footprint() != cfg.footprint {
                return Err(SimError::Trace(TraceError::FootprintMismatch {
                    trace: replayed.footprint(),
                    run: cfg.footprint,
                }));
            }
            Box::new(replayed)
        }
        None => cfg.workload.build(cfg.footprint, cfg.seed),
    };
    if let Some(recorder) = &instr.record {
        workload = Box::new(RecordingWorkload::new(workload, recorder.clone()));
    }
    let churn = ChurnPlan::new(workload.churn_per_million());
    let base = machine.arena_base();
    let asid = machine.asid();

    let mut chaos = instr
        .chaos
        .filter(ChaosSpec::active)
        .map(ChaosDriver::new);
    let mut adapt = instr.adapt.map(|spec| {
        AdaptDriver::new(spec, machine.segment_layers(), machine.layer_stack().depth())
    });
    if let (Some(c), Some(_)) = (chaos.as_mut(), adapt.as_ref()) {
        // The controller owns mode policy; the chaos driver keeps
        // injection, the oracle, and accounting, and queues segment losses
        // / balloon denials for the controller to consume.
        c.set_external_policy();
    }
    let mut telemetry = None;
    let mut profile = None;
    let total = cfg.warmup + cfg.accesses;
    // Chaos and the adaptive controller hook in before and/or after
    // *every* access (residency counting, scheduled injection, epoch
    // boundaries, the oracle cross-check), so either pins the batch size
    // to one; the uninstrumented hot path amortizes the warmup and churn
    // schedule checks across whole batches.
    let per_access = chaos.is_some() || adapt.is_some() || instr.reference_pacing;
    let mut i = 0u64;
    while i < total {
        if i == cfg.warmup {
            // Warmup boundary: counters reset, the machine snapshots its
            // exit counters, and instruments attach — in that order, so
            // all three cover exactly the measured window.
            mmu.reset_counters();
            machine.window_open();
            (telemetry, profile) = instr.attach(&mut mmu);
        }
        // Churn is evaluated after the boundary block so a churn event due
        // exactly at `i == warmup` lands inside the measured window (see
        // `ChurnPlan::due` for the full invariant).
        if churn.due(i) {
            machine.churn_event(&mut mmu)?;
        }
        // Everything scheduled by access index fires at the head of a
        // batch: `batch_end` is the earliest index after `i` at which the
        // warmup boundary or a churn event could be due, so the checks
        // above need not run again inside the batch.
        let end = batch_end(i, total, cfg.warmup, &churn, per_access);
        debug_assert!(end > i, "a batch always advances");
        if per_access {
            // Chaos (or reference pacing) owns this path: batch_end pinned
            // the batch to a single access, and the hooks need the machine
            // mutably around it.
            if let Some(c) = chaos.as_mut() {
                c.pre_access(&mut machine, &mut mmu, i);
            }
            if let Some(a) = adapt.as_mut() {
                a.pre_access(
                    &mut machine,
                    &mut mmu,
                    chaos.as_mut(),
                    telemetry.as_ref(),
                    i,
                    cfg.warmup,
                );
            }
            let acc = workload.next_access();
            let va = Gva::new(base + acc.offset);
            let mut tries = 0u32;
            let outcome = loop {
                let fault = match mmu.access(&machine.ctx(), asid, va, acc.write) {
                    Ok(outcome) => break outcome,
                    Err(fault) => fault,
                };
                if machine.service_fault(fault)? == FaultService::Unserviceable {
                    return Err(SimError::FaultLoop {
                        va: va.as_u64(),
                        last: fault,
                    });
                }
                tries += 1;
                if tries > MAX_FAULTS_PER_ACCESS {
                    // Report the fault actually observed on the final
                    // iteration — not a synthesized placeholder — so a
                    // diverging retry loop names its real cause.
                    return Err(SimError::FaultLoop {
                        va: va.as_u64(),
                        last: fault,
                    });
                }
            };
            if let Some(c) = chaos.as_mut() {
                c.post_access(&machine, i, va, outcome.hpa.as_u64());
            }
            i += 1;
            continue;
        }
        // The amortized hot path: the memory context is a pure borrow of
        // the machine's tables and spaces (building it costs hash-map
        // lookups), so one context serves the whole batch. A fault ends
        // the borrow — servicing needs the machine mutably — after which
        // the batch resumes with a fresh one. The sequence of
        // `mmu.access` and `service_fault` calls is identical to
        // per-access pacing; only the borrow's lifetime changes.
        while i < end {
            let ctx = machine.ctx();
            let mut faulted = None;
            while i < end {
                let acc = workload.next_access();
                let va = Gva::new(base + acc.offset);
                match mmu.access(&ctx, asid, va, acc.write) {
                    Ok(_) => i += 1,
                    Err(fault) => {
                        faulted = Some((va, acc.write, fault));
                        break;
                    }
                }
            }
            let Some((va, write, mut fault)) = faulted else {
                continue;
            };
            let mut tries = 0u32;
            loop {
                if machine.service_fault(fault)? == FaultService::Unserviceable {
                    return Err(SimError::FaultLoop {
                        va: va.as_u64(),
                        last: fault,
                    });
                }
                tries += 1;
                if tries > MAX_FAULTS_PER_ACCESS {
                    // Report the fault actually observed on the final
                    // iteration — not a synthesized placeholder — so a
                    // diverging retry loop names its real cause.
                    return Err(SimError::FaultLoop {
                        va: va.as_u64(),
                        last: fault,
                    });
                }
                match mmu.access(&machine.ctx(), asid, va, write) {
                    Ok(_) => break,
                    Err(f) => fault = f,
                }
            }
            i += 1;
        }
    }

    let exits = machine.exit_stats();
    let chaos_outcome = chaos.map(ChaosDriver::finish);
    let adapt_outcome = adapt.map(AdaptDriver::finish);
    // `collect_telemetry` detaches the shared observer (the tee, when both
    // instruments ran), so the profile handle below is the last one alive.
    let mut telemetry = collect_telemetry(&mut mmu, telemetry, cfg.accesses);
    if let (Some(t), Some((_, records))) = (telemetry.as_mut(), chaos_outcome.as_ref()) {
        t.record_transitions(records);
    }
    if let (Some(t), Some((_, records))) = (telemetry.as_mut(), adapt_outcome.as_ref()) {
        t.record_transitions(records);
    }
    let profile = profile.map(|p| {
        let mut p = p.take();
        // VM exits are charged by the machine layer outside the walker, so
        // the profiler learns about them here, at run scope.
        p.record_exits(exits.vm_exits, exits.cycles as u64);
        p
    });
    let trace = mmu.take_miss_trace();
    Ok((
        finish(
            cfg,
            &mmu,
            workload.name(),
            workload.cycles_per_access(),
            exits.cycles,
            exits.vm_exits,
            telemetry,
            profile,
            chaos_outcome.map(|(report, _)| report),
            adapt_outcome.map(|(report, _)| report),
        ),
        trace,
    ))
}

/// One access at the given sampling fidelity. Detailed and warm accesses
/// share the full miss path (warm just suppresses measurement); the
/// functional path only updates TLB state. All three surface the same
/// faults, so the driver's servicing loop is fidelity-agnostic.
fn sampled_access(
    mmu: &mut Mmu,
    ctx: &MemoryContext<'_>,
    asid: u16,
    va: Gva,
    write: bool,
    phase: Phase,
) -> Result<(), TranslationFault> {
    match phase {
        Phase::Detailed => mmu.access(ctx, asid, va, write).map(drop),
        Phase::Warm => mmu.access_warm(ctx, asid, va, write).map(drop),
        Phase::Functional => mmu.access_functional(ctx, asid, va, write).map(drop),
    }
}

/// Runs accesses `[start, end)` at one fidelity, with the same batched
/// context borrow and fault-retry budget as the full-fidelity driver.
#[allow(clippy::too_many_arguments)]
fn run_span<M: Machine>(
    machine: &mut M,
    mmu: &mut Mmu,
    workload: &mut dyn Workload,
    base: u64,
    asid: u16,
    phase: Phase,
    start: u64,
    end: u64,
) -> Result<(), SimError> {
    let mut i = start;
    while i < end {
        let ctx = machine.ctx();
        let mut faulted = None;
        while i < end {
            let acc = workload.next_access();
            let va = Gva::new(base + acc.offset);
            match sampled_access(mmu, &ctx, asid, va, acc.write, phase) {
                Ok(()) => i += 1,
                Err(fault) => {
                    faulted = Some((va, acc.write, fault));
                    break;
                }
            }
        }
        let Some((va, write, mut fault)) = faulted else {
            continue;
        };
        let mut tries = 0u32;
        loop {
            if machine.service_fault(fault)? == FaultService::Unserviceable {
                return Err(SimError::FaultLoop {
                    va: va.as_u64(),
                    last: fault,
                });
            }
            tries += 1;
            if tries > MAX_FAULTS_PER_ACCESS {
                return Err(SimError::FaultLoop {
                    va: va.as_u64(),
                    last: fault,
                });
            }
            match sampled_access(mmu, &machine.ctx(), asid, va, write, phase) {
                Ok(()) => break,
                Err(f) => fault = f,
            }
        }
        i += 1;
    }
    Ok(())
}

/// The sampled driver loop: detailed warmup, then alternating detailed
/// windows, functional gaps, and warm re-heat tails per the
/// [`SampleSpec`] schedule, with churn and the warmup boundary firing at
/// exactly the same indices as the full-fidelity driver. Counters are
/// scaled to full-run estimates at the end; VM exits are *not* scaled
/// (faults are serviced at full cadence through the gaps, so exits are
/// exact, not sampled).
fn drive_sampled<M: Machine>(
    cfg: &SimConfig,
    hw: MmuConfig,
    instr: &Instruments,
    spec: SampleSpec,
) -> Result<(RunResult, Option<mv_core::MissTrace>), SimError> {
    spec.validate()
        .map_err(|e| SimError::Sample(SampleError::Spec(e)))?;
    // Every rejected instrument needs each access detailed: chaos and the
    // controller hook around every access, replay/record must see the
    // exact full stream's measurements, and reference pacing exists to
    // prove batching equivalence — meaningless under sampling.
    let conflict = [
        (instr.chaos.filter(ChaosSpec::active).is_some(), "chaos"),
        (instr.adapt.is_some(), "adapt"),
        (instr.replay.is_some(), "trace replay"),
        (instr.record.is_some(), "trace recording"),
        (instr.reference_pacing, "reference pacing"),
    ]
    .into_iter()
    .find_map(|(active, name)| active.then_some(name));
    if let Some(what) = conflict {
        return Err(SimError::Sample(SampleError::Incompatible(what)));
    }
    let (mut machine, mut mmu) = M::build(cfg, hw)?;
    let mut workload = cfg.workload.build(cfg.footprint, cfg.seed);
    let churn = ChurnPlan::new(workload.churn_per_million());
    let base = machine.arena_base();
    let asid = machine.asid();
    let mut telemetry = None;
    let mut profile = None;
    let total = cfg.warmup + cfg.accesses;
    let mut i = 0u64;
    while i < total {
        if i == cfg.warmup {
            mmu.reset_counters();
            machine.window_open();
            (telemetry, profile) = instr.attach(&mut mmu);
        }
        if churn.due(i) {
            machine.churn_event(&mut mmu)?;
        }
        // The run's own warmup is fully detailed (it fills the TLBs and
        // walk caches exactly as an unsampled run would); the sampling
        // schedule tiles the measured region only, so the first detailed
        // window opens at the warmup boundary.
        let (phase, phase_end) = if i < cfg.warmup {
            (Phase::Detailed, cfg.warmup)
        } else {
            let (phase, end) = spec.phase_at(i - cfg.warmup);
            (phase, cfg.warmup + end)
        };
        let end = phase_end.min(total).min(churn.next_due(i));
        debug_assert!(end > i, "a span always advances");
        run_span(
            &mut machine,
            &mut mmu,
            workload.as_mut(),
            base,
            asid,
            phase,
            i,
            end,
        )?;
        i = end;
    }

    let exits = machine.exit_stats();
    // Only detailed (measured) accesses moved the counters; this is the
    // scaling denominator.
    let measured = mmu.counters().accesses;
    let telemetry = collect_telemetry(&mut mmu, telemetry, measured);
    let profile = profile.map(|p| {
        let mut p = p.take();
        p.record_exits(exits.vm_exits, exits.cycles as u64);
        p
    });
    let trace = mmu.take_miss_trace();

    let counters = mmu.counters().scaled(cfg.accesses, measured);
    let ideal = cfg.accesses as f64 * workload.cycles_per_access();
    let translation = counters.translation_cycles as f64 + exits.cycles;
    // Warm accesses accrue nested-L2 traffic into the debt ledger; what
    // remains after subtracting it is the measured windows' share, which
    // scales like every other counter.
    let (l2_lookups, l2_hits) = mmu.nested_l2_stats();
    let (debt_lookups, debt_hits) = mmu.nested_l2_debt();
    let scale = |v: u64| {
        if measured == 0 {
            v
        } else {
            ((v as u128 * cfg.accesses as u128) / measured as u128) as u64
        }
    };
    let nested_l2 = (
        scale(l2_lookups.saturating_sub(debt_lookups)),
        scale(l2_hits.saturating_sub(debt_hits)),
    );
    Ok((
        RunResult {
            label: cfg.label(),
            workload: workload.name(),
            accesses: cfg.accesses,
            counters,
            ideal_cycles: ideal,
            translation_cycles: translation,
            overhead: mv_metrics::overhead(translation, ideal),
            vm_exits: exits.vm_exits,
            nested_l2,
            telemetry,
            profile,
            chaos: None,
            adapt: None,
            sample: Some(SampleSummary {
                spec,
                measured_accesses: measured,
            }),
        },
        trace,
    ))
}

/// Assembles the [`RunResult`] from the MMU counters and window deltas.
#[allow(clippy::too_many_arguments)]
fn finish(
    cfg: &SimConfig,
    mmu: &Mmu,
    workload: &'static str,
    cycles_per_access: f64,
    exit_cycles: f64,
    vm_exits: u64,
    telemetry: Option<Telemetry>,
    profile: Option<Profile>,
    chaos: Option<ChaosReport>,
    adapt: Option<AdaptReport>,
) -> RunResult {
    let counters = *mmu.counters();
    let ideal = cfg.accesses as f64 * cycles_per_access;
    let translation = counters.translation_cycles as f64 + exit_cycles;
    RunResult {
        label: cfg.label(),
        // The workload's own name, not the configured kind's label: for
        // generator runs the two are identical strings, and for trace
        // replays this reports the trace's workload instead of the
        // placeholder kind the config carries.
        workload,
        accesses: cfg.accesses,
        counters,
        ideal_cycles: ideal,
        translation_cycles: translation,
        overhead: mv_metrics::overhead(translation, ideal),
        vm_exits,
        nested_l2: mmu.nested_l2_stats(),
        telemetry,
        profile,
        chaos,
        adapt,
        sample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Env, GuestPaging};
    use mv_phys::PhysMem;
    use mv_pt::PageTable;
    use mv_types::{Gpa, Hpa, PageSize, Prot, MIB};
    use mv_workloads::WorkloadKind;

    #[test]
    fn churn_never_fires_at_access_zero() {
        // The warmup-boundary invariant: even a schedule that is "due" at
        // every access skips i == 0, where the boundary reset (warmup ==
        // 0) would otherwise coincide with a churn event.
        let every = ChurnPlan::new(1_000_000);
        assert_eq!(every.interval, 1);
        assert!(!every.due(0));
        assert!(every.due(1));
        assert!(every.due(2));
    }

    #[test]
    fn next_due_is_the_first_due_index_after_i() {
        for per_million in [0u64, 45_000, 500_000, 1_000_000] {
            let plan = ChurnPlan::new(per_million);
            for i in 0..200u64 {
                let next = plan.next_due(i);
                for j in i + 1..next.min(200) {
                    assert!(!plan.due(j), "due({j}) inside ({i}, {next})");
                }
                if next < u64::MAX {
                    assert!(plan.due(next), "next_due({i}) = {next} must be due");
                }
            }
        }
    }

    #[test]
    fn batched_iteration_fires_events_at_identical_indices() {
        // The boundary invariant, exhaustively: walking a run batch by
        // batch must visit the warmup boundary and every churn index at
        // exactly the indices the per-access reference loop visits them,
        // for runs where events land mid-batch, on batch boundaries, and
        // at the warmup boundary itself (churn interval dividing warmup).
        for (warmup, accesses, per_million) in [
            (0u64, 50u64, 0u64),
            (10, 50, 0),
            (10, 50, 45_000),     // interval 22: mid-batch events
            (20, 40, 100_000),    // interval 10: churn due exactly at warmup
            (7, 30, 1_000_000),   // interval 1: every index is a boundary
            (30, 0, 500_000),     // warmup only
        ] {
            let total = warmup + accesses;
            let churn = ChurnPlan::new(per_million);
            let mut reference = Vec::new();
            for i in 0..total {
                if i == warmup {
                    reference.push((i, "warmup"));
                }
                if churn.due(i) {
                    reference.push((i, "churn"));
                }
            }
            let mut batched = Vec::new();
            let mut i = 0u64;
            while i < total {
                if i == warmup {
                    batched.push((i, "warmup"));
                }
                if churn.due(i) {
                    batched.push((i, "churn"));
                }
                let end = batch_end(i, total, warmup, &churn, false);
                assert!(end > i, "batches advance");
                assert!(end <= total, "batches never overrun the run");
                i = end;
            }
            assert_eq!(
                batched, reference,
                "warmup={warmup} accesses={accesses} churn/M={per_million}"
            );
        }
    }

    #[test]
    fn per_access_pacing_degenerates_to_single_access_batches() {
        let churn = ChurnPlan::new(0);
        assert_eq!(batch_end(5, 100, 0, &churn, true), 6);
        assert_eq!(batch_end(5, 100, 0, &churn, false), 100);
    }

    #[test]
    fn churn_plan_schedules_by_interval() {
        let plan = ChurnPlan::new(45_000); // memcached's slab churn
        assert_eq!(plan.interval, 22);
        assert!(!plan.due(0));
        assert!(!plan.due(21));
        assert!(plan.due(22));
        assert!(plan.due(44));
        // A churn-free workload never fires.
        let none = ChurnPlan::new(0);
        assert!(!none.due(0));
        assert!(!none.due(1_000_000));
    }

    /// A deliberately mis-wired machine: guest faults are serviced, but
    /// nested faults are acknowledged without ever mapping backing, so
    /// every access retries until the budget runs out.
    struct NestedBlackHole {
        gpt: PageTable<Gva, Gpa>,
        gmem: PhysMem<Gpa>,
        npt: PageTable<Gpa, Hpa>,
        hmem: PhysMem<Hpa>,
    }

    impl Machine for NestedBlackHole {
        fn build(_cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
            let mut gmem = PhysMem::new(32 * MIB);
            let gpt = PageTable::new(&mut gmem).map_err(mv_guestos::OsError::from)?;
            let mut hmem = PhysMem::new(32 * MIB);
            let npt = PageTable::new(&mut hmem).map_err(mv_guestos::OsError::from)?;
            let mmu = mmu_for(hw, TranslationMode::BaseVirtualized);
            Ok((
                NestedBlackHole {
                    gpt,
                    gmem,
                    npt,
                    hmem,
                },
                mmu,
            ))
        }

        fn layer_stack(&self) -> LayerStack {
            TranslationMode::BaseVirtualized.stack()
        }

        fn arena_base(&self) -> u64 {
            0
        }

        fn asid(&self) -> u16 {
            1
        }

        fn ctx(&mut self) -> MemoryContext<'_> {
            MemoryContext::virtualized((&self.gpt, &self.gmem), (&self.npt, &self.hmem))
        }

        fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
            match fault {
                TranslationFault::GuestNotMapped { gva } => {
                    let page = Gva::new(gva.as_u64() & !0xfff);
                    let frame = self.gmem.alloc(PageSize::Size4K).expect("guest memory");
                    self.gpt
                        .map(&mut self.gmem, page, frame, PageSize::Size4K, Prot::RW)
                        .expect("guest mapping");
                    Ok(FaultService::Serviced)
                }
                // The bug under test: claim the nested fault was serviced
                // without installing any backing.
                TranslationFault::NestedNotMapped { .. } => Ok(FaultService::Serviced),
                _ => Ok(FaultService::Unserviceable),
            }
        }

        fn churn_event(&mut self, _mmu: &mut Mmu) -> Result<(), SimError> {
            Ok(())
        }

        fn window_open(&mut self) {}

        fn exit_stats(&self) -> ExitStats {
            ExitStats::default()
        }
    }

    #[test]
    fn fault_loop_reports_the_real_last_fault() {
        // Regression test: the pre-refactor drivers synthesized
        // `GuestNotMapped { gva: va }` on retry-budget exhaustion no
        // matter what actually faulted. The unified driver must report
        // the fault observed on the final iteration — here a nested
        // fault, since the black-hole machine never maps nested backing.
        let cfg = SimConfig {
            workload: WorkloadKind::Gups,
            footprint: MIB,
            guest_paging: GuestPaging::Fixed(PageSize::Size4K),
            env: Env::native(), // ignored by the mock machine
            accesses: 1,
            warmup: 0,
            seed: 7,
        };
        let err = drive::<NestedBlackHole>(&cfg, MmuConfig::default(), &Instruments::default())
            .expect_err("the nested black hole can never converge");
        match err {
            SimError::FaultLoop { last, .. } => {
                assert!(
                    matches!(last, TranslationFault::NestedNotMapped { .. }),
                    "expected the real (nested) last fault, got {last:?}"
                );
            }
            other => panic!("expected FaultLoop, got {other:?}"),
        }
    }
}
