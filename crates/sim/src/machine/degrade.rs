//! Mode-policy drivers threaded through the generic access loop: the
//! chaos driver (deterministic fault injection, the classic degradation
//! ladder, and oracle accounting) and the adaptive driver (the
//! telemetry-fed [`ModeController`]).
//!
//! The drivers own everything machine-independent: *when* faults fire
//! ([`FaultPlan`]), which [`ModePlan`] the run sits at, the retry /
//! hysteresis clocks (measured in simulated accesses and epochs), and the
//! translation oracle that cross-checks every completed access. The
//! machines own the mechanics — how a plan is applied to *their* MMU
//! programming ([`Machine::apply_plan`]), and how the reference
//! translation is derived from their authoritative software structures.
//!
//! Mode changes are MMU-side only: the authoritative segments stay intact
//! in the OS/VMM models, and a plan change only re-programs (or nullifies)
//! the MMU's copy, inside one batched [`Mmu::mode_switch`] flush. Frames
//! demand-mapped while degraded are therefore the segment-computed frames,
//! so a promotion — re-programming the stored segment — can never diverge
//! from the page tables built meanwhile; the same property is what makes
//! rolling back a mid-flight switch trivially safe.

use mv_adapt::{AdaptReport, AdaptSpec, EpochSignals, ModeController, ModePlan};
use mv_chaos::{
    ChaosFault, ChaosReport, ChaosSpec, DegradeLevel, FaultPlan, Transition, TranslationOracle,
};
use mv_core::{EscapeFilter, Mmu};
use mv_obs::{SharedTelemetry, TransitionRecord};
use mv_types::rng::split_seed;
use mv_types::Gva;

use crate::machine::Machine;

/// Initial recovery backoff, in simulated accesses (ladder policy).
const BACKOFF_BASE: u64 = 64;

/// Backoff cap (the run keeps retrying, just not pathologically often).
const BACKOFF_CAP: u64 = 1 << 20;

/// Pages inserted into the escape filter when entering escape-heavy
/// operation.
const ESCAPE_PAGES: u64 = 32;

/// Deterministic selection of escaped 4 KiB pages over a segment span:
/// a golden-ratio stride keyed on the fault's draw word. Duplicates are
/// harmless (Bloom filter).
pub(crate) fn escape_pages(start: u64, len: u64, draw: u64) -> impl Iterator<Item = u64> {
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    let pages = (len >> 12).max(1);
    (0..ESCAPE_PAGES).map(move |j| {
        let off = draw.wrapping_add(j.wrapping_mul(GOLDEN)) % pages;
        start + (off << 12)
    })
}

/// Builds the escape filter guarding a segment in escape-heavy operation:
/// `base` (the layer's authoritative filter, when it has one — bad frames
/// must keep escaping) extended with the deterministically drawn escape
/// pages over `[start, start + len)`.
pub(crate) fn guard_filter(
    base: Option<EscapeFilter>,
    start: u64,
    len: u64,
    draw: u64,
) -> EscapeFilter {
    let mut filter = base.unwrap_or_else(|| EscapeFilter::new(draw));
    for page in escape_pages(start, len, draw) {
        filter.insert(page);
    }
    filter
}

/// The ladder's one-rung-down target, if any.
fn ladder_down(level: DegradeLevel) -> Option<DegradeLevel> {
    match level {
        DegradeLevel::Direct => Some(DegradeLevel::EscapeHeavy),
        DegradeLevel::EscapeHeavy => Some(DegradeLevel::Paging),
        DegradeLevel::Paging => None,
    }
}

/// Per-run chaos state: plan, oracle, and (under the default ladder
/// policy) the degradation state machine.
pub(crate) struct ChaosDriver {
    plan: FaultPlan,
    oracle: TranslationOracle,
    level: DegradeLevel,
    backoff: u64,
    next_retry: Option<u64>,
    pending_denial: bool,
    /// Mode policy is external (an [`AdaptDriver`] owns it): the ladder
    /// and recovery clock stand down, and segment losses / denials queue
    /// for the controller instead.
    external_policy: bool,
    /// Draw word of a queued segment-allocation failure, for the external
    /// controller to consume.
    pending_loss: Option<u64>,
    /// Per-epoch fault signals accumulated for the external controller.
    signals: EpochSignals,
    injected: [u64; 5],
    denials: u64,
    recoveries: u64,
    failed_recoveries: u64,
    residency: [u64; 3],
    transitions: Vec<Transition>,
}

impl ChaosDriver {
    pub(crate) fn new(spec: ChaosSpec) -> Self {
        ChaosDriver {
            plan: FaultPlan::new(spec),
            oracle: TranslationOracle::new(),
            level: DegradeLevel::Direct,
            backoff: BACKOFF_BASE,
            next_retry: None,
            pending_denial: false,
            external_policy: false,
            pending_loss: None,
            signals: EpochSignals::default(),
            injected: [0; 5],
            denials: 0,
            recoveries: 0,
            failed_recoveries: 0,
            residency: [0; 3],
            transitions: Vec::new(),
        }
    }

    /// Hands mode policy to an external controller: the ladder and the
    /// recovery retry clock stand down; injection, the oracle, and all
    /// accounting keep running.
    pub(crate) fn set_external_policy(&mut self) {
        self.external_policy = true;
    }

    /// Consumes the queued segment-allocation failure (external policy),
    /// returning its draw word.
    pub(crate) fn take_segment_loss(&mut self) -> Option<u64> {
        self.pending_loss.take()
    }

    /// Consumes a pending balloon denial if one is queued — the denial
    /// lands on whatever allocation attempt comes next, which under
    /// external policy is the controller's promotion attempt. Counts it.
    pub(crate) fn consume_denial(&mut self) -> bool {
        if self.pending_denial {
            self.pending_denial = false;
            self.denials += 1;
            self.signals.denials += 1;
            true
        } else {
            false
        }
    }

    /// Drains the per-epoch fault signals (external policy; called at each
    /// epoch boundary).
    pub(crate) fn drain_signals(&mut self) -> EpochSignals {
        std::mem::take(&mut self.signals)
    }

    /// Records an externally applied plan transition so residency,
    /// transition counts, and recovery accounting stay coherent in the
    /// [`ChaosReport`] of an adaptive run.
    pub(crate) fn note_plan_transition(
        &mut self,
        access: u64,
        to: DegradeLevel,
        cause: &'static str,
    ) {
        self.transitions.push(Transition {
            access,
            from: self.level,
            to,
            cause,
        });
        if to == DegradeLevel::Direct && self.level > DegradeLevel::Direct {
            self.recoveries += 1;
        }
        self.level = to;
    }

    /// Records an externally rolled-back promotion (counts as a failed
    /// recovery; the level is unchanged).
    pub(crate) fn note_rollback(&mut self) {
        self.failed_recoveries += 1;
    }

    /// Runs before access `i`: counts residency, injects any scheduled
    /// fault, and (under the ladder policy) drives the recovery retry
    /// clock.
    pub(crate) fn pre_access<M: Machine>(&mut self, machine: &mut M, mmu: &mut Mmu, i: u64) {
        self.residency[self.level.index()] += 1;

        if let Some(kind) = self.plan.due(i) {
            self.injected[kind.index()] += 1;
            self.signals.faults += 1;
            let draw = self.plan.draw(i);
            match kind {
                ChaosFault::FrameLoss => {
                    machine.chaos_frame_loss(draw);
                }
                ChaosFault::FragStorm => {
                    machine.chaos_frag_storm(draw);
                }
                ChaosFault::SpuriousVmExit => machine.chaos_spurious_exit(),
                ChaosFault::BalloonDenial => {
                    // The next recovery (or promotion) attempt finds its
                    // balloon/compaction request denied.
                    self.pending_denial = true;
                }
                ChaosFault::SegmentAllocFail => {
                    self.signals.segment_losses += 1;
                    if self.external_policy {
                        // Queue for the controller's forced demotion.
                        self.pending_loss = Some(draw);
                        return;
                    }
                    if let Some(to) = ladder_down(self.level) {
                        let seg = machine.segment_layers();
                        let depth = machine.layer_stack().depth();
                        let from_plan = ModePlan::ladder(seg, depth, self.level);
                        let to_plan = ModePlan::ladder(seg, depth, to);
                        if machine.apply_plan(mmu, &from_plan, &to_plan, draw) {
                            self.transitions.push(Transition {
                                access: i,
                                from: self.level,
                                to,
                                cause: kind.label(),
                            });
                            self.level = to;
                            self.backoff = BACKOFF_BASE;
                            self.next_retry = Some(i + self.backoff);
                        }
                    }
                    // Never attempt recovery on the access that degraded.
                    return;
                }
            }
        }

        if !self.external_policy && self.level != DegradeLevel::Direct {
            if let Some(at) = self.next_retry {
                if i >= at {
                    self.attempt_recovery(machine, mmu, i);
                }
            }
        }
    }

    /// One ladder recovery attempt: denied (injected stall), successful,
    /// or failed — the latter two re-arm or clear the retry clock.
    fn attempt_recovery<M: Machine>(&mut self, machine: &mut M, mmu: &mut Mmu, i: u64) {
        if self.pending_denial {
            // An injected self-balloon denial stalls this attempt. It is an
            // external delay, not evidence recovery cannot work, so retry at
            // the same cadence — doubling here would make the denial window
            // grow with the backoff and lock the run degraded forever.
            self.pending_denial = false;
            self.denials += 1;
            self.next_retry = Some(i + self.backoff);
            return;
        }
        let seg = machine.segment_layers();
        let depth = machine.layer_stack().depth();
        let from_plan = ModePlan::ladder(seg, depth, self.level);
        let to_plan = ModePlan::baseline(seg, depth);
        if machine.apply_plan(mmu, &from_plan, &to_plan, 0) {
            self.transitions.push(Transition {
                access: i,
                from: self.level,
                to: DegradeLevel::Direct,
                cause: "recovery",
            });
            self.level = DegradeLevel::Direct;
            self.recoveries += 1;
            self.backoff = BACKOFF_BASE;
            self.next_retry = None;
        } else {
            self.failed_recoveries += 1;
            self.rearm(i);
        }
    }

    fn rearm(&mut self, i: u64) {
        self.backoff = (self.backoff * 2).min(BACKOFF_CAP);
        self.next_retry = Some(i + self.backoff);
    }

    /// Runs after access `i` completed: cross-checks the MMU's answer
    /// against the machine's reference translation.
    pub(crate) fn post_access<M: Machine>(&mut self, machine: &M, i: u64, va: Gva, actual: u64) {
        let expected = machine.reference_translate(va);
        self.oracle.check(i, va.as_u64(), expected, actual);
    }

    /// Closes the driver into its report and the telemetry-facing
    /// transition records. Under external policy the records are empty —
    /// the adaptive driver exports the authoritative transition log (full
    /// per-layer plans); the ladder transitions synced here only feed the
    /// report's residency and recovery accounting.
    pub(crate) fn finish(self) -> (ChaosReport, Vec<TransitionRecord>) {
        let records = if self.external_policy {
            Vec::new()
        } else {
            self.transitions
                .iter()
                .map(|t| TransitionRecord {
                    access: t.access,
                    from: t.from.label().into(),
                    to: t.to.label().into(),
                    cause: t.cause.into(),
                })
                .collect()
        };
        (
            ChaosReport {
                injected: self.injected,
                denials: self.denials,
                recoveries: self.recoveries,
                failed_recoveries: self.failed_recoveries,
                transitions: self.transitions.len() as u64,
                residency: self.residency,
                oracle_checks: self.oracle.checks(),
                oracle_violations: self.oracle.violation_count(),
                final_level: self.level,
            },
            records,
        )
    }
}

/// Per-run adaptive state: the [`ModeController`] plus the glue that feeds
/// it epochs and applies its decisions through [`Machine::apply_plan`].
pub(crate) struct AdaptDriver {
    spec: AdaptSpec,
    controller: ModeController,
}

impl AdaptDriver {
    pub(crate) fn new(spec: AdaptSpec, seg_layers: [bool; 3], depth: usize) -> Self {
        AdaptDriver {
            spec,
            controller: ModeController::new(spec.config, seg_layers, depth),
        }
    }

    /// Runs before access `i` (after the chaos driver, when one is
    /// active): applies any forced demotion queued by a segment loss, and
    /// at each epoch boundary closes the telemetry epoch, feeds the
    /// controller, and applies — or rolls back — the promotion it asks
    /// for.
    pub(crate) fn pre_access<M: Machine>(
        &mut self,
        machine: &mut M,
        mmu: &mut Mmu,
        mut chaos: Option<&mut ChaosDriver>,
        telemetry: Option<&SharedTelemetry>,
        i: u64,
        warmup: u64,
    ) {
        // Forced demotion: a segment-allocation failure bypasses every
        // hysteresis clock — correctness-mandated transitions are never
        // dampened.
        if let Some(draw) = chaos.as_deref_mut().and_then(ChaosDriver::take_segment_loss) {
            if let Some(target) = self.controller.force_demote() {
                let cur = self.controller.plan();
                if machine.apply_plan(mmu, &cur, &target, draw) {
                    self.controller.commit(i, target, "segment_alloc_fail");
                    if let Some(c) = chaos.as_deref_mut() {
                        c.note_plan_transition(
                            i,
                            target.ladder_level(machine.segment_layers()),
                            "segment_alloc_fail",
                        );
                    }
                }
            }
        }

        // Epoch boundary: only inside the measured window, where the
        // telemetry observer (attached at the warmup reset) counts access
        // sequence numbers on the same grid.
        if i <= warmup || self.spec.epoch_len == 0 {
            return;
        }
        let w = i - warmup;
        if w % self.spec.epoch_len != 0 {
            return;
        }
        let snap = telemetry.and_then(SharedTelemetry::close_epoch);
        let signals = chaos
            .as_deref_mut()
            .map(ChaosDriver::drain_signals)
            .unwrap_or_default();
        let Some(target) = self.controller.observe_epoch(snap.as_ref(), signals) else {
            return;
        };
        let cur = self.controller.plan();
        // The switch draw is a pure function of (adapt seed, access
        // index), like every other chaos/churn decision.
        let draw = split_seed(self.spec.seed, i);
        if !machine.apply_plan(mmu, &cur, &target, draw) {
            return;
        }
        let denied = chaos
            .as_deref_mut()
            .is_some_and(ChaosDriver::consume_denial);
        let seg = machine.segment_layers();
        if denied {
            // The promotion's allocation was denied mid-flight: roll the
            // MMU back to the current plan. Both applications run inside
            // their own mode-switch batch, so the aborted switch costs the
            // run two full flushes — the hardware price of flapping.
            machine.apply_plan(mmu, &target, &cur, draw);
            self.controller.reject(i, target, "balloon_denial");
            if let Some(c) = chaos.as_deref_mut() {
                c.note_plan_transition(i, target.ladder_level(seg), "promotion");
                c.note_plan_transition(i, cur.ladder_level(seg), "balloon_denial");
                c.note_rollback();
            }
        } else {
            self.controller.commit(i, target, "promotion");
            if let Some(c) = chaos {
                c.note_plan_transition(i, target.ladder_level(seg), "promotion");
            }
        }
    }

    /// Closes the driver into its report and the telemetry-facing
    /// transition records.
    pub(crate) fn finish(self) -> (AdaptReport, Vec<TransitionRecord>) {
        let (report, transitions) = self.controller.finish();
        let records = transitions.iter().map(|t| t.record()).collect();
        (report, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_pages_are_deterministic_and_in_range() {
        let a: Vec<u64> = escape_pages(0x1000_0000, 8 << 20, 99).collect();
        let b: Vec<u64> = escape_pages(0x1000_0000, 8 << 20, 99).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), ESCAPE_PAGES as usize);
        for p in &a {
            assert_eq!(p & 0xfff, 0, "page-aligned");
            assert!((0x1000_0000..0x1000_0000 + (8 << 20)).contains(p));
        }
        let c: Vec<u64> = escape_pages(0x1000_0000, 8 << 20, 100).collect();
        assert_ne!(a, c, "different draws pick different pages");
    }
}
