//! The chaos driver: deterministic fault injection, the degradation state
//! machine, and oracle accounting, threaded through the generic access
//! loop.
//!
//! The driver owns everything machine-independent: *when* faults fire
//! ([`FaultPlan`]), *which* degradation level the run sits at, the
//! exponential-backoff retry clock for recovery (measured in simulated
//! accesses), and the translation oracle that cross-checks every completed
//! access. The machines own the mechanics — how a level is entered on
//! *their* MMU programming, and how the reference translation is derived
//! from their authoritative software structures.
//!
//! Degradation is MMU-side only: the authoritative segments stay intact in
//! the OS/VMM models, and a level change only re-programs (or nullifies)
//! the MMU's copy. Frames demand-mapped while degraded are therefore the
//! segment-computed frames, so recovery — re-programming the stored
//! segment — can never diverge from the page tables built meanwhile.

use mv_chaos::{
    ChaosFault, ChaosReport, ChaosSpec, DegradeLevel, FaultPlan, Transition, TranslationOracle,
};
use mv_core::Mmu;
use mv_obs::TransitionRecord;
use mv_types::Gva;

use crate::machine::Machine;

/// Initial recovery backoff, in simulated accesses.
const BACKOFF_BASE: u64 = 64;

/// Backoff cap (the run keeps retrying, just not pathologically often).
const BACKOFF_CAP: u64 = 1 << 20;

/// Pages inserted into the escape filter when entering escape-heavy
/// operation.
const ESCAPE_PAGES: u64 = 32;

/// Deterministic selection of escaped 4 KiB pages over a segment span:
/// a golden-ratio stride keyed on the fault's draw word. Duplicates are
/// harmless (Bloom filter).
pub(crate) fn escape_pages(start: u64, len: u64, draw: u64) -> impl Iterator<Item = u64> {
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    let pages = (len >> 12).max(1);
    (0..ESCAPE_PAGES).map(move |j| {
        let off = draw.wrapping_add(j.wrapping_mul(GOLDEN)) % pages;
        start + (off << 12)
    })
}

/// Per-run chaos state: plan, oracle, and the degradation state machine.
pub(crate) struct ChaosDriver {
    plan: FaultPlan,
    oracle: TranslationOracle,
    level: DegradeLevel,
    backoff: u64,
    next_retry: Option<u64>,
    pending_denial: bool,
    injected: [u64; 5],
    denials: u64,
    recoveries: u64,
    failed_recoveries: u64,
    residency: [u64; 3],
    transitions: Vec<Transition>,
}

impl ChaosDriver {
    pub(crate) fn new(spec: ChaosSpec) -> Self {
        ChaosDriver {
            plan: FaultPlan::new(spec),
            oracle: TranslationOracle::new(),
            level: DegradeLevel::Direct,
            backoff: BACKOFF_BASE,
            next_retry: None,
            pending_denial: false,
            injected: [0; 5],
            denials: 0,
            recoveries: 0,
            failed_recoveries: 0,
            residency: [0; 3],
            transitions: Vec::new(),
        }
    }

    /// Runs before access `i`: counts residency, injects any scheduled
    /// fault, and drives the recovery retry clock.
    pub(crate) fn pre_access<M: Machine>(&mut self, machine: &mut M, mmu: &mut Mmu, i: u64) {
        self.residency[self.level.index()] += 1;

        if let Some(kind) = self.plan.due(i) {
            self.injected[kind.index()] += 1;
            let draw = self.plan.draw(i);
            match kind {
                ChaosFault::FrameLoss => {
                    machine.chaos_frame_loss(draw);
                }
                ChaosFault::FragStorm => {
                    machine.chaos_frag_storm(draw);
                }
                ChaosFault::SpuriousVmExit => machine.chaos_spurious_exit(),
                ChaosFault::BalloonDenial => {
                    // The next recovery attempt finds its balloon/compaction
                    // request denied and re-arms the backoff.
                    self.pending_denial = true;
                }
                ChaosFault::SegmentAllocFail => {
                    let target = match self.level {
                        DegradeLevel::Direct => Some(DegradeLevel::EscapeHeavy),
                        DegradeLevel::EscapeHeavy => Some(DegradeLevel::Paging),
                        DegradeLevel::Paging => None,
                    };
                    if let Some(to) = target {
                        if machine.degrade_to(mmu, to, draw) {
                            self.transitions.push(Transition {
                                access: i,
                                from: self.level,
                                to,
                                cause: kind.label(),
                            });
                            self.level = to;
                            self.backoff = BACKOFF_BASE;
                            self.next_retry = Some(i + self.backoff);
                        }
                    }
                    // Never attempt recovery on the access that degraded.
                    return;
                }
            }
        }

        if self.level != DegradeLevel::Direct {
            if let Some(at) = self.next_retry {
                if i >= at {
                    self.attempt_recovery(machine, mmu, i);
                }
            }
        }
    }

    /// One recovery attempt: denied (injected stall), successful, or
    /// failed — the latter two re-arm or clear the retry clock.
    fn attempt_recovery<M: Machine>(&mut self, machine: &mut M, mmu: &mut Mmu, i: u64) {
        if self.pending_denial {
            // An injected self-balloon denial stalls this attempt. It is an
            // external delay, not evidence recovery cannot work, so retry at
            // the same cadence — doubling here would make the denial window
            // grow with the backoff and lock the run degraded forever.
            self.pending_denial = false;
            self.denials += 1;
            self.next_retry = Some(i + self.backoff);
            return;
        }
        if machine.try_recover(mmu) {
            self.transitions.push(Transition {
                access: i,
                from: self.level,
                to: DegradeLevel::Direct,
                cause: "recovery",
            });
            self.level = DegradeLevel::Direct;
            self.recoveries += 1;
            self.backoff = BACKOFF_BASE;
            self.next_retry = None;
        } else {
            self.failed_recoveries += 1;
            self.rearm(i);
        }
    }

    fn rearm(&mut self, i: u64) {
        self.backoff = (self.backoff * 2).min(BACKOFF_CAP);
        self.next_retry = Some(i + self.backoff);
    }

    /// Runs after access `i` completed: cross-checks the MMU's answer
    /// against the machine's reference translation.
    pub(crate) fn post_access<M: Machine>(&mut self, machine: &M, i: u64, va: Gva, actual: u64) {
        let expected = machine.reference_translate(va);
        self.oracle.check(i, va.as_u64(), expected, actual);
    }

    /// Closes the driver into its report and the telemetry-facing
    /// transition records.
    pub(crate) fn finish(self) -> (ChaosReport, Vec<TransitionRecord>) {
        let records = self
            .transitions
            .iter()
            .map(|t| TransitionRecord {
                access: t.access,
                from: t.from.label(),
                to: t.to.label(),
                cause: t.cause,
            })
            .collect();
        (
            ChaosReport {
                injected: self.injected,
                denials: self.denials,
                recoveries: self.recoveries,
                failed_recoveries: self.failed_recoveries,
                transitions: self.transitions.len() as u64,
                residency: self.residency,
                oracle_checks: self.oracle.checks(),
                oracle_violations: self.oracle.violation_count(),
                final_level: self.level,
            },
            records,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_pages_are_deterministic_and_in_range() {
        let a: Vec<u64> = escape_pages(0x1000_0000, 8 << 20, 99).collect();
        let b: Vec<u64> = escape_pages(0x1000_0000, 8 << 20, 99).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), ESCAPE_PAGES as usize);
        for p in &a {
            assert_eq!(p & 0xfff, 0, "page-aligned");
            assert!((0x1000_0000..0x1000_0000 + (8 << 20)).contains(p));
        }
        let c: Vec<u64> = escape_pages(0x1000_0000, 8 << 20, 100).collect();
        assert_ne!(a, c, "different draws pick different pages");
    }
}
