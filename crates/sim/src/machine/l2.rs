//! Nested-nested (L2) virtualization: an L2 guest on an L1 hypervisor on
//! the L0 host — the 3-deep layer stack that extends the paper's
//! dimensionality study one level down.
//!
//! Two strategies ship. **Nested-on-nested** lets the hardware walk all
//! three layers (3D walks, up to 124 references), with a direct segment
//! optionally placed per layer by the [`TranslationMode::L2Nested`]
//! flags. **Shadow-on-nested** has the L1 hypervisor collapse the top two
//! layers into one gVA→B shadow table, so the hardware does ordinary 2D
//! walks — but every shadow resync costs an L1 exit that L0 must emulate
//! ([`mv_vmm::L2_EXIT_MULTIPLIER`]× a plain exit).

use mv_adapt::ModePlan;
use mv_chaos::DegradeLevel;
use mv_core::{
    LayerStack, MemoryContext, Mmu, MmuConfig, Segment, TranslationFault, TranslationMode,
};
use mv_guestos::{FaultFix, GuestConfig, GuestOs, PageSizePolicy};
use mv_pt::PageTable;
use mv_types::rng::StdRng;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};
use mv_vmm::{L1Hypervisor, SegmentOptions, VmConfig, Vmm, VmmError, VM_EXIT_CYCLES};

use crate::config::{Env, GuestPaging, L2Strategy, SimConfig};
use crate::machine::degrade::guard_filter;
use crate::machine::{mmu_for, ExitStats, FaultService, Machine, CHURN_REGION};
use crate::run::SimError;

/// An L2 guest process over an L1 hypervisor over the L0 host: three
/// address spaces (gVA → A → B → hPA) and, under nested-on-nested, the
/// 3D walker behind [`MemoryContext::l2`].
#[derive(Debug)]
pub struct L2Machine {
    vmm: Vmm,
    vm: mv_vmm::VmId,
    l1: L1Hypervisor,
    guest: GuestOs,
    /// Shadow-on-nested only: the L1-maintained gVA→B table collapsing
    /// the guest and mid layers (stored in space B like the mid table).
    shadow: Option<PageTable<Gva, Gpa>>,
    pid: u32,
    base: u64,
    churn_base: Gva,
    churn_cursor: u64,
    l0_exits_at_reset: u64,
    l1_exits_at_reset: u64,
    l1_exit_cycles_at_reset: u64,
    stack: LayerStack,
}

impl Machine for L2Machine {
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
        let Env::L2 {
            mid,
            nested,
            mode,
            strategy,
        } = cfg.env
        else {
            unreachable!("dispatched on env");
        };
        // Space A sizing follows the 2-level guest; space B must hold the
        // mid mappings (rounded to mid pages), a possible mid-segment
        // copy, and the mid/shadow tables; the host likewise for space B.
        let installed = cfg.footprint + cfg.footprint / 2 + 96 * MIB;
        let b_span = 2 * installed.next_multiple_of(mid.bytes()) + 128 * MIB;
        let host = 2 * b_span.next_multiple_of(nested.bytes()) + 128 * MIB;
        let mut vmm = Vmm::new(host);
        // The L0 VM spans all of space B: in a 3D walk the mid-table
        // frames themselves are read through the nested dimension.
        let vm = vmm.create_vm(VmConfig::new(b_span, nested))?;
        let mut l1 = L1Hypervisor::boot(b_span, installed, mid)?;
        let mut guest = GuestOs::boot(GuestConfig::small(installed))?;
        let policy = match cfg.guest_paging {
            GuestPaging::Fixed(s) => PageSizePolicy::Fixed(s),
            GuestPaging::Thp => PageSizePolicy::Thp,
        };
        let pid = guest.create_process(policy)?;

        // The environment's stack carries the real mid/nested leaf sizes
        // (the mode's canonical stack assumes 4K everywhere); the collapse
        // under shadow-on-nested is handled by `Env::layer_stack` too.
        let stack = cfg.env.layer_stack(cfg.guest_paging);
        let mmu_mode = match strategy {
            L2Strategy::NestedNested => mode,
            // The hardware walks shadow × nested: a 2-layer stack.
            L2Strategy::ShadowOnNested => TranslationMode::BaseVirtualized,
        };
        let layers = l2_layers(mode.stack());
        let base = if layers[0].needs_escape_handling() {
            guest.create_primary_region(pid, cfg.footprint)?
        } else {
            guest.mmap(pid, cfg.footprint, Prot::RW)?
        }
        .as_u64();
        let mut mmu = mmu_for(hw, mmu_mode);

        // Each direct-segment layer gets its registers programmed…
        if matches!(strategy, L2Strategy::NestedNested) {
            if layers[0].needs_escape_handling() {
                let seg = guest.setup_guest_segment(pid)?;
                mmu.set_guest_segment(seg);
            }
            if layers[1].needs_escape_handling() {
                let span = guest.mem().size_bytes();
                let seg = l1.create_mid_segment(AddrRange::new(Gpa::ZERO, Gpa::new(span)))?;
                mmu.set_mid_segment(seg);
            }
            if layers[2].needs_escape_handling() {
                let span = l1.mem().size_bytes();
                let seg = vmm.create_vmm_segment(
                    vm,
                    AddrRange::new(Gpa::ZERO, Gpa::new(span)),
                    SegmentOptions::default(),
                )?;
                mmu.set_vmm_segment(seg);
            }
        }
        // …and each paging layer gets its table pre-populated to steady
        // state (the shadow strategy always needs the guest table — it is
        // what the shadow mirrors).
        if layers[0].mode.is_paging() {
            guest.populate(pid, Gva::new(base), cfg.footprint)?;
        }
        if layers[1].mode.is_paging() {
            let span = guest.mem().size_bytes();
            l1.map_range(AddrRange::new(Gpa::ZERO, Gpa::new(span)))?;
        }
        if layers[2].mode.is_paging() {
            let span = l1.mem().size_bytes();
            vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(span)))?;
        }

        let shadow = match strategy {
            L2Strategy::NestedNested => None,
            L2Strategy::ShadowOnNested => {
                let mut spt = PageTable::new(l1.mem_mut()).map_err(VmmError::from)?;
                for fix in &guest.leaf_fixes(pid) {
                    sync_shadow(&mut spt, &mut l1, fix)?;
                }
                Some(spt)
            }
        };

        let churn_base = guest.mmap(pid, CHURN_REGION, Prot::RW)?;
        Ok((
            L2Machine {
                vmm,
                vm,
                l1,
                guest,
                shadow,
                pid,
                base,
                churn_base,
                churn_cursor: 0,
                l0_exits_at_reset: 0,
                l1_exits_at_reset: 0,
                l1_exit_cycles_at_reset: 0,
                stack,
            },
            mmu,
        ))
    }

    /// Nested-on-nested reports the mode's 3-layer stack;
    /// shadow-on-nested reports the 2-layer stack the hardware actually
    /// walks (the collapse is the point of that strategy).
    fn layer_stack(&self) -> LayerStack {
        self.stack
    }

    fn arena_base(&self) -> u64 {
        self.base
    }

    fn asid(&self) -> u16 {
        self.pid as u16
    }

    fn ctx(&mut self) -> MemoryContext<'_> {
        match &self.shadow {
            Some(spt) => MemoryContext::virtualized(
                (spt, self.l1.mem()),
                self.vmm.npt_and_hmem(self.vm),
            ),
            None => MemoryContext::l2(
                self.guest.pt_and_mem(self.pid),
                self.l1.mpt_and_mem(),
                self.vmm.npt_and_hmem(self.vm),
            ),
        }
    }

    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
        match fault {
            TranslationFault::GuestNotMapped { gva } => {
                if self.shadow.is_some() {
                    // Shadow miss: a real guest fault or a hidden one
                    // (guest mapped it; only the shadow is stale).
                    let fix = match self.guest.lookup_fix(self.pid, gva) {
                        Some(fix) => fix,
                        None => self.guest.handle_page_fault(self.pid, gva)?,
                    };
                    if let Some(spt) = &mut self.shadow {
                        sync_shadow(spt, &mut self.l1, &fix)?;
                    }
                } else {
                    self.guest.handle_page_fault(self.pid, gva)?;
                }
                Ok(FaultService::Serviced)
            }
            TranslationFault::MidNotMapped { gpa, .. } => {
                self.l1.handle_mid_fault(gpa)?;
                Ok(FaultService::Serviced)
            }
            TranslationFault::NestedNotMapped { gpa, .. } => {
                self.vmm.handle_nested_fault(self.vm, gpa)?;
                Ok(FaultService::Serviced)
            }
            _ => Ok(FaultService::Unserviceable),
        }
    }

    /// Allocation churn in the L2 guest. Under shadow-on-nested every
    /// guest page-table change additionally traps to L1 (L0-emulated) to
    /// resync the shadow.
    fn churn_event(&mut self, mmu: &mut Mmu) -> Result<(), SimError> {
        let va = Gva::new(self.churn_base.as_u64() + (self.churn_cursor % CHURN_REGION));
        self.churn_cursor += PageSize::Size4K.bytes();
        if let Some((va_page, size)) = self.guest.unmap_page(self.pid, va)? {
            mmu.invalidate_page(self.pid as u16, va_page);
            if let Some(spt) = &mut self.shadow {
                // The PT write traps to L1; stale shadow leaves go. The
                // shadow maps at 4 KiB, so larger guest leaves drop one
                // entry per covered small page (absent entries are fine).
                self.l1.record_spurious_exit();
                for off in (0..size.bytes()).step_by(PageSize::Size4K.bytes() as usize) {
                    let _ = spt.unmap(
                        self.l1.mem_mut(),
                        Gva::new(va_page.as_u64() + off),
                        PageSize::Size4K,
                    );
                }
            }
        } else {
            let fix = self.guest.handle_page_fault(self.pid, va)?;
            if let Some(spt) = &mut self.shadow {
                sync_shadow(spt, &mut self.l1, &fix)?;
            }
        }
        Ok(())
    }

    fn window_open(&mut self) {
        self.l0_exits_at_reset = self.vmm.vm_exits(self.vm);
        self.l1_exits_at_reset = self.l1.counters().l1_exits;
        self.l1_exit_cycles_at_reset = self.l1.exit_cycles();
    }

    fn exit_stats(&self) -> ExitStats {
        let l0 = self.vmm.vm_exits(self.vm) - self.l0_exits_at_reset;
        let l1 = self.l1.counters().l1_exits - self.l1_exits_at_reset;
        let l1_cycles = self.l1.exit_cycles() - self.l1_exit_cycles_at_reset;
        ExitStats {
            cycles: l0 as f64 * VM_EXIT_CYCLES as f64 + l1_cycles as f64,
            vm_exits: l0 + l1,
        }
    }

    fn chaos_frame_loss(&mut self, draw: u64) -> u64 {
        let range = AddrRange::new(Hpa::ZERO, Hpa::new(self.vmm.hmem().size_bytes()));
        let n = 1 + (draw % 4) as usize;
        let mut rng = StdRng::seed_from_u64(draw);
        self.vmm
            .hmem_mut()
            .inject_bad_frames(&mut rng, &range, n)
            .map_or(0, |lost| lost.len() as u64)
    }

    fn chaos_frag_storm(&mut self, draw: u64) -> u64 {
        let n = 2 + draw % 6;
        let mut taken = 0;
        for _ in 0..n {
            if self.vmm.hmem_mut().alloc(PageSize::Size4K).is_err() {
                break;
            }
            taken += 1;
        }
        taken
    }

    fn chaos_spurious_exit(&mut self) {
        // An L1 interrupt amplified through L0 emulation.
        self.l1.record_spurious_exit();
    }

    /// Shadow-on-nested owns no segments (`[false; 3]`) — the collapse
    /// already pins the hardware to the 2D walk path.
    fn segment_layers(&self) -> [bool; 3] {
        if self.shadow.is_some() {
            return [false; 3];
        }
        let layers = l2_layers(self.stack);
        [
            layers[0].needs_escape_handling()
                && self.guest.process(self.pid).segment().is_some(),
            layers[1].needs_escape_handling() && self.l1.segment().is_some(),
            layers[2].needs_escape_handling() && self.vmm.vm(self.vm).segment().is_some(),
        ]
    }

    fn apply_plan(&mut self, mmu: &mut Mmu, from: &ModePlan, to: &ModePlan, draw: u64) -> bool {
        let seg_layers = self.segment_layers();
        if !(0..3).any(|k| seg_layers[k] && from.level(k) != to.level(k)) {
            return false;
        }
        let guest_seg = seg_layers[0]
            .then(|| self.guest.process(self.pid).segment())
            .flatten();
        let mid_seg = seg_layers[1].then(|| self.l1.segment()).flatten();
        let vmm_seg = seg_layers[2].then(|| self.vmm.vm(self.vm).segment()).flatten();
        // The VM's authoritative filter: restored as-is on direct host
        // operation, extended under escape-heavy — bad frames must keep
        // escaping either way.
        let vm_filter = self.vmm.vm(self.vm).escape_filter().cloned();
        mmu.mode_switch(|ms| {
            if let Some(seg) = guest_seg {
                if from.level(0) != to.level(0) {
                    match to.level(0) {
                        DegradeLevel::Direct => {
                            ms.set_guest_escape_filter(None);
                            ms.set_guest_segment(seg);
                        }
                        DegradeLevel::EscapeHeavy => {
                            let range = seg.range();
                            ms.set_guest_escape_filter(Some(guard_filter(
                                None,
                                range.start().as_u64(),
                                range.len(),
                                draw,
                            )));
                            ms.set_guest_segment(seg);
                        }
                        DegradeLevel::Paging => {
                            ms.set_guest_escape_filter(None);
                            ms.set_guest_segment(Segment::nullified());
                        }
                    }
                }
            }
            if let Some(seg) = mid_seg {
                if from.level(1) != to.level(1) {
                    match to.level(1) {
                        DegradeLevel::Direct => {
                            ms.set_mid_escape_filter(None);
                            ms.set_mid_segment(seg);
                        }
                        DegradeLevel::EscapeHeavy => {
                            let range = seg.range();
                            ms.set_mid_escape_filter(Some(guard_filter(
                                None,
                                range.start().as_u64(),
                                range.len(),
                                draw,
                            )));
                            ms.set_mid_segment(seg);
                        }
                        DegradeLevel::Paging => {
                            ms.set_mid_escape_filter(None);
                            ms.set_mid_segment(Segment::nullified());
                        }
                    }
                }
            }
            if let Some(seg) = vmm_seg {
                if from.level(2) != to.level(2) {
                    match to.level(2) {
                        DegradeLevel::Direct => {
                            ms.set_vmm_escape_filter(vm_filter.clone());
                            ms.set_vmm_segment(seg);
                        }
                        DegradeLevel::EscapeHeavy => {
                            let range = seg.range();
                            ms.set_vmm_escape_filter(Some(guard_filter(
                                vm_filter.clone(),
                                range.start().as_u64(),
                                range.len(),
                                draw,
                            )));
                            ms.set_vmm_segment(seg);
                        }
                        DegradeLevel::Paging => {
                            ms.set_vmm_escape_filter(None);
                            ms.set_vmm_segment(Segment::nullified());
                        }
                    }
                }
            }
        });
        true
    }

    fn reference_translate(&self, va: Gva) -> Option<u64> {
        // Chain the three authoritative software layers (the shadow, when
        // present, mirrors guest∘mid and lands on the same host address).
        // Each dimension tries its table first — escaped pages map their
        // segment-computed targets there — then segment arithmetic.
        let (gpt, amem) = self.guest.pt_and_mem(self.pid);
        let apa = gpt.translate(amem, va).map(|t| t.pa).or_else(|| {
            self.guest
                .process(self.pid)
                .segment()
                .and_then(|s| s.translate(va))
        })?;
        let (mpt, bmem) = self.l1.mpt_and_mem();
        let bpa = mpt
            .translate(bmem, apa)
            .map(|t| t.pa)
            .or_else(|| self.l1.segment().and_then(|s| s.translate(apa)))?;
        let (npt, hmem) = self.vmm.npt_and_hmem(self.vm);
        npt.translate(hmem, bpa)
            .map(|t| t.pa.as_u64())
            .or_else(|| {
                self.vmm
                    .vm(self.vm)
                    .segment()
                    .and_then(|s| s.translate(bpa))
                    .map(|h| h.as_u64())
            })
    }
}

/// Splits an L2 mode's 3-deep layer stack into guest, mid, and host
/// layers.
fn l2_layers(stack: LayerStack) -> [mv_core::TranslationLayer; 3] {
    match *stack.layers() {
        [g, m, h] => [g, m, h],
        _ => unreachable!("L2 modes build 3-layer stacks"),
    }
}

/// Resyncs the gVA→B shadow for one guest leaf: the trapped PT write is
/// an L1 exit, the covered space-A pages get mid mappings on demand, and
/// each 4 KiB sub-page is shadow-mapped to its composed space-B address.
fn sync_shadow(
    spt: &mut PageTable<Gva, Gpa>,
    l1: &mut L1Hypervisor,
    fix: &FaultFix,
) -> Result<(), SimError> {
    l1.record_spurious_exit();
    for off in (0..fix.size.bytes()).step_by(PageSize::Size4K.bytes() as usize) {
        let apa = fix.gpa.add(off);
        l1.handle_mid_fault(apa)?;
        let bpa = {
            let (mpt, bmem) = l1.mpt_and_mem();
            // Just demand-mapped above, so the translation must exist.
            match mpt.translate(bmem, apa) {
                Some(t) => Gpa::new(t.pa.as_u64() & !PageSize::Size4K.offset_mask()),
                None => return Err(SimError::Vmm(VmmError::OutsideSlots { gpa: apa.as_u64() })),
            }
        };
        let va = Gva::new(fix.va_page.as_u64() + off);
        match spt.translate(l1.mem(), va) {
            Some(t) if t.page_base == bpa => {}
            Some(_) => {
                // Stale entry (guest remapped the page): replace it.
                spt.unmap(l1.mem_mut(), va, PageSize::Size4K)
                    .map_err(VmmError::from)?;
                spt.map(l1.mem_mut(), va, bpa, PageSize::Size4K, fix.prot)
                    .map_err(VmmError::from)?;
            }
            None => {
                spt.map(l1.mem_mut(), va, bpa, PageSize::Size4K, fix.prot)
                    .map_err(VmmError::from)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_workloads::WorkloadKind;

    fn l2_cfg(env: Env) -> SimConfig {
        SimConfig {
            workload: WorkloadKind::Gups,
            footprint: 4 * MIB,
            guest_paging: GuestPaging::Fixed(PageSize::Size4K),
            env,
            accesses: 200,
            warmup: 0,
            seed: 7,
        }
    }

    #[test]
    fn nested_nested_translates_through_three_layers() {
        // Walk caching off so the cold walk pays the full T(3) budget.
        let hw = MmuConfig {
            walk_caching: false,
            ..MmuConfig::default()
        };
        let (mut m, mut mmu) =
            L2Machine::build(&l2_cfg(Env::l2(false, false, false)), hw).unwrap();
        let asid = m.asid();
        let va = Gva::new(m.arena_base());
        let hpa = mmu.access(&m.ctx(), asid, va, false).expect("steady state");
        assert_eq!(
            m.reference_translate(va),
            Some(hpa.hpa.as_u64()),
            "hardware walk and software chain must agree"
        );
        // A fully-paged cold 3D walk costs the 124-reference budget.
        let c = mmu.counters();
        assert_eq!(
            c.guest_walk_refs + c.mid_walk_refs + c.nested_walk_refs,
            124
        );
    }

    #[test]
    fn triple_direct_composes_three_segments() {
        let (mut m, mut mmu) =
            L2Machine::build(&l2_cfg(Env::l2(true, true, true)), MmuConfig::default()).unwrap();
        let asid = m.asid();
        let va = Gva::new(m.arena_base());
        let hpa = mmu.access(&m.ctx(), asid, va, false).expect("bypass");
        assert_eq!(m.reference_translate(va), Some(hpa.hpa.as_u64()));
        let c = mmu.counters();
        assert_eq!(
            c.guest_walk_refs + c.mid_walk_refs + c.nested_walk_refs,
            0,
            "triple direct walks nothing"
        );
    }

    #[test]
    fn shadow_on_nested_walks_two_dimensions_and_prices_l1_exits() {
        let (mut m, mut mmu) =
            L2Machine::build(&l2_cfg(Env::l2_shadow()), MmuConfig::default()).unwrap();
        assert_eq!(m.layer_stack().depth(), 2, "shadow collapses to 2D");
        let asid = m.asid();
        let va = Gva::new(m.arena_base());
        let hpa = mmu.access(&m.ctx(), asid, va, false).expect("shadowed");
        assert_eq!(
            m.reference_translate(va),
            Some(hpa.hpa.as_u64()),
            "collapsed shadow must land on the composed host address"
        );
        assert_eq!(mmu.counters().mid_walk_refs, 0, "no mid dimension in 2D");

        // A churn remap takes amplified L1 exits through the L0 emulation.
        m.window_open();
        m.churn_event(&mut mmu).unwrap();
        let stats = m.exit_stats();
        assert!(stats.vm_exits >= 1, "shadow churn exits");
        assert!(
            stats.cycles >= (mv_vmm::L2_EXIT_MULTIPLIER * VM_EXIT_CYCLES) as f64,
            "L1 exits are L0-emulated, so they cost the multiplier"
        );
    }

    #[test]
    fn mid_faults_are_serviced_by_the_l1_hypervisor() {
        let (mut m, mut mmu) =
            L2Machine::build(&l2_cfg(Env::l2(false, false, false)), MmuConfig::default()).unwrap();
        let asid = m.asid();
        // Map a fresh guest page whose space-A frame has no mid mapping
        // yet? The prefill covered all of space A, so instead drive the
        // churn path: unmap + refault exercises the full fault chain.
        for _ in 0..8 {
            m.churn_event(&mut mmu).unwrap();
        }
        let va = Gva::new(m.churn_base.as_u64());
        let mut guard = 0;
        loop {
            match mmu.access(&m.ctx(), asid, va, true) {
                Ok(_) => break,
                Err(fault) => {
                    assert_eq!(m.service_fault(fault).unwrap(), FaultService::Serviced);
                    guard += 1;
                    assert!(guard < 8, "fault chain must converge");
                }
            }
        }
    }
}
