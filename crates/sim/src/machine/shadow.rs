//! Shadow paging (§IX.D): the hardware walks a VMM-maintained gVA→hPA
//! shadow table natively, and every guest page-table update takes a VM
//! exit.

use mv_core::{LayerStack, MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::GuestOs;
use mv_types::rng::StdRng;
use mv_types::{AddrRange, Gva, Hpa, PageSize, Prot};
use mv_vmm::{ShadowPaging, Vmm};

use crate::config::{Env, SimConfig};
use crate::machine::virtualized::build_guest;
use crate::machine::{mmu_for, ExitStats, FaultService, Machine, CHURN_REGION};
use crate::run::SimError;

/// A guest OS whose page table is mirrored by a VMM shadow table; the MMU
/// runs a native-style 1D configuration over the shadow.
#[derive(Debug)]
pub struct ShadowMachine {
    vmm: Vmm,
    guest: GuestOs,
    shadow: ShadowPaging,
    pid: u32,
    base: u64,
    churn_base: Gva,
    churn_cursor: u64,
    exits_at_reset: u64,
    exit_cycles_at_reset: u64,
}

impl Machine for ShadowMachine {
    fn build(cfg: &SimConfig, hw: MmuConfig) -> Result<(Self, Mmu), SimError> {
        let Env::Shadow { nested } = cfg.env else {
            unreachable!("dispatched on env");
        };
        let (mut vmm, vm, mut guest, pid, base) =
            build_guest(cfg, nested, TranslationMode::BaseVirtualized)?;
        let mut shadow = ShadowPaging::new(vm);
        shadow.shadow_for(&mut vmm, pid)?;
        // The hardware walks the shadow table: a native-style 1D
        // configuration.
        let mmu = mmu_for(hw, TranslationMode::BaseNative);

        // Steady state: populate the guest table, then bulk-sync the
        // shadow (boot-time churn; the measurement window starts after
        // warmup).
        guest.populate(pid, Gva::new(base), cfg.footprint)?;
        for fix in &guest.leaf_fixes(pid) {
            shadow.on_guest_update(&mut vmm, pid, fix)?;
        }

        let churn_base = guest.mmap(pid, CHURN_REGION, Prot::RW)?;
        Ok((
            ShadowMachine {
                vmm,
                guest,
                shadow,
                pid,
                base,
                churn_base,
                churn_cursor: 0,
                exits_at_reset: 0,
                exit_cycles_at_reset: 0,
            },
            mmu,
        ))
    }

    /// Shadowing collapses the 2-layer software stack into the single
    /// layer the hardware walks.
    fn layer_stack(&self) -> LayerStack {
        TranslationMode::BaseNative.stack()
    }

    fn arena_base(&self) -> u64 {
        self.base
    }

    fn asid(&self) -> u16 {
        self.pid as u16
    }

    fn ctx(&mut self) -> MemoryContext<'_> {
        MemoryContext::native((self.shadow.table(self.pid), self.vmm.hmem()))
    }

    fn service_fault(&mut self, fault: TranslationFault) -> Result<FaultService, SimError> {
        match fault {
            TranslationFault::GuestNotMapped { gva } => {
                // Shadow miss: either the guest lacks the page (real
                // fault) or only the shadow is stale (hidden fault, §IX.D
                // — the guest already mapped the page and the VMM merely
                // resyncs the shadow entry).
                let fix = match self.guest.lookup_fix(self.pid, gva) {
                    Some(fix) => fix,
                    None => self.guest.handle_page_fault(self.pid, gva)?,
                };
                self.shadow.on_guest_update(&mut self.vmm, self.pid, &fix)?;
                Ok(FaultService::Serviced)
            }
            _ => Ok(FaultService::Unserviceable),
        }
    }

    /// Shadow-mode churn: every guest page-table change takes a VM exit.
    fn churn_event(&mut self, mmu: &mut Mmu) -> Result<(), SimError> {
        let va = Gva::new(self.churn_base.as_u64() + (self.churn_cursor % CHURN_REGION));
        self.churn_cursor += PageSize::Size4K.bytes();
        if let Some((va_page, size)) = self.guest.unmap_page(self.pid, va)? {
            mmu.invalidate_page(self.pid as u16, va_page);
            self.shadow
                .on_guest_unmap(&mut self.vmm, self.pid, va_page, size)?;
        } else {
            let fix = self.guest.handle_page_fault(self.pid, va)?;
            self.shadow.on_guest_update(&mut self.vmm, self.pid, &fix)?;
        }
        Ok(())
    }

    fn window_open(&mut self) {
        self.exits_at_reset = self.shadow.vm_exits();
        self.exit_cycles_at_reset = self.shadow.exit_cycles();
    }

    fn exit_stats(&self) -> ExitStats {
        ExitStats {
            cycles: (self.shadow.exit_cycles() - self.exit_cycles_at_reset) as f64,
            vm_exits: self.shadow.vm_exits() - self.exits_at_reset,
        }
    }

    fn chaos_frame_loss(&mut self, draw: u64) -> u64 {
        let range = AddrRange::new(Hpa::ZERO, Hpa::new(self.vmm.hmem().size_bytes()));
        let n = 1 + (draw % 4) as usize;
        let mut rng = StdRng::seed_from_u64(draw);
        self.vmm
            .hmem_mut()
            .inject_bad_frames(&mut rng, &range, n)
            .map_or(0, |lost| lost.len() as u64)
    }

    fn chaos_frag_storm(&mut self, draw: u64) -> u64 {
        let n = 2 + draw % 6;
        let mut taken = 0;
        for _ in 0..n {
            if self.vmm.hmem_mut().alloc(PageSize::Size4K).is_err() {
                break;
            }
            taken += 1;
        }
        taken
    }

    fn chaos_spurious_exit(&mut self) {
        self.shadow.record_spurious_exit();
    }

    // Shadow paging has no segment, so there is nothing to degrade:
    // `degrade_to`/`try_recover` keep their `false` defaults and the run
    // stays at the Direct residency level throughout.

    fn reference_translate(&self, va: Gva) -> Option<u64> {
        self.shadow
            .table(self.pid)
            .translate(self.vmm.hmem(), va)
            .map(|t| t.pa.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GuestPaging;
    use mv_core::MmuConfig;
    use mv_types::MIB;
    use mv_workloads::WorkloadKind;

    fn shadow_cfg() -> SimConfig {
        SimConfig {
            workload: WorkloadKind::Gups,
            footprint: 4 * MIB,
            guest_paging: GuestPaging::Fixed(PageSize::Size4K),
            env: Env::Shadow {
                nested: PageSize::Size4K,
            },
            accesses: 100,
            warmup: 0,
            seed: 3,
        }
    }

    /// The hidden-fault path (§IX.D): the guest has a valid mapping but
    /// the shadow is stale, so the shadow miss must resync from the guest
    /// table — NOT take a guest-visible page fault (which would allocate
    /// a fresh frame and change the guest mapping).
    #[test]
    fn stale_shadow_with_mapped_guest_resyncs_without_a_guest_fault() {
        let (mut m, mut mmu) = ShadowMachine::build(&shadow_cfg(), MmuConfig::default()).unwrap();

        // Map a churn-region page in the guest behind the shadow's back:
        // the guest now has a mapping the shadow has never seen.
        let va = m.churn_base;
        m.guest.handle_page_fault(m.pid, va).unwrap();
        let (gpt, gmem) = m.guest.pt_and_mem(m.pid);
        let guest_gpa = gpt.translate(gmem, va).expect("guest mapped it").page_base;
        assert!(
            m.shadow
                .table(m.pid)
                .translate(m.vmm.hmem(), va)
                .is_none(),
            "shadow must be stale for this test"
        );

        // The access faults on the stale shadow…
        let asid = m.asid();
        let fault = mmu
            .access(&m.ctx(), asid, va, false)
            .expect_err("stale shadow faults");
        assert!(matches!(fault, TranslationFault::GuestNotMapped { .. }));
        let exits_before = m.shadow.vm_exits();

        // …and servicing it takes the hidden-fault path: one VM exit, the
        // shadow resyncs, and the guest mapping is untouched.
        assert_eq!(m.service_fault(fault).unwrap(), FaultService::Serviced);
        assert_eq!(m.shadow.vm_exits(), exits_before + 1, "resync costs one exit");
        assert!(
            m.shadow.table(m.pid).translate(m.vmm.hmem(), va).is_some(),
            "shadow now holds the entry"
        );
        let (gpt, gmem) = m.guest.pt_and_mem(m.pid);
        assert_eq!(
            gpt.translate(gmem, va).expect("still mapped").page_base,
            guest_gpa,
            "a hidden fault must not re-fault (and re-allocate) in the guest"
        );

        // The retried access now succeeds.
        mmu.access(&m.ctx(), asid, va, false).expect("resynced");
    }
}
