//! x86-64 4-level radix page tables, stored in simulated physical frames.
//!
//! Page tables here are *real* data structures, not lookup maps: every
//! page-table page occupies one 4 KiB frame of a [`mv_phys::PhysMem`] and
//! holds 512 64-bit entries in (simplified) x86-64 format. A walk therefore
//! performs genuine memory reads — which is exactly what the paper's 2D
//! nested-walk cost model counts. The same type serves as:
//!
//! * the **guest page table** (gVA→gPA), living in guest-physical frames,
//! * the **nested page table** (gPA→hPA), living in host-physical frames,
//! * the **shadow page table** (gVA→hPA) for the Section IX.D comparison,
//! * a plain **native page table** (VA→PA) for unvirtualized baselines.
//!
//! The crate separates pure index math ([`walk`]) from table mutation
//! ([`PageTable`]) so the nested walker in `mv-core` can drive a guest walk
//! one memory reference at a time, translating each page-table pointer
//! through the second dimension.
//!
//! # Example
//!
//! ```
//! use mv_phys::PhysMem;
//! use mv_pt::PageTable;
//! use mv_types::{Address, Gpa, Gva, PageSize, Prot, MIB};
//!
//! let mut mem: PhysMem<Gpa> = PhysMem::new(16 * MIB);
//! let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem)?;
//! let frame = mem.alloc(PageSize::Size4K)?;
//! pt.map(&mut mem, Gva::new(0x4000_0000), frame, PageSize::Size4K, Prot::RW)?;
//! let hit = pt.translate(&mem, Gva::new(0x4000_0123)).expect("mapped");
//! assert_eq!(hit.pa, frame.add(0x123));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod pte;
mod table;
pub mod walk;

pub use error::PtError;
pub use pte::Pte;
pub use table::{PageTable, PtStats, Translation};
pub use walk::{entry_addr, table_index, LEVELS, ROOT_LEVEL};
