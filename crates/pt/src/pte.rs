//! Page-table entry encoding (simplified x86-64 long-mode format).

use mv_types::{Address, Prot};

/// Bit 0: entry is present.
const PRESENT: u64 = 1 << 0;
/// Bit 1: writable.
const WRITABLE: u64 = 1 << 1;
/// Bit 2: user-accessible.
const USER: u64 = 1 << 2;
/// Bit 5: accessed by the hardware walker.
const ACCESSED: u64 = 1 << 5;
/// Bit 6: written through this translation.
const DIRTY: u64 = 1 << 6;
/// Bit 7: page-size bit — the entry is a leaf at level 2 (2 MiB) or level 3
/// (1 GiB).
const PS: u64 = 1 << 7;
/// Bit 63: no-execute.
const NX: u64 = 1 << 63;
/// Bits 12..=51: physical frame base.
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

/// One 64-bit page-table entry.
///
/// # Example
///
/// ```
/// use mv_pt::Pte;
/// use mv_types::{Hpa, Prot};
///
/// let pte = Pte::leaf(Hpa::new(0x1234_5000), Prot::RW);
/// assert!(pte.is_present());
/// assert_eq!(pte.addr::<Hpa>(), Hpa::new(0x1234_5000));
/// assert!(pte.prot().contains(Prot::WRITE));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Default)]
pub struct Pte(u64);

impl Pte {
    /// The all-zero (not-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Reconstructs an entry from its raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Pte {
        Pte(bits)
    }

    /// Raw bits of the entry.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds a leaf entry mapping to `frame` with protection `prot`.
    /// The PS bit is *not* set; use [`Pte::huge_leaf`] for 2 MiB / 1 GiB
    /// leaves.
    pub fn leaf<A: Address>(frame: A, prot: Prot) -> Pte {
        Pte(Self::encode(frame.as_u64(), prot))
    }

    /// Builds a large-page leaf entry (PS bit set) for level 2 or 3.
    pub fn huge_leaf<A: Address>(frame: A, prot: Prot) -> Pte {
        Pte(Self::encode(frame.as_u64(), prot) | PS)
    }

    /// Builds a non-leaf entry pointing at the next-level table page.
    /// Intermediate entries carry permissive flags; protection is enforced
    /// at the leaf, as the simulator's simplification.
    pub fn table<A: Address>(next_table: A) -> Pte {
        Pte((next_table.as_u64() & ADDR_MASK) | PRESENT | WRITABLE | USER)
    }

    fn encode(addr: u64, prot: Prot) -> u64 {
        debug_assert_eq!(addr & !ADDR_MASK, 0, "frame address {addr:#x} out of PTE range");
        let mut bits = (addr & ADDR_MASK) | PRESENT | USER;
        if prot.contains(Prot::WRITE) {
            bits |= WRITABLE;
        }
        if !prot.contains(Prot::EXEC) {
            bits |= NX;
        }
        bits
    }

    /// Whether the entry is present.
    #[inline]
    pub const fn is_present(self) -> bool {
        self.0 & PRESENT != 0
    }

    /// Whether the entry is a large-page leaf (PS bit).
    #[inline]
    pub const fn is_huge(self) -> bool {
        self.0 & PS != 0
    }

    /// The physical address stored in the entry.
    #[inline]
    pub fn addr<A: Address>(self) -> A {
        A::from_u64(self.0 & ADDR_MASK)
    }

    /// Protection implied by the flag bits.
    pub fn prot(self) -> Prot {
        let mut p = Prot::NONE;
        if self.is_present() {
            p |= Prot::READ;
            if self.0 & WRITABLE != 0 {
                p |= Prot::WRITE;
            }
            if self.0 & NX == 0 {
                p |= Prot::EXEC;
            }
        }
        p
    }

    /// Returns the entry with the accessed bit set.
    #[inline]
    #[must_use]
    pub const fn with_accessed(self) -> Pte {
        Pte(self.0 | ACCESSED)
    }

    /// Returns the entry with the dirty bit set.
    #[inline]
    #[must_use]
    pub const fn with_dirty(self) -> Pte {
        Pte(self.0 | DIRTY)
    }

    /// Whether the accessed bit is set.
    #[inline]
    pub const fn accessed(self) -> bool {
        self.0 & ACCESSED != 0
    }

    /// Whether the dirty bit is set.
    #[inline]
    pub const fn dirty(self) -> bool {
        self.0 & DIRTY != 0
    }

    /// Returns the entry with write permission removed (used for
    /// copy-on-write and dirty-tracking write protection).
    #[inline]
    #[must_use]
    pub const fn write_protected(self) -> Pte {
        Pte(self.0 & !WRITABLE)
    }
}

impl core::fmt::Debug for Pte {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if !self.is_present() {
            return write!(f, "Pte(not present)");
        }
        write!(
            f,
            "Pte(addr={:#x}, {}{}{}{})",
            self.0 & ADDR_MASK,
            self.prot(),
            if self.is_huge() { ", huge" } else { "" },
            if self.accessed() { ", A" } else { "" },
            if self.dirty() { ", D" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::Hpa;

    #[test]
    fn empty_entry_is_not_present() {
        assert!(!Pte::EMPTY.is_present());
        assert_eq!(Pte::EMPTY.prot(), Prot::NONE);
        assert_eq!(format!("{:?}", Pte::EMPTY), "Pte(not present)");
    }

    #[test]
    fn leaf_round_trips_address_and_prot() {
        let pte = Pte::leaf(Hpa::new(0xabc_d000), Prot::RW);
        assert!(pte.is_present());
        assert!(!pte.is_huge());
        assert_eq!(pte.addr::<Hpa>(), Hpa::new(0xabc_d000));
        assert_eq!(pte.prot(), Prot::RW);
    }

    #[test]
    fn exec_maps_to_nx_bit() {
        let rx = Pte::leaf(Hpa::new(0x1000), Prot::READ | Prot::EXEC);
        assert!(rx.prot().contains(Prot::EXEC));
        assert!(!rx.prot().contains(Prot::WRITE));
        let ro = Pte::leaf(Hpa::new(0x1000), Prot::READ);
        assert!(!ro.prot().contains(Prot::EXEC));
    }

    #[test]
    fn huge_leaf_sets_ps() {
        let pde = Pte::huge_leaf(Hpa::new(0x20_0000), Prot::RW);
        assert!(pde.is_huge());
        assert_eq!(pde.addr::<Hpa>(), Hpa::new(0x20_0000));
    }

    #[test]
    fn table_entry_points_at_next_level() {
        let e = Pte::table(Hpa::new(0x7000));
        assert!(e.is_present());
        assert!(!e.is_huge());
        assert_eq!(e.addr::<Hpa>(), Hpa::new(0x7000));
    }

    #[test]
    fn accessed_and_dirty_bits() {
        let pte = Pte::leaf(Hpa::new(0x1000), Prot::RW);
        assert!(!pte.accessed());
        let pte = pte.with_accessed().with_dirty();
        assert!(pte.accessed());
        assert!(pte.dirty());
        assert_eq!(pte.addr::<Hpa>(), Hpa::new(0x1000), "flags leave addr intact");
    }

    #[test]
    fn write_protection_removes_write() {
        let pte = Pte::leaf(Hpa::new(0x1000), Prot::RW).write_protected();
        assert!(!pte.prot().contains(Prot::WRITE));
        assert!(pte.prot().contains(Prot::READ));
    }

    #[test]
    fn bits_round_trip() {
        let pte = Pte::huge_leaf(Hpa::new(0x4000_0000), Prot::RWX).with_accessed();
        assert_eq!(Pte::from_bits(pte.bits()), pte);
    }
}
