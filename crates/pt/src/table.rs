//! The radix page table.

use core::marker::PhantomData;

use mv_phys::PhysMem;
use mv_types::{Address, PageSize, Prot};

use crate::pte::Pte;
use crate::walk::{entry_addr, ROOT_LEVEL};
use crate::PtError;

/// A 4-level radix page table translating `VA`-space addresses into
/// `PA`-space addresses, with its table pages stored in a
/// [`PhysMem<PA>`](mv_phys::PhysMem).
///
/// The table does not own the physical space (several tables plus data pages
/// share it), so every operation borrows the `PhysMem` explicitly.
///
/// # Example
///
/// ```
/// use mv_phys::PhysMem;
/// use mv_pt::PageTable;
/// use mv_types::{Gpa, Gva, PageSize, Prot, MIB};
///
/// let mut mem: PhysMem<Gpa> = PhysMem::new(16 * MIB);
/// let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem)?;
/// let frame = mem.alloc(PageSize::Size2M)?;
/// pt.map(&mut mem, Gva::new(0x20_0000), frame, PageSize::Size2M, Prot::RW)?;
/// assert!(pt.translate(&mem, Gva::new(0x3f_ffff)).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PageTable<VA, PA> {
    root: PA,
    stats: PtStats,
    _va: PhantomData<fn() -> VA>,
}

/// Counters describing a page table's footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtStats {
    /// Table pages currently allocated (including the root).
    pub table_pages: u64,
    /// Live 4 KiB leaf mappings.
    pub leaves_4k: u64,
    /// Live 2 MiB leaf mappings.
    pub leaves_2m: u64,
    /// Live 1 GiB leaf mappings.
    pub leaves_1g: u64,
    /// Leaf mutations (map/unmap/protect) over the table's lifetime —
    /// the update stream that shadow paging must intercept.
    pub leaf_updates: u64,
}

impl PtStats {
    /// Total live leaf mappings of any size.
    pub fn leaves(&self) -> u64 {
        self.leaves_4k + self.leaves_2m + self.leaves_1g
    }
}

/// Result of a successful software translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation<PA> {
    /// Translated physical address (leaf base + page offset).
    pub pa: PA,
    /// Base physical address of the containing page.
    pub page_base: PA,
    /// Size of the mapping that translated the address.
    pub size: PageSize,
    /// Leaf protection.
    pub prot: Prot,
}

impl<VA: Address, PA: Address> PageTable<VA, PA> {
    /// Allocates a fresh, empty page table (one zeroed root page) in `mem`.
    ///
    /// # Errors
    ///
    /// Fails if `mem` cannot supply a frame for the root.
    pub fn new(mem: &mut PhysMem<PA>) -> Result<Self, PtError> {
        let root = mem.alloc(PageSize::Size4K)?;
        Ok(Self {
            root,
            stats: PtStats {
                table_pages: 1,
                ..PtStats::default()
            },
            _va: PhantomData,
        })
    }

    /// Physical address of the root (PML4) page.
    #[inline]
    pub fn root(&self) -> PA {
        self.root
    }

    /// Footprint counters.
    #[inline]
    pub fn stats(&self) -> &PtStats {
        &self.stats
    }

    /// Maps the page of `size` at `va` to the frame at `pa`.
    ///
    /// # Errors
    ///
    /// * [`PtError::Misaligned`] — `va` or `pa` not `size`-aligned.
    /// * [`PtError::AlreadyMapped`] — a leaf already covers `va`.
    /// * [`PtError::HugeConflict`] — a larger leaf covers `va`.
    /// * [`PtError::Phys`] — no memory for intermediate table pages.
    pub fn map(
        &mut self,
        mem: &mut PhysMem<PA>,
        va: VA,
        pa: PA,
        size: PageSize,
        prot: Prot,
    ) -> Result<(), PtError> {
        if !va.is_aligned(size) {
            return Err(PtError::Misaligned {
                addr: va.as_u64(),
                size: size.bytes(),
            });
        }
        if !pa.is_aligned(size) {
            return Err(PtError::Misaligned {
                addr: pa.as_u64(),
                size: size.bytes(),
            });
        }
        let leaf_level = size.leaf_level();
        let mut table = self.root;
        for level in (leaf_level..=ROOT_LEVEL).rev() {
            let eaddr = entry_addr(table, va.as_u64(), level);
            let entry = Pte::from_bits(mem.read_u64(eaddr));
            if level == leaf_level {
                if entry.is_present() {
                    // A lingering (but empty) lower-level table can be
                    // reclaimed and overwritten by a huge leaf, as an OS
                    // collapsing page tables would.
                    if level > 1 && !entry.is_huge() && self.subtree_empty(mem, entry.addr(), level - 1)
                    {
                        Self::free_tables_counted(mem, entry.addr(), level - 1, &mut self.stats)?;
                    } else {
                        return Err(PtError::AlreadyMapped { va: va.as_u64() });
                    }
                }
                let leaf = if level > 1 {
                    Pte::huge_leaf(pa, prot)
                } else {
                    Pte::leaf(pa, prot)
                };
                mem.write_u64(eaddr, leaf.bits());
                match size {
                    PageSize::Size4K => self.stats.leaves_4k += 1,
                    PageSize::Size2M => self.stats.leaves_2m += 1,
                    PageSize::Size1G => self.stats.leaves_1g += 1,
                }
                self.stats.leaf_updates += 1;
                return Ok(());
            }
            table = if entry.is_present() {
                if entry.is_huge() {
                    return Err(PtError::HugeConflict {
                        va: va.as_u64(),
                        level,
                    });
                }
                entry.addr()
            } else {
                let page = mem.alloc(PageSize::Size4K)?;
                self.stats.table_pages += 1;
                mem.write_u64(eaddr, Pte::table(page).bits());
                page
            };
        }
        unreachable!("loop returns at the leaf level");
    }

    /// Unmaps the page of `size` at `va`, returning the frame it mapped.
    ///
    /// # Errors
    ///
    /// * [`PtError::NotMapped`] — no leaf of that size at `va`.
    /// * [`PtError::HugeConflict`] — a leaf of a different size covers `va`.
    pub fn unmap(&mut self, mem: &mut PhysMem<PA>, va: VA, size: PageSize) -> Result<PA, PtError> {
        let (eaddr, entry) = self.leaf_entry(mem, va, size)?;
        mem.write_u64(eaddr, Pte::EMPTY.bits());
        match size {
            PageSize::Size4K => self.stats.leaves_4k -= 1,
            PageSize::Size2M => self.stats.leaves_2m -= 1,
            PageSize::Size1G => self.stats.leaves_1g -= 1,
        }
        self.stats.leaf_updates += 1;
        Ok(entry.addr())
    }

    /// Rewrites the protection of the leaf of `size` at `va`, returning the
    /// previous protection.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::unmap`].
    pub fn protect(
        &mut self,
        mem: &mut PhysMem<PA>,
        va: VA,
        size: PageSize,
        prot: Prot,
    ) -> Result<Prot, PtError> {
        let (eaddr, entry) = self.leaf_entry(mem, va, size)?;
        let old = entry.prot();
        let new = if size.leaf_level() > 1 {
            Pte::huge_leaf(entry.addr::<PA>(), prot)
        } else {
            Pte::leaf(entry.addr::<PA>(), prot)
        };
        mem.write_u64(eaddr, new.bits());
        self.stats.leaf_updates += 1;
        Ok(old)
    }

    /// Remaps the leaf of `size` at `va` to a new frame, preserving
    /// protection. Used when compaction relocates a backing frame.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::unmap`].
    pub fn remap(
        &mut self,
        mem: &mut PhysMem<PA>,
        va: VA,
        size: PageSize,
        new_pa: PA,
    ) -> Result<PA, PtError> {
        if !new_pa.is_aligned(size) {
            return Err(PtError::Misaligned {
                addr: new_pa.as_u64(),
                size: size.bytes(),
            });
        }
        let (eaddr, entry) = self.leaf_entry(mem, va, size)?;
        let old = entry.addr();
        let new = if size.leaf_level() > 1 {
            Pte::huge_leaf(new_pa, entry.prot())
        } else {
            Pte::leaf(new_pa, entry.prot())
        };
        mem.write_u64(eaddr, new.bits());
        self.stats.leaf_updates += 1;
        Ok(old)
    }

    fn leaf_entry(
        &self,
        mem: &PhysMem<PA>,
        va: VA,
        size: PageSize,
    ) -> Result<(PA, Pte), PtError> {
        if !va.is_aligned(size) {
            return Err(PtError::Misaligned {
                addr: va.as_u64(),
                size: size.bytes(),
            });
        }
        let leaf_level = size.leaf_level();
        let mut table = self.root;
        for level in (leaf_level..=ROOT_LEVEL).rev() {
            let eaddr = entry_addr(table, va.as_u64(), level);
            let entry = Pte::from_bits(mem.read_u64(eaddr));
            if !entry.is_present() {
                return Err(PtError::NotMapped { va: va.as_u64() });
            }
            if level == leaf_level {
                if level > 1 && !entry.is_huge() {
                    return Err(PtError::HugeConflict {
                        va: va.as_u64(),
                        level,
                    });
                }
                return Ok((eaddr, entry));
            }
            if entry.is_huge() {
                return Err(PtError::HugeConflict {
                    va: va.as_u64(),
                    level,
                });
            }
            table = entry.addr();
        }
        unreachable!("loop returns at the leaf level");
    }

    /// Software-walks the table and translates `va`, or returns `None` if
    /// unmapped. This is the *reference* translation the MMU models are
    /// checked against; it performs no cost accounting.
    pub fn translate(&self, mem: &PhysMem<PA>, va: VA) -> Option<Translation<PA>> {
        let raw = va.as_u64();
        let mut table = self.root;
        for level in (1..=ROOT_LEVEL).rev() {
            let entry = Pte::from_bits(mem.read_u64(entry_addr(table, raw, level)));
            if !entry.is_present() {
                return None;
            }
            if level == 1 || entry.is_huge() {
                let size = match level {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    3 => PageSize::Size1G,
                    _ => return None, // no 512 GiB leaves
                };
                let base: PA = entry.addr();
                return Some(Translation {
                    pa: PA::from_u64(base.as_u64() + (raw & size.offset_mask())),
                    page_base: base,
                    size,
                    prot: entry.prot(),
                });
            }
            table = entry.addr();
        }
        None
    }

    /// Sets the accessed (and optionally dirty) bit on the leaf covering
    /// `va`, as a hardware walker would.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::NotMapped`] if `va` has no leaf.
    pub fn mark_accessed(
        &mut self,
        mem: &mut PhysMem<PA>,
        va: VA,
        write: bool,
    ) -> Result<(), PtError> {
        let t = self
            .translate(mem, va)
            .ok_or(PtError::NotMapped { va: va.as_u64() })?;
        let aligned = VA::from_u64(va.as_u64() & !t.size.offset_mask());
        let (eaddr, entry) = self.leaf_entry(mem, aligned, t.size)?;
        let mut updated = entry.with_accessed();
        if write {
            updated = updated.with_dirty();
        }
        if updated != entry {
            mem.write_u64(eaddr, updated.bits());
        }
        Ok(())
    }

    /// Attempts to collapse the 512 4 KiB mappings covering the 2 MiB region
    /// at `va` into a single 2 MiB leaf — the transparent-huge-page
    /// promotion the paper's native baselines rely on (Section VIII uses THP
    /// for SPEC/PARSEC). Succeeds only if all 512 PTEs are present, share
    /// protection, and map physically contiguous, 2 MiB-aligned frames.
    ///
    /// Returns `true` if promoted. The freed page-table page is returned to
    /// `mem`.
    ///
    /// # Errors
    ///
    /// * [`PtError::Misaligned`] — `va` not 2 MiB-aligned.
    pub fn promote_2m(&mut self, mem: &mut PhysMem<PA>, va: VA) -> Result<bool, PtError> {
        if !va.is_aligned(PageSize::Size2M) {
            return Err(PtError::Misaligned {
                addr: va.as_u64(),
                size: PageSize::Size2M.bytes(),
            });
        }
        // Find the PD entry (level 2).
        let raw = va.as_u64();
        let mut table = self.root;
        for level in (3..=ROOT_LEVEL).rev() {
            let entry = Pte::from_bits(mem.read_u64(entry_addr(table, raw, level)));
            if !entry.is_present() || entry.is_huge() {
                return Ok(false);
            }
            table = entry.addr();
        }
        let pd_entry_addr = entry_addr(table, raw, 2);
        let pd_entry = Pte::from_bits(mem.read_u64(pd_entry_addr));
        if !pd_entry.is_present() || pd_entry.is_huge() {
            return Ok(false);
        }
        let pt_page: PA = pd_entry.addr();

        // Scan the 512 PTEs for contiguity and uniform protection.
        let first = Pte::from_bits(mem.read_u64(pt_page));
        if !first.is_present() || !first.addr::<PA>().is_aligned(PageSize::Size2M) {
            return Ok(false);
        }
        let base = first.addr::<PA>().as_u64();
        let prot = first.prot();
        for i in 1..512u64 {
            let pte = Pte::from_bits(mem.read_u64(PA::from_u64(pt_page.as_u64() + i * 8)));
            if !pte.is_present() || pte.prot() != prot || pte.addr::<PA>().as_u64() != base + i * 4096
            {
                return Ok(false);
            }
        }

        mem.write_u64(pd_entry_addr, Pte::huge_leaf(PA::from_u64(base), prot).bits());
        mem.free(pt_page, PageSize::Size4K)?;
        self.stats.table_pages -= 1;
        self.stats.leaves_4k -= 512;
        self.stats.leaves_2m += 1;
        self.stats.leaf_updates += 1;
        Ok(true)
    }

    /// Visits every leaf mapping as `(va, pte, size)`, in address order.
    /// Used to build shadow page tables and for consistency checks.
    pub fn for_each_leaf(&self, mem: &PhysMem<PA>, f: &mut dyn FnMut(VA, Pte, PageSize)) {
        self.visit(mem, self.root, ROOT_LEVEL, 0, f);
    }

    fn visit(
        &self,
        mem: &PhysMem<PA>,
        table: PA,
        level: u8,
        va_prefix: u64,
        f: &mut dyn FnMut(VA, Pte, PageSize),
    ) {
        for i in 0..512u64 {
            let entry = Pte::from_bits(mem.read_u64(PA::from_u64(table.as_u64() + i * 8)));
            if !entry.is_present() {
                continue;
            }
            let va = va_prefix + i * crate::walk::level_coverage(level);
            if level == 1 || entry.is_huge() {
                let size = match level {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    _ => PageSize::Size1G,
                };
                f(VA::from_u64(va), entry, size);
            } else {
                self.visit(mem, entry.addr(), level - 1, va, f);
            }
        }
    }

    /// Lists the physical addresses of every page-table page (root
    /// included). Owners use this to pin table pages against memory
    /// compaction — page tables are unmovable kernel allocations.
    pub fn table_pages(&self, mem: &PhysMem<PA>) -> Vec<PA> {
        let mut out = Vec::with_capacity(self.stats.table_pages as usize);
        Self::collect_tables(mem, self.root, ROOT_LEVEL, &mut out);
        out
    }

    fn collect_tables(mem: &PhysMem<PA>, table: PA, level: u8, out: &mut Vec<PA>) {
        out.push(table);
        if level > 1 {
            for i in 0..512u64 {
                let entry = Pte::from_bits(mem.read_u64(PA::from_u64(table.as_u64() + i * 8)));
                if entry.is_present() && !entry.is_huge() {
                    Self::collect_tables(mem, entry.addr(), level - 1, out);
                }
            }
        }
    }

    /// Frees every table page (the mappings become unreachable). The frames
    /// *mapped by* the table are not freed — they belong to their owners.
    ///
    /// # Errors
    ///
    /// Propagates physical-space accounting errors (which indicate
    /// corruption).
    pub fn destroy(mut self, mem: &mut PhysMem<PA>) -> Result<(), PtError> {
        Self::free_tables(mem, self.root, ROOT_LEVEL)?;
        self.stats = PtStats::default();
        Ok(())
    }

    /// Whether the subtree rooted at `table` (at `level`) contains no
    /// present entries.
    fn subtree_empty(&self, mem: &PhysMem<PA>, table: PA, level: u8) -> bool {
        for i in 0..512u64 {
            let entry = Pte::from_bits(mem.read_u64(PA::from_u64(table.as_u64() + i * 8)));
            if entry.is_present() {
                if level > 1 && !entry.is_huge() {
                    if !self.subtree_empty(mem, entry.addr(), level - 1) {
                        return false;
                    }
                } else {
                    return false;
                }
            }
        }
        true
    }

    /// Frees the table pages of a subtree, updating `stats.table_pages`.
    fn free_tables_counted(
        mem: &mut PhysMem<PA>,
        table: PA,
        level: u8,
        stats: &mut PtStats,
    ) -> Result<(), PtError> {
        if level > 1 {
            for i in 0..512u64 {
                let entry = Pte::from_bits(mem.read_u64(PA::from_u64(table.as_u64() + i * 8)));
                if entry.is_present() && !entry.is_huge() {
                    Self::free_tables_counted(mem, entry.addr(), level - 1, stats)?;
                }
            }
        }
        mem.free(table, PageSize::Size4K)?;
        stats.table_pages -= 1;
        Ok(())
    }

    fn free_tables(mem: &mut PhysMem<PA>, table: PA, level: u8) -> Result<(), PtError> {
        if level > 1 {
            for i in 0..512u64 {
                let entry = Pte::from_bits(mem.read_u64(PA::from_u64(table.as_u64() + i * 8)));
                if entry.is_present() && !entry.is_huge() {
                    Self::free_tables(mem, entry.addr(), level - 1)?;
                }
            }
        }
        mem.free(table, PageSize::Size4K)?;
        Ok(())
    }
}

impl<VA: Address, PA: Address> core::fmt::Debug for PageTable<VA, PA> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PageTable")
            .field("va_space", &VA::SPACE)
            .field("pa_space", &PA::SPACE)
            .field("root", &self.root)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::{Gpa, Gva, MIB};

    fn setup() -> (PhysMem<Gpa>, PageTable<Gva, Gpa>) {
        let mut mem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
        let pt = PageTable::new(&mut mem).unwrap();
        (mem, pt)
    }

    #[test]
    fn map_translate_round_trip_4k() {
        let (mut mem, mut pt) = setup();
        let frame = mem.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut mem, Gva::new(0x7000_1000), frame, PageSize::Size4K, Prot::RW)
            .unwrap();
        let t = pt.translate(&mem, Gva::new(0x7000_1abc)).unwrap();
        assert_eq!(t.pa, frame.add(0xabc));
        assert_eq!(t.size, PageSize::Size4K);
        assert_eq!(t.prot, Prot::RW);
        assert!(pt.translate(&mem, Gva::new(0x7000_2000)).is_none());
    }

    #[test]
    fn map_translate_round_trip_2m_and_1g() {
        let mut mem: PhysMem<Gpa> = PhysMem::new(4 << 30);
        let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
        let f2m = mem.alloc(PageSize::Size2M).unwrap();
        let f1g = mem.alloc(PageSize::Size1G).unwrap();
        pt.map(&mut mem, Gva::new(2 << 20), f2m, PageSize::Size2M, Prot::RW)
            .unwrap();
        pt.map(&mut mem, Gva::new(1 << 30), f1g, PageSize::Size1G, Prot::READ)
            .unwrap();
        let t = pt.translate(&mem, Gva::new((2 << 20) + 12345)).unwrap();
        assert_eq!(t.pa, f2m.add(12345));
        assert_eq!(t.size, PageSize::Size2M);
        let t = pt.translate(&mem, Gva::new((1 << 30) + 999)).unwrap();
        assert_eq!(t.pa, f1g.add(999));
        assert_eq!(t.size, PageSize::Size1G);
        assert_eq!(t.prot, Prot::READ);
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut pt) = setup();
        let f = mem.alloc(PageSize::Size4K).unwrap();
        let va = Gva::new(0x1000);
        pt.map(&mut mem, va, f, PageSize::Size4K, Prot::RW).unwrap();
        let err = pt.map(&mut mem, va, f, PageSize::Size4K, Prot::RW).unwrap_err();
        assert_eq!(err, PtError::AlreadyMapped { va: 0x1000 });
    }

    #[test]
    fn misaligned_map_rejected() {
        let (mut mem, mut pt) = setup();
        let f = mem.alloc(PageSize::Size2M).unwrap();
        assert!(matches!(
            pt.map(&mut mem, Gva::new(0x1000), f, PageSize::Size2M, Prot::RW),
            Err(PtError::Misaligned { .. })
        ));
        assert!(matches!(
            pt.map(&mut mem, Gva::new(0x20_0000), f.add(0x1000), PageSize::Size2M, Prot::RW),
            Err(PtError::Misaligned { .. })
        ));
    }

    #[test]
    fn mapping_under_a_huge_page_conflicts() {
        let (mut mem, mut pt) = setup();
        let f2m = mem.alloc(PageSize::Size2M).unwrap();
        pt.map(&mut mem, Gva::new(0), f2m, PageSize::Size2M, Prot::RW).unwrap();
        let f = mem.alloc(PageSize::Size4K).unwrap();
        let err = pt
            .map(&mut mem, Gva::new(0x1000), f, PageSize::Size4K, Prot::RW)
            .unwrap_err();
        assert!(matches!(err, PtError::HugeConflict { level: 2, .. }));
    }

    #[test]
    fn unmap_returns_frame_and_clears() {
        let (mut mem, mut pt) = setup();
        let f = mem.alloc(PageSize::Size4K).unwrap();
        let va = Gva::new(0x8000);
        pt.map(&mut mem, va, f, PageSize::Size4K, Prot::RW).unwrap();
        assert_eq!(pt.unmap(&mut mem, va, PageSize::Size4K).unwrap(), f);
        assert!(pt.translate(&mem, va).is_none());
        assert_eq!(
            pt.unmap(&mut mem, va, PageSize::Size4K).unwrap_err(),
            PtError::NotMapped { va: 0x8000 }
        );
    }

    #[test]
    fn protect_rewrites_leaf() {
        let (mut mem, mut pt) = setup();
        let f = mem.alloc(PageSize::Size4K).unwrap();
        let va = Gva::new(0x8000);
        pt.map(&mut mem, va, f, PageSize::Size4K, Prot::RW).unwrap();
        let old = pt.protect(&mut mem, va, PageSize::Size4K, Prot::READ).unwrap();
        assert_eq!(old, Prot::RW);
        assert_eq!(pt.translate(&mem, va).unwrap().prot, Prot::READ);
    }

    #[test]
    fn remap_points_to_new_frame() {
        let (mut mem, mut pt) = setup();
        let f1 = mem.alloc(PageSize::Size4K).unwrap();
        let f2 = mem.alloc(PageSize::Size4K).unwrap();
        let va = Gva::new(0x9000);
        pt.map(&mut mem, va, f1, PageSize::Size4K, Prot::RW).unwrap();
        assert_eq!(pt.remap(&mut mem, va, PageSize::Size4K, f2).unwrap(), f1);
        assert_eq!(pt.translate(&mem, va).unwrap().page_base, f2);
        assert_eq!(pt.translate(&mem, va).unwrap().prot, Prot::RW);
    }

    #[test]
    fn stats_track_tables_and_leaves() {
        let (mut mem, mut pt) = setup();
        assert_eq!(pt.stats().table_pages, 1);
        let f = mem.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut mem, Gva::new(0x1000), f, PageSize::Size4K, Prot::RW).unwrap();
        // Root + 3 intermediate levels.
        assert_eq!(pt.stats().table_pages, 4);
        assert_eq!(pt.stats().leaves_4k, 1);
        // Another page in the same 2 MiB region reuses all tables.
        let f2 = mem.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut mem, Gva::new(0x2000), f2, PageSize::Size4K, Prot::RW).unwrap();
        assert_eq!(pt.stats().table_pages, 4);
        assert_eq!(pt.stats().leaves_4k, 2);
        assert_eq!(pt.stats().leaf_updates, 2);
    }

    #[test]
    fn accessed_and_dirty_bits_are_set() {
        let (mut mem, mut pt) = setup();
        let f = mem.alloc(PageSize::Size4K).unwrap();
        let va = Gva::new(0x1000);
        pt.map(&mut mem, va, f, PageSize::Size4K, Prot::RW).unwrap();
        pt.mark_accessed(&mut mem, Gva::new(0x1234), false).unwrap();
        let mut seen = Vec::new();
        pt.for_each_leaf(&mem, &mut |va, pte, _| seen.push((va, pte)));
        assert!(seen[0].1.accessed());
        assert!(!seen[0].1.dirty());
        pt.mark_accessed(&mut mem, Gva::new(0x1234), true).unwrap();
        let mut seen = Vec::new();
        pt.for_each_leaf(&mem, &mut |va, pte, _| seen.push((va, pte)));
        assert!(seen[0].1.dirty());
    }

    #[test]
    fn promote_2m_collapses_contiguous_run() {
        let mut mem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
        let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
        let region = mem.reserve_contiguous(2 * MIB, PageSize::Size2M).unwrap();
        for i in 0..512u64 {
            pt.map(
                &mut mem,
                Gva::new(0x20_0000 + i * 4096),
                region.start().add(i * 4096),
                PageSize::Size4K,
                Prot::RW,
            )
            .unwrap();
        }
        let tables_before = pt.stats().table_pages;
        assert!(pt.promote_2m(&mut mem, Gva::new(0x20_0000)).unwrap());
        assert_eq!(pt.stats().table_pages, tables_before - 1);
        assert_eq!(pt.stats().leaves_2m, 1);
        assert_eq!(pt.stats().leaves_4k, 0);
        let t = pt.translate(&mem, Gva::new(0x20_0000 + 123456)).unwrap();
        assert_eq!(t.size, PageSize::Size2M);
        assert_eq!(t.pa, region.start().add(123456));
    }

    #[test]
    fn promote_2m_refuses_non_contiguous_run() {
        let mut mem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
        let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
        for i in 0..512u64 {
            let f = mem.alloc(PageSize::Size4K).unwrap();
            pt.map(&mut mem, Gva::new(0x20_0000 + i * 4096), f, PageSize::Size4K, Prot::RW)
                .unwrap();
        }
        // Frames interleave with table-page allocations, so the run is not
        // physically contiguous.
        assert!(!pt.promote_2m(&mut mem, Gva::new(0x20_0000)).unwrap());
        assert_eq!(pt.stats().leaves_4k, 512);
    }

    #[test]
    fn promote_2m_refuses_partial_run() {
        let mut mem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
        let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
        let region = mem.reserve_contiguous(2 * MIB, PageSize::Size2M).unwrap();
        for i in 0..511u64 {
            pt.map(
                &mut mem,
                Gva::new(i * 4096),
                region.start().add(i * 4096),
                PageSize::Size4K,
                Prot::RW,
            )
            .unwrap();
        }
        assert!(!pt.promote_2m(&mut mem, Gva::new(0)).unwrap());
    }

    #[test]
    fn for_each_leaf_enumerates_in_order() {
        let (mut mem, mut pt) = setup();
        let mut expected = Vec::new();
        for va in [0x1000u64, 0x40_0000, 0x8000_0000] {
            let f = mem.alloc(PageSize::Size4K).unwrap();
            pt.map(&mut mem, Gva::new(va), f, PageSize::Size4K, Prot::RW).unwrap();
            expected.push(Gva::new(va));
        }
        let mut seen = Vec::new();
        pt.for_each_leaf(&mem, &mut |va, _, _| seen.push(va));
        assert_eq!(seen, expected);
    }

    #[test]
    fn destroy_frees_all_table_pages() {
        let mut mem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
        let free_before = mem.free_bytes();
        let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
        let f = mem.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut mem, Gva::new(0x1000), f, PageSize::Size4K, Prot::RW).unwrap();
        pt.destroy(&mut mem).unwrap();
        mem.free(f, PageSize::Size4K).unwrap();
        assert_eq!(mem.free_bytes(), free_before);
    }
}
