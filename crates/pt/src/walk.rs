//! Pure page-walk index arithmetic.
//!
//! These functions compute *where* a hardware walker would read, without
//! touching memory. The nested walker in `mv-core` uses them to interleave
//! guest-level reads with nested translations, reproducing the Figure 2
//! state machine reference-by-reference.

use mv_types::Address;

/// Number of radix levels (4 in x86-64 long mode).
pub const LEVELS: u8 = 4;

/// The root level of the walk (level 4 = PML4).
pub const ROOT_LEVEL: u8 = 4;

/// Index into the level-`level` table for virtual address `va`
/// (level 4 = PML4 … level 1 = PT).
///
/// # Panics
///
/// Panics in debug builds if `level` is not in `1..=4`.
///
/// # Example
///
/// ```
/// use mv_pt::table_index;
///
/// // Second 2 MiB region of the address space: PML4/PDPT index 0, PD index 1.
/// assert_eq!(table_index(0x20_0000, 4), 0);
/// assert_eq!(table_index(0x20_0000, 2), 1);
/// ```
#[inline]
pub fn table_index(va: u64, level: u8) -> u64 {
    debug_assert!((1..=LEVELS).contains(&level));
    (va >> (12 + 9 * (level - 1) as u32)) & 0x1ff
}

/// Physical address of the entry a walker reads at `level` given the
/// table page base `table_base`.
///
/// # Example
///
/// ```
/// use mv_pt::entry_addr;
/// use mv_types::Hpa;
///
/// let e = entry_addr(Hpa::new(0x8000), 0x20_0000, 2);
/// assert_eq!(e, Hpa::new(0x8008)); // index 1 at the PD level
/// ```
#[inline]
pub fn entry_addr<A: Address>(table_base: A, va: u64, level: u8) -> A {
    A::from_u64(table_base.as_u64() + table_index(va, level) * 8)
}

/// Bytes covered by one entry at `level` (4 KiB at level 1 up to 512 GiB at
/// level 4).
#[inline]
pub fn level_coverage(level: u8) -> u64 {
    1u64 << (12 + 9 * (level - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::Hpa;

    #[test]
    fn indices_decompose_the_address() {
        let va = 0x0000_7f12_3456_7890u64;
        assert_eq!(table_index(va, 4), (va >> 39) & 0x1ff);
        assert_eq!(table_index(va, 3), (va >> 30) & 0x1ff);
        assert_eq!(table_index(va, 2), (va >> 21) & 0x1ff);
        assert_eq!(table_index(va, 1), (va >> 12) & 0x1ff);
    }

    #[test]
    fn indices_cover_all_nine_bits() {
        assert_eq!(table_index(u64::MAX, 1), 0x1ff);
        assert_eq!(table_index(0, 1), 0);
    }

    #[test]
    fn entry_addr_is_base_plus_index_times_eight() {
        let base = Hpa::new(0x1_0000);
        let va = 3u64 << 39; // PML4 index 3
        assert_eq!(entry_addr(base, va, 4), Hpa::new(0x1_0018));
    }

    #[test]
    fn level_coverage_matches_page_sizes() {
        assert_eq!(level_coverage(1), 4 << 10);
        assert_eq!(level_coverage(2), 2 << 20);
        assert_eq!(level_coverage(3), 1 << 30);
        assert_eq!(level_coverage(4), 512u64 << 30);
    }
}
