//! Error type for page-table operations.

use core::fmt;

use mv_phys::PhysError;

/// Errors returned by page-table mutation and translation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PtError {
    /// The virtual address is already mapped (possibly by a larger page
    /// covering it).
    AlreadyMapped {
        /// Raw virtual address.
        va: u64,
    },
    /// The virtual address is not mapped.
    NotMapped {
        /// Raw virtual address.
        va: u64,
    },
    /// Address not aligned to the requested page size.
    Misaligned {
        /// Raw address.
        addr: u64,
        /// Required page size in bytes.
        size: u64,
    },
    /// A huge-page leaf sits where a table page is needed (or vice versa).
    HugeConflict {
        /// Raw virtual address.
        va: u64,
        /// Level at which the conflict occurred.
        level: u8,
    },
    /// The backing physical space could not supply a table page.
    Phys(PhysError),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::AlreadyMapped { va } => write!(f, "virtual address {va:#x} already mapped"),
            PtError::NotMapped { va } => write!(f, "virtual address {va:#x} not mapped"),
            PtError::Misaligned { addr, size } => {
                write!(f, "address {addr:#x} not aligned to {size:#x}-byte page")
            }
            PtError::HugeConflict { va, level } => write!(
                f,
                "huge-page conflict at {va:#x} (level {level}): leaf where table expected"
            ),
            PtError::Phys(e) => write!(f, "physical memory error: {e}"),
        }
    }
}

impl std::error::Error for PtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PtError::Phys(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysError> for PtError {
    fn from(e: PhysError) -> Self {
        PtError::Phys(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PtError::NotMapped { va: 0x1000 };
        assert_eq!(e.to_string(), "virtual address 0x1000 not mapped");
        assert!(e.source().is_none());
        let e = PtError::from(PhysError::OutOfMemory {
            requested: 4096,
            free: 0,
        });
        assert!(e.source().is_some());
    }
}
