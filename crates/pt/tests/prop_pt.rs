//! Property-based tests: the radix page table agrees with a flat reference
//! model under arbitrary map/unmap sequences drawn from the workspace's
//! internal deterministic RNG.

use std::collections::HashMap;

use mv_phys::PhysMem;
use mv_pt::{PageTable, PtError};
use mv_types::rng::{Rng, StdRng};
use mv_types::{Gpa, Gva, PageSize, Prot, MIB};

#[derive(Debug, Clone)]
enum Op {
    Map { slot: u64, size: PageSize, prot: Prot },
    Unmap { slot: u64 },
    Probe { slot: u64, offset: u64 },
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..6) {
        0..=2 => Op::Map {
            slot: rng.gen_range(0u64..32),
            size: if rng.gen_bool(0.5) {
                PageSize::Size4K
            } else {
                PageSize::Size2M
            },
            prot: match rng.gen_range(0u32..3) {
                0 => Prot::RW,
                1 => Prot::READ,
                _ => Prot::RWX,
            },
        },
        3 => Op::Unmap {
            slot: rng.gen_range(0u64..32),
        },
        _ => Op::Probe {
            slot: rng.gen_range(0u64..32),
            offset: rng.gen_range(0u64..(2 * MIB)),
        },
    }
}

/// Each slot is a disjoint 2 MiB-aligned region so sizes never conflict
/// between slots; the reference model tracks the live mapping per slot.
fn slot_va(slot: u64) -> Gva {
    Gva::new(0x4000_0000 + slot * (2 * MIB))
}

#[test]
fn radix_table_matches_reference() {
    for case in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0x9_7ab1_e000u64 + case);
        let n_ops = rng.gen_range(1usize..120);
        let mut mem: PhysMem<Gpa> = PhysMem::new(256 * MIB);
        let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
        // slot -> (frame, size, prot)
        let mut model: HashMap<u64, (Gpa, PageSize, Prot)> = HashMap::new();

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Map { slot, size, prot } => {
                    let va = slot_va(slot);
                    let frame = mem.alloc(size).unwrap();
                    match pt.map(&mut mem, va, frame, size, prot) {
                        Ok(()) => {
                            assert!(
                                !model.contains_key(&slot),
                                "case {case}: map succeeded over live mapping"
                            );
                            model.insert(slot, (frame, size, prot));
                        }
                        Err(PtError::AlreadyMapped { .. } | PtError::HugeConflict { .. }) => {
                            assert!(
                                model.contains_key(&slot),
                                "case {case}: map failed on empty slot"
                            );
                            mem.free(frame, size).unwrap();
                        }
                        Err(e) => panic!("case {case}: unexpected {e}"),
                    }
                }
                Op::Unmap { slot } => {
                    let va = slot_va(slot);
                    match model.remove(&slot) {
                        Some((frame, size, _)) => {
                            let got = pt.unmap(&mut mem, va, size).unwrap();
                            assert_eq!(got, frame, "case {case}");
                            mem.free(frame, size).unwrap();
                        }
                        None => {
                            // Either size is fine; both must report NotMapped.
                            assert!(
                                pt.unmap(&mut mem, va, PageSize::Size4K).is_err(),
                                "case {case}"
                            );
                        }
                    }
                }
                Op::Probe { slot, offset } => {
                    let va = Gva::new(slot_va(slot).as_u64() + offset);
                    let got = pt.translate(&mem, va);
                    match model.get(&slot) {
                        Some(&(frame, size, prot)) if offset < size.bytes() => {
                            let t = got.expect("model says mapped");
                            assert_eq!(t.pa, frame.add(offset), "case {case}");
                            assert_eq!(t.size, size, "case {case}");
                            assert_eq!(t.prot, prot, "case {case}");
                        }
                        _ => assert!(got.is_none(), "case {case}: model says unmapped at {va}"),
                    }
                }
            }
        }

        // Enumeration agrees with the model.
        let mut count = 0;
        pt.for_each_leaf(&mem, &mut |va, pte, size| {
            count += 1;
            let slot = (va.as_u64() - 0x4000_0000) / (2 * MIB);
            let (frame, msize, prot) = model[&slot];
            assert_eq!(pte.addr::<Gpa>(), frame);
            assert_eq!(size, msize);
            assert_eq!(pte.prot(), prot);
        });
        assert_eq!(count, model.len(), "case {case}");
    }
}
