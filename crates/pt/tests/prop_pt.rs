//! Property-based tests: the radix page table agrees with a flat reference
//! model under arbitrary map/unmap sequences.

use std::collections::HashMap;

use mv_phys::PhysMem;
use mv_pt::{PageTable, PtError};
use mv_types::{Gpa, Gva, PageSize, Prot, MIB};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Map { slot: u64, size: PageSize, prot: Prot },
    Unmap { slot: u64 },
    Probe { slot: u64, offset: u64 },
}

fn ops() -> impl Strategy<Value = Op> {
    let size = prop_oneof![Just(PageSize::Size4K), Just(PageSize::Size2M)];
    let prot = prop_oneof![Just(Prot::RW), Just(Prot::READ), Just(Prot::RWX)];
    prop_oneof![
        3 => (0u64..32, size, prot).prop_map(|(slot, size, prot)| Op::Map { slot, size, prot }),
        1 => (0u64..32).prop_map(|slot| Op::Unmap { slot }),
        2 => (0u64..32, 0u64..(2 * MIB)).prop_map(|(slot, offset)| Op::Probe { slot, offset }),
    ]
}

/// Each slot is a disjoint 2 MiB-aligned region so sizes never conflict
/// between slots; the reference model tracks the live mapping per slot.
fn slot_va(slot: u64) -> Gva {
    Gva::new(0x4000_0000 + slot * (2 * MIB))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn radix_table_matches_reference(ops in proptest::collection::vec(ops(), 1..120)) {
        let mut mem: PhysMem<Gpa> = PhysMem::new(256 * MIB);
        let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
        // slot -> (frame, size, prot)
        let mut model: HashMap<u64, (Gpa, PageSize, Prot)> = HashMap::new();

        for op in ops {
            match op {
                Op::Map { slot, size, prot } => {
                    let va = slot_va(slot);
                    let frame = mem.alloc(size).unwrap();
                    match pt.map(&mut mem, va, frame, size, prot) {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(&slot), "map succeeded over live mapping");
                            model.insert(slot, (frame, size, prot));
                        }
                        Err(PtError::AlreadyMapped { .. } | PtError::HugeConflict { .. }) => {
                            prop_assert!(model.contains_key(&slot), "map failed on empty slot");
                            mem.free(frame, size).unwrap();
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
                    }
                }
                Op::Unmap { slot } => {
                    let va = slot_va(slot);
                    match model.remove(&slot) {
                        Some((frame, size, _)) => {
                            let got = pt.unmap(&mut mem, va, size).unwrap();
                            prop_assert_eq!(got, frame);
                            mem.free(frame, size).unwrap();
                        }
                        None => {
                            // Either size is fine; both must report NotMapped.
                            prop_assert!(pt.unmap(&mut mem, va, PageSize::Size4K).is_err());
                        }
                    }
                }
                Op::Probe { slot, offset } => {
                    let va = Gva::new(slot_va(slot).as_u64() + offset);
                    let got = pt.translate(&mem, va);
                    match model.get(&slot) {
                        Some(&(frame, size, prot)) if offset < size.bytes() => {
                            let t = got.expect("model says mapped");
                            prop_assert_eq!(t.pa, frame.add(offset));
                            prop_assert_eq!(t.size, size);
                            prop_assert_eq!(t.prot, prot);
                        }
                        _ => prop_assert!(got.is_none(), "model says unmapped at {va}"),
                    }
                }
            }
        }

        // Enumeration agrees with the model.
        let mut count = 0;
        pt.for_each_leaf(&mem, &mut |va, pte, size| {
            count += 1;
            let slot = (va.as_u64() - 0x4000_0000) / (2 * MIB);
            let (frame, msize, prot) = model[&slot];
            assert_eq!(pte.addr::<Gpa>(), frame);
            assert_eq!(size, msize);
            assert_eq!(pte.prot(), prot);
        });
        prop_assert_eq!(count, model.len());
    }
}
