//! Page-table substrate micro-benchmarks: map/unmap/translate throughput
//! of the radix tables and buddy-allocator operation costs.

use mv_bench::BenchGroup;
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{Gpa, Gva, PageSize, Prot, MIB};

fn bench_page_tables() {
    let mut group = BenchGroup::new("page_tables");

    // map + unmap round trip (steady-state table reuse).
    let mut mem: PhysMem<Gpa> = PhysMem::new(256 * MIB);
    let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
    let frame = mem.alloc(PageSize::Size4K).unwrap();
    let mut i = 0u64;
    group.bench_function("map_unmap_4k", || {
        let va = Gva::new(0x4000_0000 + ((i % 512) << 12));
        i += 1;
        pt.map(&mut mem, va, frame, PageSize::Size4K, Prot::RW).unwrap();
        pt.unmap(&mut mem, va, PageSize::Size4K).unwrap();
    });

    // translate over a populated region.
    let mut mem: PhysMem<Gpa> = PhysMem::new(256 * MIB);
    let mut pt: PageTable<Gva, Gpa> = PageTable::new(&mut mem).unwrap();
    for off in (0..(16 * MIB)).step_by(4096) {
        let f = mem.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut mem, Gva::new(0x1000_0000 + off), f, PageSize::Size4K, Prot::RW)
            .unwrap();
    }
    let mut i = 0u64;
    group.bench_function("translate_4k", || {
        i = (i + 4096) % (16 * MIB);
        pt.translate(&mem, Gva::new(0x1000_0000 + i)).unwrap()
    });

    // buddy allocator alloc/free cycle.
    let mut mem: PhysMem<Gpa> = PhysMem::new(256 * MIB);
    group.bench_function("buddy_alloc_free_4k", || {
        let f = mem.alloc(PageSize::Size4K).unwrap();
        mem.free(f, PageSize::Size4K).unwrap();
    });
    group.bench_function("buddy_alloc_free_2m", || {
        let f = mem.alloc(PageSize::Size2M).unwrap();
        mem.free(f, PageSize::Size2M).unwrap();
    });
    group.finish();
}

fn main() {
    bench_page_tables();
}
