//! Micro-benchmarks of the translation fast paths: L1 hit, Dual Direct
//! segment bypass, L2 hit, and full walks. These measure the *simulator's*
//! per-access cost (model throughput), while the printed cycle figures are
//! the modeled hardware costs.

use mv_bench::BenchGroup;
use mv_core::{MemoryContext, Mmu, MmuConfig, Segment, TranslationMode};
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};

struct World {
    gmem: PhysMem<Gpa>,
    hmem: PhysMem<Hpa>,
    gpt: PageTable<Gva, Gpa>,
    npt: PageTable<Gpa, Hpa>,
    backing_base: Hpa,
}

fn build_world() -> World {
    let mut gmem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
    let mut hmem: PhysMem<Hpa> = PhysMem::new(256 * MIB);
    let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut gmem).unwrap();
    let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();
    let backing = hmem.reserve_contiguous(64 * MIB, PageSize::Size2M).unwrap();
    for gpa in AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)).pages(PageSize::Size4K) {
        npt.map(
            &mut hmem,
            gpa,
            Hpa::new(gpa.as_u64() + backing.start().as_u64()),
            PageSize::Size4K,
            Prot::RW,
        )
        .unwrap();
    }
    // Map 16 MiB of guest pages at gVA 16M → gPA 16M (identity-ish).
    // Carve the whole frame range first so intermediate page-table pages
    // never land inside it.
    gmem.carve_range(&AddrRange::from_start_len(Gpa::new(16 * MIB), 16 * MIB))
        .unwrap();
    for off in (0..16 * MIB).step_by(4096) {
        let gpa = Gpa::new(16 * MIB + off);
        gpt.map(&mut gmem, Gva::new(16 * MIB + off), gpa, PageSize::Size4K, Prot::RW)
            .unwrap();
    }
    World {
        gmem,
        hmem,
        gpt,
        npt,
        backing_base: backing.start(),
    }
}

fn bench_paths() {
    let w = build_world();
    let mut group = BenchGroup::new("translation_paths");

    // L1 hit: repeat the same address.
    let mut mmu = Mmu::new(MmuConfig::default());
    {
        let ctx = MemoryContext::Virtualized {
            gpt: &w.gpt,
            gmem: &w.gmem,
            npt: &w.npt,
            hmem: &w.hmem,
        };
        mmu.access(&ctx, 0, Gva::new(16 * MIB), false).unwrap();
        group.bench_function("l1_hit", || {
            mmu.access(&ctx, 0, Gva::new(16 * MIB + 64), false).unwrap()
        });
    }

    // Dual Direct 0D bypass: sweep a range far larger than the L1 TLB so
    // almost every access misses L1 and exercises the bypass.
    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });
    mmu.set_guest_segment(Segment::map(
        AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 64 * MIB)),
        Gpa::ZERO,
    ));
    mmu.set_vmm_segment(Segment::map(
        AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
        w.backing_base,
    ));
    {
        let ctx = MemoryContext::Virtualized {
            gpt: &w.gpt,
            gmem: &w.gmem,
            npt: &w.npt,
            hmem: &w.hmem,
        };
        let mut cursor = 0u64;
        group.bench_function("dual_direct_bypass", || {
            cursor = (cursor + 4096) % (64 * MIB);
            mmu.access(&ctx, 0, Gva::new((1 << 30) + cursor), false).unwrap()
        });
    }

    // Full 2D walk (cold-ish): sweep addresses so TLBs miss.
    for (name, mode) in [
        ("walk_2d_base", TranslationMode::BaseVirtualized),
        ("walk_1d_vmm_direct", TranslationMode::VmmDirect),
    ] {
        let mut mmu = Mmu::new(MmuConfig {
            mode,
            ..MmuConfig::default()
        });
        if mode == TranslationMode::VmmDirect {
            mmu.set_vmm_segment(Segment::map(
                AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
                w.backing_base,
            ));
        }
        let ctx = MemoryContext::Virtualized {
            gpt: &w.gpt,
            gmem: &w.gmem,
            npt: &w.npt,
            hmem: &w.hmem,
        };
        let mut cursor = 0u64;
        group.bench_function(name, || {
            cursor = (cursor + 4096) % (16 * MIB);
            mmu.access(&ctx, 0, Gva::new(16 * MIB + cursor), false).unwrap()
        });
    }
    group.finish();
}

fn main() {
    bench_paths();
}
