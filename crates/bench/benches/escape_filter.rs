//! Escape-filter micro-benchmarks: H3 Bloom lookup throughput and
//! false-positive behavior across fill levels (supporting Section V's
//! 256-bit / 4-hash sizing claim).

use mv_bench::BenchGroup;
use mv_core::EscapeFilter;

fn bench_escape() {
    let mut group = BenchGroup::new("escape_filter");

    for &inserted in &[0usize, 1, 16, 64] {
        let mut f = EscapeFilter::new(7);
        for i in 0..inserted {
            f.insert(0x1000_0000 + (i as u64) * 0x1000);
        }
        let mut probe = 0u64;
        group.bench_function(&format!("lookup/{inserted}"), || {
            probe = probe.wrapping_add(0x1000);
            f.maybe_contains(0x9000_0000 + probe)
        });
    }

    let mut f = EscapeFilter::new(7);
    let mut next = 0u64;
    group.bench_function("insert", || {
        next += 0x1000;
        f.insert(next);
        if f.inserted() > 64 {
            f.clear();
        }
    });
    group.finish();

    // Report (not benchmark) the false-positive curve the paper's sizing
    // rests on: 16 entries in 256 bits stays essentially transparent.
    for &n in &[1usize, 4, 16, 32, 64] {
        let mut f = EscapeFilter::new(11);
        for i in 0..n {
            f.insert((i as u64) * 0x1000);
        }
        let probes = 200_000u64;
        let fps = (0..probes)
            .filter(|i| f.maybe_contains(0x7000_0000 + i * 0x1000))
            .count();
        eprintln!(
            "escape filter: {n:>3} entries -> measured fp rate {:.5} (expected {:.5})",
            fps as f64 / probes as f64,
            f.expected_false_positive_rate()
        );
    }
}

fn main() {
    bench_escape();
}
