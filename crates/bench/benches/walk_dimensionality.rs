//! Figure 2 / walk-dimensionality bench: with walk caching disabled, a
//! cold 2D nested walk costs the architectural 24 memory references; the
//! proposed modes reduce it to 4 (1D) or 0 (0D). This bench both measures
//! the simulator's walk throughput at each dimensionality and asserts the
//! reference counts.

use mv_bench::BenchGroup;
use mv_core::{MemoryContext, Mmu, MmuConfig, Segment, TranslationMode};
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};

#[allow(clippy::type_complexity)]
fn build() -> (
    PhysMem<Gpa>,
    PhysMem<Hpa>,
    PageTable<Gva, Gpa>,
    PageTable<Gpa, Hpa>,
    Hpa,
) {
    let mut gmem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
    let mut hmem: PhysMem<Hpa> = PhysMem::new(256 * MIB);
    let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut gmem).unwrap();
    let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();
    let backing = hmem.reserve_contiguous(64 * MIB, PageSize::Size2M).unwrap();
    for gpa in AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)).pages(PageSize::Size4K) {
        npt.map(
            &mut hmem,
            gpa,
            Hpa::new(gpa.as_u64() + backing.start().as_u64()),
            PageSize::Size4K,
            Prot::RW,
        )
        .unwrap();
    }
    for off in (0..32 * MIB).step_by(4096) {
        // Map gVA linearly to whatever frame the allocator gives us.
        let frame = match gmem.alloc(PageSize::Size4K) {
            Ok(f) => f,
            Err(_) => break,
        };
        gpt.map(&mut gmem, Gva::new(0x4000_0000 + off), frame, PageSize::Size4K, Prot::RW)
            .unwrap();
    }
    (gmem, hmem, gpt, npt, backing.start())
}

fn bench_dimensionality() {
    let (gmem, hmem, gpt, npt, backing_base) = build();
    let mut group = BenchGroup::new("walk_dimensionality");

    let refs_of = |mode: TranslationMode, with_segments: bool| {
        let mut mmu = Mmu::new(MmuConfig {
            mode,
            walk_caching: false,
            ..MmuConfig::default()
        });
        if with_segments {
            mmu.set_guest_segment(Segment::map(
                AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 16 * MIB)),
                Gpa::ZERO,
            ));
            mmu.set_vmm_segment(Segment::map(
                AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
                backing_base,
            ));
        }
        let ctx = MemoryContext::Virtualized {
            gpt: &gpt,
            gmem: &gmem,
            npt: &npt,
            hmem: &hmem,
        };
        // The arena base (1 << 30) is inside the guest segment, so the
        // same address exercises whichever path the mode provides.
        let va = Gva::new((1 << 30) + 0x5000);
        mmu.access(&ctx, 0, va, false).unwrap();
        mmu.counters().walk_refs()
    };

    // Assert the Figure 2 / Table II reference counts once.
    assert_eq!(refs_of(TranslationMode::BaseVirtualized, false), 24, "2D");
    assert_eq!(refs_of(TranslationMode::VmmDirect, true), 4, "1D (VD)");
    assert_eq!(refs_of(TranslationMode::DualDirect, true), 0, "0D");

    for (name, mode, seg) in [
        ("2d_24ref", TranslationMode::BaseVirtualized, false),
        ("1d_4ref_vmm_direct", TranslationMode::VmmDirect, true),
        ("0d_dual_direct", TranslationMode::DualDirect, true),
    ] {
        let mut mmu = Mmu::new(MmuConfig {
            mode,
            walk_caching: false,
            ..MmuConfig::default()
        });
        if seg {
            mmu.set_guest_segment(Segment::map(
                AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 16 * MIB)),
                Gpa::ZERO,
            ));
            mmu.set_vmm_segment(Segment::map(
                AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
                backing_base,
            ));
        }
        let ctx = MemoryContext::Virtualized {
            gpt: &gpt,
            gmem: &gmem,
            npt: &npt,
            hmem: &hmem,
        };
        let mut cursor = 0u64;
        group.bench_function(name, || {
            cursor = (cursor + 4096) % (8 * MIB);
            let va = Gva::new((1 << 30) + cursor);
            mmu.flush_all(); // keep every iteration a cold walk
            mmu.access(&ctx, 0, va, false).unwrap()
        });
    }
    group.finish();
}

fn main() {
    bench_dimensionality();
}
