//! TLB structure micro-benchmarks: lookup and fill throughput of the
//! split L1, shared L2, and page-walk cache models.

use mv_bench::BenchGroup;
use mv_tlb::{L1Tlb, L2Key, L2Tlb, PwCache, PwcKey, TlbConfig, TlbEntry};
use mv_types::{PageSize, Prot};

fn entry(base: u64) -> TlbEntry {
    TlbEntry {
        page_base: base,
        size: PageSize::Size4K,
        prot: Prot::RW,
    }
}

fn bench_tlb() {
    let cfg = TlbConfig::sandy_bridge();
    let mut group = BenchGroup::new("tlb");

    let mut l1 = L1Tlb::new(&cfg);
    for i in 0..64u64 {
        l1.insert(0, i << 12, entry(i << 12));
    }
    let mut i = 0u64;
    group.bench_function("l1_lookup_hit", || {
        i = (i + 1) % 64;
        l1.lookup(0, i << 12)
    });
    group.bench_function("l1_lookup_miss", || {
        i += 1;
        l1.lookup(0, (1 << 30) + (i << 12))
    });

    let mut l2 = L2Tlb::new(&cfg);
    for i in 0..512u64 {
        l2.insert(L2Key::Guest { asid: 0, vpn: i }, entry(i << 12));
    }
    let mut i = 0u64;
    group.bench_function("l2_lookup_hit", || {
        i = (i + 1) % 512;
        l2.lookup(L2Key::Guest { asid: 0, vpn: i })
    });
    let mut i = 0u64;
    group.bench_function("l2_fill", || {
        i += 1;
        l2.insert(L2Key::Nested { gfn: i }, entry(i << 12));
    });

    let mut pwc = PwCache::new(&cfg);
    let mut i = 0u64;
    group.bench_function("pwc_insert_lookup", || {
        i += 1;
        let key = PwcKey {
            asid: 0,
            points_to_level: 1 + (i % 3) as u8,
            va_prefix: i,
        };
        pwc.insert(key, i);
        pwc.lookup(key)
    });
    group.finish();
}

fn main() {
    bench_tlb();
}
