//! Shared experiment machinery: scaling, configuration sets, runners.

use std::num::NonZeroUsize;

use mv_metrics::Table;
use mv_par::{cli, Reporter};
use mv_sim::{Env, GridCell, GuestPaging, RunResult, SimConfig, Simulation};
use mv_types::{PageSize, GIB, MIB};
use mv_workloads::WorkloadKind;

/// Run sizing. The paper's testbed runs 60–75 GB datasets to completion;
/// the simulator scales footprints down (TLB reach is what matters — see
/// DESIGN.md) and measures a steady-state window.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Arena bytes for big-memory workloads.
    pub big_footprint: u64,
    /// Arena bytes for compute workloads.
    pub compute_footprint: u64,
    /// Measured accesses.
    pub accesses: u64,
    /// Warmup accesses.
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// Full scale used for the reported EXPERIMENTS.md numbers.
    pub fn full() -> Scale {
        Scale {
            big_footprint: 6 * GIB,
            compute_footprint: GIB,
            accesses: 2_000_000,
            warmup: 500_000,
            seed: 42,
        }
    }

    /// Quick scale for smoke runs (`--quick`).
    pub fn quick() -> Scale {
        Scale {
            big_footprint: 128 * MIB,
            compute_footprint: 64 * MIB,
            accesses: 200_000,
            warmup: 50_000,
            seed: 42,
        }
    }

    /// Footprint for a workload kind.
    pub fn footprint_for(&self, w: WorkloadKind) -> u64 {
        if w.is_big_memory() {
            self.big_footprint
        } else {
            self.compute_footprint
        }
    }
}

/// Parses `--quick` from the command line.
pub fn parse_scale() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    }
}

/// Parses the standard parallelism flags every experiment binary accepts:
/// `--jobs N` (worker count, default: available parallelism) and
/// `--quiet` (suppress progress lines). Exits with usage on a bad value.
pub fn parse_parallelism() -> (NonZeroUsize, Reporter) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = cli::parse_jobs(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    (jobs, Reporter::new(cli::has_flag(&args, "--quiet")))
}

/// Runs a {workloads} × {configs} grid in parallel and renders the
/// standard per-workload overhead table (one row per workload, one column
/// per configuration). Results are assembled in grid order, so the table
/// is identical for any `jobs` value. A failed cell renders as `failed!`
/// and its error goes to the reporter; the rest of the sweep is
/// unaffected.
pub fn overhead_table(
    workloads: &[WorkloadKind],
    configs: &[(GuestPaging, Env)],
    scale: &Scale,
    jobs: NonZeroUsize,
    reporter: &Reporter,
) -> Table {
    let cells: Vec<GridCell> = workloads
        .iter()
        .flat_map(|&w| {
            configs
                .iter()
                .map(move |&(paging, env)| GridCell::new(config(w, paging, env, scale)))
        })
        .collect();
    let report = Simulation::run_grid_reported(&cells, jobs, reporter);
    for (i, failure) in report.failures() {
        reporter.line(format!(
            "  cell {} ({} / {}) failed: {failure}",
            i,
            cells[i].cfg.workload.label(),
            cells[i].cfg.label()
        ));
    }

    let mut headers = vec!["workload".to_string()];
    headers.extend(
        configs
            .iter()
            .map(|&(paging, env)| config(workloads[0], paging, env, scale).label()),
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for (wi, &w) in workloads.iter().enumerate() {
        let mut row = vec![w.label().to_string()];
        for ci in 0..configs.len() {
            row.push(
                match &report.outcomes()[wi * configs.len() + ci].outcome {
                    Ok(r) => pct(r.overhead),
                    Err(_) => "failed!".to_string(),
                },
            );
        }
        t.row(&row);
    }
    t
}

/// Builds the [`SimConfig`] for one bar.
pub fn config(w: WorkloadKind, paging: GuestPaging, env: Env, scale: &Scale) -> SimConfig {
    SimConfig {
        workload: w,
        footprint: scale.footprint_for(w),
        guest_paging: paging,
        env,
        accesses: scale.accesses,
        warmup: scale.warmup,
        seed: scale.seed,
    }
}

/// Runs one bar, printing progress to stderr.
///
/// # Panics
///
/// Panics if the configuration cannot run — figure binaries are expected
/// to be correctly wired.
pub fn run_bar(w: WorkloadKind, paging: GuestPaging, env: Env, scale: &Scale) -> RunResult {
    let cfg = config(w, paging, env, scale);
    eprintln!("  running {:>12} / {:<10}...", w.label(), cfg.label());
    Simulation::run(&cfg).unwrap_or_else(|e| panic!("{} / {}: {e}", w.label(), cfg.label()))
}

/// The (paging, env) configuration set of Figure 11 for big-memory
/// workloads: native page sizes, virtualized combinations, and the
/// proposed modes.
pub fn fig11_configs() -> Vec<(GuestPaging, Env)> {
    use GuestPaging::Fixed;
    use PageSize::*;
    vec![
        // Native baselines.
        (Fixed(Size4K), Env::native()),
        (Fixed(Size2M), Env::native()),
        (Fixed(Size1G), Env::native()),
        (Fixed(Size4K), Env::native_direct()),
        // Base virtualized combinations (guest+VMM page sizes).
        (Fixed(Size4K), Env::base_virtualized(Size4K)),
        (Fixed(Size4K), Env::base_virtualized(Size2M)),
        (Fixed(Size4K), Env::base_virtualized(Size1G)),
        (Fixed(Size2M), Env::base_virtualized(Size2M)),
        (Fixed(Size2M), Env::base_virtualized(Size1G)),
        (Fixed(Size1G), Env::base_virtualized(Size1G)),
        // Proposed modes.
        (Fixed(Size4K), Env::dual_direct()),
        (Fixed(Size4K), Env::vmm_direct()),
        (Fixed(Size4K), Env::guest_direct(Size4K)),
    ]
}

/// The Figure 12 configuration set for compute workloads (THP instead of
/// explicit huge pages; VMM Direct is the applicable proposed mode).
pub fn fig12_configs() -> Vec<(GuestPaging, Env)> {
    use GuestPaging::{Fixed, Thp};
    use PageSize::*;
    vec![
        (Fixed(Size4K), Env::native()),
        (Thp, Env::native()),
        (Fixed(Size4K), Env::base_virtualized(Size4K)),
        (Fixed(Size4K), Env::base_virtualized(Size2M)),
        (Fixed(Size4K), Env::base_virtualized(Size1G)),
        (Thp, Env::base_virtualized(Size2M)),
        (Fixed(Size4K), Env::vmm_direct()),
        (Thp, Env::vmm_direct()),
    ]
}

/// Formats an overhead as a percent cell.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
