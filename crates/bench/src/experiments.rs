//! Shared experiment machinery: scaling, configuration sets, runners.

use std::num::NonZeroUsize;

use mv_metrics::Table;
use mv_par::{cli, Reporter};
use mv_sim::{Env, GridCell, GuestPaging, RunResult, SimConfig, Simulation};
use mv_types::{GIB, MIB};
use mv_workloads::WorkloadKind;

/// Run sizing. The paper's testbed runs 60–75 GB datasets to completion;
/// the simulator scales footprints down (TLB reach is what matters — see
/// DESIGN.md) and measures a steady-state window.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Arena bytes for big-memory workloads.
    pub big_footprint: u64,
    /// Arena bytes for compute workloads.
    pub compute_footprint: u64,
    /// Measured accesses.
    pub accesses: u64,
    /// Warmup accesses.
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// Full scale used for the reported EXPERIMENTS.md numbers.
    pub fn full() -> Scale {
        Scale {
            big_footprint: 6 * GIB,
            compute_footprint: GIB,
            accesses: 2_000_000,
            warmup: 500_000,
            seed: 42,
        }
    }

    /// Quick scale for smoke runs (`--quick`).
    pub fn quick() -> Scale {
        Scale {
            big_footprint: 128 * MIB,
            compute_footprint: 64 * MIB,
            accesses: 200_000,
            warmup: 50_000,
            seed: 42,
        }
    }

    /// Footprint for a workload kind.
    pub fn footprint_for(&self, w: WorkloadKind) -> u64 {
        if w.is_big_memory() {
            self.big_footprint
        } else {
            self.compute_footprint
        }
    }
}

/// Parses `--quick` from the command line.
pub fn parse_scale() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    }
}

/// Parses the standard parallelism flags every experiment binary accepts:
/// `--jobs N` (worker count, default: available parallelism) and
/// `--quiet` (suppress progress lines). Exits with usage on a bad value.
pub fn parse_parallelism() -> (NonZeroUsize, Reporter) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = cli::parse_jobs(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    (jobs, Reporter::new(cli::has_flag(&args, "--quiet")))
}

/// Runs a {workloads} × {configs} grid in parallel and renders the
/// standard per-workload overhead table (one row per workload, one column
/// per configuration). Results are assembled in grid order, so the table
/// is identical for any `jobs` value. A failed cell renders as `failed!`
/// and its error goes to the reporter; the rest of the sweep is
/// unaffected.
pub fn overhead_table(
    workloads: &[WorkloadKind],
    configs: &[(GuestPaging, Env)],
    scale: &Scale,
    jobs: NonZeroUsize,
    reporter: &Reporter,
) -> Table {
    let cells: Vec<GridCell> = workloads
        .iter()
        .flat_map(|&w| {
            configs
                .iter()
                .map(move |&(paging, env)| GridCell::new(config(w, paging, env, scale)))
        })
        .collect();
    let report = Simulation::run_grid_reported(&cells, jobs, reporter);
    for (i, failure) in report.failures() {
        reporter.line(format!(
            "  cell {} ({} / {}) failed: {failure}",
            i,
            cells[i].cfg.workload.label(),
            cells[i].cfg.label()
        ));
    }

    let mut headers = vec!["workload".to_string()];
    headers.extend(
        configs
            .iter()
            .map(|&(paging, env)| config(workloads[0], paging, env, scale).label()),
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for (wi, &w) in workloads.iter().enumerate() {
        let mut row = vec![w.label().to_string()];
        for ci in 0..configs.len() {
            row.push(
                match &report.outcomes()[wi * configs.len() + ci].outcome {
                    Ok(r) => pct(r.overhead),
                    Err(_) => "failed!".to_string(),
                },
            );
        }
        t.row(&row);
    }
    t
}

/// Builds the [`SimConfig`] for one bar.
pub fn config(w: WorkloadKind, paging: GuestPaging, env: Env, scale: &Scale) -> SimConfig {
    SimConfig {
        workload: w,
        footprint: scale.footprint_for(w),
        guest_paging: paging,
        env,
        accesses: scale.accesses,
        warmup: scale.warmup,
        seed: scale.seed,
    }
}

/// Runs one bar, printing progress to stderr.
///
/// # Panics
///
/// Panics if the configuration cannot run — figure binaries are expected
/// to be correctly wired.
pub fn run_bar(w: WorkloadKind, paging: GuestPaging, env: Env, scale: &Scale) -> RunResult {
    let cfg = config(w, paging, env, scale);
    eprintln!("  running {:>12} / {:<10}...", w.label(), cfg.label());
    Simulation::run(&cfg).unwrap_or_else(|e| panic!("{} / {}: {e}", w.label(), cfg.label()))
}

/// Formats an overhead as a percent cell.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// The shared environment catalog: every figure and table binary draws
/// its environment list from these named constants instead of declaring
/// its own, so the paper's `4K` / `DS` / `4K+2M` / `DD` / `4K+shadow`
/// vocabulary is defined exactly once. Each entry is a
/// `(guest paging, environment)` pair ready for [`config`] /
/// [`overhead_table`].
pub mod env_catalog {
    use mv_core::TranslationMode;
    use mv_sim::{Env, GuestPaging};
    use mv_types::PageSize;

    /// One catalog entry: the guest paging policy and the environment.
    pub type NamedEnv = (GuestPaging, Env);

    /// Native 4 KiB demand paging (`4K`).
    pub const NATIVE_4K: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::Native { direct_segment: false },
    );
    /// Native 2 MiB pages (`2M`).
    pub const NATIVE_2M: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size2M),
        Env::Native { direct_segment: false },
    );
    /// Native 1 GiB pages (`1G`).
    pub const NATIVE_1G: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size1G),
        Env::Native { direct_segment: false },
    );
    /// Native transparent huge pages (`THP`).
    pub const NATIVE_THP: NamedEnv = (GuestPaging::Thp, Env::Native { direct_segment: false });
    /// Native with an (unvirtualized) direct segment (`DS`, §III.D).
    pub const NATIVE_DS: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::Native { direct_segment: true },
    );

    /// Base-virtualized entry for a guest/VMM page-size pair.
    const fn virt(guest: GuestPaging, nested: PageSize) -> NamedEnv {
        (
            guest,
            Env::Virtualized {
                nested,
                mode: TranslationMode::BaseVirtualized,
            },
        )
    }

    /// Base virtualized, 4 KiB guest over 4 KiB nested (`4K+4K`).
    pub const VIRT_4K_4K: NamedEnv = virt(GuestPaging::Fixed(PageSize::Size4K), PageSize::Size4K);
    /// `4K+2M`.
    pub const VIRT_4K_2M: NamedEnv = virt(GuestPaging::Fixed(PageSize::Size4K), PageSize::Size2M);
    /// `4K+1G`.
    pub const VIRT_4K_1G: NamedEnv = virt(GuestPaging::Fixed(PageSize::Size4K), PageSize::Size1G);
    /// `2M+2M`.
    pub const VIRT_2M_2M: NamedEnv = virt(GuestPaging::Fixed(PageSize::Size2M), PageSize::Size2M);
    /// `2M+1G`.
    pub const VIRT_2M_1G: NamedEnv = virt(GuestPaging::Fixed(PageSize::Size2M), PageSize::Size1G);
    /// `1G+1G`.
    pub const VIRT_1G_1G: NamedEnv = virt(GuestPaging::Fixed(PageSize::Size1G), PageSize::Size1G);
    /// `THP+2M`.
    pub const VIRT_THP_2M: NamedEnv = virt(GuestPaging::Thp, PageSize::Size2M);

    /// VMM Direct (`4K+VD`, §III.B).
    pub const VMM_DIRECT: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::VmmDirect,
        },
    );
    /// VMM Direct under THP guest paging (`THP+VD`).
    pub const VMM_DIRECT_THP: NamedEnv = (
        GuestPaging::Thp,
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::VmmDirect,
        },
    );
    /// Guest Direct (`4K+GD`, §III.C).
    pub const GUEST_DIRECT: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::GuestDirect,
        },
    );
    /// Dual Direct (`DD`, §III.A).
    pub const DUAL_DIRECT: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::Virtualized {
            nested: PageSize::Size4K,
            mode: TranslationMode::DualDirect,
        },
    );

    /// Shadow paging with 4 KiB nested composition (`4K+shadow`, §IX.D).
    pub const SHADOW_4K: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::Shadow {
            nested: PageSize::Size4K,
        },
    );
    /// Shadow paging composing over 2 MiB nested backing.
    pub const SHADOW_2M: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::Shadow {
            nested: PageSize::Size2M,
        },
    );

    /// Nested-nested (L2) entry with a direct segment per flagged layer
    /// and explicit mid/nested leaf sizes.
    const fn l2_sized(
        guest_ds: bool,
        mid_ds: bool,
        host_ds: bool,
        mid: PageSize,
        nested: PageSize,
    ) -> NamedEnv {
        (
            GuestPaging::Fixed(PageSize::Size4K),
            Env::l2_sized(guest_ds, mid_ds, host_ds, mid, nested),
        )
    }

    /// Nested-nested (L2) entry with a direct segment per flagged layer.
    const fn l2(guest_ds: bool, mid_ds: bool, host_ds: bool) -> NamedEnv {
        l2_sized(guest_ds, mid_ds, host_ds, PageSize::Size4K, PageSize::Size4K)
    }

    /// Fully paged nested-nested L2 (`4K+L2`): 3D walks, up to 124
    /// references.
    pub const L2_BASE: NamedEnv = l2(false, false, false);
    /// L2 with a guest direct segment (`4K+L2+GD`).
    pub const L2_GUEST_DIRECT: NamedEnv = l2(true, false, false);
    /// L2 with a mid direct segment (`4K+L2+MD`).
    pub const L2_MID_DIRECT: NamedEnv = l2(false, true, false);
    /// L2 with a host direct segment (`4K+L2+HD`).
    pub const L2_HOST_DIRECT: NamedEnv = l2(false, false, true);
    /// L2 with guest and mid segments (`4K+L2+GMD`).
    pub const L2_GUEST_MID: NamedEnv = l2(true, true, false);
    /// L2 with guest and host segments (`4K+L2+GHD`).
    pub const L2_GUEST_HOST: NamedEnv = l2(true, false, true);
    /// L2 with mid and host segments (`4K+L2+MHD`).
    pub const L2_MID_HOST: NamedEnv = l2(false, true, true);
    /// L2 Triple Direct (`4K+L2+TD`): all three dimensions bypassed.
    pub const L2_TRIPLE_DIRECT: NamedEnv = l2(true, true, true);
    /// Shadow-on-nested L2 (`4K+L2shadow`): the L1 hypervisor collapses
    /// the top two layers, so the hardware walks 2D.
    pub const L2_SHADOW: NamedEnv = (
        GuestPaging::Fixed(PageSize::Size4K),
        Env::L2 {
            mid: PageSize::Size4K,
            nested: PageSize::Size4K,
            mode: TranslationMode::L2Nested {
                guest_ds: false,
                mid_ds: false,
                host_ds: false,
            },
            strategy: mv_sim::L2Strategy::ShadowOnNested,
        },
    );

    /// The full L2 direct-segment placement sweep (`sec_l2`): every
    /// per-layer placement of the 3-deep stack, plus shadow-on-nested.
    pub const L2_SWEEP_ENVS: [NamedEnv; 9] = [
        L2_BASE,
        L2_GUEST_DIRECT,
        L2_MID_DIRECT,
        L2_HOST_DIRECT,
        L2_GUEST_MID,
        L2_GUEST_HOST,
        L2_MID_HOST,
        L2_TRIPLE_DIRECT,
        L2_SHADOW,
    ];

    /// Mid/nested leaf-size sweep over the 3-deep stack (`sec_l2`): the
    /// fully paged stack and the guest-direct placement at every 4K/2M
    /// mid × nested combination. The 4K/4K cells are the `L2_BASE` /
    /// `L2_GUEST_DIRECT` baselines; the others exercise the per-layer
    /// leaf sizes that the stack derivation must reflect without moving
    /// any Table II quantity.
    pub const L2_PAGE_SIZE_ENVS: [NamedEnv; 8] = [
        l2_sized(false, false, false, PageSize::Size4K, PageSize::Size4K),
        l2_sized(false, false, false, PageSize::Size2M, PageSize::Size4K),
        l2_sized(false, false, false, PageSize::Size4K, PageSize::Size2M),
        l2_sized(false, false, false, PageSize::Size2M, PageSize::Size2M),
        l2_sized(true, false, false, PageSize::Size4K, PageSize::Size4K),
        l2_sized(true, false, false, PageSize::Size2M, PageSize::Size4K),
        l2_sized(true, false, false, PageSize::Size4K, PageSize::Size2M),
        l2_sized(true, false, false, PageSize::Size2M, PageSize::Size2M),
    ];

    /// Figure 1's six-environment preview set.
    pub const FIG1_6_ENVS: [NamedEnv; 6] = [
        NATIVE_4K,
        VIRT_4K_4K,
        VIRT_4K_2M,
        VIRT_4K_1G,
        DUAL_DIRECT,
        VMM_DIRECT,
    ];

    /// The ten-environment cross-section used by the machine-equivalence
    /// fixtures and smoke checks: native ± direct segment, all four
    /// virtualized translation modes (base paging at three page-size
    /// combinations, plus VD / GD / DD), and shadow paging at both nested
    /// page sizes.
    pub const PAPER_10_ENVS: [NamedEnv; 10] = [
        NATIVE_4K,
        NATIVE_DS,
        VIRT_4K_4K,
        VIRT_4K_2M,
        VIRT_2M_2M,
        VMM_DIRECT,
        GUEST_DIRECT,
        DUAL_DIRECT,
        SHADOW_4K,
        SHADOW_2M,
    ];

    /// Figure 11's big-memory set: native page sizes, virtualized
    /// page-size combinations, and the proposed direct-segment modes.
    pub const FIG11_ENVS: [NamedEnv; 13] = [
        NATIVE_4K,
        NATIVE_2M,
        NATIVE_1G,
        NATIVE_DS,
        VIRT_4K_4K,
        VIRT_4K_2M,
        VIRT_4K_1G,
        VIRT_2M_2M,
        VIRT_2M_1G,
        VIRT_1G_1G,
        DUAL_DIRECT,
        VMM_DIRECT,
        GUEST_DIRECT,
    ];

    /// Figure 12's compute set (THP instead of explicit huge pages; VMM
    /// Direct is the applicable proposed mode).
    pub const FIG12_ENVS: [NamedEnv; 8] = [
        NATIVE_4K,
        NATIVE_THP,
        VIRT_4K_4K,
        VIRT_4K_2M,
        VIRT_4K_1G,
        VIRT_THP_2M,
        VMM_DIRECT,
        VMM_DIRECT_THP,
    ];

    /// Section IX.D's comparison set: native baseline, shadow paging, and
    /// VMM Direct.
    pub const SHADOW_STUDY_ENVS: [NamedEnv; 3] = [NATIVE_4K, SHADOW_4K, VMM_DIRECT];

    /// One environment per virtualized translation mode, in Table II's
    /// column order: base, Dual Direct, VMM Direct, Guest Direct.
    pub const VIRT_MODE_ENVS: [NamedEnv; 4] = [VIRT_4K_4K, DUAL_DIRECT, VMM_DIRECT, GUEST_DIRECT];

    /// The translation mode an environment programs the MMU with.
    pub fn translation_mode(env: Env) -> TranslationMode {
        match env {
            Env::Native { direct_segment: false } => TranslationMode::BaseNative,
            Env::Native { direct_segment: true } => TranslationMode::NativeDirect,
            Env::Virtualized { mode, .. } => mode,
            // The hardware walks the VMM-maintained shadow table natively.
            Env::Shadow { .. } => TranslationMode::BaseNative,
            // Nested-on-nested programs the 3-layer mode; shadow-on-nested
            // collapses the top two layers into a 2D walk.
            Env::L2 { mode, strategy, .. } => match strategy {
                mv_sim::L2Strategy::NestedNested => mode,
                mv_sim::L2Strategy::ShadowOnNested => TranslationMode::BaseVirtualized,
            },
        }
    }

    /// Parses an environment mnemonic (`native`, `ds`, `shadow`, `vd`,
    /// `gd`, `dd`, or a `<guest>+<nested>` page-size pair like `4k+2m`) —
    /// the `--env` vocabulary of the `run` binary.
    pub fn parse(name: &str) -> Option<Env> {
        let parse_page = |s: &str| match s {
            "4k" => Some(PageSize::Size4K),
            "2m" => Some(PageSize::Size2M),
            "1g" => Some(PageSize::Size1G),
            _ => None,
        };
        match name.to_ascii_lowercase().as_str() {
            "native" => Some(NATIVE_4K.1),
            "ds" => Some(NATIVE_DS.1),
            "vd" => Some(VMM_DIRECT.1),
            "gd" => Some(GUEST_DIRECT.1),
            "dd" => Some(DUAL_DIRECT.1),
            "shadow" => Some(SHADOW_4K.1),
            "l2" => Some(L2_BASE.1),
            "l2-gd" => Some(L2_GUEST_DIRECT.1),
            "l2-md" => Some(L2_MID_DIRECT.1),
            "l2-hd" => Some(L2_HOST_DIRECT.1),
            "l2-td" => Some(L2_TRIPLE_DIRECT.1),
            "l2shadow" => Some(L2_SHADOW.1),
            pair => {
                let (_, nested) = pair.split_once('+')?;
                Some(Env::base_virtualized(parse_page(nested)?))
            }
        }
    }
}
