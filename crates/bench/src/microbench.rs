//! A minimal micro-benchmark harness (std-only Criterion stand-in).
//!
//! The workspace builds with no external dependencies so it can compile
//! and test fully offline; this module supplies the small slice of
//! Criterion the `benches/` targets need: named timed closures with
//! warmup, repeated measurement, and a median-of-runs report.
//!
//! Each measurement runs the closure in batches, timing whole batches
//! with [`std::time::Instant`] so per-iteration overhead stays small, and
//! reports the median per-iteration time over several batches (the median
//! is robust to scheduler noise).

use std::hint::black_box;
use std::time::Instant;

/// Number of timed batches per benchmark (median is reported).
const BATCHES: usize = 7;
/// Target wall time per batch; iteration count is calibrated to this.
const BATCH_TARGET_NANOS: u128 = 20_000_000;

/// A named group of micro-benchmarks, printed as one table section.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
}

impl BenchGroup {
    /// Starts a group with a section header.
    pub fn new(name: &str) -> Self {
        eprintln!("\n== {name} ==");
        BenchGroup { name: name.to_string() }
    }

    /// Group name (used for result labelling).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times `f` and prints its median per-iteration latency. The
    /// closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn bench_function<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) {
        // Calibrate: grow the batch until it takes a measurable slice.
        let mut iters: u64 = 16;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed >= BATCH_TARGET_NANOS / 4 || iters >= 1 << 24 {
                if elapsed < BATCH_TARGET_NANOS && iters < 1 << 24 {
                    let scale = (BATCH_TARGET_NANOS / elapsed.max(1)).min(64) as u64;
                    iters = (iters * scale.max(2)).min(1 << 24);
                }
                break;
            }
            iters *= 8;
        }

        let mut per_iter: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        eprintln!(
            "{label:<28} {median:>10.1} ns/iter  (min {min:.1}, max {max:.1}, {iters} iters x {BATCHES})"
        );
    }

    /// Ends the group (symmetry with Criterion's API; prints nothing).
    pub fn finish(self) {}
}

/// Entry point helper: runs each registered bench function.
pub fn run_benches(name: &str, fns: &[fn()]) {
    eprintln!("micro-benchmarks: {name} ({} groups)", fns.len());
    for f in fns {
        f();
    }
}
