//! L2 (nested-nested) study: direct-segment placement swept per layer of
//! the 3-deep translation stack, plus the shadow-on-nested alternative
//! and a mid/nested leaf-size sweep.
//!
//! Extends the paper's dimensionality argument one level down: a fully
//! paged 3-level stack pays up to 124 references per cold walk
//! (T(3) = 124 from the T(d) = 4·(T(d−1)+1)+T(d−1) recurrence), and each
//! direct segment removes one dimension from the product. The first
//! table reports every per-layer placement with the stack-derived walk
//! dimensionality next to the measured overhead, and cross-checks mv-prof
//! conservation (attributed cycles must equal the walk total) on the 3D
//! walk events.
//!
//! The second table sweeps the mid (L1 hypervisor) and nested (L0 host)
//! leaf sizes over 4K/2M. Large leaves change TLB reach, never walk
//! shape, so every swept stack must still satisfy the recurrence: the
//! study asserts that `LayerStack::walk_dimensions` matches the count of
//! paged layers derived straight from the environment's segment flags and
//! that `common_walk_refs` equals T(dims) — with the per-layer leaf sizes
//! reported truthfully instead of the historical hard-coded 4K.

use mv_bench::experiments::{config, env_catalog, parse_scale, pct, Scale};
use mv_core::{MmuConfig, TranslationMode};
use mv_metrics::Table;
use mv_prof::ProfileConfig;
use mv_sim::{Env, L2Strategy, Simulation};
use mv_workloads::WorkloadKind;

/// The walk-reference recurrence: `T(0) = 0`, `T(d) = 4·(T(d−1)+1)+T(d−1)`.
fn t_rec(d: u8) -> u32 {
    (0..d).fold(0, |t, _| 4 * (t + 1) + t)
}

/// Walk dimensionality derived independently of the `LayerStack`: paged
/// layers counted straight off the environment's segment flags (the
/// shadow-on-nested collapse always walks 2D).
fn derived_dims(env: &Env) -> u8 {
    match *env {
        Env::L2 {
            mode:
                TranslationMode::L2Nested {
                    guest_ds,
                    mid_ds,
                    host_ds,
                },
            strategy,
            ..
        } => match strategy {
            L2Strategy::NestedNested => {
                u8::from(!guest_ds) + u8::from(!mid_ds) + u8::from(!host_ds)
            }
            L2Strategy::ShadowOnNested => 2,
        },
        _ => unreachable!("the L2 study only sweeps L2 environments"),
    }
}

/// Runs one environment, appends its table row, and folds the mv-prof
/// conservation and stack-recurrence checks into the shared flags.
fn run_row(
    t: &mut Table,
    named: env_catalog::NamedEnv,
    w: WorkloadKind,
    scale: &Scale,
    all_conserved: &mut bool,
    all_consistent: &mut bool,
) {
    let (paging, env) = named;
    let cfg = config(w, paging, env, scale);
    eprintln!("running {}...", cfg.label());
    let stack = env.layer_stack(paging);

    let dims = stack.walk_dimensions();
    let consistent = dims == derived_dims(&env) && stack.common_walk_refs() == t_rec(dims);
    if !consistent {
        eprintln!(
            "stack inconsistency for {}: dims {dims} (derived {}), refs {} (T({dims}) = {})",
            cfg.label(),
            derived_dims(&env),
            stack.common_walk_refs(),
            t_rec(dims)
        );
    }
    *all_consistent &= consistent;

    let r = Simulation::run_profiled(&cfg, MmuConfig::default(), None, ProfileConfig::default())
        .unwrap();
    let layers: Vec<String> = stack
        .layers()
        .iter()
        .map(|l| l.mode.label().to_string())
        .collect();
    let (attributed, total, mid_cycles) = r
        .profile
        .as_ref()
        .map(|p| {
            let m = p.total();
            (m.attributed_cycles(), m.total_cycles, m.mid_dimension_cycles())
        })
        .unwrap_or_default();
    let conserved = attributed == total;
    *all_conserved &= conserved;
    t.row(&[
        cfg.label(),
        layers.join("/"),
        dims.to_string(),
        stack.common_walk_refs().to_string(),
        stack.bound_checks().to_string(),
        pct(r.overhead),
        r.vm_exits.to_string(),
        mid_cycles.to_string(),
        if conserved { "yes".into() } else { format!("{attributed}!={total}") },
    ]);
}

const COLUMNS: [&str; 9] = [
    "env",
    "stack",
    "dims",
    "walk refs",
    "checks",
    "overhead",
    "VM exits",
    "mid cycles",
    "conserved",
];

fn main() {
    let scale = parse_scale();
    let w = WorkloadKind::Gups;
    let mut all_conserved = true;
    let mut all_consistent = true;

    let mut placement = Table::new(&COLUMNS);
    for named in env_catalog::L2_SWEEP_ENVS {
        run_row(&mut placement, named, w, &scale, &mut all_conserved, &mut all_consistent);
    }
    let mut sizes = Table::new(&COLUMNS);
    for named in env_catalog::L2_PAGE_SIZE_ENVS {
        run_row(&mut sizes, named, w, &scale, &mut all_conserved, &mut all_consistent);
    }

    println!("\nL2 nested-nested study — per-layer direct-segment placement ({})", w.label());
    println!("(stack columns are derived from the environment's layer stack: walk");
    println!(" dimensionality, uncached walk-reference budget T(d), and fused");
    println!(" bound checks; `mid cycles` is the middle dimension's share of");
    println!(" attributed walk cycles, nonzero only for 3D walks)\n");
    println!("{placement}");

    println!("L2 mid/nested leaf-size sweep — 4K/2M per hypervisor layer");
    println!("(leaf sizes change TLB reach, never walk shape: every swept stack");
    println!(" keeps its dimensionality and T(d) budget, and the stack column");
    println!(" now reports the real per-layer leaf sizes)\n");
    println!("{sizes}");

    if !all_conserved {
        eprintln!("error: mv-prof attribution failed to conserve walk cycles");
        std::process::exit(1);
    }
    if !all_consistent {
        eprintln!("error: a swept stack violated the walk recurrence");
        std::process::exit(1);
    }
    println!("mv-prof conservation: attributed == total walk cycles for every env");
    println!("stack consistency: dims match the segment flags and walk refs match T(d)");
}
