//! L2 (nested-nested) study: direct-segment placement swept per layer of
//! the 3-deep translation stack, plus the shadow-on-nested alternative.
//!
//! Extends the paper's dimensionality argument one level down: a fully
//! paged 3-level stack pays up to 124 references per cold walk
//! (T(3) = 124 from the T(d) = 4·(T(d−1)+1)+T(d−1) recurrence), and each
//! direct segment removes one dimension from the product. The table
//! reports every per-layer placement with the stack-derived walk
//! dimensionality next to the measured overhead, and cross-checks mv-prof
//! conservation (attributed cycles must equal the walk total) on the 3D
//! walk events.

use mv_bench::experiments::{config, env_catalog, parse_scale, pct};
use mv_core::MmuConfig;
use mv_metrics::Table;
use mv_prof::ProfileConfig;
use mv_sim::Simulation;
use mv_workloads::WorkloadKind;

fn main() {
    let scale = parse_scale();
    let w = WorkloadKind::Gups;

    let mut t = Table::new(&[
        "env",
        "stack",
        "dims",
        "walk refs",
        "checks",
        "overhead",
        "VM exits",
        "mid cycles",
        "conserved",
    ]);
    let mut all_conserved = true;
    for (paging, env) in env_catalog::L2_SWEEP_ENVS {
        let cfg = config(w, paging, env, &scale);
        eprintln!("running {}...", cfg.label());
        let stack = env_catalog::translation_mode(env).stack();
        let r = Simulation::run_profiled(
            &cfg,
            MmuConfig::default(),
            None,
            ProfileConfig::default(),
        )
        .unwrap();
        let layers: Vec<String> = stack
            .layers()
            .iter()
            .map(|l| l.mode.label().to_string())
            .collect();
        let (attributed, total, mid_cycles) = r
            .profile
            .as_ref()
            .map(|p| {
                let m = p.total();
                (m.attributed_cycles(), m.total_cycles, m.mid_dimension_cycles())
            })
            .unwrap_or_default();
        let conserved = attributed == total;
        all_conserved &= conserved;
        t.row(&[
            cfg.label(),
            layers.join("/"),
            stack.walk_dimensions().to_string(),
            stack.common_walk_refs().to_string(),
            stack.bound_checks().to_string(),
            pct(r.overhead),
            r.vm_exits.to_string(),
            mid_cycles.to_string(),
            if conserved { "yes".into() } else { format!("{attributed}!={total}") },
        ]);
    }

    println!("\nL2 nested-nested study — per-layer direct-segment placement ({})", w.label());
    println!("(stack columns are derived from the mode's layer stack: walk");
    println!(" dimensionality, uncached walk-reference budget T(d), and fused");
    println!(" bound checks; `mid cycles` is the middle dimension's share of");
    println!(" attributed walk cycles, nonzero only for 3D walks)\n");
    println!("{t}");
    if !all_conserved {
        eprintln!("error: mv-prof attribution failed to conserve walk cycles");
        std::process::exit(1);
    }
    println!("mv-prof conservation: attributed == total walk cycles for every env");
}
