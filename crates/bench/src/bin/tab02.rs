//! Table II: the trade-off matrix of the virtualized translation modes —
//! printed directly from the mode model, which the test suite verifies
//! against the paper's table.

use mv_core::TranslationMode;
use mv_metrics::Table;

fn main() {
    let modes = TranslationMode::VIRTUALIZED;
    let mut headers = vec!["property".to_string()];
    headers.extend(modes.iter().map(|m| m.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let fmt_support = |s: Option<mv_core::Support>| {
        s.map_or("n/a".to_string(), |x| x.to_string())
    };
    let fmt_bool = |b: bool| if b { "required" } else { "none" }.to_string();

    type ModeColumn = Box<dyn Fn(TranslationMode) -> String>;
    let rows: Vec<(&str, ModeColumn)> = vec![
        ("page walk dimensions", Box::new(|m: TranslationMode| format!("{}D", m.walk_dimensions()))),
        ("memory accesses (common walk)", Box::new(|m: TranslationMode| m.common_walk_refs().to_string())),
        ("base-bound checks", Box::new(|m: TranslationMode| m.bound_checks().to_string())),
        ("guest OS modifications", Box::new(move |m| fmt_bool(m.requires_guest_os_changes()))),
        ("VMM modifications", Box::new(move |m| fmt_bool(m.requires_vmm_changes()))),
        ("application category", Box::new(|m: TranslationMode| {
            if m.suits_any_application() { "any" } else { "big memory" }.to_string()
        })),
        ("page sharing", Box::new(move |m| fmt_support(m.page_sharing()))),
        ("ballooning", Box::new(move |m| fmt_support(m.ballooning()))),
        ("guest swapping", Box::new(move |m| fmt_support(m.guest_swapping()))),
        ("VMM swapping", Box::new(move |m| fmt_support(m.vmm_swapping()))),
    ];

    for (name, f) in rows {
        let mut cells = vec![name.to_string()];
        cells.extend(modes.iter().map(|&m| f(m)));
        t.row(&cells);
    }

    println!("\nTable II — trade-offs among virtualized translation modes\n");
    println!("{t}");
}
