//! Table II: the trade-off matrix of the virtualized translation modes —
//! printed directly from the mode model, which the test suite verifies
//! against the paper's table.
//!
//! Each mode's column is computed independently on the worker pool
//! (`--jobs N`, `--quiet`) — trivial work here, but it keeps the CLI
//! uniform with the simulation sweeps, and column assembly is in mode
//! order so the table never depends on scheduling.

use mv_bench::experiments::{env_catalog, parse_parallelism};
use mv_core::{Support, TranslationMode};
use mv_metrics::Table;

/// The row labels, in print order.
const ROWS: [&str; 10] = [
    "page walk dimensions",
    "memory accesses (common walk)",
    "base-bound checks",
    "guest OS modifications",
    "VMM modifications",
    "application category",
    "page sharing",
    "ballooning",
    "guest swapping",
    "VMM swapping",
];

fn fmt_support(s: Option<Support>) -> String {
    s.map_or("n/a".to_string(), |x| x.to_string())
}

fn fmt_bool(b: bool) -> String {
    if b { "required" } else { "none" }.to_string()
}

/// One cell of the matrix, as a pure function of (row, mode).
fn cell(row: usize, m: TranslationMode) -> String {
    match row {
        0 => format!("{}D", m.walk_dimensions()),
        1 => m.common_walk_refs().to_string(),
        2 => m.bound_checks().to_string(),
        3 => fmt_bool(m.requires_guest_os_changes()),
        4 => fmt_bool(m.requires_vmm_changes()),
        5 => if m.suits_any_application() { "any" } else { "big memory" }.to_string(),
        6 => fmt_support(m.page_sharing()),
        7 => fmt_support(m.ballooning()),
        8 => fmt_support(m.guest_swapping()),
        9 => fmt_support(m.vmm_swapping()),
        _ => unreachable!("row out of range"),
    }
}

fn main() {
    let (jobs, _reporter) = parse_parallelism();
    // One column per virtualized translation mode, drawn from the shared
    // environment catalog so the table's columns track the same mode set
    // the simulation sweeps run.
    let modes: Vec<TranslationMode> = env_catalog::VIRT_MODE_ENVS
        .iter()
        .map(|&(_, env)| env_catalog::translation_mode(env))
        .collect();

    // One column per mode, computed on the pool; assembled in mode order.
    let columns = mv_par::par_map(jobs, &modes, |_, &m| {
        (0..ROWS.len()).map(|r| cell(r, m)).collect::<Vec<String>>()
    });
    // A failed column never aborts the table: it renders as `failed!`
    // cells, the mode is named on stderr, and the exit status is nonzero.
    let mut failed = 0usize;
    let columns: Vec<Vec<String>> = columns
        .into_iter()
        .zip(&modes)
        .map(|(c, m)| {
            c.unwrap_or_else(|p| {
                failed += 1;
                eprintln!("tab02: mode {m} failed: {p}");
                vec!["failed!".to_string(); ROWS.len()]
            })
        })
        .collect();

    let mut headers = vec!["property".to_string()];
    headers.extend(modes.iter().map(|m| m.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for (r, name) in ROWS.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        cells.extend(columns.iter().map(|col| col[r].clone()));
        t.row(&cells);
    }

    println!("\nTable II — trade-offs among virtualized translation modes\n");
    println!("{t}");
    if failed > 0 {
        eprintln!("tab02: {failed} of {} mode column(s) failed", modes.len());
        std::process::exit(1);
    }
}
