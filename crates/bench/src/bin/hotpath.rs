//! The translation hot-path throughput benchmark (`mv-fast`).
//!
//! Measures end-to-end simulated-access throughput — accesses per second
//! of wall time — for every environment of the `PAPER_10_ENVS` catalog,
//! plus the wall-clock of the full quick grids, and writes the perf
//! trajectory point as JSON (`BENCH_8.json`).
//!
//! Output discipline: **stdout carries only deterministic bytes** (the
//! per-environment counter digests), so CI can diff two invocations —
//! including across `--jobs 1` and `--jobs 4` — while timings go to
//! stderr and to the `--out` JSON. This is the same stdout/stderr split
//! the other experiment binaries use for their determinism smoke checks.
//!
//! ```text
//! hotpath [--quick|--smoke] [--jobs N] [--quiet] [--out FILE] [--baseline FILE]
//!         [--profile-overhead] [--history FILE] [--gate] [--gate-tol-pct N]
//!         [--sample] [--compare-cursor]
//! ```
//!
//! * `--quick`     quick scale (the BENCH_8.json configuration)
//! * `--smoke`     tiny scale for CI; digests only, finishes in seconds
//! * `--out F`     write the JSON report to `F`
//! * `--baseline F` read a previous report and embed the speedup ratio
//! * `--profile-overhead` re-measure the sweep with the attribution
//!   profiler attached and report the attached/detached throughput ratio
//!   (stderr + JSON). Also asserts the attached digests match the
//!   detached ones — the profiler must never perturb the simulation.
//! * `--history F` append this run's throughput as one JSONL line to `F`
//!   (the perf trajectory, e.g. `results/bench_history.jsonl`)
//! * `--gate`      compare against the last same-scale history entry and
//!   exit 1 on a hot-path regression beyond the tolerance. The failing
//!   run is *not* appended, so one bad build cannot lower the bar;
//!   `BENCH_ALLOW_REGRESSION=1` overrides (warns, appends, exits 0).
//! * `--gate-tol-pct N` allowed throughput drop in percent (default 30 —
//!   wall-clock gates on shared CI hardware need generous slack)
//! * `--sample` run the sampled-fast-forward leg: for every environment,
//!   a full-fidelity run and a sampled run (window 2000, interval 40000,
//!   re-warm 500) of the same fixed configuration, reporting the wall
//!   speedup and the worst relative error of the sampled estimates.
//!   This is a *correctness* gate, not a wall-clock one: any estimate
//!   off by more than 2% fails the run (the bound the differential test
//!   and EXPERIMENTS.md establish). The sizing is fixed (24 MiB, 800k
//!   accesses after 30k warmup) independent of `--smoke`/`--quick`,
//!   because the bound assumes the warmup reaches steady state.
//! * `--compare-cursor` run the stage-2 grid once under the work-stealing
//!   deque scheduler and once under the retained fetch-add cursor
//!   reference, assert the per-cell results are identical, and report
//!   both wall times plus the deque's steal count (stderr + JSON).
//!
//! A failing environment or grid cell no longer aborts the sweep: it is
//! reported to stderr with its env label and seed, the remaining cells
//! run to completion, and the process exits 1 with a failure summary.

use std::time::Instant;

use mv_bench::experiments::env_catalog::PAPER_10_ENVS;
use mv_bench::experiments::{config, Scale};
use mv_core::MmuConfig;
use mv_par::cli;
use mv_sim::{GridCell, ProfileConfig, RunResult, SampleSpec, SimConfig, Simulation};
use mv_types::MIB;
use mv_workloads::WorkloadKind;

/// One measured environment: its deterministic digest and its timing.
struct EnvPoint {
    env: String,
    driven_accesses: u64,
    wall_s: f64,
    accesses_per_sec: f64,
}

/// Smoke scale: the machine-equivalence fixture sizing, small enough for
/// a CI gate yet large enough that every environment walks and churns.
fn smoke_scale() -> Scale {
    Scale {
        big_footprint: 24 * MIB,
        compute_footprint: 24 * MIB,
        accesses: 10_000,
        warmup: 2_500,
        seed: 42,
    }
}

/// The deterministic per-environment digest printed to stdout. Timing
/// never appears here: two runs of the same build must emit identical
/// bytes regardless of load, jobs, or clock.
fn digest(env_label: &str, r: &RunResult) -> String {
    let c = &r.counters;
    format!(
        "{env_label:<10} accesses={} l1_misses={} l2_misses={} walks={} \
         guest_refs={} nested_refs={} bound_checks={} cycles={} overhead={:.6}",
        c.accesses,
        c.l1_misses,
        c.l2_misses,
        c.walks(),
        c.guest_walk_refs,
        c.nested_walk_refs,
        c.bound_checks,
        c.translation_cycles,
        r.overhead,
    )
}

/// Extracts `"key":<number>` from a hand-written JSON report. The
/// workspace is dependency-free, and the reports are machine-written by
/// this binary, so a string scan is sufficient (and fails soft).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = cli::has_flag(&args, "--smoke");
    let quick = cli::has_flag(&args, "--quick");
    let quiet = cli::has_flag(&args, "--quiet");
    let jobs = cli::parse_jobs(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let out = arg_value(&args, "--out");
    let baseline = arg_value(&args, "--baseline");
    let profile_overhead = cli::has_flag(&args, "--profile-overhead");
    let history = arg_value(&args, "--history");
    let gate = cli::has_flag(&args, "--gate");
    let gate_tol_pct = cli::parse_u64_opt(&args, "--gate-tol-pct")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
        .unwrap_or(30) as f64;
    let repeats = cli::parse_u64_opt(&args, "--repeats")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let sample_leg = cli::has_flag(&args, "--sample");
    let compare_cursor = cli::has_flag(&args, "--compare-cursor");

    // Failures are contained: each is recorded here with enough context
    // to re-run the cell alone, the sweep finishes, and main exits 1.
    let mut failures: Vec<String> = Vec::new();

    let (scale, scale_name) = if smoke {
        (smoke_scale(), "smoke")
    } else if quick {
        (Scale::quick(), "quick")
    } else {
        (Scale::full(), "full")
    };

    // Stage 1 — per-environment throughput, measured serially so each
    // number is a single-core accesses/sec figure, untainted by pool
    // scheduling. The digest of every run goes to stdout.
    let workload = WorkloadKind::Gups;
    let mut points = Vec::new();
    let mut digests = Vec::new();
    let mut total_driven = 0u64;
    let mut total_wall = 0.0f64;
    println!("# hotpath digests ({scale_name} scale, {} envs)", PAPER_10_ENVS.len());
    for (paging, env) in PAPER_10_ENVS {
        let cfg = config(workload, paging, env, &scale);
        let label = cfg.label();
        let driven = cfg.warmup + cfg.accesses;
        // Repeat and keep the fastest wall time: simulated work is
        // identical per repeat, so the minimum is the least-noisy
        // estimate of what the code costs.
        let mut wall = f64::INFINITY;
        let mut result = None;
        for _ in 0..repeats {
            let t = Instant::now();
            match Simulation::run(&cfg) {
                Ok(r) => result = Some(r),
                Err(e) => {
                    eprintln!("  {label} (seed {}) failed: {e}", cfg.seed);
                    failures.push(format!("env {label} (seed {}): {e}", cfg.seed));
                    result = None;
                    break;
                }
            }
            wall = wall.min(t.elapsed().as_secs_f64());
        }
        let Some(r) = result else { continue };
        digests.push((label.clone(), digest(&label, &r)));
        println!("{}", digests.last().map(|(_, d)| d.as_str()).unwrap_or_default());
        if !quiet {
            eprintln!(
                "  {label:<10} {driven:>9} accesses in {wall:>7.3}s  ({:>12.0} acc/s)",
                driven as f64 / wall
            );
        }
        total_driven += driven;
        total_wall += wall;
        points.push(EnvPoint {
            env: label,
            driven_accesses: driven,
            wall_s: wall,
            accesses_per_sec: driven as f64 / wall,
        });
    }
    let total_aps = total_driven as f64 / total_wall;
    if !quiet {
        eprintln!(
            "  sweep: {total_driven} accesses in {total_wall:.3}s  ({total_aps:.0} acc/s aggregate)"
        );
    }

    // Stage 1b — the same sweep with the attribution profiler attached.
    // Nothing here touches stdout: the detached digests above are the
    // deterministic record, and this stage *asserts* the attached run
    // reproduces them byte-for-byte (attribution must never perturb the
    // simulation — only cost wall time, which is what we measure).
    let mut attached = None;
    if profile_overhead {
        let mut attached_wall = 0.0f64;
        for (paging, env) in PAPER_10_ENVS {
            let cfg = config(workload, paging, env, &scale);
            let label = cfg.label();
            // Envs whose detached run failed have no digest to compare
            // against; they were already reported above.
            let Some((_, detached)) = digests.iter().find(|(l, _)| *l == label) else {
                continue;
            };
            let mut wall = f64::INFINITY;
            let mut result = None;
            for _ in 0..repeats {
                let t = Instant::now();
                match Simulation::run_profiled(
                    &cfg,
                    MmuConfig::default(),
                    None,
                    ProfileConfig::default(),
                ) {
                    Ok(r) => result = Some(r),
                    Err(e) => {
                        eprintln!("  {label} (seed {}) profiled run failed: {e}", cfg.seed);
                        failures.push(format!("profiled env {label} (seed {}): {e}", cfg.seed));
                        result = None;
                        break;
                    }
                }
                wall = wall.min(t.elapsed().as_secs_f64());
            }
            let Some(r) = result else { continue };
            assert_eq!(
                &digest(&label, &r),
                detached,
                "{label}: attaching the profiler changed the simulation"
            );
            assert!(
                r.profile.is_some(),
                "{label}: profiled run carries a profile"
            );
            attached_wall += wall;
        }
        let attached_aps = total_driven as f64 / attached_wall;
        let ratio = attached_wall / total_wall;
        if !quiet {
            eprintln!(
                "  profiler attached: {total_driven} accesses in {attached_wall:.3}s  \
                 ({attached_aps:.0} acc/s, {ratio:.3}x detached wall)"
            );
        }
        attached = Some((attached_wall, attached_aps, ratio));
    }

    // Stage 2 — wall-clock of the full quick grid (both fixture
    // workloads, all ten environments) on the requested worker count.
    let cells: Vec<GridCell> = [WorkloadKind::Gups, WorkloadKind::Memcached]
        .into_iter()
        .flat_map(|w| {
            PAPER_10_ENVS
                .into_iter()
                .map(move |(paging, env)| GridCell::new(config(w, paging, env, &scale)))
        })
        .collect();
    let t = Instant::now();
    let report = Simulation::run_grid(&cells, jobs);
    let grid_wall = t.elapsed().as_secs_f64();
    // A failed cell is skipped (its row simply doesn't appear in the
    // digest block), reported with its coordinates, and fails the exit
    // code — the other cells' digests still land on stdout for CI diffs.
    for (i, failure) in report.failures() {
        let cfg = &cells[i].cfg;
        eprintln!(
            "  grid cell {i} ({}/{} seed {}) failed: {failure}",
            cfg.workload.label(),
            cfg.label(),
            cfg.seed
        );
        failures.push(format!(
            "grid cell {i} ({}/{} seed {}): {failure}",
            cfg.workload.label(),
            cfg.label(),
            cfg.seed
        ));
    }
    println!("# grid digest ({} cells)", cells.len());
    for o in report.outcomes() {
        if let Ok(r) = &o.outcome {
            println!("{}/{}", o.cell.cfg.workload.label(), digest(&o.cell.cfg.label(), r));
        }
    }
    if !quiet {
        eprintln!("  grid: {} cells in {grid_wall:.3}s at --jobs {jobs}", cells.len());
    }

    // Stage 2b — scheduler comparison: the same grid once under the
    // work-stealing deque and once under the retained fetch-add cursor
    // reference. Both must produce identical results (the determinism
    // contract is scheduler-independent); the wall times and the deque's
    // steal count go to stderr and the JSON.
    let mut sched_compare = None;
    if compare_cursor {
        let run_cell = |_i: usize, cell: &GridCell| Simulation::run(&cell.cfg);
        let t = Instant::now();
        let (deque_out, stats) = mv_par::par_map_with_stats(jobs, &cells, run_cell);
        let deque_wall = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let cursor_out = mv_par::par_map_cursor(jobs, &cells, run_cell);
        let cursor_wall = t.elapsed().as_secs_f64();
        for (i, (d, c)) in deque_out.iter().zip(cursor_out.iter()).enumerate() {
            let (Ok(Ok(d)), Ok(Ok(c))) = (d, c) else {
                let cfg = &cells[i].cfg;
                failures.push(format!(
                    "scheduler-compare cell {i} ({}/{} seed {}) failed",
                    cfg.workload.label(),
                    cfg.label(),
                    cfg.seed
                ));
                continue;
            };
            assert_eq!(
                d.csv_row(),
                c.csv_row(),
                "cell {i}: deque and cursor schedulers disagree"
            );
        }
        let steals = stats.total_steals();
        if !quiet {
            eprintln!(
                "  schedulers: deque {deque_wall:.3}s ({steals} steals) vs cursor \
                 {cursor_wall:.3}s at --jobs {jobs}; results identical"
            );
        }
        sched_compare = Some((deque_wall, cursor_wall, steals));
    }

    // Stage 2c — the sampled fast-forward leg. Fixed sizing independent
    // of the scale flags: the 2% bound assumes the warmup reaches steady
    // state, which the differential test established for this footprint
    // at 30k warmup accesses (smoke/quick warmups do not qualify).
    let mut sample_report = None;
    if sample_leg {
        const SAMPLE_SPEC: SampleSpec = SampleSpec {
            window: 2_000,
            interval: 40_000,
            warmup: 500,
        };
        const SAMPLE_BOUND_PCT: f64 = 2.0;
        let mut full_wall = 0.0f64;
        let mut sampled_wall = 0.0f64;
        let mut worst_err_pct = 0.0f64;
        let mut sampled_envs = 0usize;
        println!("# sampled digests (window {}, interval {}, re-warm {})",
            SAMPLE_SPEC.window, SAMPLE_SPEC.interval, SAMPLE_SPEC.warmup);
        for (paging, env) in PAPER_10_ENVS {
            let cfg = SimConfig {
                workload,
                footprint: 24 * MIB,
                guest_paging: paging,
                env,
                accesses: 800_000,
                warmup: 30_000,
                seed: 42,
            };
            let label = cfg.label();
            // Both runs are deterministic across repeats, so keep the
            // last result and the minimum wall (same policy as stage 1).
            let mut env_full_wall = f64::INFINITY;
            let mut full = None;
            for _ in 0..repeats {
                let t = Instant::now();
                match Simulation::run(&cfg) {
                    Ok(r) => full = Some(r),
                    Err(e) => {
                        eprintln!("  {label} (seed {}) full run failed: {e}", cfg.seed);
                        failures.push(format!("sample full {label} (seed {}): {e}", cfg.seed));
                        full = None;
                        break;
                    }
                }
                env_full_wall = env_full_wall.min(t.elapsed().as_secs_f64());
            }
            let Some(full) = full else { continue };
            full_wall += env_full_wall;
            let mut env_sampled_wall = f64::INFINITY;
            let mut sampled = None;
            for _ in 0..repeats {
                let t = Instant::now();
                match Simulation::run_sampled(&cfg, MmuConfig::default(), None, SAMPLE_SPEC) {
                    Ok(r) => sampled = Some(r),
                    Err(e) => {
                        eprintln!("  {label} (seed {}) sampled run failed: {e}", cfg.seed);
                        failures.push(format!("sampled {label} (seed {}): {e}", cfg.seed));
                        sampled = None;
                        break;
                    }
                }
                env_sampled_wall = env_sampled_wall.min(t.elapsed().as_secs_f64());
            }
            let Some(sampled) = sampled else { continue };
            sampled_wall += env_sampled_wall;
            sampled_envs += 1;
            println!("sampled/{}", digest(&label, &sampled));
            if !quiet {
                eprintln!(
                    "  {label:<10} full {:>7.3}s vs sampled {env_sampled_wall:>7.3}s ({:.2}x)",
                    env_full_wall,
                    env_full_wall / env_sampled_wall
                );
            }
            // Relative error with an absolute floor (one walk's worth of
            // cycles per 40k accesses, as in the differential test) so
            // near-zero quantities don't explode the ratio.
            let rel = |est: f64, act: f64, floor: f64| {
                if (est - act).abs() <= floor {
                    0.0
                } else {
                    100.0 * (est - act).abs() / act.abs().max(floor)
                }
            };
            let errs = [
                ("translation_cycles", rel(sampled.translation_cycles, full.translation_cycles, 2_000.0)),
                ("overhead", rel(sampled.overhead, full.overhead, 0.002)),
            ];
            for (what, e) in errs {
                worst_err_pct = worst_err_pct.max(e);
                if e > SAMPLE_BOUND_PCT {
                    eprintln!(
                        "  {label}: sampled {what} off by {e:.2}% (bound {SAMPLE_BOUND_PCT}%)"
                    );
                    failures.push(format!(
                        "sampled {label}: {what} error {e:.2}% exceeds {SAMPLE_BOUND_PCT}%"
                    ));
                }
            }
        }
        let speedup = if sampled_wall > 0.0 { full_wall / sampled_wall } else { 0.0 };
        if !quiet {
            eprintln!(
                "  sampled: {sampled_envs} envs, full {full_wall:.3}s vs sampled \
                 {sampled_wall:.3}s ({speedup:.2}x), worst estimate error {worst_err_pct:.3}%"
            );
        }
        sample_report = Some((full_wall, sampled_wall, speedup, worst_err_pct));
    }

    // Stage 3 — the JSON trajectory point (timings live here, not stdout).
    if let Some(path) = out {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"hotpath\",\n");
        json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
        json.push_str(&format!("  \"workload\": \"{}\",\n", workload.label()));
        json.push_str("  \"envs\": [\n");
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"env\": \"{}\", \"driven_accesses\": {}, \"wall_s\": {:.6}, \
                 \"accesses_per_sec\": {:.0}}}{}\n",
                p.env,
                p.driven_accesses,
                p.wall_s,
                p.accesses_per_sec,
                if i + 1 < points.len() { "," } else { "" },
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"total_driven_accesses\": {total_driven},\n  \"total_wall_s\": {total_wall:.6},\n  \
             \"total_accesses_per_sec\":{total_aps:.0},\n"
        ));
        json.push_str(&format!(
            "  \"grid\": {{\"cells\": {}, \"jobs\": {}, \"wall_s\": {:.6}}}",
            cells.len(),
            jobs,
            grid_wall
        ));
        if let Some((deque_wall, cursor_wall, steals)) = sched_compare {
            json.push_str(&format!(
                ",\n  \"scheduler_compare\": {{\"deque_wall_s\": {deque_wall:.6}, \
                 \"cursor_wall_s\": {cursor_wall:.6}, \"steals\": {steals}}}"
            ));
        }
        if let Some((full_wall, sampled_wall, speedup, worst_err_pct)) = sample_report {
            json.push_str(&format!(
                ",\n  \"sample\": {{\"full_wall_s\": {full_wall:.6}, \
                 \"sampled_wall_s\": {sampled_wall:.6}, \"speedup\": {speedup:.3}, \
                 \"worst_estimate_error_pct\": {worst_err_pct:.4}}}"
            ));
        }
        if let Some((wall, aps, ratio)) = attached {
            json.push_str(&format!(
                ",\n  \"profile_overhead\": {{\"attached_wall_s\": {wall:.6}, \
                 \"attached_accesses_per_sec\": {aps:.0}, \"wall_ratio\": {ratio:.4}}}"
            ));
        }
        if let Some(base_path) = baseline {
            match std::fs::read_to_string(&base_path) {
                Ok(text) => {
                    let base = json_number(&text, "total_accesses_per_sec");
                    if let Some(base_aps) = base {
                        let speedup = total_aps / base_aps;
                        json.push_str(&format!(
                            ",\n  \"baseline\": {{\"path\": \"{base_path}\", \
                             \"total_accesses_per_sec\":{base_aps:.0}, \
                             \"speedup\": {speedup:.3}}}"
                        ));
                        if !quiet {
                            eprintln!("  speedup vs {base_path}: {speedup:.2}x");
                        }
                    } else {
                        eprintln!("warning: no total_accesses_per_sec in {base_path}");
                    }
                }
                Err(e) => eprintln!("warning: cannot read baseline {base_path}: {e}"),
            }
        }
        json.push_str("\n}\n");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        if !quiet {
            eprintln!("  wrote {path}");
        }
    }

    // Stage 4 — the regression gate, then the perf trajectory. Order
    // matters: gate against the *last accepted* same-scale entry first,
    // append only on pass, so a regressed build can never lower the bar
    // for the next one.
    if gate {
        let last = history.as_ref().and_then(|path| {
            last_matching_aps(path, scale_name)
        });
        match last {
            None => eprintln!(
                "gate: no previous {scale_name}-scale entry in {}; measuring only",
                history.as_deref().unwrap_or("(no --history file)")
            ),
            Some(base_aps) => {
                let floor = base_aps * (1.0 - gate_tol_pct / 100.0);
                if total_aps < floor {
                    let drop = 100.0 * (1.0 - total_aps / base_aps);
                    eprintln!(
                        "gate: hot-path REGRESSION: {total_aps:.0} acc/s vs last accepted \
                         {base_aps:.0} acc/s ({drop:.1}% drop, tolerance {gate_tol_pct:.0}%)"
                    );
                    if std::env::var("BENCH_ALLOW_REGRESSION").as_deref() == Ok("1") {
                        eprintln!("gate: BENCH_ALLOW_REGRESSION=1 set; accepting anyway");
                    } else {
                        eprintln!("gate: failing (set BENCH_ALLOW_REGRESSION=1 to accept)");
                        std::process::exit(1);
                    }
                } else if !quiet {
                    eprintln!(
                        "gate: ok — {total_aps:.0} acc/s vs last accepted {base_aps:.0} acc/s \
                         (floor {floor:.0}, tolerance {gate_tol_pct:.0}%)"
                    );
                }
            }
        }
    }
    if let Some(path) = history {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut line = format!(
            "{{\"bench\":\"hotpath\",\"scale\":\"{scale_name}\",\"unix_time\":{stamp},\
             \"jobs\":{jobs},\"repeats\":{repeats},\"total_driven_accesses\":{total_driven},\
             \"total_wall_s\":{total_wall:.6},\"total_accesses_per_sec\":{total_aps:.0},\
             \"grid_cells\":{},\"grid_wall_s\":{grid_wall:.6}",
            cells.len()
        );
        if let Some((_, _, ratio)) = attached {
            line.push_str(&format!(",\"profile_wall_ratio\":{ratio:.4}"));
        }
        line.push_str("}\n");
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("opening {path}: {e}"));
        f.write_all(line.as_bytes())
            .unwrap_or_else(|e| panic!("appending to {path}: {e}"));
        if !quiet {
            eprintln!("  appended {scale_name}-scale trajectory point to {path}");
        }
    }

    if !failures.is_empty() {
        eprintln!("{} cell(s) failed:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Scans a `bench_history.jsonl` file for the most recent entry at
/// `scale` and returns its `total_accesses_per_sec`. Missing file, no
/// matching entry, or an unparsable number all yield `None` — the gate
/// then measures without judging.
fn last_matching_aps(path: &str, scale: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let tag = format!("\"scale\":\"{scale}\"");
    text.lines()
        .rev()
        .find(|l| l.contains(&tag))
        .and_then(|l| json_number(l, "total_accesses_per_sec"))
}

/// Extracts `--flag VALUE` from the argument list.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
    }
}
