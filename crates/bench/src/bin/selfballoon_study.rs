//! Self-ballooning vs. memory compaction (Section IV): both manufacture
//! the contiguity a segment needs, but self-ballooning does it "without
//! the cost of memory compaction" — it moves *zero* pages, trading
//! pre-provisioned hotplug address space instead. This study quantifies
//! the claim across fragmentation levels, and also shows the secondary
//! benefit the paper notes: the reclaimed contiguity lets the guest map
//! 2 MiB pages again.
//!
//! The occupancy levels are independent experiments (each builds its own
//! host and guest from fixed seeds) and run on a worker pool (`--jobs N`,
//! `--quiet`); the table rows come back in occupancy order.

use mv_bench::experiments::parse_parallelism;
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_metrics::Table;
use mv_types::rng::StdRng;
use mv_types::{Gva, PageSize, Prot, MIB};
use mv_vmm::{VmConfig, Vmm};

/// Measures both contiguity mechanisms at one fragmentation level and
/// returns the table row.
fn run_level(occupancy: f64, want: u64, installed: u64) -> [String; 4] {
    // Guest side: self-ballooning.
    let mut vmm = Vmm::new(2 * installed + 256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed + 128 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig {
        installed_bytes: installed,
        hotplug_capacity: 128 * MIB,
        model_io_gap: false,
        boot_reservation: 0,
    }).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let _junk = guest.mem_mut().fragment(&mut rng, occupancy);
    let before = guest.mem().stats().largest_free_run_bytes;
    vmm.self_balloon(vm, &mut guest, want).expect("capacity provisioned");
    let balloon_moved = 0u64; // ballooning never copies page contents

    // Host side: compaction for the same goal on an equally fragmented
    // physical space.
    let mut host = mv_phys::PhysMem::<mv_types::Hpa>::new(installed);
    let mut rng = StdRng::seed_from_u64(77);
    let _junk = host.fragment(&mut rng, occupancy);
    let outcome = host
        .compact_and_reserve(want, PageSize::Size2M, false, &mut |_, _| {})
        .expect("enough free memory to compact");

    [
        format!("{:.0}%", occupancy * 100.0),
        format!("{} MiB", before / MIB),
        balloon_moved.to_string(),
        outcome.pages_moved.to_string(),
    ]
}

fn main() {
    let want = 64 * MIB;
    let installed = 256 * MIB;
    let (jobs, reporter) = parse_parallelism();

    println!("\nSelf-ballooning vs. host-side compaction: cost to create {} MiB", want / MIB);
    println!("of contiguous memory at increasing fragmentation\n");
    let levels = [0.1f64, 0.2, 0.3, 0.4, 0.5];
    let rows = mv_par::par_map(jobs, &levels, |i, &occupancy| {
        reporter.line(format!(
            "  [{}/{}] occupancy {:.0}%...",
            i + 1,
            levels.len(),
            occupancy * 100.0
        ));
        run_level(occupancy, want, installed)
    });

    let mut t = Table::new(&[
        "occupancy",
        "largest run before",
        "self-balloon pages moved",
        "compaction pages moved",
    ]);
    let mut failed = 0usize;
    for (occupancy, row) in levels.iter().zip(rows) {
        match row {
            Ok(row) => {
                t.row(&row);
            }
            Err(p) => {
                failed += 1;
                eprintln!(
                    "selfballoon_study: occupancy {:.0}% (seed 77) failed: {p}",
                    occupancy * 100.0
                );
                t.row(&[
                    format!("{:.0}%", occupancy * 100.0),
                    "-".to_string(),
                    "failed!".to_string(),
                    "failed!".to_string(),
                ]);
            }
        }
    }
    println!("{t}");
    println!("(self-ballooning trades pre-provisioned guest-physical address");
    println!(" space for contiguity; compaction pays page copies instead)\n");

    // Secondary benefit: huge pages come back after self-ballooning.
    println!("Huge-page availability before/after self-ballooning (40% occupancy)\n");
    let mut vmm = Vmm::new(2 * installed + 256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed + 128 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig {
        installed_bytes: installed,
        hotplug_capacity: 128 * MIB,
        model_io_gap: false,
        boot_reservation: 0,
    }).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let _junk = guest.mem_mut().fragment(&mut rng, 0.4);

    let pid = guest.create_process(PageSizePolicy::Thp).unwrap();
    let va = guest.mmap(pid, 16 * MIB, Prot::RW).unwrap();
    guest.populate(pid, va, 16 * MIB).unwrap();
    let before = guest.process(pid).thp_promotions();

    vmm.self_balloon(vm, &mut guest, 64 * MIB).unwrap();
    let va2 = guest.mmap(pid, 16 * MIB, Prot::RW).unwrap();
    guest.populate(pid, Gva::new(va2.as_u64()), 16 * MIB).unwrap();
    let after = guest.process(pid).thp_promotions() - before;

    let mut t = Table::new(&["phase", "2 MiB THP mappings (of 8 possible)"]);
    t.row(&["fragmented", &before.to_string()]);
    t.row(&["after self-balloon", &after.to_string()]);
    println!("{t}");
    println!("(the paper: \"self-ballooning can also work with standard nested");
    println!(" page tables to create more large pages in a guest OS\")");
    if failed > 0 {
        eprintln!("selfballoon_study: {failed} of {} level(s) failed", levels.len());
        std::process::exit(1);
    }
}
