//! Degradation study: fault-injection rates × the environment catalog.
//!
//! For each environment the study runs one chaos-free baseline and a
//! sweep of fault rates, all under the translation oracle, and reports:
//!
//! * **survival** — the run completed with zero oracle violations;
//! * **degradation residency** — the fraction of accesses spent at each
//!   level (Direct / escape-heavy / paging) of the degradation machine;
//! * **oracle-checked slowdown** — total measured cycles relative to the
//!   same environment's chaos-free baseline.
//!
//! ```text
//! cargo run --release -p mv-bench --bin chaos_study -- --quick --jobs 4
//! ```
//!
//! Flags: `--quick` (smoke scale), `--jobs N`, `--quiet`, and
//! `--chaos-seed N` (fault-plan seed, default 0xc4a05). The grid runs on
//! a worker pool; rows are assembled in sweep order, so stdout is
//! byte-identical for any `--jobs` value and a fixed seed.

use mv_bench::experiments::{env_catalog, parse_parallelism, parse_scale};
use mv_chaos::{ChaosSpec, DegradeLevel};
use mv_metrics::Table;
use mv_par::cli;
use mv_sim::{GridCell, SimConfig, Simulation};
use mv_workloads::WorkloadKind;

/// Injected faults per million accesses, from "off" (the baseline) to a
/// rate where balloon denials keep the run degraded most of the window.
const RATES: [u64; 4] = [0, 1_000, 10_000, 50_000];

/// Representative cross-section of the catalog: every segment-bearing
/// mode (each degrades a different dimension), a base-paging and a shadow
/// environment that exercise injection and the oracle with no segment to
/// lose, and the 3-deep L2 stack — per-layer segment loss over all three
/// segments (`L2+TD`), over the two inner segments (`L2+MHD`), and the
/// segmentless shadow-on-nested collapse.
const ENVS: [(&str, env_catalog::NamedEnv); 9] = [
    ("DS", env_catalog::NATIVE_DS),
    ("4K+4K", env_catalog::VIRT_4K_4K),
    ("VD", env_catalog::VMM_DIRECT),
    ("GD", env_catalog::GUEST_DIRECT),
    ("DD", env_catalog::DUAL_DIRECT),
    ("shadow", env_catalog::SHADOW_4K),
    ("L2+TD", env_catalog::L2_TRIPLE_DIRECT),
    ("L2+MHD", env_catalog::L2_MID_HOST),
    ("L2shadow", env_catalog::L2_SHADOW),
];

fn main() {
    let scale = parse_scale();
    let (jobs, reporter) = parse_parallelism();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chaos_seed = cli::parse_u64_opt(&args, "--chaos-seed")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
        .unwrap_or(0xc4a05);

    let workload = WorkloadKind::Gups;
    let cells: Vec<GridCell> = ENVS
        .iter()
        .flat_map(|&(_, (paging, env))| {
            RATES.iter().map(move |&rate| {
                let cfg = SimConfig {
                    workload,
                    footprint: scale.footprint_for(workload),
                    guest_paging: paging,
                    env,
                    accesses: scale.accesses,
                    warmup: scale.warmup,
                    seed: scale.seed,
                };
                let mut cell = GridCell::new(cfg);
                if rate > 0 {
                    cell = cell.with_chaos(ChaosSpec::new(chaos_seed, rate));
                }
                cell
            })
        })
        .collect();

    println!(
        "\nDegradation study: fault injection under the translation oracle \
         (chaos seed {chaos_seed:#x}, {} accesses)\n",
        scale.accesses
    );
    let report = Simulation::run_grid_reported(&cells, jobs, &reporter);

    let mut t = Table::new(&[
        "env",
        "faults/M",
        "survived",
        "injected",
        "recoveries",
        "direct%",
        "escape%",
        "paging%",
        "oracle checks",
        "violations",
        "slowdown",
    ]);
    let results = report.outcomes();
    for (e, &(label, _)) in ENVS.iter().enumerate() {
        // The rate-0 cell is this environment's slowdown baseline.
        let base_cycles = match &results[e * RATES.len()].outcome {
            Ok(r) => r.ideal_cycles + r.translation_cycles,
            Err(_) => 0.0,
        };
        for (j, &rate) in RATES.iter().enumerate() {
            let row = match &results[e * RATES.len() + j].outcome {
                Ok(r) => {
                    let slowdown = if base_cycles > 0.0 {
                        format!(
                            "{:.3}x",
                            (r.ideal_cycles + r.translation_cycles) / base_cycles
                        )
                    } else {
                        "-".to_string()
                    };
                    match &r.chaos {
                        Some(c) => {
                            let total: u64 = c.residency.iter().sum::<u64>().max(1);
                            let pct = |l: DegradeLevel| {
                                format!(
                                    "{:.1}",
                                    100.0 * c.residency[l.index()] as f64 / total as f64
                                )
                            };
                            [
                                label.to_string(),
                                rate.to_string(),
                                if c.survived() { "yes" } else { "NO" }.to_string(),
                                c.injected_total().to_string(),
                                c.recoveries.to_string(),
                                pct(DegradeLevel::Direct),
                                pct(DegradeLevel::EscapeHeavy),
                                pct(DegradeLevel::Paging),
                                c.oracle_checks.to_string(),
                                c.oracle_violations.to_string(),
                                slowdown,
                            ]
                        }
                        // The chaos-free baseline: no plan, no oracle.
                        None => [
                            label.to_string(),
                            rate.to_string(),
                            "yes".to_string(),
                            "0".to_string(),
                            "-".to_string(),
                            "100.0".to_string(),
                            "0.0".to_string(),
                            "0.0".to_string(),
                            "-".to_string(),
                            "0".to_string(),
                            "1.000x".to_string(),
                        ],
                    }
                }
                Err(failure) => {
                    reporter.line(format!("{label} @ {rate}/M failed: {failure}"));
                    [
                        label.to_string(),
                        rate.to_string(),
                        "DIED".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]
                }
            };
            t.row(&row);
        }
    }
    println!("{t}");
    println!("(survival = completed with zero oracle violations; residency =");
    println!(" share of accesses at each degradation level; slowdown vs. the");
    println!(" same environment's chaos-free baseline)\n");
}
