//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Walk caching** — how much of the 2D-walk cost do page-walk caches
//!    and the nested TLB already hide (and how much remains for the
//!    segments to remove)?
//! 2. **Shared-L2 capacity** — sensitivity of virtualized miss counts to
//!    the structure nested entries pollute.
//! 3. **Escape-filter geometry** — false positives vs filter bits with the
//!    paper's 16-fault budget, motivating the 256-bit choice.

use mv_bench::experiments::{config, parse_scale, pct};
use mv_core::{EscapeFilter, MmuConfig};
use mv_metrics::Table;
use mv_sim::{Env, GuestPaging, SimConfig, Simulation};
use mv_tlb::TlbConfig;
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn main() {
    let scale = parse_scale();
    let paging = GuestPaging::Fixed(PageSize::Size4K);
    let base_cfg = |w| SimConfig {
        footprint: scale.footprint_for(w).min(512 * MIB),
        ..config(w, paging, Env::base_virtualized(PageSize::Size4K), &scale)
    };

    // --- 1. Walk caching on/off --------------------------------------
    println!("\nAblation 1 — walk caching (PWCs + nested TLB) under 4K+4K\n");
    let mut t = Table::new(&["workload", "cached overhead", "uncached overhead", "refs/walk cached", "refs/walk uncached"]);
    for w in [WorkloadKind::Graph500, WorkloadKind::Gups] {
        eprintln!("running {} (walk caching)...", w.label());
        let cfg = base_cfg(w);
        let on = Simulation::run_with_mmu(&cfg, MmuConfig::default()).unwrap();
        let off = Simulation::run_with_mmu(
            &cfg,
            MmuConfig {
                walk_caching: false,
                ..MmuConfig::default()
            },
        )
        .unwrap();
        let rpw = |r: &mv_sim::RunResult| {
            r.counters.walk_refs() as f64 / r.counters.walks().max(1) as f64
        };
        t.row(&[
            w.label().to_string(),
            pct(on.overhead),
            pct(off.overhead),
            format!("{:.1}", rpw(&on)),
            format!("{:.1}", rpw(&off)),
        ]);
    }
    println!("{t}");
    println!("(uncached walks approach the architectural 24 references)\n");

    // --- 2. Shared-L2 capacity sweep ----------------------------------
    println!("Ablation 2 — shared L2 TLB capacity under 4K+4K (gups)\n");
    let mut t = Table::new(&["L2 entries", "L1 MPKA", "walks/1K acc", "overhead"]);
    for entries in [128usize, 256, 512, 1024, 2048] {
        eprintln!("running L2={entries}...");
        let cfg = base_cfg(WorkloadKind::Gups);
        let r = Simulation::run_with_mmu(
            &cfg,
            MmuConfig {
                tlb: TlbConfig {
                    l2_entries: entries,
                    ..TlbConfig::sandy_bridge()
                },
                ..MmuConfig::default()
            },
        )
        .unwrap();
        t.row(&[
            entries.to_string(),
            format!("{:.1}", r.mpka()),
            format!("{:.1}", 1000.0 * r.counters.l2_misses as f64 / r.accesses as f64),
            pct(r.overhead),
        ]);
    }
    println!("{t}");

    // --- 3. Escape-filter geometry -----------------------------------
    println!("Ablation 3 — escape-filter bits vs false positives (16 faults)\n");
    let mut t = Table::new(&["filter bits", "hashes", "fill", "measured fp rate"]);
    for bits in [64usize, 128, 256, 512, 1024] {
        let mut f = EscapeFilter::with_geometry(3, bits, 4);
        for i in 0..16u64 {
            f.insert(0x4000_0000 + i * 0x1000);
        }
        let probes = 200_000u64;
        let fps = (0..probes)
            .filter(|i| f.maybe_contains(0x9000_0000 + i * 0x1000))
            .count();
        t.row(&[
            bits.to_string(),
            f.num_hashes().to_string(),
            format!("{:.1}%", f.fill_ratio() * 100.0),
            format!("{:.4}%", 100.0 * fps as f64 / probes as f64),
        ]);
    }
    println!("{t}");
    println!("(the paper's 256-bit/4-hash point is where 16 faults cost ~nothing)");
}
