//! Methodology replication (Section VII): predict every proposed mode's
//! performance from a *Base Virtualized* miss trace — without ever running
//! the modes — then validate the predictions against direct simulation.
//!
//! This is exactly what the paper does on real hardware: BadgerTrap
//! captures each DTLB miss's (gVA, gPA); the misses are classified against
//! the would-be segment ranges to get F_DD/F_VD/F_GD; those fractions plus
//! measured C_n, C_v, M_n feed the Table IV linear models. Here the same
//! pipeline runs against the simulator, and — unlike on real hardware —
//! the prediction can be checked by actually simulating each mode.
//!
//! The per-workload pipelines are independent and run on a worker pool
//! (`--jobs N`, default: available parallelism). Each workload's
//! diagnostics — miss counts, walk-latency histogram, the per-epoch
//! cycles-per-miss drift line — are emitted as one atomic block through a
//! mutex-guarded reporter, so blocks never interleave no matter how the
//! pool schedules them; `--quiet` suppresses them entirely.

use mv_bench::experiments::{config, parse_parallelism, parse_scale};
use mv_core::{MmuConfig, Segment};
use mv_metrics::{LinearModel, Table};
use mv_sim::{Env, GuestPaging, Simulation, TelemetryConfig};
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize};
use mv_workloads::WorkloadKind;

/// Parses `--telemetry-out BASE`: write each traced run's telemetry as
/// JSONL to `BASE.<workload>.jsonl`.
fn parse_telemetry_out() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--telemetry-out")
        .map(|i| args.get(i + 1).expect("--telemetry-out needs a path").clone())
}


fn main() {
    use std::fmt::Write as _;

    let scale = parse_scale();
    let (jobs, reporter) = parse_parallelism();
    let telemetry_out = parse_telemetry_out();
    let paging = GuestPaging::Fixed(PageSize::Size4K);

    let workloads = WorkloadKind::BIG_MEMORY;
    let total = workloads.len();
    let reports = mv_par::par_map(jobs, &workloads, |i, &w| {
        reporter.line(format!(
            "  [{:>3}/{total}] tracing {} under base virtualized...",
            i + 1,
            w.label()
        ));
        let mut diag = String::new();
        let footprint = scale.footprint_for(w);

        // 1. Native and base-virtualized runs give C_n, C_v, M_n; the
        // base run also yields the miss trace.
        let native = Simulation::run(&config(w, paging, Env::native(), &scale)).unwrap();
        let (base, trace) = Simulation::run_instrumented(
            &config(w, paging, Env::base_virtualized(PageSize::Size4K), &scale),
            MmuConfig::default(),
            Some(4_000_000),
            Some(TelemetryConfig {
                epoch_len: (scale.accesses / 16).max(1),
                flight_capacity: 0,
            }),
        )
        .unwrap();
        let trace = trace.expect("tracing was enabled");
        writeln!(diag, "{}:", w.label()).unwrap();
        writeln!(
            diag,
            "  captured {} misses ({} dropped)",
            trace.records().len(),
            trace.dropped()
        )
        .unwrap();
        if let Some(t) = &base.telemetry {
            // The per-miss latency profile behind C_v, and its drift over
            // the run (a rising trend would mean the measurement window
            // had not reached steady state).
            writeln!(diag, "  walk latency: {}", t.hist()).unwrap();
            let drift: Vec<String> = t
                .epochs()
                .iter()
                .map(|e| format!("{:.0}", e.cycles_per_miss()))
                .collect();
            writeln!(diag, "  cycles/miss by epoch: [{}]", drift.join(" ")).unwrap();
            if let Some(base_path) = &telemetry_out {
                let path = format!("{base_path}.{}.jsonl", w.label());
                let mut f = std::fs::File::create(&path)
                    .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
                t.write_jsonl(&mut f).expect("telemetry write");
                writeln!(diag, "  wrote telemetry to {path}").unwrap();
            }
        }

        // 2. Classify against the segments the modes *would* use. The
        // simulator's guest segment maps the primary region at the top of
        // guest memory; since the traced run used plain mmap at the same
        // footprint, classify by range: a hypothetical guest segment over
        // the whole arena, and a VMM segment over all of guest-physical
        // memory (what `Simulation` programs for VD/DD).
        let arena = AddrRange::from_start_len(
            Gva::new(trace.records().iter().map(|r| r.gva.as_u64()).min().unwrap() & !0xfff),
            footprint,
        );
        let installed = footprint + footprint / 2 + 96 * mv_types::MIB;
        let gseg: Segment<Gva, Gpa> = Segment::map(arena, Gpa::new(0));
        let vseg: Segment<Gpa, Hpa> =
            Segment::map(AddrRange::from_start_len(Gpa::ZERO, installed), Hpa::new(0));
        let (f_dd, f_vd, f_gd) = trace.classify(&gseg, &vseg);

        // 3. Feed the Table IV models.
        let model = LinearModel {
            c_n: native.cycles_per_miss(),
            c_v: base.cycles_per_miss(),
            m_n: native.counters.l1_misses,
        };
        let predictions = [
            ("VMM Direct", model.vmm_direct(f_dd + f_vd), f_dd + f_vd, Env::vmm_direct()),
            ("Guest Direct", model.guest_direct(f_dd + f_gd), f_dd + f_gd, Env::guest_direct(PageSize::Size4K)),
            ("Dual Direct", model.dual_direct(f_dd, f_vd, f_gd), f_dd, Env::dual_direct()),
        ];

        // 4. Validate each prediction by direct simulation.
        let mut rows = Vec::with_capacity(predictions.len());
        for (name, predicted, fraction, env) in predictions {
            let sim = Simulation::run(&config(w, paging, env, &scale)).unwrap();
            let simulated = sim.translation_cycles;
            let ratio = if predicted > 0.0 {
                simulated / predicted
            } else if simulated == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
            rows.push([
                w.label().to_string(),
                name.to_string(),
                format!("{fraction:.3}"),
                format!("{:.2}", predicted / 1e6),
                format!("{:.2}", simulated / 1e6),
                format!("{ratio:.2}"),
            ]);
        }
        // The whole diagnostic block lands on stderr in one locked write —
        // never interleaved with another workload's block.
        reporter.block(&diag);
        rows
    });

    // Deterministic assembly in workload order, whatever order the pool
    // finished in. A poisoned workload becomes a failed row, not a dead run.
    let mut t = Table::new(&[
        "workload", "mode", "F (trace)", "predicted Mcyc", "simulated Mcyc", "pred/sim",
    ]);
    let mut failed = 0usize;
    for (&w, report) in workloads.iter().zip(reports) {
        match report {
            Ok(rows) => {
                for row in &rows {
                    t.row(row);
                }
            }
            Err(p) => {
                failed += 1;
                eprintln!("badgertrap: {} pipeline failed: {p}", w.label());
                t.row(&[
                    w.label().to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "failed!".to_string(),
                    "failed!".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    println!("\nSection VII methodology replication — trace-classified fractions");
    println!("+ Table IV models predict each mode, validated by simulation\n");
    println!("{t}");
    println!("(on real hardware the paper can only produce the 'predicted'");
    println!(" column; the simulator closes the loop)");
    if failed > 0 {
        eprintln!("badgertrap: {failed} of {} workload pipeline(s) failed", workloads.len());
        std::process::exit(1);
    }
}
