//! Methodology replication (Section VII): predict every proposed mode's
//! performance from a *Base Virtualized* miss trace — without ever running
//! the modes — then validate the predictions against direct simulation.
//!
//! This is exactly what the paper does on real hardware: BadgerTrap
//! captures each DTLB miss's (gVA, gPA); the misses are classified against
//! the would-be segment ranges to get F_DD/F_VD/F_GD; those fractions plus
//! measured C_n, C_v, M_n feed the Table IV linear models. Here the same
//! pipeline runs against the simulator, and — unlike on real hardware —
//! the prediction can be checked by actually simulating each mode.

use mv_bench::experiments::{config, parse_scale};
use mv_core::{MmuConfig, Segment};
use mv_metrics::{LinearModel, Table};
use mv_sim::{Env, GuestPaging, Simulation, TelemetryConfig};
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize};
use mv_workloads::WorkloadKind;

/// Parses `--telemetry-out BASE`: write each traced run's telemetry as
/// JSONL to `BASE.<workload>.jsonl`.
fn parse_telemetry_out() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--telemetry-out")
        .map(|i| args.get(i + 1).expect("--telemetry-out needs a path").clone())
}

fn main() {
    let scale = parse_scale();
    let telemetry_out = parse_telemetry_out();
    let paging = GuestPaging::Fixed(PageSize::Size4K);

    let mut t = Table::new(&[
        "workload", "mode", "F (trace)", "predicted Mcyc", "simulated Mcyc", "pred/sim",
    ]);
    for w in WorkloadKind::BIG_MEMORY {
        eprintln!("tracing {} under base virtualized...", w.label());
        let footprint = scale.footprint_for(w);

        // 1. Native and base-virtualized runs give C_n, C_v, M_n; the
        // base run also yields the miss trace.
        let native = Simulation::run(&config(w, paging, Env::native(), &scale)).unwrap();
        let (base, trace) = Simulation::run_instrumented(
            &config(w, paging, Env::base_virtualized(PageSize::Size4K), &scale),
            MmuConfig::default(),
            Some(4_000_000),
            Some(TelemetryConfig {
                epoch_len: (scale.accesses / 16).max(1),
                flight_capacity: 0,
            }),
        )
        .unwrap();
        let trace = trace.expect("tracing was enabled");
        eprintln!(
            "  captured {} misses ({} dropped)",
            trace.records().len(),
            trace.dropped()
        );
        if let Some(t) = &base.telemetry {
            // The per-miss latency profile behind C_v, and its drift over
            // the run (a rising trend would mean the measurement window
            // had not reached steady state).
            eprintln!("  walk latency: {}", t.hist());
            let drift: Vec<String> = t
                .epochs()
                .iter()
                .map(|e| format!("{:.0}", e.cycles_per_miss()))
                .collect();
            eprintln!("  cycles/miss by epoch: [{}]", drift.join(" "));
            if let Some(base_path) = &telemetry_out {
                let path = format!("{base_path}.{}.jsonl", w.label());
                let mut f = std::fs::File::create(&path).unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(1);
                });
                t.write_jsonl(&mut f).expect("telemetry write");
                eprintln!("  wrote telemetry to {path}");
            }
        }

        // 2. Classify against the segments the modes *would* use. The
        // simulator's guest segment maps the primary region at the top of
        // guest memory; since the traced run used plain mmap at the same
        // footprint, classify by range: a hypothetical guest segment over
        // the whole arena, and a VMM segment over all of guest-physical
        // memory (what `Simulation` programs for VD/DD).
        let arena = AddrRange::from_start_len(
            Gva::new(trace.records().iter().map(|r| r.gva.as_u64()).min().unwrap() & !0xfff),
            footprint,
        );
        let installed = footprint + footprint / 2 + 96 * mv_types::MIB;
        let gseg: Segment<Gva, Gpa> = Segment::map(arena, Gpa::new(0));
        let vseg: Segment<Gpa, Hpa> =
            Segment::map(AddrRange::from_start_len(Gpa::ZERO, installed), Hpa::new(0));
        let (f_dd, f_vd, f_gd) = trace.classify(&gseg, &vseg);

        // 3. Feed the Table IV models.
        let model = LinearModel {
            c_n: native.cycles_per_miss(),
            c_v: base.cycles_per_miss(),
            m_n: native.counters.l1_misses,
        };
        let predictions = [
            ("VMM Direct", model.vmm_direct(f_dd + f_vd), f_dd + f_vd, Env::vmm_direct()),
            ("Guest Direct", model.guest_direct(f_dd + f_gd), f_dd + f_gd, Env::guest_direct(PageSize::Size4K)),
            ("Dual Direct", model.dual_direct(f_dd, f_vd, f_gd), f_dd, Env::dual_direct()),
        ];

        // 4. Validate each prediction by direct simulation.
        for (name, predicted, fraction, env) in predictions {
            eprintln!("  simulating {} for validation...", name);
            let sim = Simulation::run(&config(w, paging, env, &scale)).unwrap();
            let simulated = sim.translation_cycles;
            let ratio = if predicted > 0.0 {
                simulated / predicted
            } else if simulated == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
            t.row(&[
                w.label().to_string(),
                name.to_string(),
                format!("{fraction:.3}"),
                format!("{:.2}", predicted / 1e6),
                format!("{:.2}", simulated / 1e6),
                format!("{ratio:.2}"),
            ]);
        }
    }
    println!("\nSection VII methodology replication — trace-classified fractions");
    println!("+ Table IV models predict each mode, validated by simulation\n");
    println!("{t}");
    println!("(on real hardware the paper can only produce the 'predicted'");
    println!(" column; the simulator closes the loop)");
}
