//! Table I: steps in address translation of a guest virtual address in
//! Dual Direct mode, demonstrated live — one run per segment category with
//! the observed translation path and costs.

use mv_core::{
    HitPath, MemoryContext, Mmu, MmuConfig, Segment, TranslationMode,
};
use mv_metrics::Table;
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};

fn main() {
    // Build a small two-level world with segments covering only parts of
    // each space, so one virtual address exists for every Table I column.
    let mut gmem: PhysMem<Gpa> = PhysMem::new(64 * MIB);
    let mut hmem: PhysMem<Hpa> = PhysMem::new(256 * MIB);
    let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut gmem).unwrap();
    let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();

    // Nested mapping: identity + offset over all guest-physical memory.
    let host_backing = hmem.reserve_contiguous(64 * MIB, PageSize::Size2M).unwrap();
    for gpa in AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)).pages(PageSize::Size4K) {
        npt.map(
            &mut hmem,
            gpa,
            Hpa::new(gpa.as_u64() + host_backing.start().as_u64()),
            PageSize::Size4K,
            Prot::RW,
        )
        .unwrap();
    }

    // Guest segment covers gVA [1G, 1G+16M) → gPA [16M, 32M).
    // VMM segment covers gPA [0, 24M) only — so gPA 24M+ is "outside".
    let guest_seg = Segment::map(
        AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 16 * MIB)),
        Gpa::new(16 * MIB),
    );
    let vmm_seg = Segment::map(
        AddrRange::new(Gpa::ZERO, Gpa::new(24 * MIB)),
        host_backing.start(),
    );

    // Page-table-mapped guest addresses for the non-guest-segment cases:
    // one whose gPA is inside the VMM segment, one outside.
    let va_vmm_only = Gva::new(0x40_0000);
    let frame_in_vseg = Gpa::new(8 * MIB);
    gmem.carve_range(&AddrRange::from_start_len(frame_in_vseg, 4096)).unwrap();
    gpt.map(&mut gmem, va_vmm_only, frame_in_vseg, PageSize::Size4K, Prot::RW)
        .unwrap();

    let va_neither = Gva::new(0x80_0000);
    let frame_outside = Gpa::new(40 * MIB);
    gmem.carve_range(&AddrRange::from_start_len(frame_outside, 4096)).unwrap();
    gpt.map(&mut gmem, va_neither, frame_outside, PageSize::Size4K, Prot::RW)
        .unwrap();

    // Guest-segment addresses: one whose gPA lands inside the VMM segment
    // ("Both"), one whose gPA lands outside ("Guest segment only").
    let va_both = Gva::new((1 << 30) + 4 * MIB); // gPA 20M: inside [0,24M)
    let va_guest_only = Gva::new((1 << 30) + 12 * MIB); // gPA 28M: outside

    let mut t = Table::new(&[
        "category", "gVA", "path", "walk refs", "bb checks", "cycles",
    ]);
    for (name, va) in [
        ("Both", va_both),
        ("VMM segment only", va_vmm_only),
        ("Guest segment only", va_guest_only),
        ("Neither", va_neither),
    ] {
        let mut mmu = Mmu::new(MmuConfig {
            mode: TranslationMode::DualDirect,
            walk_caching: false, // expose the raw per-category reference counts
            ..MmuConfig::default()
        });
        mmu.set_guest_segment(guest_seg);
        mmu.set_vmm_segment(vmm_seg);
        let ctx = MemoryContext::Virtualized {
            gpt: &gpt,
            gmem: &gmem,
            npt: &npt,
            hmem: &hmem,
        };
        let out = mmu.access(&ctx, 0, va, false).expect("all cases mapped");
        let c = mmu.counters();
        t.row(&[
            name.to_string(),
            format!("{va}"),
            format!("{:?}", out.path),
            c.walk_refs().to_string(),
            c.bound_checks.to_string(),
            out.cycles.to_string(),
        ]);
        // Verify the category counters agree with the label.
        let ok = match name {
            "Both" => c.cat_both == 1,
            "VMM segment only" => c.cat_vmm_only == 1,
            "Guest segment only" => c.cat_guest_only == 1,
            _ => c.cat_neither == 1,
        };
        assert!(ok, "category counter mismatch for {name}");
        assert!(matches!(out.path, HitPath::SegmentBypass | HitPath::PageWalk));
    }

    println!("\nTable I — translation steps per segment category (Dual Direct)");
    println!("(walk caching disabled to expose architectural reference counts)\n");
    println!("{t}");
    println!("Reading the rows (Dual Direct keeps both segment levels active):");
    println!("  Both               — 0 refs, 0 cycles: the 0D bypass.");
    println!("  VMM segment only   — 4 guest refs; every nested translation");
    println!("                       (4 pointers + final) is an addition.");
    println!("  Guest segment only — gPA by addition, then one 4-ref nested walk.");
    println!("  Neither            — 4 guest refs + 4 nested refs for the final");
    println!("                       gPA; the guest page-table pointers are");
    println!("                       covered by the VMM segment (the paper has");
    println!("                       the guest allocate page tables inside it).");
    println!("                       The true 24-ref 2D worst case is shown by");
    println!("                       `cargo bench --bench walk_dimensionality`.");
}
