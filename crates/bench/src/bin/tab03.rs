//! Table III: modes utilized in fragmented systems — runs each
//! fragmentation scenario end-to-end and reports the mode transitions the
//! system actually takes (self-ballooning, host compaction, or both).
//!
//! Each scenario builds its own VMM and guest from a fixed seed, so the
//! three recovery flows run on a worker pool (`--jobs N`, `--quiet`) and
//! the table is assembled in scenario order regardless of scheduling.

use mv_bench::experiments::{env_catalog, parse_parallelism};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_metrics::Table;
use mv_types::rng::StdRng;
use mv_types::{AddrRange, Gpa, PageSize, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm};

struct Scenario {
    name: &'static str,
    fragment_host: bool,
    fragment_guest: bool,
}

/// Runs one fragmentation scenario's full recovery flow and returns its
/// table row.
fn run_scenario(sc: &Scenario) -> [String; 5] {
    let footprint = 64 * MIB;
    let installed = 160 * MIB;
    let mut vmm = Vmm::new(512 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig {
        installed_bytes: installed,
        hotplug_capacity: 128 * MIB,
        model_io_gap: false,
        boot_reservation: 0,
    }).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    guest.create_primary_region(pid, footprint).unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    if sc.fragment_host {
        let _held = vmm.hmem_mut().fragment(&mut rng, 0.3);
    }
    if sc.fragment_guest {
        let _held = guest.mem_mut().fragment(&mut rng, 0.5);
    }

    // Try the guest segment; on fragmentation, run self-ballooning.
    let mut mechanisms = Vec::new();
    let gseg = match guest.setup_guest_segment(pid) {
        Ok(seg) => seg,
        Err(mv_guestos::OsError::Fragmented { .. }) => {
            mechanisms.push("self-balloon");
            vmm.self_balloon(vm, &mut guest, footprint)
                .expect("self-ballooning creates contiguity");
            guest
                .setup_guest_segment(pid)
                .expect("hot-added range is contiguous")
        }
        Err(e) => panic!("unexpected: {e}"),
    };
    // The system comes up in Guest Direct and upgrades to Dual Direct once
    // the VMM segment exists; both mode names come from the shared catalog.
    let initial = env_catalog::translation_mode(env_catalog::GUEST_DIRECT.1);
    let dual = env_catalog::translation_mode(env_catalog::DUAL_DIRECT.1);
    let _ = gseg;

    // Try the VMM segment; on fragmentation, run host compaction.
    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(guest.mem().size_bytes()));
    let direct = vmm.create_vmm_segment(vm, cover, SegmentOptions::default());
    let (final_mode, moved) = match direct {
        Ok(_) => (dual, 0),
        Err(mv_vmm::VmmError::HostFragmented { .. }) => {
            mechanisms.push("host compaction");
            vmm.create_vmm_segment(
                vm,
                cover,
                SegmentOptions {
                    compact: true,
                    ..SegmentOptions::default()
                },
            )
            .expect("compaction manufactures contiguity");
            (dual, vmm.hmem().stats().pages_moved_by_compaction)
        }
        Err(e) => panic!("unexpected: {e}"),
    };

    [
        sc.name.to_string(),
        initial.to_string(),
        if mechanisms.is_empty() {
            "none needed".to_string()
        } else {
            mechanisms.join(" + ")
        },
        final_mode.to_string(),
        moved.to_string(),
    ]
}

fn main() {
    let (jobs, reporter) = parse_parallelism();
    let scenarios = [
        Scenario { name: "host fragmented", fragment_host: true, fragment_guest: false },
        Scenario { name: "guest fragmented", fragment_host: false, fragment_guest: true },
        Scenario { name: "host+guest fragmented", fragment_host: true, fragment_guest: true },
    ];

    let rows = mv_par::par_map(jobs, &scenarios, |i, sc| {
        reporter.line(format!("  [{}/{}] {}...", i + 1, scenarios.len(), sc.name));
        run_scenario(sc)
    });

    // A failed scenario becomes an annotated row, not a dead run; the
    // binary still exits nonzero so scripts notice.
    let mut failed = 0usize;
    let mut t = Table::new(&["VM state", "initial mode", "mechanism", "final mode", "pages moved"]);
    for (sc, row) in scenarios.iter().zip(rows) {
        match row {
            Ok(row) => {
                t.row(&row);
            }
            Err(p) => {
                failed += 1;
                eprintln!("tab03: scenario '{}' (seed 7) failed: {p}", sc.name);
                t.row(&[sc.name, "-", "failed!", "-", "-"]);
            }
        }
    }

    println!("\nTable III — modes utilized in fragmented systems (big-memory VM)");
    println!("(each row is a live end-to-end run of the recovery flow)\n");
    println!("{t}");
    if failed > 0 {
        eprintln!("tab03: {failed} of {} scenario(s) failed", scenarios.len());
        std::process::exit(1);
    }
}
