//! Figure 1: the paper's motivating preview — overheads for selected
//! workloads under native 4K, virtualized page-size combinations, and the
//! proposed Dual Direct / VMM Direct modes. Pass `--quick` for a fast run,
//! `--jobs N` to size the worker pool, `--quiet` to suppress progress.

use mv_bench::experiments::{env_catalog, overhead_table, parse_parallelism};
use mv_workloads::WorkloadKind;

fn main() {
    let scale = mv_bench::parse_scale();
    let (jobs, reporter) = parse_parallelism();
    let configs = env_catalog::FIG1_6_ENVS;

    let workloads = [
        WorkloadKind::Graph500,
        WorkloadKind::Memcached,
        WorkloadKind::Gups,
    ];
    let t = overhead_table(&workloads, &configs, &scale, jobs, &reporter);
    println!("\nFigure 1 — overheads associated with virtual memory (preview)");
    println!("(gups uses a scaled axis in the paper; shown unscaled here)\n");
    println!("{t}");
}
