//! Figure 1: the paper's motivating preview — overheads for selected
//! workloads under native 4K, virtualized page-size combinations, and the
//! proposed Dual Direct / VMM Direct modes. Pass `--quick` for a fast run.

use mv_bench::experiments::{pct, run_bar};
use mv_metrics::Table;
use mv_sim::{Env, GuestPaging};
use mv_types::PageSize;
use mv_workloads::WorkloadKind;

fn main() {
    let scale = mv_bench::parse_scale();
    use GuestPaging::Fixed;
    use PageSize::*;
    let configs: Vec<(GuestPaging, Env)> = vec![
        (Fixed(Size4K), Env::native()),
        (Fixed(Size4K), Env::base_virtualized(Size4K)),
        (Fixed(Size4K), Env::base_virtualized(Size2M)),
        (Fixed(Size4K), Env::base_virtualized(Size1G)),
        (Fixed(Size4K), Env::dual_direct()),
        (Fixed(Size4K), Env::vmm_direct()),
    ];

    let workloads = [
        WorkloadKind::Graph500,
        WorkloadKind::Memcached,
        WorkloadKind::Gups,
    ];
    let mut headers: Vec<String> = vec!["workload".into()];
    let mut first = true;
    let mut rows = Vec::new();
    for w in workloads {
        let mut cells = vec![w.label().to_string()];
        for &(paging, env) in &configs {
            let r = run_bar(w, paging, env, &scale);
            if first {
                headers.push(r.label.clone());
            }
            cells.push(pct(r.overhead));
        }
        first = false;
        rows.push(cells);
    }

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for row in rows {
        t.row(&row);
    }
    println!("\nFigure 1 — overheads associated with virtual memory (preview)");
    println!("(gups uses a scaled axis in the paper; shown unscaled here)\n");
    println!("{t}");
}
