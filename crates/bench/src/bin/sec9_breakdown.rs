//! Section IX.A performance breakdown for the proposed modes: VMM Direct
//! and Guest Direct cycles per miss relative to native (paper: +13% and
//! +3% on average), Dual Direct's L2-TLB-miss elimination (~99.9%), and
//! the Table IV linear-model cross-check.

use mv_bench::experiments::{config, parse_scale};
use mv_metrics::{LinearModel, Table};
use mv_sim::{Env, GuestPaging, Simulation};
use mv_types::PageSize;
use mv_workloads::WorkloadKind;

fn main() {
    let scale = parse_scale();
    let paging = GuestPaging::Fixed(PageSize::Size4K);

    println!("\nSection IX.A — cycles per TLB miss of the proposed modes vs native\n");
    let mut t = Table::new(&[
        "workload", "native", "VD", "GD", "VD vs native", "GD vs native",
    ]);
    let mut vd_ratios = Vec::new();
    let mut gd_ratios = Vec::new();
    for w in WorkloadKind::BIG_MEMORY {
        eprintln!("running {}...", w.label());
        let native = Simulation::run(&config(w, paging, Env::native(), &scale)).unwrap();
        let vd = Simulation::run(&config(w, paging, Env::vmm_direct(), &scale)).unwrap();
        let gd = Simulation::run(&config(w, paging, Env::guest_direct(PageSize::Size4K), &scale))
            .unwrap();
        let rv = vd.cycles_per_miss() / native.cycles_per_miss();
        // Guest Direct eliminates most walks via the guest segment; its
        // remaining misses are few, so compare per-access translation cost.
        let rg = (gd.translation_cycles / gd.accesses as f64)
            / (native.translation_cycles / native.accesses as f64);
        vd_ratios.push(rv);
        gd_ratios.push(rg);
        t.row(&[
            w.label().to_string(),
            format!("{:.0}", native.cycles_per_miss()),
            format!("{:.0}", vd.cycles_per_miss()),
            format!("{:.0}", gd.cycles_per_miss()),
            format!("{:+.0}%", (rv - 1.0) * 100.0),
            format!("{:+.0}%", (rg - 1.0) * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "geomean: VD {:+.0}% (paper: +13%), GD per-access cost {:+.0}% (paper: +3%)\n",
        (mv_metrics::geomean(&vd_ratios) - 1.0) * 100.0,
        (mv_metrics::geomean(&gd_ratios) - 1.0) * 100.0,
    );

    println!("Dual Direct L2-TLB-miss reduction (paper: ~99.9%)\n");
    let mut t = Table::new(&["workload", "base L2 misses", "DD L2 misses", "reduction"]);
    for w in WorkloadKind::BIG_MEMORY {
        eprintln!("running {} DD...", w.label());
        let base = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size4K), &scale)).unwrap();
        let dd = Simulation::run(&config(w, paging, Env::dual_direct(), &scale)).unwrap();
        let red = 1.0 - dd.counters.l2_misses as f64 / base.counters.l2_misses.max(1) as f64;
        t.row(&[
            w.label().to_string(),
            base.counters.l2_misses.to_string(),
            dd.counters.l2_misses.to_string(),
            format!("{:.2}%", red * 100.0),
        ]);
    }
    println!("{t}");

    // Table IV cross-check: feed measured C_n, C_v, M_n, and coverage
    // fractions into the linear models and compare with the simulator's
    // directly measured walk cycles for VMM Direct.
    println!("\nTable IV cross-check — linear model vs simulated VMM Direct cycles\n");
    let mut t = Table::new(&["workload", "model (Mcyc)", "simulated (Mcyc)", "ratio"]);
    for w in WorkloadKind::BIG_MEMORY {
        let native = Simulation::run(&config(w, paging, Env::native(), &scale)).unwrap();
        let base = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size4K), &scale)).unwrap();
        let vd = Simulation::run(&config(w, paging, Env::vmm_direct(), &scale)).unwrap();
        let model = LinearModel {
            c_n: native.cycles_per_miss(),
            c_v: base.cycles_per_miss(),
            m_n: native.counters.l1_misses,
        };
        let predicted = model.vmm_direct(vd.f_vd());
        let simulated = vd.translation_cycles;
        t.row(&[
            w.label().to_string(),
            format!("{:.2}", predicted / 1e6),
            format!("{:.2}", simulated / 1e6),
            format!("{:.2}", simulated / predicted),
        ]);
    }
    println!("{t}");
}
