//! Figure 12: virtual-memory overhead per compute workload (SPEC 2006 and
//! PARSEC analogues) across native (4K/THP), virtualized, and VMM Direct
//! configurations. Pass `--quick` for a fast smoke run, `--jobs N` to size
//! the worker pool, `--quiet` to suppress progress.

use mv_bench::experiments::{env_catalog, overhead_table, parse_parallelism};
use mv_workloads::WorkloadKind;

fn main() {
    let scale = mv_bench::parse_scale();
    let (jobs, reporter) = parse_parallelism();
    let t = overhead_table(
        &WorkloadKind::COMPUTE,
        &env_catalog::FIG12_ENVS,
        &scale,
        jobs,
        &reporter,
    );
    println!("\nFigure 12 — virtual memory overhead per compute workload");
    println!("(execution-time overhead vs ideal; paper Figure 12)\n");
    println!("{t}");
}
