//! Figure 12: virtual-memory overhead per compute workload (SPEC 2006 and
//! PARSEC analogues) across native (4K/THP), virtualized, and VMM Direct
//! configurations. Pass `--quick` for a fast smoke run.

use mv_bench::experiments::{fig12_configs, pct, run_bar};
use mv_metrics::Table;
use mv_workloads::WorkloadKind;

fn main() {
    let scale = mv_bench::parse_scale();
    let configs = fig12_configs();
    let mut headers: Vec<String> = vec!["workload".into()];
    let mut first = true;

    let mut rows = Vec::new();
    for w in WorkloadKind::COMPUTE {
        let mut cells = vec![w.label().to_string()];
        for &(paging, env) in &configs {
            let r = run_bar(w, paging, env, &scale);
            if first {
                headers.push(r.label.clone());
            }
            cells.push(pct(r.overhead));
        }
        first = false;
        rows.push(cells);
    }

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for row in rows {
        t.row(&row);
    }
    println!("\nFigure 12 — virtual memory overhead per compute workload");
    println!("(execution-time overhead vs ideal; paper Figure 12)\n");
    println!("{t}");
}
