//! Figure 11: virtual-memory overhead per big-memory workload, across
//! native page sizes, virtualized page-size combinations, and the proposed
//! direct-segment modes.
//!
//! Regenerates the paper's bar chart as a table: one row per workload, one
//! column per configuration, cells are execution-time overheads
//! ((T_E − T_ideal) / T_ideal). Pass `--quick` for a fast smoke run.

use mv_bench::experiments::{fig11_configs, pct, run_bar};
use mv_metrics::Table;
use mv_workloads::WorkloadKind;

fn main() {
    let scale = mv_bench::parse_scale();
    let configs = fig11_configs();
    let mut headers: Vec<String> = vec!["workload".into()];
    let mut first = true;

    let mut rows = Vec::new();
    for w in WorkloadKind::BIG_MEMORY {
        let mut cells = vec![w.label().to_string()];
        for &(paging, env) in &configs {
            let r = run_bar(w, paging, env, &scale);
            if first {
                headers.push(r.label.clone());
            }
            cells.push(pct(r.overhead));
        }
        first = false;
        rows.push(cells);
    }

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for row in rows {
        t.row(&row);
    }
    println!("\nFigure 11 — virtual memory overhead per big-memory workload");
    println!("(execution-time overhead vs ideal; paper Figure 11)\n");
    println!("{t}");
}
