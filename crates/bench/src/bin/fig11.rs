//! Figure 11: virtual-memory overhead per big-memory workload, across
//! native page sizes, virtualized page-size combinations, and the proposed
//! direct-segment modes.
//!
//! Regenerates the paper's bar chart as a table: one row per workload, one
//! column per configuration, cells are execution-time overheads
//! ((T_E − T_ideal) / T_ideal). Pass `--quick` for a fast smoke run,
//! `--jobs N` to size the worker pool, `--quiet` to suppress progress.

use mv_bench::experiments::{env_catalog, overhead_table, parse_parallelism};
use mv_workloads::WorkloadKind;

fn main() {
    let scale = mv_bench::parse_scale();
    let (jobs, reporter) = parse_parallelism();
    let t = overhead_table(
        &WorkloadKind::BIG_MEMORY,
        &env_catalog::FIG11_ENVS,
        &scale,
        jobs,
        &reporter,
    );
    println!("\nFigure 11 — virtual memory overhead per big-memory workload");
    println!("(execution-time overhead vs ideal; paper Figure 11)\n");
    println!("{t}");
}
