//! General-purpose configuration runner: run any workload under any
//! environment from the command line and print the full measurement.
//!
//! ```text
//! cargo run --release -p mv-bench --bin run -- \
//!     --workload graph500 --env dd --footprint 512M --accesses 1000000
//! ```
//!
//! Options:
//!
//! * `--workload <name>` — one of the Table V names
//!   (graph500, memcached, npb:cg, gups, mcf, omnetpp, cactusADM,
//!   GemsFDTD, canneal, streamcluster). Default: graph500.
//! * `--env <cfg>` — `native`, `ds`, `shadow`, `vd`, `gd`, `dd`, or a
//!   page-size pair like `4k+4k`, `4k+2m`, `2m+1g`. Default: 4k+4k.
//! * `--guest <4k|2m|1g|thp>` — guest paging policy. Default: 4k.
//! * `--footprint <N[K|M|G]>` — arena size. Default: 512M.
//! * `--accesses <N>` / `--warmup <N>` — window sizes.
//! * `--seed <N>` — workload seed.
//! * `--trials <N>` — run N independent trials of the configuration,
//!   seeding trial t with `split_seed(seed, t)`, and report per-trial
//!   rows plus the merged measurement. Default 1 (single run, seed used
//!   directly, output unchanged from earlier versions).
//! * `--jobs <N>` — worker threads for the trial grid (default: available
//!   parallelism). Output is byte-identical for every value of `--jobs`.
//! * `--quick` — small smoke-run defaults (64M footprint, 100k accesses,
//!   25k warmup); explicit sizing flags still override.
//! * `--quiet` — suppress progress lines on stderr.
//! * `--telemetry-out <PATH>` — attach walk-event telemetry over the
//!   measured window, write epoch snapshots (and any flight-recorder
//!   events) as JSONL to `PATH`, and print a Prometheus-style counter
//!   dump to stdout after the report. With `--trials`, the written
//!   telemetry is the deterministic merge over all trials.
//! * `--profile` — attach the walk-cost attribution profiler: per-epoch
//!   and run-total matrices of modeled cycles per (guest level × nested
//!   level) cell plus TLB/PWC hit tiers and VM-exit costs. The profile
//!   lines are appended to the `--telemetry-out` JSONL (readers dispatch
//!   on `"type"`), and a cost-split summary joins the report. With
//!   `--trials`, profiles merge associatively, so the output is
//!   byte-identical for any `--jobs` value.
//! * `--folded-out <PATH>` — write the profile as folded stacks
//!   (`gva;gL4;ref 160` lines) for flamegraph tooling. Implies nothing
//!   else; requires `--profile`.
//! * `--epoch-len <N>` — accesses per telemetry/profile epoch
//!   (default 10000). Zero is rejected at parse time: a zero-length
//!   epoch would silently drop every walk event from the epoch stream.
//! * `--sample <WINDOW:INTERVAL:WARMUP>` — sampled fast-forward: run
//!   detailed measurement for WINDOW accesses out of every INTERVAL,
//!   fast-forward the gap functionally, and re-warm the measurement
//!   state for WARMUP accesses before each window. Reported counters
//!   are scaled to full-run estimates (within 2% of full fidelity on
//!   the PAPER_10 catalog; see EXPERIMENTS.md). Telemetry and the
//!   profiler ride along (covering the measured windows); chaos and
//!   trace record/replay need every access detailed and are rejected.
//! * `--trace <N>` — keep the last N walk events in a flight recorder
//!   (exported into the JSONL file; cleared by a `--trials` merge).
//!   Default 0 (off).
//! * `--fault-rate <N>` — enable chaos: inject N faults per million
//!   accesses under the translation oracle and print the chaos report.
//!   Default 0 (off — output stays byte-identical to earlier versions).
//! * `--chaos-seed <N>` — fault-plan seed (default 0xc4a05); only
//!   meaningful with a non-zero `--fault-rate`.
//! * `--record-trace <PATH>` — tee every workload access (warmup and
//!   measured) into a compact binary trace at `PATH` (format:
//!   `docs/TRACE_FORMAT.md`). Recording rides outside the measured
//!   path, so the printed measurement is unchanged. Requires
//!   `--trials 1`: parallel trials would interleave their streams
//!   into one file.
//! * `--replay-trace <PATH>` — drive the run from a recorded trace
//!   instead of a live generator. The trace header supplies the
//!   workload, footprint, seed, and suggested warmup/measured window
//!   as defaults; explicit flags still override the window (the
//!   stream loops if the run asks for more accesses than the trace
//!   holds), but the footprint must match the trace's. Mutually
//!   exclusive with `--record-trace`.

use std::io::Write;

use mv_bench::experiments::env_catalog;
use mv_chaos::ChaosSpec;
use mv_par::{cli, Reporter};
use mv_prof::fold_profile;
use mv_sim::{
    GridCell, GuestPaging, ProfileConfig, ReplaySource, SampleSpec, SharedTraceWriter, SimConfig,
    Simulation, TelemetryConfig, TraceHeader,
};
use mv_types::{PageSize, GIB, KIB, MIB};
use mv_workloads::WorkloadKind;

fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], KIB),
        'm' | 'M' => (&s[..s.len() - 1], MIB),
        'g' | 'G' => (&s[..s.len() - 1], GIB),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

fn parse_page(s: &str) -> Option<PageSize> {
    match s.to_ascii_lowercase().as_str() {
        "4k" => Some(PageSize::Size4K),
        "2m" => Some(PageSize::Size2M),
        "1g" => Some(PageSize::Size1G),
        _ => None,
    }
}

fn parse_workload(s: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(s))
}

fn usage() -> ! {
    eprintln!(
        "usage: run [--workload NAME] [--env native|ds|shadow|vd|gd|dd|4k+4k|...]\n\
         \x20          [--guest 4k|2m|1g|thp] [--footprint N[K|M|G]]\n\
         \x20          [--accesses N] [--warmup N] [--seed N] [--csv]\n\
         \x20          [--trials N] [--jobs N] [--quick] [--quiet]\n\
         \x20          [--telemetry-out PATH] [--epoch-len N] [--trace N]\n\
         \x20          [--profile] [--folded-out PATH]\n\
         \x20          [--sample WINDOW:INTERVAL:WARMUP]\n\
         \x20          [--fault-rate N] [--chaos-seed N]\n\
         \x20          [--record-trace PATH] [--replay-trace PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut workload: Option<WorkloadKind> = None;
    let mut env = env_catalog::VIRT_4K_4K.1;
    let mut guest = GuestPaging::Fixed(PageSize::Size4K);
    let mut footprint: Option<u64> = None;
    let mut accesses: Option<u64> = None;
    let mut warmup: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut csv = false;
    let mut quick = false;
    let mut quiet = false;
    let mut trials = 1u64;
    let mut jobs = mv_par::default_jobs();
    let mut telemetry_out: Option<String> = None;
    let mut epoch_len = 10_000u64;
    let mut flight = 0usize;
    let mut profile = false;
    let mut folded_out: Option<String> = None;
    let mut record_trace: Option<String> = None;
    let mut replay_trace: Option<String> = None;
    let mut sample: Option<SampleSpec> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    // Chaos flags are parsed by the shared mv_par::cli helpers; both
    // default to off/fixed so chaos-free output is unchanged.
    let numeric_opt = |flag: &str| {
        cli::parse_u64_opt(&args, flag).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        })
    };
    let fault_rate = numeric_opt("--fault-rate").unwrap_or(0);
    let chaos_seed = numeric_opt("--chaos-seed").unwrap_or(0xc4a05);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .as_str()
        };
        match flag.as_str() {
            "--workload" => {
                let v = value("--workload");
                workload = Some(parse_workload(v).unwrap_or_else(|| {
                    eprintln!("unknown workload {v:?}");
                    usage()
                }));
            }
            "--env" => {
                let v = value("--env");
                env = env_catalog::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown env {v:?}");
                    usage()
                });
            }
            "--guest" => {
                let v = value("--guest");
                guest = if v.eq_ignore_ascii_case("thp") {
                    GuestPaging::Thp
                } else {
                    GuestPaging::Fixed(parse_page(v).unwrap_or_else(|| {
                        eprintln!("unknown guest paging {v:?}");
                        usage()
                    }))
                };
            }
            "--footprint" => {
                let v = value("--footprint");
                footprint = Some(parse_size(v).unwrap_or_else(|| {
                    eprintln!("bad size {v:?}");
                    usage()
                }));
            }
            "--accesses" => {
                accesses = Some(value("--accesses").parse().unwrap_or_else(|_| usage()))
            }
            "--warmup" => warmup = Some(value("--warmup").parse().unwrap_or_else(|_| usage())),
            "--seed" => seed = Some(value("--seed").parse().unwrap_or_else(|_| usage())),
            "--trials" => {
                trials = value("--trials").parse().unwrap_or_else(|_| usage());
                if trials == 0 {
                    eprintln!("--trials must be at least 1");
                    usage();
                }
            }
            "--jobs" => {
                jobs = value("--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("--jobs wants a positive worker count");
                    usage()
                });
            }
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--csv" => csv = true,
            // Already parsed above; consume the value token here.
            "--fault-rate" | "--chaos-seed" => {
                value(flag);
            }
            "--telemetry-out" => telemetry_out = Some(value("--telemetry-out").to_string()),
            "--epoch-len" => {
                epoch_len = value("--epoch-len").parse().unwrap_or_else(|_| usage());
                // A zero-length epoch used to silently drop every walk
                // event from the epoch stream; reject it up front with
                // the library's own validation error.
                if let Err(e) = mv_sim::TelemetryConfig::new(epoch_len, 0) {
                    eprintln!("--epoch-len: {e}");
                    usage();
                }
            }
            "--trace" => flight = value("--trace").parse().unwrap_or_else(|_| usage()),
            "--profile" => profile = true,
            "--folded-out" => folded_out = Some(value("--folded-out").to_string()),
            "--record-trace" => record_trace = Some(value("--record-trace").to_string()),
            "--replay-trace" => replay_trace = Some(value("--replay-trace").to_string()),
            "--sample" => {
                let v = value("--sample");
                sample = Some(SampleSpec::parse(v).unwrap_or_else(|e| {
                    eprintln!("--sample {v:?}: {e}");
                    usage()
                }));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    if folded_out.is_some() && !profile {
        eprintln!("--folded-out needs --profile (there is no profile to fold)");
        usage();
    }
    if record_trace.is_some() && replay_trace.is_some() {
        eprintln!("--record-trace and --replay-trace are mutually exclusive");
        usage();
    }
    if record_trace.is_some() && trials > 1 {
        eprintln!("--record-trace needs --trials 1 (parallel trials would interleave one file)");
        usage();
    }

    // Replaying: the trace header supplies the workload identity and the
    // suggested run window as *defaults* — explicit flags still win.
    let replay_src = replay_trace.as_ref().map(ReplaySource::path);
    let replay_header = replay_src.as_ref().map(|src| {
        src.header().unwrap_or_else(|e| {
            eprintln!("cannot read trace {}: {e}", src.describe());
            std::process::exit(1);
        })
    });
    let header_window = replay_header.as_ref().filter(|h| h.accesses > 0);

    let workload = workload
        .or_else(|| replay_header.as_ref().and_then(TraceHeader::workload_kind))
        .unwrap_or(WorkloadKind::Graph500);
    let seed = seed
        .or(replay_header.as_ref().map(|h| h.seed))
        .unwrap_or(42);
    let footprint = footprint
        .or(replay_header.as_ref().map(|h| h.footprint))
        .unwrap_or(if quick { 64 * MIB } else { 512 * MIB });
    let accesses = accesses
        .or(header_window.map(|h| h.accesses))
        .unwrap_or(if quick { 100_000 } else { 1_000_000 });
    let warmup = warmup
        .or(header_window.map(|h| h.warmup))
        .unwrap_or(if quick { 25_000 } else { 250_000 });

    let cfg = SimConfig {
        workload,
        footprint,
        guest_paging: guest,
        env,
        accesses,
        warmup,
        seed,
    };
    let reporter = Reporter::new(quiet);
    reporter.line(format!(
        "running {} / {} (footprint {} MiB, {} accesses after {} warmup, seed {seed}, {trials} trial(s))...",
        workload.label(),
        cfg.label(),
        footprint / MIB,
        accesses,
        warmup
    ));
    if let (Some(src), Some(h)) = (&replay_src, &replay_header) {
        reporter.line(format!(
            "replaying trace {} (recorded from {:?}, footprint {} MiB)",
            src.describe(),
            h.name,
            h.footprint / MIB
        ));
    }
    // Recording: the header carries the generator's replay metadata
    // (ideal cycles, churn, duplicate fraction) so a later replay of the
    // file reproduces this run byte for byte.
    let recorder = record_trace.as_ref().map(|path| {
        let header = TraceHeader::for_workload(workload, footprint, seed, warmup, accesses);
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        SharedTraceWriter::create(Box::new(std::io::BufWriter::new(file)), &header)
            .unwrap_or_else(|e| {
                eprintln!("cannot start trace {path}: {e}");
                std::process::exit(1);
            })
    });
    let observe = telemetry_out.is_some() || flight > 0;
    let tcfg = TelemetryConfig {
        epoch_len,
        flight_capacity: flight,
    };

    // A single trial reproduces the classic one-shot run exactly (the seed
    // is used directly); `--trials N` derives trial t's seed from
    // `split_seed(seed, t)` so every cell is an independent stream and the
    // grid can run on any number of workers with byte-identical output.
    let cells: Vec<GridCell> = (0..trials)
        .map(|t| {
            let mut cell = GridCell::new(cfg);
            if trials > 1 {
                cell = cell.trial(t);
            }
            if observe {
                cell = cell.observed(tcfg);
            }
            if profile {
                cell = cell.profiled(ProfileConfig { epoch_len });
            }
            if fault_rate > 0 {
                cell = cell.with_chaos(ChaosSpec::new(chaos_seed, fault_rate));
            }
            if let Some(src) = &replay_src {
                cell = cell.replayed(src.clone());
            }
            if let Some(rec) = &recorder {
                cell = cell.recorded(rec.clone());
            }
            if let Some(spec) = sample {
                cell = cell.sampled(spec);
            }
            cell
        })
        .collect();
    let report = Simulation::run_grid_reported(&cells, jobs, &reporter);
    // Failures are contained to their row: report each one with enough
    // context to re-run it alone (env label + effective trial seed),
    // finish the sweep with whatever succeeded, and exit nonzero below.
    let failed = report.failures().count();
    for (i, failure) in report.failures() {
        eprintln!(
            "trial {i} ({} seed {}) failed: {failure}",
            cells[i].cfg.label(),
            cells[i].cfg.seed
        );
    }
    let fail_exit = move || -> ! {
        eprintln!("{failed} of {trials} trial(s) failed");
        std::process::exit(1);
    };
    let r = match report.merged() {
        Some(r) => r,
        None => {
            eprintln!("simulation failed: no trial succeeded");
            fail_exit();
        }
    };

    // Seal the recorded trace before any other output: a deferred write
    // error must fail the run rather than leave a truncated file behind
    // silently.
    if let (Some(path), Some(rec)) = (&record_trace, &recorder) {
        match rec.finish() {
            Ok(n) => reporter.line(format!("recorded {n} accesses to {path}")),
            Err(e) => {
                eprintln!("recording to {path} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if let (Some(path), Some(t)) = (&telemetry_out, &r.telemetry) {
        let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        t.write_jsonl(&mut f).expect("telemetry write");
        // Profile lines ride the same JSONL file: every reader in the
        // workspace dispatches on the "type" field, so the streams coexist.
        if let Some(p) = &r.profile {
            p.write_jsonl(&mut f).expect("profile write");
        }
        f.flush().expect("telemetry flush");
        reporter.line(format!(
            "wrote {} epoch snapshots, {} flight events, and {} profile epochs to {path}",
            t.epochs().len(),
            t.flight().len(),
            r.profile.as_ref().map_or(0, |p| p.epochs().len()),
        ));
    }

    if let (Some(path), Some(p)) = (&folded_out, &r.profile) {
        std::fs::write(path, fold_profile(p)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        reporter.line(format!("wrote folded stacks to {path}"));
    }

    if csv {
        // One row per successful trial, in cell order — byte-identical
        // output for any `--jobs` value (the CI determinism check diffs
        // this against itself at different worker counts).
        println!("{}", mv_sim::RunResult::csv_header());
        for trial in report.results() {
            println!("{}", trial.csv_row());
        }
        if failed > 0 {
            fail_exit();
        }
        return;
    }
    if trials > 1 {
        println!(
            "merged over {} of {trials} trials:",
            report.results().count()
        );
    }
    println!("configuration:        {} / {}", r.workload, r.label);
    println!("overhead:             {}", r.overhead_pct());
    println!("translation cycles:   {:.0}", r.translation_cycles);
    println!("ideal cycles:         {:.0}", r.ideal_cycles);
    println!("L1 misses / 1K acc:   {:.1}", r.mpka());
    println!("cycles per miss:      {:.1}", r.cycles_per_miss());
    println!("walks (L2 misses):    {}", r.counters.l2_misses);
    println!("walk refs (g/n):      {} / {}", r.counters.guest_walk_refs, r.counters.nested_walk_refs);
    println!("bound checks:         {}", r.counters.bound_checks);
    println!(
        "miss categories:      both={} vmm={} guest={} neither={} ds={}",
        r.counters.cat_both,
        r.counters.cat_vmm_only,
        r.counters.cat_guest_only,
        r.counters.cat_neither,
        r.counters.ds_hits
    );
    println!(
        "coverage fractions:   F_DD={:.3} F_VD={:.3} F_GD={:.3} F_DS={:.3}",
        r.f_dd(),
        r.f_vd(),
        r.f_gd(),
        r.f_ds()
    );
    println!("escape-filter hits:   {}", r.counters.escape_hits);
    println!("VM exits:             {}", r.vm_exits);
    let (nl, nh) = r.nested_l2;
    println!("nested L2 (lkup/hit): {nl} / {nh}");
    if let Some(s) = &r.sample {
        println!(
            "sampled:              {} of {} accesses measured ({}:{}:{} window:interval:warmup); counters are scaled estimates",
            s.measured_accesses, r.accesses, s.spec.window, s.spec.interval, s.spec.warmup
        );
    }

    if let Some(p) = &r.profile {
        let m = p.total();
        let pct = |part: u64| {
            if m.total_cycles == 0 {
                0.0
            } else {
                100.0 * part as f64 / m.total_cycles as f64
            }
        };
        println!(
            "profile:              {} walk events over {} epochs",
            m.events,
            p.epochs().len()
        );
        println!(
            "  attributed:         {} / {} walk cycles ({:.1}%)",
            m.attributed_cycles(),
            m.total_cycles,
            pct(m.attributed_cycles())
        );
        println!(
            "  dimension split:    guest {} ({:.1}%) / nested {} ({:.1}%) cycles",
            m.guest_dimension_cycles(),
            pct(m.guest_dimension_cycles()),
            m.nested_dimension_cycles(),
            pct(m.nested_dimension_cycles())
        );
        println!(
            "  hit tiers:          l2_hit={} nested_tlb={} pwc={} bound={}",
            m.l2_hit_cycles, m.nested_tlb_cycles, m.pwc_cycles, m.bound_check_cycles
        );
        println!(
            "  faults:             {} events costing {} cycles; VM exits {} ({} cycles)",
            m.fault_events(),
            m.fault_cycles,
            p.vm_exits(),
            p.exit_cycles()
        );
    }

    if let Some(c) = &r.chaos {
        println!(
            "chaos:                {} injected, {} transitions, {} recoveries, {} denials",
            c.injected_total(),
            c.transitions,
            c.recoveries,
            c.denials
        );
        println!(
            "  residency (d/e/p):  {} / {} / {} accesses",
            c.residency[0], c.residency[1], c.residency[2]
        );
        println!(
            "  oracle:             {} checks, {} violations{}",
            c.oracle_checks,
            c.oracle_violations,
            if c.survived() { "" } else { "  ** VIOLATED **" }
        );
    }

    if let Some(t) = &r.telemetry {
        println!("walk latency:         {}", t.hist());
    }
    // Telemetry and chaos runs both expose Prometheus counters (the
    // chaos family covers degradation level, oracle checks, and
    // per-kind injections); either instrument alone is enough.
    if let Some(prom) = r.prometheus() {
        println!("\n--- telemetry (Prometheus text exposition) ---");
        print!("{prom}");
    }

    if failed > 0 {
        fail_exit();
    }
}
