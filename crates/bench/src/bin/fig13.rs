//! Figure 13: escape-filter resilience — normalized execution time for
//! big-memory workloads in Dual Direct mode with 1–16 bad host frames
//! inside the VMM segment, 30 random fault sets per count, with 95%
//! confidence intervals. Pass `--quick` for fewer trials.

use mv_core::TranslationFault;
use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_metrics::{Summary, Table};
use mv_types::{AddrRange, Gpa, Gva, PageSize, GIB, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm};
use mv_workloads::WorkloadKind;

struct Trial {
    overhead_vs_clean: f64,
}

/// Runs one Dual Direct configuration with `bad_frames` random bad host
/// frames inside the segment window; returns translation cycles per access.
fn run_trial(
    workload: WorkloadKind,
    footprint: u64,
    accesses: u64,
    warmup: u64,
    bad_frames: usize,
    seed: u64,
) -> f64 {
    use mv_types::rng::StdRng;

    let installed = footprint + footprint / 2 + 96 * MIB;
    let mut vmm = Vmm::new(2 * installed + 128 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K));
    let mut guest = GuestOs::boot(GuestConfig::small(installed));
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K));
    let base = guest
        .create_primary_region(pid, footprint)
        .expect("fresh guest")
        .as_u64();

    // Damage `bad_frames` random frames in the middle of host memory (the
    // future segment window), then create segments.
    if bad_frames > 0 {
        let mut rng = StdRng::seed_from_u64(seed);
        let window = AddrRange::new(
            mv_types::Hpa::new(64 * MIB),
            mv_types::Hpa::new(64 * MIB + installed),
        );
        vmm.hmem_mut()
            .inject_bad_frames(&mut rng, &window, bad_frames)
            .expect("fresh host has free frames");
    }

    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });
    let gseg = guest.setup_guest_segment(pid).expect("fresh guest memory");
    mmu.set_guest_segment(gseg);
    let vseg = vmm
        .create_vmm_segment(
            vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(installed)),
            SegmentOptions {
                allow_bad: true,
                escape_seed: seed,
                ..SegmentOptions::default()
            },
        )
        .expect("segment with escapes");
    mmu.set_vmm_segment(vseg);
    mmu.set_vmm_escape_filter(vmm.vm(vm).escape_filter().cloned());

    let mut w = workload.build(footprint, seed ^ 0x5eed);
    let total = warmup + accesses;
    for i in 0..total {
        if i == warmup {
            mmu.reset_counters();
        }
        let acc = w.next_access();
        let va = Gva::new(base + acc.offset);
        loop {
            let outcome = {
                let (gpt, gmem) = guest.pt_and_mem(pid);
                let (npt, hmem) = vmm.npt_and_hmem(vm);
                let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
                mmu.access(&ctx, pid as u16, va, acc.write)
            };
            match outcome {
                Ok(_) => break,
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    guest.handle_page_fault(pid, gva).expect("vma covers arena");
                }
                Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                    vmm.handle_nested_fault(vm, gpa).expect("in span");
                }
                Err(f) => panic!("unexpected fault {f}"),
            }
        }
    }
    mmu.counters().translation_cycles as f64 / accesses as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (footprint, accesses, warmup, trials) = if quick {
        (128 * MIB, 100_000u64, 25_000u64, 5usize)
    } else {
        (GIB, 500_000, 125_000, 30)
    };
    let counts = [1usize, 2, 4, 8, 16];
    let workloads = [
        WorkloadKind::Graph500,
        WorkloadKind::Memcached,
        WorkloadKind::NpbCg,
        WorkloadKind::Gups,
    ];

    let mut t = Table::new(&["workload", "bad pages", "normalized time", "95% CI"]);
    for w in workloads {
        eprintln!("running {} (clean baseline)...", w.label());
        let clean = run_trial(w, footprint, accesses, warmup, 0, 1);
        let cpa = w.build(footprint, 0).cycles_per_access();
        for &n in &counts {
            let mut samples = Vec::with_capacity(trials);
            for trial in 0..trials {
                eprintln!("  {} bad={n} trial {}/{trials}", w.label(), trial + 1);
                let dirty = run_trial(
                    w,
                    footprint,
                    accesses,
                    warmup,
                    n,
                    1000 + trial as u64,
                );
                // Normalized execution time vs. the no-bad-pages run:
                // (ideal + dirty translation) / (ideal + clean translation).
                let trialled = Trial {
                    overhead_vs_clean: (cpa + dirty) / (cpa + clean),
                };
                samples.push(trialled.overhead_vs_clean);
            }
            let s = Summary::of(&samples);
            t.row(&[
                w.label().to_string(),
                n.to_string(),
                format!("{:.5}", s.mean),
                format!("±{:.5}", s.ci95),
            ]);
        }
    }
    println!("\nFigure 13 — normalized execution time with bad pages escaped");
    println!("(Dual Direct mode; 1.0 = no bad pages; paper: ≤1.0006 at 16 faults)\n");
    println!("{t}");
}
