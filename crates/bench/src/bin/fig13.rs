//! Figure 13: escape-filter resilience — normalized execution time for
//! big-memory workloads in Dual Direct mode with 1–16 bad host frames
//! inside the VMM segment, 30 random fault sets per count, with 95%
//! confidence intervals. Pass `--quick` for fewer trials, `--jobs N` to
//! size the worker pool (default: available parallelism), `--quiet` to
//! suppress per-trial progress.
//!
//! Every (workload, bad-frame count, trial) cell is an independent
//! simulation seeded purely from its coordinates, so the full grid runs
//! on a worker pool and the printed table is byte-identical for any
//! `--jobs` value.

use mv_bench::experiments::{env_catalog, parse_parallelism};
use mv_core::TranslationFault;
use mv_core::{MemoryContext, Mmu, MmuConfig};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_metrics::{Summary, Table};
use mv_sim::Env;
use mv_types::{AddrRange, Gpa, Gva, PageSize, GIB, MIB};
use mv_vmm::{SegmentOptions, VmConfig, Vmm};
use mv_workloads::WorkloadKind;

/// Runs one Dual Direct configuration with `bad_frames` random bad host
/// frames inside the segment window; returns translation cycles per access.
fn run_trial(
    workload: WorkloadKind,
    footprint: u64,
    accesses: u64,
    warmup: u64,
    bad_frames: usize,
    seed: u64,
) -> f64 {
    use mv_types::rng::StdRng;

    // The study runs the catalog's Dual Direct environment with a
    // hand-rolled loop (the escape-filter injection has no SimConfig
    // knob); mode and nested page size come from the shared entry.
    let Env::Virtualized { nested, mode } = env_catalog::DUAL_DIRECT.1 else {
        unreachable!("DUAL_DIRECT is virtualized");
    };

    let installed = footprint + footprint / 2 + 96 * MIB;
    let mut vmm = Vmm::new(2 * installed + 128 * MIB);
    let vm = vmm.create_vm(VmConfig::new(installed, nested)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(installed)).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let base = guest
        .create_primary_region(pid, footprint)
        .expect("fresh guest")
        .as_u64();

    // Damage `bad_frames` random frames in the middle of host memory (the
    // future segment window), then create segments.
    if bad_frames > 0 {
        let mut rng = StdRng::seed_from_u64(seed);
        let window = AddrRange::new(
            mv_types::Hpa::new(64 * MIB),
            mv_types::Hpa::new(64 * MIB + installed),
        );
        vmm.hmem_mut()
            .inject_bad_frames(&mut rng, &window, bad_frames)
            .expect("fresh host has free frames");
    }

    let mut mmu = Mmu::new(MmuConfig {
        mode,
        ..MmuConfig::default()
    });
    let gseg = guest.setup_guest_segment(pid).expect("fresh guest memory");
    mmu.set_guest_segment(gseg);
    let vseg = vmm
        .create_vmm_segment(
            vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(installed)),
            SegmentOptions {
                allow_bad: true,
                escape_seed: seed,
                ..SegmentOptions::default()
            },
        )
        .expect("segment with escapes");
    mmu.set_vmm_segment(vseg);
    mmu.set_vmm_escape_filter(vmm.vm(vm).escape_filter().cloned());

    let mut w = workload.build(footprint, seed ^ 0x5eed);
    let total = warmup + accesses;
    for i in 0..total {
        if i == warmup {
            mmu.reset_counters();
        }
        let acc = w.next_access();
        let va = Gva::new(base + acc.offset);
        loop {
            let outcome = {
                let (gpt, gmem) = guest.pt_and_mem(pid);
                let (npt, hmem) = vmm.npt_and_hmem(vm);
                let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
                mmu.access(&ctx, pid as u16, va, acc.write)
            };
            match outcome {
                Ok(_) => break,
                Err(TranslationFault::GuestNotMapped { gva }) => {
                    guest.handle_page_fault(pid, gva).expect("vma covers arena");
                }
                Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                    vmm.handle_nested_fault(vm, gpa).expect("in span");
                }
                Err(f) => panic!("unexpected fault {f}"),
            }
        }
    }
    mmu.counters().translation_cycles as f64 / accesses as f64
}

/// One grid cell: a workload's clean baseline (`bad_frames == 0`) or one
/// random fault set. The seed is a pure function of the coordinates.
#[derive(Debug, Clone, Copy)]
struct Cell {
    workload: WorkloadKind,
    bad_frames: usize,
    seed: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (jobs, reporter) = parse_parallelism();
    let (footprint, accesses, warmup, trials) = if quick {
        (128 * MIB, 100_000u64, 25_000u64, 5usize)
    } else {
        (GIB, 500_000, 125_000, 30)
    };
    let counts = [1usize, 2, 4, 8, 16];
    let workloads = [
        WorkloadKind::Graph500,
        WorkloadKind::Memcached,
        WorkloadKind::NpbCg,
        WorkloadKind::Gups,
    ];

    // The full grid, flat: per workload, the clean baseline followed by
    // counts × trials fault sets. Each cell is independent — its seed
    // comes from its coordinates, never from run order — so the pool may
    // execute them in any order on any number of workers.
    let mut cells = Vec::new();
    for w in workloads {
        cells.push(Cell {
            workload: w,
            bad_frames: 0,
            seed: 1,
        });
        for &n in &counts {
            for trial in 0..trials {
                cells.push(Cell {
                    workload: w,
                    bad_frames: n,
                    seed: 1000 + trial as u64,
                });
            }
        }
    }

    let total = cells.len();
    let results = mv_par::par_map(jobs, &cells, |i, c| {
        reporter.line(format!(
            "  [{:>3}/{total}] {} bad={} seed={}",
            i + 1,
            c.workload.label(),
            c.bad_frames,
            c.seed
        ));
        run_trial(c.workload, footprint, accesses, warmup, c.bad_frames, c.seed)
    });

    // Deterministic assembly: results are in cell order, so walking the
    // same (workload, count, trial) nesting reproduces the serial table.
    // A failed cell never aborts the sweep: its row is annotated, the
    // failure is reported with the cell's coordinates (workload, bad-frame
    // count, seed), and the binary exits nonzero after the table prints.
    let mut t = Table::new(&["workload", "bad pages", "normalized time", "95% CI"]);
    let mut total_failed = 0usize;
    let mut it = results.into_iter();
    let mut next = || it.next().expect("one result per cell");
    for w in workloads {
        let clean = match next() {
            Ok(c) => Some(c),
            Err(p) => {
                total_failed += 1;
                eprintln!("fig13: {} clean baseline (seed 1) failed: {p}", w.label());
                None
            }
        };
        let cpa = w.build(footprint, 0).cycles_per_access();
        for &n in &counts {
            let mut samples = Vec::with_capacity(trials);
            let mut failed = 0usize;
            for trial in 0..trials {
                match (next(), clean) {
                    // Normalized execution time vs. the no-bad-pages run:
                    // (ideal + dirty translation) / (ideal + clean translation).
                    (Ok(dirty), Some(clean)) => samples.push((cpa + dirty) / (cpa + clean)),
                    // Without the baseline there is nothing to normalize
                    // against; the whole workload block is already failed.
                    (Ok(_), None) => failed += 1,
                    (Err(p), _) => {
                        failed += 1;
                        eprintln!(
                            "fig13: {} bad={n} seed={} failed: {p}",
                            w.label(),
                            1000 + trial as u64
                        );
                    }
                }
            }
            total_failed += failed;
            let s = Summary::of(&samples);
            t.row(&[
                w.label().to_string(),
                n.to_string(),
                if samples.is_empty() {
                    "failed!".to_string()
                } else {
                    format!("{:.5}", s.mean)
                },
                if failed > 0 {
                    format!("±{:.5} ({failed} failed)", s.ci95)
                } else {
                    format!("±{:.5}", s.ci95)
                },
            ]);
        }
    }
    println!("\nFigure 13 — normalized execution time with bad pages escaped");
    println!("(Dual Direct mode; 1.0 = no bad pages; paper: ≤1.0006 at 16 faults)\n");
    println!("{t}");
    if total_failed > 0 {
        eprintln!("fig13: {total_failed} of {total} cell(s) failed");
        std::process::exit(1);
    }
}
