//! Section VIII performance breakdown: (1) TLB-miss inflation under
//! virtualization caused by nested entries sharing the L2 TLB, and
//! (2) cycles-per-miss growth from 2D walks.
//!
//! The inflation effect (paper: 1.29–1.62×) only appears when the native
//! working set is near the L2 TLB's reach — a saturated TLB cannot miss
//! more. This binary therefore sweeps footprints around the TLB reach to
//! expose the crossover, then reports cycles-per-miss growth at full scale.

use mv_bench::experiments::{config, parse_scale};
use mv_metrics::Table;
use mv_sim::{Env, GuestPaging, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn main() {
    let scale = parse_scale();
    let paging = GuestPaging::Fixed(PageSize::Size4K);

    // Part 1 — walk-count inflation near TLB reach. The 512-entry L2
    // covers 2 MiB of 4 KiB pages; sweep footprints around that.
    println!("\nSection VIII (obs. 1) — page walks, native vs virtualized,");
    println!("as the footprint crosses the shared L2 TLB's reach\n");
    let mut t = Table::new(&["footprint", "native walks", "virt walks", "inflation"]);
    for footprint in [MIB, 2 * MIB, 3 * MIB, 4 * MIB, 8 * MIB, 32 * MIB] {
        let mk = |env| SimConfig {
            footprint,
            accesses: 400_000,
            warmup: 100_000,
            ..config(WorkloadKind::Gups, paging, env, &scale)
        };
        let native = Simulation::run(&mk(Env::native())).expect("native runs");
        let virt = Simulation::run(&mk(Env::base_virtualized(PageSize::Size4K)))
            .expect("virtualized runs");
        let inflation = if native.counters.l2_misses == 0 {
            f64::NAN
        } else {
            virt.counters.l2_misses as f64 / native.counters.l2_misses as f64
        };
        t.row(&[
            format!("{} MiB", footprint / MIB),
            native.counters.l2_misses.to_string(),
            virt.counters.l2_misses.to_string(),
            format!("{inflation:.2}x"),
        ]);
    }
    println!("{t}");
    println!("(paper: 1.38x for graph500, 1.62x for memcached, 1.41x for gups\n at their working points)");

    // Part 2 — cycles-per-miss growth (paper: 2.4x / 1.5x / 1.6x average
    // for 4K+4K / 4K+2M / 4K+1G).
    println!("\nSection VIII (obs. 2) — cycles per TLB miss, virtualized vs native\n");
    let mut t = Table::new(&["workload", "4K", "4K+4K", "4K+2M", "4K+1G", "growth @4K+4K"]);
    let mut growths = Vec::new();
    for w in WorkloadKind::BIG_MEMORY {
        eprintln!("running {}...", w.label());
        let native = Simulation::run(&config(w, paging, Env::native(), &scale)).unwrap();
        let v4 = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size4K), &scale)).unwrap();
        let v2m = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size2M), &scale)).unwrap();
        let v1g = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size1G), &scale)).unwrap();
        let growth = v4.cycles_per_miss() / native.cycles_per_miss();
        growths.push(growth);
        t.row(&[
            w.label().to_string(),
            format!("{:.0}", native.cycles_per_miss()),
            format!("{:.0}", v4.cycles_per_miss()),
            format!("{:.0}", v2m.cycles_per_miss()),
            format!("{:.0}", v1g.cycles_per_miss()),
            format!("{growth:.2}x"),
        ]);
    }
    println!("{t}");
    println!(
        "geomean cycles-per-miss growth at 4K+4K: {:.2}x (paper: 2.4x)",
        mv_metrics::geomean(&growths)
    );
}
