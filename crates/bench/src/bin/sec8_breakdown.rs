//! Section VIII performance breakdown: (1) TLB-miss inflation under
//! virtualization caused by nested entries sharing the L2 TLB, and
//! (2) cycles-per-miss growth from 2D walks.
//!
//! The inflation effect (paper: 1.29–1.62×) only appears when the native
//! working set is near the L2 TLB's reach — a saturated TLB cannot miss
//! more. This binary therefore sweeps footprints around the TLB reach to
//! expose the crossover, then reports cycles-per-miss growth at full scale.
//!
//! Part 3 rides the live attribution profiler instead of derived
//! counters: each virtualized run re-executes with a [`mv_prof::Profile`]
//! attached, and the printed breakdown — guest dimension vs nested
//! dimension vs hit tiers — is read straight off the (guest level ×
//! nested level) walk matrix. `--profile-out DIR` writes each
//! environment's profile as JSONL, so
//! `mv-prof diff DIR/4K+4K.jsonl DIR/4K+2M.jsonl` reproduces the deltas
//! between any two columns of the table.

use mv_bench::experiments::{config, parse_scale};
use mv_core::MmuConfig;
use mv_metrics::Table;
use mv_sim::{Env, GuestPaging, ProfileConfig, SimConfig, Simulation};
use mv_types::{PageSize, MIB};
use mv_workloads::WorkloadKind;

fn main() {
    let scale = parse_scale();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_out = args
        .iter()
        .position(|a| a == "--profile-out")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--profile-out needs a directory");
            std::process::exit(2);
        }));
    let paging = GuestPaging::Fixed(PageSize::Size4K);

    // Part 1 — walk-count inflation near TLB reach. The 512-entry L2
    // covers 2 MiB of 4 KiB pages; sweep footprints around that.
    println!("\nSection VIII (obs. 1) — page walks, native vs virtualized,");
    println!("as the footprint crosses the shared L2 TLB's reach\n");
    let mut t = Table::new(&["footprint", "native walks", "virt walks", "inflation"]);
    for footprint in [MIB, 2 * MIB, 3 * MIB, 4 * MIB, 8 * MIB, 32 * MIB] {
        let mk = |env| SimConfig {
            footprint,
            accesses: 400_000,
            warmup: 100_000,
            ..config(WorkloadKind::Gups, paging, env, &scale)
        };
        let native = Simulation::run(&mk(Env::native())).expect("native runs");
        let virt = Simulation::run(&mk(Env::base_virtualized(PageSize::Size4K)))
            .expect("virtualized runs");
        let inflation = if native.counters.l2_misses == 0 {
            f64::NAN
        } else {
            virt.counters.l2_misses as f64 / native.counters.l2_misses as f64
        };
        t.row(&[
            format!("{} MiB", footprint / MIB),
            native.counters.l2_misses.to_string(),
            virt.counters.l2_misses.to_string(),
            format!("{inflation:.2}x"),
        ]);
    }
    println!("{t}");
    println!("(paper: 1.38x for graph500, 1.62x for memcached, 1.41x for gups\n at their working points)");

    // Part 2 — cycles-per-miss growth (paper: 2.4x / 1.5x / 1.6x average
    // for 4K+4K / 4K+2M / 4K+1G).
    println!("\nSection VIII (obs. 2) — cycles per TLB miss, virtualized vs native\n");
    let mut t = Table::new(&["workload", "4K", "4K+4K", "4K+2M", "4K+1G", "growth @4K+4K"]);
    let mut growths = Vec::new();
    for w in WorkloadKind::BIG_MEMORY {
        eprintln!("running {}...", w.label());
        let native = Simulation::run(&config(w, paging, Env::native(), &scale)).unwrap();
        let v4 = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size4K), &scale)).unwrap();
        let v2m = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size2M), &scale)).unwrap();
        let v1g = Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size1G), &scale)).unwrap();
        let growth = v4.cycles_per_miss() / native.cycles_per_miss();
        growths.push(growth);
        t.row(&[
            w.label().to_string(),
            format!("{:.0}", native.cycles_per_miss()),
            format!("{:.0}", v4.cycles_per_miss()),
            format!("{:.0}", v2m.cycles_per_miss()),
            format!("{:.0}", v1g.cycles_per_miss()),
            format!("{growth:.2}x"),
        ]);
    }
    println!("{t}");
    println!(
        "geomean cycles-per-miss growth at 4K+4K: {:.2}x (paper: 2.4x)",
        mv_metrics::geomean(&growths)
    );

    // Part 3 — where the 2D walk actually spends its cycles, read off the
    // live attribution profiler rather than derived counters. The nested
    // dimension (nLx columns plus guest-PTE refs) is the virtualization
    // tax the paper's direct segments remove.
    println!("\nSection VIII (obs. 3) — walk-cycle attribution by matrix dimension (gups)\n");
    let mut t = Table::new(&[
        "env",
        "walk cycles",
        "guest dim",
        "nested dim",
        "hit tiers",
        "nested share",
    ]);
    let envs: [(&str, Env); 4] = [
        ("4K", Env::native()),
        ("4K+4K", Env::base_virtualized(PageSize::Size4K)),
        ("4K+2M", Env::base_virtualized(PageSize::Size2M)),
        ("4K+1G", Env::base_virtualized(PageSize::Size1G)),
    ];
    for (label, env) in envs {
        let cfg = config(WorkloadKind::Gups, paging, env, &scale);
        let r = Simulation::run_profiled(&cfg, MmuConfig::default(), None, ProfileConfig::default())
            .expect("profiled run");
        let p = r.profile.as_ref().expect("profiled run carries a profile");
        let m = p.total();
        let nested = m.nested_dimension_cycles();
        let share = if m.total_cycles == 0 {
            0.0
        } else {
            100.0 * nested as f64 / m.total_cycles as f64
        };
        t.row(&[
            label.to_string(),
            m.total_cycles.to_string(),
            m.guest_dimension_cycles().to_string(),
            nested.to_string(),
            m.tier_cycles().to_string(),
            format!("{share:.1}%"),
        ]);
        if let Some(dir) = &profile_out {
            std::fs::create_dir_all(dir).expect("profile-out dir");
            let path = format!("{dir}/{label}.jsonl");
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("creating {path}: {e}"));
            p.write_jsonl(&mut f)
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
    println!("{t}");
    println!("(diff any two columns: mv-prof diff DIR/4K+4K.jsonl DIR/4K+2M.jsonl)");
}
