//! Adaptive-vs-static study: the telemetry-driven mode controller against
//! every static environment on a phase-shifting serving workload, with
//! chaos fault storms as the adversary.
//!
//! One serving-style trace (Zipfian requests under a diurnal load
//! envelope, synthesized once and replayed byte-identically into every
//! cell) drives five cells: four statically configured environments —
//! `4K+4K`, `4K+VD`, `4K+GD`, `DD`, the segment-bearing ones defended by
//! the legacy reactive degradation ladder — and one `DD` cell whose mode
//! is chosen live by the mv-adapt controller from epoch telemetry. All
//! five face the same fault plan: a storm confined to the second quarter
//! of the measured window (or sustained noise under `--thrash`).
//!
//! Walk-cost accounting has two parts. *Walk cycles* come from the
//! telemetry epoch histograms. *Switch cycles* price what the simulator's
//! flush model cannot see: re-programming a direct segment means the
//! OS/VMM balloons or compacts a contiguous span back into existence, so
//! every successful promotion (ladder `"recovery"`, controller
//! `"promotion"`) is charged a flat re-arm cost from the transition log.
//! The charge is deliberately conservative — real compaction of a
//! gigabyte-scale span costs orders of magnitude more — which is exactly
//! the cost an eager retry ladder externalizes and a hysteresis
//! controller is designed to respect.
//!
//! Scoring splits the measured window into eight phases (two per diurnal
//! cycle of the four-cycle trace). The *static oracle* picks the cheapest
//! static cell per phase — the hindsight scheduler the controller tries
//! to approximate; the headline compares the adaptive run's total walk
//! cost against the best single static cell and against that oracle, and
//! reports how many epochs past the storm the controller needed to
//! promote back to Direct.
//!
//! ```text
//! cargo run --release -p mv-bench --bin adapt_study -- --quick --jobs 4
//! ```
//!
//! Flags: `--quick` (smoke scale), `--jobs N`, `--quiet`, `--chaos-seed N`
//! (default 0xc4a05), and `--thrash` (sustained fault noise instead of a
//! storm; used by CI to verify the rollback backoff honors its cap).
//! Cells are assembled in sweep order, so stdout is byte-identical for
//! any `--jobs` value and fixed seeds. The binary exits nonzero if any
//! cell dies, the oracle reports a violation, the adaptive cell fails to
//! beat a static cell, or the controller's backoff/window-budget
//! invariants fail.

use mv_bench::experiments::{env_catalog, parse_parallelism, parse_scale};
use mv_chaos::{ChaosSpec, DegradeLevel};
use mv_metrics::Table;
use mv_par::cli;
use mv_sim::{
    write_serving, AdaptSpec, ControllerConfig, GridCell, ReplaySource, RunResult, ServingParams,
    SimConfig, Simulation, TelemetryConfig,
};
use mv_workloads::WorkloadKind;

/// Injected faults per million accesses while chaos is active.
const FAULT_RATE: u64 = 50_000;

/// Fault spacing for `--thrash`, in decision epochs. Faults fire on a
/// deterministic interval, so this picks the sustained regime directly:
/// wide enough that quiet runs keep tempting the controller into
/// promotions, tight enough that balloon denials keep aborting them —
/// the cycle that drives the rollback backoff ladder, whose cap this
/// mode exists to verify.
const THRASH_EPOCHS_PER_FAULT: u64 = 4;

/// Phases the measured window is scored over: two per diurnal cycle of
/// the four-cycle serving trace (peak and trough halves).
const PHASES: usize = 8;

/// Cycles charged per successful segment promotion: the balloon /
/// compaction pass that re-arms a contiguous direct-segment span. Real
/// compaction of a gigabyte-scale span runs to milliseconds of work;
/// 20k cycles (< 100 DRAM round trips) is a deliberate lower bound, so
/// it understates — never manufactures — the cost of flapping.
const SEGMENT_REARM_CYCLES: u64 = 20_000;

/// The static adversaries, in output order. Segment-bearing cells run
/// the legacy reactive ladder (degradation is the correctness mechanism
/// under segment loss); `4K+4K` has no segment to lose.
const STATICS: [(&str, env_catalog::NamedEnv); 4] = [
    ("4K+4K", env_catalog::VIRT_4K_4K),
    ("4K+VD", env_catalog::VMM_DIRECT),
    ("4K+GD", env_catalog::GUEST_DIRECT),
    ("DD", env_catalog::DUAL_DIRECT),
];

/// Per-phase walk and switch cycles for one cell's measured window.
struct PhaseCost {
    walk: [u64; PHASES],
    switches: [u64; PHASES],
}

impl PhaseCost {
    fn phase(&self, p: usize) -> u64 {
        self.walk[p] + self.switches[p]
    }

    fn total(&self) -> u64 {
        self.walk.iter().sum::<u64>() + self.switches.iter().sum::<u64>()
    }
}

/// Attributes one cell's walk cycles and promotion charges to phases.
///
/// Epochs live on the MMU's access-sequence grid, which runs ahead of the
/// workload clock on faulting runs (every retried access counts), so walk
/// cycles map to phases *proportionally* over the cell's own observed
/// span. Switch charges come from the transition log, which is stamped in
/// workload accesses and maps exactly.
fn phase_cost(r: &RunResult, warmup: u64, measured: u64) -> PhaseCost {
    let mut cost = PhaseCost {
        walk: [0; PHASES],
        switches: [0; PHASES],
    };
    let Some(t) = r.telemetry.as_ref() else {
        return cost;
    };
    let scale = t
        .epochs()
        .iter()
        .map(|e| e.end_seq)
        .max()
        .unwrap_or(measured)
        .max(1);
    for e in t.epochs() {
        let p = ((e.start_seq.saturating_sub(1) as u128 * PHASES as u128) / scale as u128) as usize;
        cost.walk[p.min(PHASES - 1)] += e.hist.sum();
    }
    for tr in t.transitions() {
        if tr.access < warmup || !matches!(tr.cause.as_str(), "recovery" | "promotion") {
            continue;
        }
        let p =
            (((tr.access - warmup) as u128 * PHASES as u128) / measured.max(1) as u128) as usize;
        cost.switches[p.min(PHASES - 1)] += SEGMENT_REARM_CYCLES;
    }
    cost
}

fn kcyc(cycles: u64) -> String {
    format!("{:.1}", cycles as f64 / 1000.0)
}

fn main() {
    let scale = parse_scale();
    let (jobs, reporter) = parse_parallelism();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chaos_seed = cli::parse_u64_opt(&args, "--chaos-seed")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
        .unwrap_or(0xc4a05);
    let thrash = args.iter().any(|a| a == "--thrash");

    // One trace, shared by reference into every cell. Records cover the
    // whole run exactly (warmup + measured), so no cell wraps the trace.
    let workload = WorkloadKind::Memcached;
    let footprint = scale.footprint_for(workload);
    let records = scale.warmup + scale.accesses;
    let params = ServingParams::new(footprint, records, scale.seed);
    let mut buf = Vec::new();
    write_serving(&mut buf, &params).unwrap_or_else(|e| {
        eprintln!("serving trace synthesis failed: {e}");
        std::process::exit(2);
    });
    let trace = ReplaySource::bytes(buf);

    // Decision/telemetry epochs: ~100 per measured window, and the storm
    // quarter spans ~25 of them.
    let epoch_len = (scale.accesses / 100).max(1_000);
    let storm_start = scale.warmup + scale.accesses / 4;
    let storm_len = scale.accesses / 4;
    let thrash_rate = (1_000_000 / (THRASH_EPOCHS_PER_FAULT * epoch_len)).max(1);
    let chaos = if thrash {
        ChaosSpec::new(chaos_seed, thrash_rate)
    } else {
        ChaosSpec::new(chaos_seed, FAULT_RATE).with_storm(storm_start, storm_len)
    };
    let adapt = AdaptSpec {
        epoch_len,
        seed: 0xada7,
        config: ControllerConfig::default(),
    };
    let tcfg = TelemetryConfig {
        epoch_len,
        flight_capacity: 0,
    };

    let cfg_for = |(paging, env): env_catalog::NamedEnv| SimConfig {
        workload,
        footprint,
        guest_paging: paging,
        env,
        accesses: scale.accesses,
        warmup: scale.warmup,
        seed: scale.seed,
    };
    let mut cells: Vec<GridCell> = STATICS
        .iter()
        .map(|&(_, named)| {
            GridCell::new(cfg_for(named))
                .observed(tcfg)
                .with_chaos(chaos)
                .replayed(trace.clone())
        })
        .collect();
    cells.push(
        GridCell::new(cfg_for(env_catalog::DUAL_DIRECT))
            .with_chaos(chaos)
            .adaptive(adapt)
            .replayed(trace.clone()),
    );

    println!(
        "\nAdaptive mode controller vs. static environments — serving workload \
         under chaos\n(chaos seed {chaos_seed:#x}, {}, {} accesses, \
         epoch {epoch_len}, re-arm {SEGMENT_REARM_CYCLES} cyc)\n",
        if thrash {
            format!("rate {thrash_rate}/M sustained")
        } else {
            format!("rate {FAULT_RATE}/M, storm @ {storm_start}+{storm_len}")
        },
        scale.accesses
    );
    let report = Simulation::run_grid_reported(&cells, jobs, &reporter);
    let results = report.outcomes();

    let mut failed = false;
    let mut ok: Vec<(&str, &RunResult)> = Vec::new();
    let labels: Vec<&str> = STATICS
        .iter()
        .map(|&(l, _)| l)
        .chain(std::iter::once("DD+adapt"))
        .collect();
    for (label, out) in labels.iter().zip(results) {
        match &out.outcome {
            Ok(r) => ok.push((label, r)),
            Err(e) => {
                eprintln!("error: cell {label} died: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    let costs: Vec<PhaseCost> = ok
        .iter()
        .map(|&(_, r)| phase_cost(r, scale.warmup, scale.accesses))
        .collect();

    // ------------------------------------------------------- summary table
    let mut t = Table::new(&[
        "env",
        "policy",
        "walk kcyc",
        "switch kcyc",
        "total kcyc",
        "survived",
        "injected",
        "transitions",
        "recoveries",
        "direct%",
    ]);
    for (i, (&(label, r), cost)) in ok.iter().zip(&costs).enumerate() {
        let policy = if i == ok.len() - 1 {
            "adaptive"
        } else if i == 0 {
            "static"
        } else {
            "ladder"
        };
        let (survived, injected, transitions, recoveries, direct) = match &r.chaos {
            Some(c) => {
                let res: u64 = c.residency.iter().sum::<u64>().max(1);
                (
                    c.survived(),
                    c.injected_total(),
                    c.transitions,
                    c.recoveries.to_string(),
                    format!(
                        "{:.1}",
                        100.0 * c.residency[DegradeLevel::Direct.index()] as f64 / res as f64
                    ),
                )
            }
            None => (true, 0, 0, "-".to_string(), "100.0".to_string()),
        };
        if !survived {
            eprintln!("error: cell {label} finished with oracle violations");
            failed = true;
        }
        t.row(&[
            label.to_string(),
            policy.to_string(),
            kcyc(cost.walk.iter().sum()),
            kcyc(cost.switches.iter().sum()),
            kcyc(cost.total()),
            if survived { "yes".into() } else { "NO".to_string() },
            injected.to_string(),
            transitions.to_string(),
            recoveries,
            direct,
        ]);
    }
    println!("{t}");

    // ----------------------------------------------------- per-phase table
    let mut pt = Table::new(&[
        "phase", "4K+4K", "4K+VD", "4K+GD", "DD", "oracle", "adaptive",
    ]);
    let mut oracle_total = 0u64;
    for p in 0..PHASES {
        let static_costs: Vec<u64> = costs[..ok.len() - 1].iter().map(|c| c.phase(p)).collect();
        let oracle = static_costs.iter().copied().min().unwrap_or(0);
        oracle_total += oracle;
        let mut row = vec![p.to_string()];
        row.extend(static_costs.iter().map(|&c| kcyc(c)));
        row.push(kcyc(oracle));
        row.push(kcyc(costs[ok.len() - 1].phase(p)));
        pt.row(&row);
    }
    println!("(per-phase walk + switch kilocycles over eighths of the measured");
    println!(" window; the oracle takes the cheapest static cell in each phase —");
    println!(" hindsight the controller has to earn online)\n");
    println!("{pt}");

    // ------------------------------------------------------------ headline
    let adaptive_total = costs[costs.len() - 1].total();
    let (best_label, best_static) = ok[..ok.len() - 1]
        .iter()
        .zip(&costs)
        .map(|(&(l, _), c)| (l, c.total()))
        .min_by_key(|&(_, c)| c)
        .unwrap_or(("", 0));
    let ratio = |a: u64, b: u64| {
        if b == 0 {
            f64::INFINITY
        } else {
            a as f64 / b as f64
        }
    };
    println!(
        "adaptive vs best static ({best_label}): {:.3}x total walk cost",
        ratio(adaptive_total, best_static)
    );
    println!(
        "adaptive vs per-phase static oracle: {:.3}x total walk cost",
        ratio(adaptive_total, oracle_total)
    );
    let beats_all = costs[..costs.len() - 1]
        .iter()
        .all(|c| adaptive_total < c.total());
    println!(
        "adaptive beats every static cell: {}",
        if beats_all { "yes" } else { "NO" }
    );
    // The beats-all criterion is the storm headline; sustained thrash
    // exists to exercise the backoff ladder, not to be won.
    if !beats_all && !thrash {
        failed = true;
    }

    // Controller invariants + recovery time, from the adaptive cell.
    let (_, adaptive_result) = ok[ok.len() - 1];
    let Some(a) = adaptive_result.adapt.as_ref() else {
        eprintln!("error: the adaptive cell produced no adapt report");
        std::process::exit(1);
    };
    if a.max_backoff_epochs > adapt.config.backoff_cap_epochs {
        eprintln!(
            "error: rollback backoff exceeded its cap ({} > {})",
            a.max_backoff_epochs, adapt.config.backoff_cap_epochs
        );
        failed = true;
    }
    let windows = a.epochs / adapt.config.window_epochs + 1;
    if a.decisions > windows * adapt.config.max_promotions_per_window {
        eprintln!(
            "error: promotion decisions exceeded the window budget ({} > {})",
            a.decisions,
            windows * adapt.config.max_promotions_per_window
        );
        failed = true;
    }
    if a.transitions != a.promotions + a.forced_demotions + 2 * a.rollbacks {
        eprintln!("error: transition accounting identity violated: {a:?}");
        failed = true;
    }
    println!(
        "controller: {} epochs, {} promotions, {} forced demotions, {} rollbacks, \
         max backoff {} epochs (cap {})",
        a.epochs,
        a.promotions,
        a.forced_demotions,
        a.rollbacks,
        a.max_backoff_epochs,
        adapt.config.backoff_cap_epochs
    );
    if thrash {
        println!("thrash mode: backoff cap and window budget verified under sustained noise");
    } else {
        // Recovery time: last promotion landing the run back on the full
        // baseline plan, measured in epochs past the storm end.
        let storm_end = storm_start + storm_len;
        let recovery = adaptive_result
            .telemetry
            .as_ref()
            .map(|t| t.transitions())
            .unwrap_or(&[])
            .iter()
            .filter(|tr| tr.cause == "promotion" && tr.access >= storm_end)
            .map(|tr| tr.access)
            .max();
        match (a.final_level == DegradeLevel::Direct, recovery) {
            (true, Some(access)) => println!(
                "recovery: home (Direct) {} epochs after the storm end",
                access.saturating_sub(storm_end).div_ceil(epoch_len)
            ),
            (true, None) => println!("recovery: never left Direct after the storm"),
            (false, _) => {
                eprintln!("error: controller did not recover to Direct after the storm: {a:?}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
