//! Section IX.E: content-based page sharing study — co-schedule two VMs
//! running every pair of big-memory workloads and measure the memory the
//! VMM can reclaim by deduplicating identical pages. The paper finds under
//! 3% savings: big-memory datasets are unique; only OS-like pages share.

use mv_metrics::Table;
use mv_types::{AddrRange, Gpa, PageSize, MIB};
use mv_vmm::{VmConfig, Vmm};
use mv_workloads::WorkloadKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let guest_mem = if quick { 64 * MIB } else { 512 * MIB };
    let big = WorkloadKind::BIG_MEMORY;

    let mut t = Table::new(&["pair", "scanned", "deduplicated", "saved", "% of guest mem"]);
    for (i, &a) in big.iter().enumerate() {
        for &b in &big[i..] {
            let mut vmm = Vmm::new(4 * guest_mem);
            let vm_a = vmm.create_vm(VmConfig::new(guest_mem, PageSize::Size4K)).unwrap();
            let vm_b = vmm.create_vm(VmConfig::new(guest_mem, PageSize::Size4K)).unwrap();
            for vm in [vm_a, vm_b] {
                vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(guest_mem)))
                    .expect("host sized for both VMs");
            }

            // Fingerprint every backed page from each workload's content
            // model (the duplicate pool plays the role of shared OS pages).
            let wa = a.build(guest_mem, 1);
            let wb = b.build(guest_mem, 2);
            let mut pages = Vec::new();
            for page in 0..(guest_mem / 4096) {
                pages.push((vm_a, Gpa::new(page * 4096), wa.page_fingerprint_instanced(page, 1)));
                pages.push((vm_b, Gpa::new(page * 4096), wb.page_fingerprint_instanced(page, 2)));
            }
            let out = vmm.share_pages(&pages).expect("scan succeeds");
            let frac = out.bytes_saved as f64 / (2 * guest_mem) as f64;
            t.row(&[
                format!("{}+{}", a.label(), b.label()),
                out.scanned_pages.to_string(),
                out.deduplicated_pages.to_string(),
                format!("{} MiB", out.bytes_saved / MIB),
                format!("{:.2}%", frac * 100.0),
            ]);
        }
    }
    println!("\nSection IX.E — content-based page sharing between co-scheduled VMs");
    println!("(paper: no more than 3% of memory saved for big-memory pairs)\n");
    println!("{t}");
}
