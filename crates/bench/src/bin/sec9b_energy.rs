//! Section IX.B: translation-energy discussion, quantified. Two effects:
//! (1) static energy scales with execution time, so any speedup saves
//! whole-system energy proportionally; (2) the translation machinery's
//! dynamic energy shifts between structures per mode (L2 lookups vs
//! segment comparators vs walker accesses).

use mv_bench::experiments::{config, parse_scale, pct};
use mv_metrics::Table;
use mv_sim::{Env, GuestPaging, RunResult, Simulation};
use mv_types::PageSize;
use mv_workloads::WorkloadKind;

fn dynamic_energy(r: &RunResult) -> f64 {
    mv_metrics::translation_energy(&r.counters, &mv_metrics::EnergyWeights::default())
}

fn main() {
    let scale = parse_scale();
    let paging = GuestPaging::Fixed(PageSize::Size4K);

    let mut t = Table::new(&[
        "workload",
        "config",
        "exec time vs 4K+2M",
        "translation dynamic energy (rel)",
    ]);
    for w in WorkloadKind::BIG_MEMORY {
        eprintln!("running {}...", w.label());
        let base2m =
            Simulation::run(&config(w, paging, Env::base_virtualized(PageSize::Size2M), &scale))
                .unwrap();
        let time = |r: &RunResult| r.ideal_cycles + r.translation_cycles;
        let e_base = dynamic_energy(&base2m);
        for (label, env) in [
            ("4K+2M", Env::base_virtualized(PageSize::Size2M)),
            ("4K+4K", Env::base_virtualized(PageSize::Size4K)),
            ("4K+VD", Env::vmm_direct()),
            ("DD", Env::dual_direct()),
        ] {
            let r = if label == "4K+2M" {
                base2m.clone()
            } else {
                Simulation::run(&config(w, paging, env, &scale)).unwrap()
            };
            t.row(&[
                w.label().to_string(),
                label.to_string(),
                pct(time(&r) / time(&base2m) - 1.0),
                format!("{:.2}x", dynamic_energy(&r) / e_base),
            ]);
        }
    }
    println!("\nSection IX.B — energy effects of the translation modes");
    println!("(execution-time change approximates static-energy change; the");
    println!(" paper reports Dual Direct cutting 11-89% of time vs 4K+2M)\n");
    println!("{t}");
}
