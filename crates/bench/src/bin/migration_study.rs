//! Live-migration study (extension of Table II's feature analysis):
//! migrate a running VM with pre-copy while the workload executes in
//! Guest Direct mode. Guest Direct keeps translation near-native *and*
//! preserves the 4 KiB nested pages that dirty tracking needs — the
//! combination the paper designed it for. Write-heavy workloads re-dirty
//! pages faster, needing more rounds and a larger downtime set.

use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationFault, TranslationMode};
use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_metrics::Table;
use mv_types::{Gva, PageSize, MIB};
use mv_vmm::{VmConfig, Vmm};
use mv_workloads::WorkloadKind;

const ROUND_ACCESSES: u64 = 100_000;
const MAX_ROUNDS: u64 = 12;
/// Stop-and-copy when the dirty set is below this many pages.
const DOWNTIME_TARGET: usize = 256;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let footprint = if quick { 64 * MIB } else { 256 * MIB };

    let mut t = Table::new(&[
        "workload", "rounds", "precopy pages", "downtime pages", "tracking faults", "overhead during",
    ]);
    for w in WorkloadKind::BIG_MEMORY {
        eprintln!("migrating {}...", w.label());
        let installed = footprint + footprint / 2 + 96 * MIB;
        let mut vmm = Vmm::new(2 * installed + 128 * MIB);
        let vm = vmm.create_vm(VmConfig::new(installed, PageSize::Size4K)).unwrap();
        let mut guest = GuestOs::boot(GuestConfig::small(installed)).unwrap();
        let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
        let base = guest
            .create_primary_region(pid, footprint)
            .expect("fresh guest")
            .as_u64();

        // Guest Direct: segment in the guest, 4K nested pages in the VMM.
        let gseg = guest.setup_guest_segment(pid).expect("fresh guest memory");
        let mut mmu = Mmu::new(MmuConfig {
            mode: TranslationMode::GuestDirect,
            ..MmuConfig::default()
        });
        mmu.set_guest_segment(gseg);

        let mut workload = w.build(footprint, 5);

        // Warm the VM up (backs pages, fills TLBs).
        let mut run = |mmu: &mut Mmu,
                       guest: &mut GuestOs,
                       vmm: &mut Vmm,
                       migration: Option<&mut mv_vmm::Migration>,
                       n: u64|
         -> u64 {
            let mut migration = migration;
            let mut cycles = 0;
            for _ in 0..n {
                let acc = workload.next_access();
                let va = Gva::new(base + acc.offset);
                loop {
                    let outcome = {
                        let (gpt, gmem) = guest.pt_and_mem(pid);
                        let (npt, hmem) = vmm.npt_and_hmem(vm);
                        let ctx = MemoryContext::Virtualized { gpt, gmem, npt, hmem };
                        mmu.access(&ctx, pid as u16, va, acc.write)
                    };
                    match outcome {
                        Ok(out) => {
                            cycles += out.cycles;
                            break;
                        }
                        Err(TranslationFault::GuestNotMapped { gva }) => {
                            guest.handle_page_fault(pid, gva).expect("covered");
                        }
                        Err(TranslationFault::NestedNotMapped { gpa, .. }) => {
                            vmm.handle_nested_fault(vm, gpa).expect("in span");
                        }
                        Err(TranslationFault::WriteProtected { gva }) => {
                            // Dirty tracking trap: tell the migration.
                            let (gpt, gmem) = guest.pt_and_mem(pid);
                            let gpa = match gpt.translate(gmem, gva) {
                                Some(tr) => tr.pa,
                                None => mmu
                                    .guest_segment()
                                    .translate(gva)
                                    .expect("segment covers the arena"),
                            };
                            let m = migration
                                .as_deref_mut()
                                .expect("write protection only during migration");
                            vmm.migration_write_fault(m, gpa).expect("tracked page");
                            mmu.invalidate_nested(gpa);
                        }
                        Err(f) => panic!("unexpected fault: {f}"),
                    }
                }
            }
            cycles
        };

        run(&mut mmu, &mut guest, &mut vmm, None, ROUND_ACCESSES);

        // Migrate while the workload keeps running.
        let mut migration = vmm.start_migration(vm).expect("guest direct is migratable");
        mmu.flush_all(); // protection changed under the TLBs
        let mut during_cycles = 0u64;
        for _ in 0..MAX_ROUNDS {
            vmm.migration_round(&mut migration).expect("round");
            during_cycles += run(
                &mut mmu,
                &mut guest,
                &mut vmm,
                Some(&mut migration),
                ROUND_ACCESSES,
            );
            if migration.dirty_pages() < DOWNTIME_TARGET {
                break;
            }
        }
        let stats = vmm.complete_migration(migration).expect("completes");
        mmu.flush_all();

        let overhead = during_cycles as f64
            / (stats.rounds as f64 * ROUND_ACCESSES as f64 * workload.cycles_per_access());
        t.row(&[
            w.label().to_string(),
            stats.rounds.to_string(),
            stats.precopy_pages.to_string(),
            stats.downtime_pages.to_string(),
            stats.tracking_faults.to_string(),
            format!("{:.1}%", overhead * 100.0),
        ]);
    }
    println!("\nLive migration under Guest Direct (extension study)");
    println!("(pre-copy rounds until the dirty set fits the downtime target;");
    println!(" write-heavy workloads re-dirty faster and carry more downtime)\n");
    println!("{t}");
}
