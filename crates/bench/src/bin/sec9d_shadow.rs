//! Section IX.D: shadow paging vs VMM Direct. Shadow paging eliminates 2D
//! walks but pays a VM exit for every guest page-table update, so
//! allocation-churny workloads (memcached, GemsFDTD, omnetpp, canneal)
//! slow down while static workloads do fine. VMM Direct serves both.

use mv_bench::experiments::{config, env_catalog, parse_scale, pct};
use mv_metrics::Table;
use mv_sim::Simulation;
use mv_workloads::WorkloadKind;

fn main() {
    let scale = parse_scale();
    let [(native_paging, native_env), (shadow_paging, shadow_env), (vd_paging, vd_env)] =
        env_catalog::SHADOW_STUDY_ENVS;
    let all = [
        // Paper's high-churn category:
        WorkloadKind::Memcached,
        WorkloadKind::GemsFdtd,
        WorkloadKind::Omnetpp,
        WorkloadKind::Canneal,
        // Low-churn category:
        WorkloadKind::Graph500,
        WorkloadKind::NpbCg,
        WorkloadKind::Gups,
        WorkloadKind::Mcf,
        WorkloadKind::CactusAdm,
        WorkloadKind::Streamcluster,
    ];

    let mut t = Table::new(&[
        "workload",
        "native",
        "shadow",
        "VD",
        "shadow slowdown",
        "VD slowdown",
        "shadow exits",
    ]);
    for w in all {
        eprintln!("running {}...", w.label());
        let native = Simulation::run(&config(w, native_paging, native_env, &scale)).unwrap();
        let shadow = Simulation::run(&config(w, shadow_paging, shadow_env, &scale)).unwrap();
        let vd = Simulation::run(&config(w, vd_paging, vd_env, &scale)).unwrap();
        // Slowdown vs native execution: extra translation+exit time over
        // the same ideal cycles.
        let slow = |r: &mv_sim::RunResult| {
            (r.translation_cycles - native.translation_cycles) / (native.ideal_cycles + native.translation_cycles)
        };
        t.row(&[
            w.label().to_string(),
            pct(native.overhead),
            pct(shadow.overhead),
            pct(vd.overhead),
            pct(slow(&shadow)),
            pct(slow(&vd)),
            shadow.vm_exits.to_string(),
        ]);
    }
    println!("\nSection IX.D — shadow paging vs VMM Direct");
    println!("(paper: shadow up to 29.2% slower than native for churny workloads,");
    println!(" under 5% for static ones; VMM Direct at most 7.3% slower)\n");
    println!("{t}");
}
