//! Calibration probe: prints raw per-workload translation statistics
//! (miss rates, cycles per miss, translation cycles per access) for the
//! key configurations, so workload `cycles_per_access` constants can be
//! set to land native overheads near the paper's measurements.

use mv_bench::experiments::{config, parse_scale};
use mv_metrics::Table;
use mv_sim::{Env, GuestPaging, Simulation};
use mv_types::PageSize;
use mv_workloads::WorkloadKind;

fn main() {
    let scale = parse_scale();
    let mut t = Table::new(&[
        "workload", "config", "mpka", "cyc/miss", "trl-cyc/acc", "overhead",
    ]);
    for w in WorkloadKind::ALL {
        for (paging, env, label) in [
            (
                GuestPaging::Fixed(PageSize::Size4K),
                Env::native(),
                "4K",
            ),
            (
                GuestPaging::Fixed(PageSize::Size2M),
                Env::native(),
                "2M",
            ),
            (
                GuestPaging::Fixed(PageSize::Size4K),
                Env::base_virtualized(PageSize::Size4K),
                "4K+4K",
            ),
            (
                GuestPaging::Fixed(PageSize::Size4K),
                Env::base_virtualized(PageSize::Size2M),
                "4K+2M",
            ),
        ] {
            let cfg = config(w, paging, env, &scale);
            eprintln!("running {} / {label}...", w.label());
            let r = match Simulation::run(&cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  failed: {e}");
                    continue;
                }
            };
            t.row(&[
                w.label().to_string(),
                label.to_string(),
                format!("{:.1}", r.mpka()),
                format!("{:.1}", r.cycles_per_miss()),
                format!("{:.2}", r.translation_cycles / r.accesses as f64),
                r.overhead_pct(),
            ]);
        }
    }
    println!("{t}");
}
