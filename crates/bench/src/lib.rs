//! Experiment harness shared by the per-figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). This library provides the shared
//! machinery: run scaling, the standard configuration sets, and result
//! printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod microbench;

pub use experiments::{parse_scale, Scale};
pub use microbench::BenchGroup;
