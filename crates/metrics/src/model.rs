//! The Table IV linear models for cycles spent on page walks.

/// Δ for VMM Direct: five base-bound checks per walk (four page-table
/// pointers plus the final gPA), at one cycle each.
pub const DELTA_VD: f64 = 5.0;

/// Δ for Guest Direct: one base-bound check per walk.
pub const DELTA_GD: f64 = 1.0;

/// Measured inputs to the Table IV models.
///
/// * `c_n` — cycles per TLB miss executing natively,
/// * `c_v` — cycles per TLB miss executing virtualized (2D walks),
/// * `m_n` — TLB misses for the fixed amount of work, measured natively.
///
/// # Example
///
/// ```
/// use mv_metrics::LinearModel;
///
/// let m = LinearModel { c_n: 40.0, c_v: 96.0, m_n: 10_000 };
/// // With no segment coverage every model degenerates to the 2D cost...
/// assert_eq!(m.vmm_direct(0.0), 96.0 * 10_000.0);
/// // ...and with full coverage Dual Direct eliminates walks entirely.
/// assert_eq!(m.dual_direct(1.0, 0.0, 0.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Native cycles per TLB miss.
    pub c_n: f64,
    /// Virtualized cycles per TLB miss.
    pub c_v: f64,
    /// Native TLB miss count.
    pub m_n: u64,
}

impl LinearModel {
    /// Direct Segment (native): `C_n · (1 − F_DS) · M_n` — misses inside
    /// the segment are eliminated.
    pub fn direct_segment(&self, f_ds: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&f_ds));
        self.c_n * (1.0 - f_ds) * self.m_n as f64
    }

    /// VMM Direct: `[(C_n + Δ_VD)·F_VD + C_v·(1 − F_VD)] · M_n`.
    pub fn vmm_direct(&self, f_vd: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&f_vd));
        ((self.c_n + DELTA_VD) * f_vd + self.c_v * (1.0 - f_vd)) * self.m_n as f64
    }

    /// Guest Direct: `[(C_n + Δ_GD)·F_GD + C_v·(1 − F_GD)] · M_n`.
    pub fn guest_direct(&self, f_gd: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&f_gd));
        ((self.c_n + DELTA_GD) * f_gd + self.c_v * (1.0 - f_gd)) * self.m_n as f64
    }

    /// Dual Direct:
    /// `[(C_n+Δ_VD)·F_VD + (C_n+Δ_GD)·F_GD + C_v·(1−F_GD−F_VD−F_DD)] · M_n`
    /// — misses in both segments (`f_dd`) are free; misses in only one are
    /// priced like the corresponding single-segment mode.
    pub fn dual_direct(&self, f_dd: f64, f_vd: f64, f_gd: f64) -> f64 {
        debug_assert!(f_dd + f_vd + f_gd <= 1.0 + 1e-9);
        ((self.c_n + DELTA_VD) * f_vd
            + (self.c_n + DELTA_GD) * f_gd
            + self.c_v * (1.0 - f_gd - f_vd - f_dd))
            * self.m_n as f64
    }

    /// Base virtualized cost for reference: `C_v · M_n`.
    pub fn base_virtualized(&self) -> f64 {
        self.c_v * self.m_n as f64
    }

    /// Base native cost for reference: `C_n · M_n`.
    pub fn base_native(&self) -> f64 {
        self.c_n * self.m_n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> LinearModel {
        LinearModel {
            c_n: 40.0,
            c_v: 96.0,
            m_n: 1_000,
        }
    }

    #[test]
    fn direct_segment_scales_with_coverage() {
        let m = m();
        assert_eq!(m.direct_segment(0.0), m.base_native());
        assert_eq!(m.direct_segment(1.0), 0.0);
        assert!((m.direct_segment(0.99) - 0.01 * m.base_native()).abs() < 1e-6);
    }

    #[test]
    fn vmm_direct_interpolates_native_plus_delta_and_virtualized() {
        let m = m();
        assert_eq!(m.vmm_direct(0.0), m.base_virtualized());
        assert_eq!(m.vmm_direct(1.0), (40.0 + 5.0) * 1_000.0);
        let half = m.vmm_direct(0.5);
        assert!(half > m.vmm_direct(1.0) && half < m.vmm_direct(0.0));
    }

    #[test]
    fn guest_direct_has_smaller_delta_than_vmm_direct() {
        let m = m();
        assert!(m.guest_direct(1.0) < m.vmm_direct(1.0));
        assert_eq!(m.guest_direct(1.0), (40.0 + 1.0) * 1_000.0);
    }

    #[test]
    fn dual_direct_composes_all_categories() {
        let m = m();
        // Fully covered by both segments: zero walk cycles.
        assert_eq!(m.dual_direct(1.0, 0.0, 0.0), 0.0);
        // Degenerates to VMM Direct when only the VMM segment covers.
        assert_eq!(m.dual_direct(0.0, 1.0, 0.0), m.vmm_direct(1.0));
        // Degenerates to Guest Direct when only the guest segment covers.
        assert_eq!(m.dual_direct(0.0, 0.0, 1.0), m.guest_direct(1.0));
        // No coverage at all: base virtualized.
        assert_eq!(m.dual_direct(0.0, 0.0, 0.0), m.base_virtualized());
    }

    #[test]
    fn mode_ordering_matches_table_ii() {
        // At equal (high) coverage: Dual < Guest < VMM < Base virtualized.
        let m = m();
        let dd = m.dual_direct(0.98, 0.01, 0.01);
        let gd = m.guest_direct(0.98);
        let vd = m.vmm_direct(0.98);
        assert!(dd < gd);
        assert!(gd < vd);
        assert!(vd < m.base_virtualized());
    }
}
