//! Fixed-width text tables for experiment output.

use core::fmt;

/// A simple right-aligned text table, used by the benchmark binaries to
/// print paper-style rows.
///
/// # Example
///
/// ```
/// use mv_metrics::Table;
///
/// let mut t = Table::new(&["workload", "4K", "4K+4K"]);
/// t.row(&["graph500", "28%", "113%"]);
/// let s = t.to_string();
/// assert!(s.contains("graph500"));
/// assert!(s.contains("113%"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows
            .push(cells.iter().map(|s| s.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "  {cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["longer-name", "123456"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }
}
