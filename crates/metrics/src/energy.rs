//! Translation dynamic-energy model (Section IX.B).
//!
//! The paper argues qualitatively that the new design reduces translation
//! dynamic energy: it adds a small segment-comparator cost on every L1
//! miss but removes walker/MMU-cache accesses, and the latter dominate.
//! This model quantifies the argument with relative per-event energies
//! that follow SRAM-size scaling: a 512-entry L2 TLB lookup costs more
//! than a 3-register comparator, and each walker memory reference costs a
//! cache/DRAM access.

use mv_core::MmuCounters;

/// Relative per-event energy weights (L1 TLB access normalized out, since
/// every mode performs it identically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyWeights {
    /// One L2 TLB lookup (every L1 miss probes it).
    pub l2_lookup: f64,
    /// One segment base-bound comparison.
    pub segment_check: f64,
    /// One page-walk memory reference.
    pub walk_ref: f64,
}

impl Default for EnergyWeights {
    fn default() -> Self {
        EnergyWeights {
            l2_lookup: 4.0,
            segment_check: 0.2,
            walk_ref: 10.0,
        }
    }
}

/// Relative translation dynamic energy for a counter set.
///
/// # Example
///
/// ```
/// use mv_core::MmuCounters;
/// use mv_metrics::{translation_energy, EnergyWeights};
///
/// let mut walky = MmuCounters::default();
/// walky.l1_misses = 100;
/// walky.nested_walk_refs = 2000; // 2D walks
/// let mut direct = MmuCounters::default();
/// direct.l1_misses = 100;
/// direct.bound_checks = 100; // segments instead
/// let w = EnergyWeights::default();
/// assert!(translation_energy(&direct, &w) < translation_energy(&walky, &w) / 10.0);
/// ```
pub fn translation_energy(c: &MmuCounters, w: &EnergyWeights) -> f64 {
    c.l1_misses as f64 * w.l2_lookup
        + c.bound_checks as f64 * w.segment_check
        + c.walk_refs() as f64 * w.walk_ref
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(misses: u64, checks: u64, refs: u64) -> MmuCounters {
        MmuCounters {
            l1_misses: misses,
            bound_checks: checks,
            guest_walk_refs: refs,
            ..MmuCounters::default()
        }
    }

    #[test]
    fn walker_references_dominate() {
        let w = EnergyWeights::default();
        // A 2D walk's ~12 references cost far more than Dual Direct's one
        // comparator check — the Section IX.B argument.
        let walk = translation_energy(&counters(1, 0, 12), &w);
        let seg = translation_energy(&counters(1, 1, 0), &w);
        assert!(walk > 20.0 * seg);
    }

    #[test]
    fn energy_is_linear_in_events() {
        let w = EnergyWeights::default();
        let one = translation_energy(&counters(1, 1, 1), &w);
        let ten = translation_energy(&counters(10, 10, 10), &w);
        assert!((ten - 10.0 * one).abs() < 1e-9);
        assert_eq!(translation_energy(&MmuCounters::default(), &w), 0.0);
    }
}
