//! Statistics for experiment reporting.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
///
/// Panics in debug builds if any value is negative.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x >= 0.0));
    let log_sum: f64 = xs.iter().map(|&x| (x.max(1e-300)).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 95% confidence interval of the mean, using Student's
/// t distribution (the paper's Figure 13 plots 95% CIs over 30 trials).
pub fn confidence95(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let t = t_value_95(xs.len() - 1);
    t * stddev(xs) / (xs.len() as f64).sqrt()
}

/// Two-sided 95% t critical value for `df` degrees of freedom.
fn t_value_95(df: usize) -> f64 {
    // Table for small df; converges to the normal 1.96 beyond 30.
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Mean ± 95% CI summary of a set of trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Number of trials.
    pub n: usize,
}

impl Summary {
    /// Summarizes a set of trials.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            mean: mean(xs),
            ci95: confidence95(xs),
            n: xs.len(),
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.ci95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let few: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let many: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        assert!(confidence95(&many) < confidence95(&few));
        assert_eq!(confidence95(&[1.0]), 0.0);
    }

    #[test]
    fn t_values_bracket_the_normal() {
        assert!(t_value_95(29) > 1.96);
        assert_eq!(t_value_95(100), 1.96);
    }

    #[test]
    fn summary_formats() {
        let s = Summary::of(&[1.0, 1.0, 1.0]);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 3);
        assert_eq!(s.to_string(), "1.0000 ± 0.0000");
    }
}
