//! Counters, linear performance models, statistics, and report tables.
//!
//! Section VII of the paper predicts each proposed mode's performance with
//! linear models over measured quantities (Table IV): native and
//! virtualized cycles-per-miss (`C_n`, `C_v`), native miss counts (`M_n`),
//! and the fractions of misses covered by each segment (`F_DS`, `F_VD`,
//! `F_GD`, `F_DD`). This crate implements those models, the
//! execution-time-overhead metric of Section VIII
//! ((T_E − T_2Mideal) / T_2Mideal), and the statistics used in Figure 13
//! (means with 95% confidence intervals over 30 random trials).
//!
//! # Example
//!
//! ```
//! use mv_metrics::LinearModel;
//!
//! let m = LinearModel { c_n: 40.0, c_v: 100.0, m_n: 1_000_000 };
//! // A VMM segment covering 99% of misses gets walk time close to native.
//! let cycles = m.vmm_direct(0.99);
//! assert!(cycles < 1.2 * m.c_n * m.m_n as f64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod model;
mod stats;
mod table;

pub use energy::{translation_energy, EnergyWeights};
pub use model::{LinearModel, DELTA_GD, DELTA_VD};
pub use stats::{confidence95, geomean, mean, stddev, Summary};
pub use table::Table;

/// The paper's execution-time overhead metric: extra time relative to the
/// ideal (translation-free) execution, as a fraction.
///
/// `ideal_cycles` plays the role of T_2Mideal (execution time minus page
/// walks); `translation_cycles` is the page-walk time added back.
///
/// # Example
///
/// ```
/// use mv_metrics::overhead;
///
/// assert_eq!(overhead(50.0, 100.0), 0.5); // 50% overhead
/// assert_eq!(overhead(0.0, 100.0), 0.0);
/// ```
pub fn overhead(translation_cycles: f64, ideal_cycles: f64) -> f64 {
    if ideal_cycles <= 0.0 {
        0.0
    } else {
        translation_cycles / ideal_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_handles_degenerate_ideal() {
        assert_eq!(overhead(100.0, 0.0), 0.0);
    }
}
