//! `mv-trace` — inspect, validate, and synthesize access traces.
//!
//! ```text
//! mv-trace info <trace.mvtr>              # header + validated summary
//! mv-trace dump <trace.mvtr> [--limit N]  # one record per line
//! mv-trace synth-gc <out.mvtr> [--footprint B] [--records N] [--seed S]
//!          [--locality F]
//! mv-trace synth-serving <out.mvtr> [--footprint B] [--records N] [--seed S]
//!          [--zipf S] [--write-fraction F] [--period N]
//! ```
//!
//! `info` fully validates the trace (every chunk, record, and the
//! trailer), so a zero exit status doubles as a format check.

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use mv_trace::{GcChaseParams, ReplaySource, ServingParams};

const USAGE: &str = "usage: mv-trace <info|dump|synth-gc|synth-serving> <file> \
                     [--limit N] [--footprint B] [--records N] [--seed S] \
                     [--locality F] [--zipf S] [--write-fraction F] [--period N]";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mv-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Opts {
    limit: u64,
    footprint: u64,
    records: u64,
    seed: u64,
    locality: f64,
    zipf: f64,
    write_fraction: f64,
    period: Option<u64>,
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut cmd = None;
    let mut file = None;
    let mut opts = Opts {
        limit: u64::MAX,
        footprint: 64 << 20,
        records: 1_000_000,
        seed: 42,
        locality: 0.7,
        zipf: 0.99,
        write_fraction: 0.1,
        period: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--limit" => opts.limit = num_arg(&mut it, "--limit")?,
            "--footprint" => opts.footprint = size_arg(&mut it, "--footprint")?,
            "--records" => opts.records = num_arg(&mut it, "--records")?,
            "--seed" => opts.seed = num_arg(&mut it, "--seed")?,
            "--locality" => opts.locality = float_arg(&mut it, "--locality")?,
            "--zipf" => opts.zipf = float_arg(&mut it, "--zipf")?,
            "--write-fraction" => opts.write_fraction = float_arg(&mut it, "--write-fraction")?,
            "--period" => opts.period = Some(num_arg(&mut it, "--period")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg}\n{USAGE}")),
            _ if cmd.is_none() => cmd = Some(arg),
            _ if file.is_none() => file = Some(arg),
            _ => return Err(format!("unexpected argument {arg}\n{USAGE}")),
        }
    }
    let (Some(cmd), Some(file)) = (cmd, file) else {
        return Err(USAGE.to_string());
    };
    match cmd.as_str() {
        "info" => info(&file),
        "dump" => dump(&file, opts.limit),
        "synth-gc" => synth_gc(&file, &opts),
        "synth-serving" => synth_serving(&file, &opts),
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}

fn info(path: &str) -> Result<ExitCode, String> {
    let src = ReplaySource::path(path);
    let header = src.header().map_err(|e| format!("{path}: {e}"))?;
    let stats = src.stats().map_err(|e| format!("{path}: {e}"))?;
    println!("trace:     {path}");
    println!("workload:  {}", header.name);
    println!("footprint: {} bytes", header.footprint);
    println!("cycles/access: {}", header.cycles_per_access);
    println!("churn/M:   {}", header.churn_per_million);
    println!("dup frac:  {}", header.duplicate_fraction);
    println!("seed:      {}", header.seed);
    println!(
        "suggested window: warmup {} + accesses {}",
        header.warmup, header.accesses
    );
    println!(
        "records:   {} ({} writes) in {} chunks, max offset {:#x}",
        stats.records, stats.writes, stats.chunks, stats.max_offset
    );
    println!("valid:     ok");
    Ok(ExitCode::SUCCESS)
}

fn dump(path: &str, limit: u64) -> Result<ExitCode, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reader = mv_trace::TraceReader::new(bytes.as_slice()).map_err(|e| format!("{path}: {e}"))?;
    let mut n = 0u64;
    while n < limit {
        match reader.next_record().map_err(|e| format!("{path}: {e}"))? {
            Some(rec) => {
                println!("{} {:#x}", if rec.write { "W" } else { "R" }, rec.offset);
                n += 1;
            }
            None => break,
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn synth_gc(path: &str, opts: &Opts) -> Result<ExitCode, String> {
    let params = GcChaseParams {
        footprint: opts.footprint,
        records: opts.records,
        seed: opts.seed,
        locality: opts.locality,
    };
    let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let n = mv_trace::write_gc_chase(BufWriter::new(file), &params)
        .map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {n} gc_chase records to {path}");
    Ok(ExitCode::SUCCESS)
}

fn synth_serving(path: &str, opts: &Opts) -> Result<ExitCode, String> {
    let mut params = ServingParams::new(opts.footprint, opts.records, opts.seed);
    params.zipf_exponent = opts.zipf;
    params.write_fraction = opts.write_fraction;
    if let Some(p) = opts.period {
        params.diurnal_period = p;
    }
    let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let n = mv_trace::write_serving(BufWriter::new(file), &params)
        .map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {n} serving records to {path}");
    Ok(ExitCode::SUCCESS)
}

fn num_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: not a number: {raw}"))
}

/// Parses a byte size with an optional `K`/`M`/`G` suffix (the same
/// convention as the `run` binary's `--footprint`).
fn size_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    let (digits, mult) = match raw.chars().last() {
        Some('k') | Some('K') => (&raw[..raw.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&raw[..raw.len() - 1], 1 << 20),
        Some('g') | Some('G') => (&raw[..raw.len() - 1], 1 << 30),
        _ => (raw.as_str(), 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("{flag}: not a size: {raw}"))
}

fn float_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<f64, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: not a number: {raw}"))
}
