//! Reading side: the streaming [`TraceReader`] and the full-file
//! validation [`scan`].
//!
//! The reader holds exactly one chunk payload in memory (reused across
//! chunks) and decodes records from it in place — no per-record
//! allocation, no whole-file buffering — so replay memory is flat in the
//! trace size.

use std::io::Read;

use crate::format::{
    get_varint, read_exact, unzigzag, TraceError, TraceHeader, TraceRecord, MAX_CHUNK_PAYLOAD,
};

/// Streaming decoder over any byte source.
///
/// Construction parses the header; [`TraceReader::next_record`] then
/// yields records until the terminator, validating the chunk framing and
/// the trailer as it goes. Every malformed input is a typed
/// [`TraceError`] — the reader never panics on bad bytes.
#[derive(Debug)]
pub struct TraceReader<R> {
    src: R,
    header: TraceHeader,
    /// Current chunk payload; reused between chunks.
    buf: Vec<u8>,
    /// Decode position within `buf`.
    pos: usize,
    /// Records remaining in the current chunk.
    chunk_left: u32,
    prev_offset: u64,
    prev_delta: Option<i64>,
    records_read: u64,
    chunks_read: u64,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, parsing and validating its header.
    ///
    /// # Errors
    ///
    /// Header-level [`TraceError`] variants (bad magic, unsupported
    /// version/flags, truncation, invalid fields).
    pub fn new(mut src: R) -> Result<TraceReader<R>, TraceError> {
        let header = TraceHeader::decode(&mut src)?;
        Ok(TraceReader {
            src,
            header,
            buf: Vec::new(),
            pos: 0,
            chunk_left: 0,
            prev_offset: 0,
            prev_delta: None,
            records_read: 0,
            chunks_read: 0,
            finished: false,
        })
    }

    /// The trace header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Data chunks consumed so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Decodes the next record, or `None` once the terminator and trailer
    /// have been consumed and verified.
    ///
    /// # Errors
    ///
    /// Any framing or record-level [`TraceError`]; after an error the
    /// reader should be discarded.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        if self.chunk_left == 0 && !self.load_chunk()? {
            return Ok(None);
        }
        let v = get_varint(&self.buf, &mut self.pos).map_err(|reason| TraceError::BadRecord {
            index: self.records_read,
            reason,
        })?;
        let write = v & 1 != 0;
        let delta = if v & 0b10 != 0 {
            // Stride repeat: the payload bits must be zero and a previous
            // record must exist to repeat from.
            if v >> 2 != 0 {
                return Err(TraceError::BadRecord {
                    index: self.records_read,
                    reason: "stride repeat carries a nonzero delta",
                });
            }
            self.prev_delta.ok_or(TraceError::BadRecord {
                index: self.records_read,
                reason: "stride repeat without a previous record",
            })?
        } else {
            unzigzag(v >> 2)
        };
        let offset = self.prev_offset.wrapping_add(delta as u64);
        if offset >= self.header.footprint {
            return Err(TraceError::BadRecord {
                index: self.records_read,
                reason: "offset beyond the arena footprint",
            });
        }
        self.prev_offset = offset;
        self.prev_delta = Some(delta);
        self.chunk_left -= 1;
        if self.chunk_left == 0 && self.pos != self.buf.len() {
            return Err(TraceError::BadChunk(
                "payload bytes left over after the last record",
            ));
        }
        self.records_read += 1;
        Ok(Some(TraceRecord { offset, write }))
    }

    /// Reads the next chunk frame. Returns `false` (and marks the reader
    /// finished) on the terminator, after verifying the trailer and that
    /// nothing follows it.
    fn load_chunk(&mut self) -> Result<bool, TraceError> {
        let mut frame = [0u8; 8];
        read_exact(&mut self.src, &mut frame, "chunk frame")?;
        let payload_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let count = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if payload_len == 0 && count == 0 {
            // Terminator: the trailer's total must match what we decoded,
            // and the trace must end right after it.
            let mut trailer = [0u8; 8];
            read_exact(&mut self.src, &mut trailer, "trailer")?;
            let expected = u64::from_le_bytes(trailer);
            if expected != self.records_read {
                return Err(TraceError::CountMismatch {
                    expected,
                    actual: self.records_read,
                });
            }
            let mut probe = [0u8; 1];
            match self.src.read(&mut probe) {
                Ok(0) => {}
                Ok(_) => return Err(TraceError::TrailingData),
                Err(e) => return Err(TraceError::Io(e)),
            }
            self.finished = true;
            return Ok(false);
        }
        if payload_len == 0 || count == 0 {
            return Err(TraceError::BadChunk(
                "chunk with records but no payload (or payload but no records)",
            ));
        }
        if payload_len > MAX_CHUNK_PAYLOAD {
            return Err(TraceError::BadChunk("chunk payload exceeds the 1 MiB limit"));
        }
        if (payload_len as u64) < u64::from(count) {
            return Err(TraceError::BadChunk(
                "chunk claims more records than payload bytes",
            ));
        }
        self.buf.resize(payload_len, 0);
        read_exact(&mut self.src, &mut self.buf, "chunk payload")?;
        self.pos = 0;
        self.chunk_left = count;
        self.chunks_read += 1;
        Ok(true)
    }
}

/// Summary of a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records framed in the trace.
    pub records: u64,
    /// Of which writes.
    pub writes: u64,
    /// Data chunks.
    pub chunks: u64,
    /// Highest offset referenced (0 for an empty trace).
    pub max_offset: u64,
}

/// Fully validates a trace — header, every chunk frame, every record,
/// terminator, trailer — and summarizes it. This is the scan replay runs
/// before touching a machine, so malformed traces fail up front with a
/// typed error instead of mid-simulation.
///
/// # Errors
///
/// Any [`TraceError`] the stream exhibits.
pub fn scan<R: Read>(src: R) -> Result<TraceStats, TraceError> {
    let mut reader = TraceReader::new(src)?;
    let mut stats = TraceStats {
        records: 0,
        writes: 0,
        chunks: 0,
        max_offset: 0,
    };
    while let Some(rec) = reader.next_record()? {
        stats.records += 1;
        stats.writes += u64::from(rec.write);
        stats.max_offset = stats.max_offset.max(rec.offset);
    }
    stats.chunks = reader.chunks_read();
    Ok(stats)
}

/// Decodes a whole in-memory trace into its header and records —
/// convenience for tests and the `mv-trace dump` CLI, not the replay
/// path (which streams).
///
/// # Errors
///
/// Any [`TraceError`] the bytes exhibit.
pub fn decode_all(bytes: &[u8]) -> Result<(TraceHeader, Vec<TraceRecord>), TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut records = Vec::new();
    while let Some(rec) = reader.next_record()? {
        records.push(rec);
    }
    let header = reader.header().clone();
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    fn header() -> TraceHeader {
        TraceHeader {
            name: "gups".to_string(),
            footprint: 1 << 20,
            cycles_per_access: 104.0,
            churn_per_million: 0,
            duplicate_fraction: 0.005,
            seed: 7,
            warmup: 2,
            accesses: 6,
        }
    }

    fn sample_trace(records: &[(u64, bool)]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        for &(off, wr) in records {
            w.push(off, wr).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let records: Vec<(u64, bool)> = (0..10_000u64)
            .map(|i| {
                // A deliberately nasty mix: strides, jumps backwards,
                // repeats, alternating writes.
                let off = match i % 4 {
                    0 => i * 64 % (1 << 20),
                    1 => (1 << 20) - 8 - (i % 1000) * 8,
                    2 => (i * 4096 + 16) % (1 << 20),
                    _ => (i * 4096 + 16) % (1 << 20), // repeat of the stride
                };
                (off, i % 3 == 0)
            })
            .collect();
        let bytes = sample_trace(&records);
        let (h, decoded) = decode_all(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(decoded.len(), records.len());
        for (rec, &(off, wr)) in decoded.iter().zip(&records) {
            assert_eq!((rec.offset, rec.write), (off, wr));
        }
        let stats = scan(bytes.as_slice()).unwrap();
        assert_eq!(stats.records, 10_000);
        assert!(stats.chunks >= 2, "10k records span multiple chunks");
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let bytes = sample_trace(&[(4096, false), (8192, false), (8184, true)]);
        for cut in 0..bytes.len() {
            match scan(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("scan of {cut}/{} bytes unexpectedly succeeded", bytes.len()),
            }
        }
        assert!(scan(bytes.as_slice()).is_ok());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_trace(&[(64, false)]);
        bytes.push(0xaa);
        assert!(matches!(
            scan(bytes.as_slice()),
            Err(TraceError::TrailingData)
        ));
    }

    #[test]
    fn corrupted_trailer_count_is_rejected() {
        let mut bytes = sample_trace(&[(64, false), (128, true)]);
        let n = bytes.len();
        bytes[n - 8] = 99;
        assert!(matches!(
            scan(bytes.as_slice()),
            Err(TraceError::CountMismatch {
                expected: 99,
                actual: 2
            })
        ));
    }

    #[test]
    fn oversized_chunk_length_is_rejected_without_allocating() {
        let header_bytes = header().encode().unwrap();
        let mut bytes = header_bytes;
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd payload_len
        bytes.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            scan(bytes.as_slice()),
            Err(TraceError::BadChunk(_))
        ));
    }

    #[test]
    fn inconsistent_chunk_frames_are_rejected() {
        let header_bytes = header().encode().unwrap();

        // Records claimed, no payload.
        let mut bytes = header_bytes.clone();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            scan(bytes.as_slice()),
            Err(TraceError::BadChunk(_))
        ));

        // More records than payload bytes can possibly hold.
        let mut bytes = header_bytes;
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(0x00);
        assert!(matches!(
            scan(bytes.as_slice()),
            Err(TraceError::BadChunk(_))
        ));
    }

    #[test]
    fn offsets_beyond_the_footprint_are_rejected() {
        // Handcraft a record jumping past the arena: header says 1 MiB,
        // delta encodes 2 MiB.
        let mut bytes = header().encode().unwrap();
        let mut payload = Vec::new();
        crate::format::put_varint(&mut payload, crate::format::zigzag(2 << 20) << 2);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = scan(bytes.as_slice()).unwrap_err();
        assert!(
            matches!(err, TraceError::BadRecord { index: 0, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn stride_repeat_as_first_record_is_rejected() {
        let mut bytes = header().encode().unwrap();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0b10); // repeat flag, no previous record
        let err = scan(bytes.as_slice()).unwrap_err();
        assert!(
            matches!(err, TraceError::BadRecord { index: 0, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn leftover_payload_bytes_are_rejected() {
        let mut bytes = header().encode().unwrap();
        bytes.extend_from_slice(&2u32.to_le_bytes()); // 2 payload bytes
        bytes.extend_from_slice(&1u32.to_le_bytes()); // but only 1 record
        bytes.extend_from_slice(&[0x00, 0x00]);
        assert!(matches!(
            scan(bytes.as_slice()),
            Err(TraceError::BadChunk(_))
        ));
    }

    #[test]
    fn random_corruption_never_panics() {
        // Fuzz-ish: flip each byte of a valid trace through a few values;
        // every outcome must be Ok or a typed error, never a panic.
        let good = sample_trace(&[(0, false), (4096, true), (8192, false), (8192, true)]);
        for i in 0..good.len() {
            for x in [0x00u8, 0x01, 0x7f, 0x80, 0xff] {
                let mut bad = good.clone();
                bad[i] ^= x;
                let _ = scan(bad.as_slice());
            }
        }
    }
}
