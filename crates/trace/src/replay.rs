//! Replay side: a [`ReplaySource`] naming where the trace bytes live and
//! the [`TraceWorkload`] that plays them back through the simulator's
//! generic driver loop as if they came from a live generator.

use std::fs::File;
use std::io::{BufReader, Cursor, Read};
use std::path::PathBuf;
use std::sync::Arc;

use mv_workloads::{Access, Workload};

use crate::format::{TraceError, TraceHeader};
use crate::reader::{scan, TraceReader, TraceStats};

/// Where a trace's bytes come from. Cheap to clone (shared by reference),
/// so one source can fan out to every cell of a parallel grid.
#[derive(Debug, Clone)]
pub enum ReplaySource {
    /// A trace file on disk, streamed through a buffered reader.
    Path(Arc<PathBuf>),
    /// An in-memory trace (tests, just-recorded runs).
    Bytes(Arc<[u8]>),
}

/// The byte source a replay streams from.
#[derive(Debug)]
enum SourceRead {
    File(BufReader<File>),
    Bytes(Cursor<Arc<[u8]>>),
}

impl Read for SourceRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SourceRead::File(f) => f.read(buf),
            SourceRead::Bytes(b) => b.read(buf),
        }
    }
}

impl ReplaySource {
    /// A trace file on disk.
    pub fn path(p: impl Into<PathBuf>) -> ReplaySource {
        ReplaySource::Path(Arc::new(p.into()))
    }

    /// An in-memory trace.
    pub fn bytes(b: impl Into<Arc<[u8]>>) -> ReplaySource {
        ReplaySource::Bytes(b.into())
    }

    /// Human-readable name of the source (the path, or `<memory>`).
    pub fn describe(&self) -> String {
        match self {
            ReplaySource::Path(p) => p.display().to_string(),
            ReplaySource::Bytes(_) => "<memory>".to_string(),
        }
    }

    fn open(&self) -> Result<TraceReader<SourceRead>, TraceError> {
        let src = match self {
            ReplaySource::Path(p) => SourceRead::File(BufReader::new(File::open(p.as_path())?)),
            ReplaySource::Bytes(b) => SourceRead::Bytes(Cursor::new(Arc::clone(b))),
        };
        TraceReader::new(src)
    }

    /// Parses just the trace header.
    ///
    /// # Errors
    ///
    /// I/O or header-level [`TraceError`] variants.
    pub fn header(&self) -> Result<TraceHeader, TraceError> {
        Ok(self.open()?.header().clone())
    }

    /// Fully validates the trace (see [`scan`]) and summarizes it.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the trace exhibits.
    pub fn stats(&self) -> Result<TraceStats, TraceError> {
        let src = match self {
            ReplaySource::Path(p) => SourceRead::File(BufReader::new(File::open(p.as_path())?)),
            ReplaySource::Bytes(b) => SourceRead::Bytes(Cursor::new(Arc::clone(b))),
        };
        scan(src)
    }

    /// Opens the trace as a [`Workload`], validating the *entire* trace
    /// first — header, framing, every record, trailer — so every way the
    /// bytes can be malformed surfaces here as a typed error, before any
    /// machine is built.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the trace exhibits, including
    /// [`TraceError::Empty`] for a well-formed trace with no records.
    pub fn open_workload(&self) -> Result<TraceWorkload, TraceError> {
        let stats = self.stats()?;
        if stats.records == 0 {
            return Err(TraceError::Empty);
        }
        let reader = self.open()?;
        let name = reader.header().static_name();
        Ok(TraceWorkload {
            source: self.clone(),
            header: reader.header().clone(),
            reader,
            name,
            total_records: stats.records,
            loops: 0,
        })
    }
}

/// A [`Workload`] that replays a recorded access stream.
///
/// The replay metadata (footprint, ideal cycles per access, churn rate,
/// duplicate fraction) comes from the trace header, so a replayed run
/// reproduces the live-generated run's churn schedule and overhead
/// arithmetic exactly. If the driver asks for more accesses than the
/// trace holds, the stream loops back to the first record (deterministic
/// for any consumer, and documented in `docs/TRACE_FORMAT.md`).
///
/// # Panics
///
/// [`Workload::next_access`] cannot return an error, and the whole trace
/// was validated by [`ReplaySource::open_workload`] before the run
/// started — so a decode failure mid-replay means the underlying file
/// changed or vanished *during* the run. That environmental race is
/// reported as a panic (caught by the grid runner's per-cell isolation),
/// never as silently corrupted data. In-memory sources cannot hit it.
#[derive(Debug)]
pub struct TraceWorkload {
    source: ReplaySource,
    header: TraceHeader,
    reader: TraceReader<SourceRead>,
    name: &'static str,
    total_records: u64,
    loops: u64,
}

impl TraceWorkload {
    /// The trace header driving this replay.
    pub fn trace_header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records in one pass of the trace.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// How many times the stream has wrapped back to the first record.
    pub fn loops(&self) -> u64 {
        self.loops
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn footprint(&self) -> u64 {
        self.header.footprint
    }

    fn next_access(&mut self) -> Access {
        // Two attempts: the current pass, and — if it just ended — one
        // rewind. The trace was validated non-empty at open, so a fresh
        // pass always yields a record unless the source changed under us.
        for _ in 0..2 {
            match self.reader.next_record() {
                Ok(Some(rec)) => return rec.into(),
                Ok(None) => {
                    self.loops += 1;
                    match self.source.open() {
                        Ok(r) => self.reader = r,
                        Err(e) => panic!(
                            "trace {} became unreadable mid-replay: {e}",
                            self.source.describe()
                        ),
                    }
                }
                Err(e) => panic!(
                    "trace {} became invalid mid-replay (it validated at open): {e}",
                    self.source.describe()
                ),
            }
        }
        panic!(
            "trace {} became empty mid-replay (it validated non-empty at open)",
            self.source.describe()
        );
    }

    fn cycles_per_access(&self) -> f64 {
        self.header.cycles_per_access
    }

    fn churn_per_million(&self) -> u64 {
        self.header.churn_per_million
    }

    fn duplicate_fraction(&self) -> f64 {
        self.header.duplicate_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    fn trace_bytes(name: &str, records: &[(u64, bool)]) -> Vec<u8> {
        let header = TraceHeader {
            name: name.to_string(),
            footprint: 1 << 20,
            cycles_per_access: 104.0,
            churn_per_million: 45_000,
            duplicate_fraction: 0.02,
            seed: 3,
            warmup: 1,
            accesses: records.len() as u64 - 1,
        };
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        for &(off, wr) in records {
            w.push(off, wr).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn replay_yields_the_recorded_stream_and_loops() {
        let recs = [(64u64, false), (4096, true), (128, false)];
        let bytes = trace_bytes("gups", &recs);
        let src = ReplaySource::bytes(bytes);
        let mut w = src.open_workload().unwrap();
        assert_eq!(w.name(), "gups");
        assert_eq!(w.footprint(), 1 << 20);
        assert_eq!(w.churn_per_million(), 45_000);
        assert_eq!(w.total_records(), 3);
        // Two full passes: the stream wraps deterministically.
        for pass in 0..2 {
            for &(off, wr) in &recs {
                let a = w.next_access();
                assert_eq!((a.offset, a.write), (off, wr), "pass {pass}");
            }
        }
        assert_eq!(w.loops(), 1);
    }

    #[test]
    fn unknown_names_replay_under_the_generic_label() {
        let bytes = trace_bytes("my-custom-app", &[(0, false)]);
        let w = ReplaySource::bytes(bytes).open_workload().unwrap();
        assert_eq!(w.name(), "trace");
        assert_eq!(w.trace_header().name, "my-custom-app");
    }

    #[test]
    fn empty_trace_is_rejected_at_open() {
        let header = TraceHeader {
            name: "gups".to_string(),
            footprint: 1 << 20,
            cycles_per_access: 104.0,
            churn_per_million: 0,
            duplicate_fraction: 0.0,
            seed: 0,
            warmup: 0,
            accesses: 0,
        };
        let bytes = TraceWriter::new(Vec::new(), &header)
            .unwrap()
            .finish()
            .unwrap();
        assert!(matches!(
            ReplaySource::bytes(bytes).open_workload(),
            Err(TraceError::Empty)
        ));
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let src = ReplaySource::path("/nonexistent/trace.mvtr");
        assert!(matches!(src.open_workload(), Err(TraceError::Io(_))));
        assert!(matches!(src.header(), Err(TraceError::Io(_))));
    }
}
