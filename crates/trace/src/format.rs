//! On-disk format primitives: header layout, record encoding, and the
//! typed error vocabulary.
//!
//! The authoritative byte-level specification lives in
//! `docs/TRACE_FORMAT.md`; this module is its implementation. Every value
//! is little-endian. A trace is
//!
//! ```text
//! header · chunk* · terminator · trailer
//! ```
//!
//! where each data chunk frames a batch of varint-delta-encoded access
//! records, so both the writer and the reader hold at most one chunk in
//! memory at a time.

use core::fmt;
use std::io::Read;

/// The four magic bytes every trace starts with: `"MVTR"`.
pub const MAGIC: [u8; 4] = *b"MVTR";

/// The format version this crate writes (and the only one it reads).
pub const VERSION: u16 = 1;

/// Longest workload name the writer accepts. The on-disk field is a
/// single length byte, so readers tolerate up to 255; writers stay well
/// below it.
pub const MAX_NAME_LEN: usize = 64;

/// Upper bound on a single chunk's payload that readers enforce, so a
/// corrupt length field cannot force a huge allocation.
pub const MAX_CHUNK_PAYLOAD: usize = 1 << 20;

/// Fixed-size portion of the header, before the variable-length name.
pub(crate) const HEADER_FIXED_LEN: usize = 65;

/// Everything that can go wrong reading or writing a trace.
///
/// Malformed input is always reported through one of these variants —
/// never a panic — so a truncated download or a corrupted fixture
/// degrades into an error message, not an abort.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The input does not start with [`MAGIC`] (not a trace at all).
    BadMagic([u8; 4]),
    /// The trace was written by a newer (or unknown) format version.
    UnsupportedVersion(u16),
    /// The header carries flag bits this version does not define.
    UnsupportedFlags(u16),
    /// A header field is out of range or inconsistent.
    BadHeader(&'static str),
    /// The input ended in the middle of the named structure.
    Truncated(&'static str),
    /// A chunk frame violates the format (oversized, inconsistent
    /// length/count, trailing bytes inside the payload).
    BadChunk(&'static str),
    /// Record `index` (0-based across the whole trace) failed to decode.
    BadRecord {
        /// 0-based index of the offending record.
        index: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The trailer's total disagrees with the records actually framed.
    CountMismatch {
        /// Total the trailer claims.
        expected: u64,
        /// Records the chunks actually held.
        actual: u64,
    },
    /// Bytes follow the trailer — the trace has a well-formed end, so
    /// anything after it is garbage (or a concatenation mistake).
    TrailingData,
    /// The trace holds zero records; replay has nothing to drive.
    Empty,
    /// A replayed trace's arena does not match the run's footprint, so
    /// its offsets would address a differently-sized arena.
    FootprintMismatch {
        /// Footprint recorded in the trace header.
        trace: u64,
        /// Footprint the run was configured with.
        run: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::UnsupportedFlags(x) => write!(f, "unsupported trace flags {x:#06x}"),
            TraceError::BadHeader(why) => write!(f, "bad trace header: {why}"),
            TraceError::Truncated(what) => write!(f, "trace truncated while reading {what}"),
            TraceError::BadChunk(why) => write!(f, "bad trace chunk: {why}"),
            TraceError::BadRecord { index, reason } => {
                write!(f, "bad trace record {index}: {reason}")
            }
            TraceError::CountMismatch { expected, actual } => write!(
                f,
                "trace trailer claims {expected} records but chunks held {actual}"
            ),
            TraceError::TrailingData => write!(f, "trailing bytes after the trace terminator"),
            TraceError::Empty => write!(f, "trace holds no records"),
            TraceError::FootprintMismatch { trace, run } => write!(
                f,
                "trace footprint {trace} does not match run footprint {run}"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// One decoded access record: a byte offset within the workload arena
/// plus whether the reference writes. The wire form is a single varint
/// delta against the previous record (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Byte offset within the arena, always `< header.footprint`.
    pub offset: u64,
    /// Whether the reference writes.
    pub write: bool,
}

impl From<TraceRecord> for mv_workloads::Access {
    fn from(r: TraceRecord) -> Self {
        mv_workloads::Access {
            offset: r.offset,
            write: r.write,
        }
    }
}

/// The trace header: identity and replay metadata for the access stream.
///
/// `footprint` sizes the arena the offsets address. The remaining fields
/// carry the [`mv_workloads::Workload`] metadata a replayed run needs to
/// reproduce a live-generated one exactly: the ideal cycles per access
/// (stored as raw f64 bits, so replay is bit-exact), the churn schedule,
/// and the duplicate fraction. `warmup`/`accesses` are the *suggested*
/// replay window — the records framed in the chunks are authoritative,
/// and replay loops over them if a run asks for more.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Workload name (UTF-8, 1..=[`MAX_NAME_LEN`] bytes when writing).
    pub name: String,
    /// Arena size in bytes; every record offset is strictly below it.
    pub footprint: u64,
    /// Ideal (translation-free) cycles per access of the traced workload.
    pub cycles_per_access: f64,
    /// Map/unmap churn events per million accesses.
    pub churn_per_million: u64,
    /// Fraction of pages duplicating some other page (page sharing).
    pub duplicate_fraction: f64,
    /// Seed the trace was recorded or synthesized with (provenance).
    pub seed: u64,
    /// Suggested warmup accesses for replay.
    pub warmup: u64,
    /// Suggested measured accesses for replay.
    pub accesses: u64,
}

impl TraceHeader {
    /// Builds the header a recording of `kind` should carry, copying the
    /// generator's replay metadata (cycles per access, churn, duplicate
    /// fraction) so a later replay reproduces the live run.
    pub fn for_workload(
        kind: mv_workloads::WorkloadKind,
        footprint: u64,
        seed: u64,
        warmup: u64,
        accesses: u64,
    ) -> TraceHeader {
        let w = kind.build(footprint, seed);
        TraceHeader {
            name: w.name().to_string(),
            footprint,
            cycles_per_access: w.cycles_per_access(),
            churn_per_million: w.churn_per_million(),
            duplicate_fraction: w.duplicate_fraction(),
            seed,
            warmup,
            accesses,
        }
    }

    /// The [`mv_workloads::WorkloadKind`] this trace was recorded from,
    /// if the name matches one of the ten paper workloads.
    pub fn workload_kind(&self) -> Option<mv_workloads::WorkloadKind> {
        mv_workloads::WorkloadKind::ALL
            .into_iter()
            .find(|k| k.label() == self.name)
    }

    /// The header name as a `&'static str` for [`mv_workloads::Workload::name`]:
    /// the matching paper-workload label, a known synthesizer name, or
    /// the generic `"trace"`.
    pub fn static_name(&self) -> &'static str {
        if let Some(kind) = self.workload_kind() {
            return kind.label();
        }
        match self.name.as_str() {
            crate::synth::GC_CHASE_NAME => crate::synth::GC_CHASE_NAME,
            crate::synth::SERVING_NAME => crate::synth::SERVING_NAME,
            _ => "trace",
        }
    }

    /// Serializes the header to its on-disk bytes.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadHeader`] if the name is empty, longer than
    /// [`MAX_NAME_LEN`], or the footprint is zero.
    pub fn encode(&self) -> Result<Vec<u8>, TraceError> {
        if self.name.is_empty() {
            return Err(TraceError::BadHeader("empty workload name"));
        }
        if self.name.len() > MAX_NAME_LEN {
            return Err(TraceError::BadHeader("workload name longer than 64 bytes"));
        }
        if self.footprint == 0 {
            return Err(TraceError::BadHeader("zero footprint"));
        }
        let mut out = Vec::with_capacity(HEADER_FIXED_LEN + self.name.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.extend_from_slice(&self.footprint.to_le_bytes());
        out.extend_from_slice(&self.cycles_per_access.to_bits().to_le_bytes());
        out.extend_from_slice(&self.churn_per_million.to_le_bytes());
        out.extend_from_slice(&self.duplicate_fraction.to_bits().to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.warmup.to_le_bytes());
        out.extend_from_slice(&self.accesses.to_le_bytes());
        out.push(self.name.len() as u8);
        out.extend_from_slice(self.name.as_bytes());
        Ok(out)
    }

    /// Parses a header from the start of `src`.
    ///
    /// # Errors
    ///
    /// Any of the header-shaped [`TraceError`] variants: bad magic,
    /// unsupported version or flags, truncation, or invalid fields.
    pub fn decode<R: Read>(src: &mut R) -> Result<TraceHeader, TraceError> {
        let mut fixed = [0u8; HEADER_FIXED_LEN];
        read_exact(src, &mut fixed, "header")?;
        if fixed[0..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&fixed[0..4]);
            return Err(TraceError::BadMagic(m));
        }
        let version = u16::from_le_bytes([fixed[4], fixed[5]]);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes([fixed[6], fixed[7]]);
        if flags != 0 {
            return Err(TraceError::UnsupportedFlags(flags));
        }
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&fixed[i..i + 8]);
            u64::from_le_bytes(b)
        };
        let footprint = u64_at(8);
        if footprint == 0 {
            return Err(TraceError::BadHeader("zero footprint"));
        }
        let name_len = usize::from(fixed[64]);
        if name_len == 0 {
            return Err(TraceError::BadHeader("empty workload name"));
        }
        let mut name = vec![0u8; name_len];
        read_exact(src, &mut name, "header name")?;
        let name =
            String::from_utf8(name).map_err(|_| TraceError::BadHeader("name is not UTF-8"))?;
        Ok(TraceHeader {
            name,
            footprint,
            cycles_per_access: f64::from_bits(u64_at(16)),
            churn_per_million: u64_at(24),
            duplicate_fraction: f64::from_bits(u64_at(32)),
            seed: u64_at(40),
            warmup: u64_at(48),
            accesses: u64_at(56),
        })
    }
}

/// Reads exactly `buf.len()` bytes, mapping a clean EOF to
/// [`TraceError::Truncated`] naming `what`.
pub(crate) fn read_exact<R: Read>(
    src: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), TraceError> {
    match src.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(TraceError::Truncated(what)),
        Err(e) => Err(TraceError::Io(e)),
    }
}

/// Appends `v` to `buf` as an LEB128 varint (7 data bits per byte,
/// continuation in the high bit; at most 10 bytes for a u64).
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Decodes one LEB128 varint from `buf` at `*pos`, advancing `*pos`.
pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, &'static str> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return Err("varint runs past the chunk payload");
        };
        *pos += 1;
        if shift == 63 && b & 0x7f > 1 {
            return Err("varint overflows 64 bits");
        }
        if shift > 63 {
            return Err("varint longer than 10 bytes");
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag-encodes a signed delta into the unsigned varint domain, so
/// small negative strides stay one byte.
pub(crate) fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            name: "gups".to_string(),
            footprint: 1 << 20,
            cycles_per_access: 104.0,
            churn_per_million: 0,
            duplicate_fraction: 0.005,
            seed: 42,
            warmup: 100,
            accesses: 900,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        let bytes = h.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_FIXED_LEN + 4);
        let back = TraceHeader::decode(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn header_rejects_bad_inputs() {
        let mut h = header();
        h.name.clear();
        assert!(matches!(h.encode(), Err(TraceError::BadHeader(_))));
        let mut h = header();
        h.name = "x".repeat(MAX_NAME_LEN + 1);
        assert!(matches!(h.encode(), Err(TraceError::BadHeader(_))));
        let mut h = header();
        h.footprint = 0;
        assert!(matches!(h.encode(), Err(TraceError::BadHeader(_))));
    }

    #[test]
    fn header_decode_rejects_corruption() {
        let good = header().encode().unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            TraceHeader::decode(&mut bad.as_slice()),
            Err(TraceError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            TraceHeader::decode(&mut bad.as_slice()),
            Err(TraceError::UnsupportedVersion(99))
        ));

        let mut bad = good.clone();
        bad[6] = 0x01;
        assert!(matches!(
            TraceHeader::decode(&mut bad.as_slice()),
            Err(TraceError::UnsupportedFlags(1))
        ));

        // Non-UTF-8 name.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] = 0xff;
        assert!(matches!(
            TraceHeader::decode(&mut bad.as_slice()),
            Err(TraceError::BadHeader(_))
        ));

        // Every truncation point fails cleanly.
        for cut in 0..good.len() {
            let err = TraceHeader::decode(&mut &good[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceError::Truncated(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            (1 << 32) - 1,
            1 << 32,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: longer than any u64 varint.
        let long = [0x80u8; 11];
        let mut pos = 0;
        assert!(get_varint(&long, &mut pos).is_err());

        // 10 bytes whose last carries more than the 1 remaining bit.
        let mut over = vec![0x80u8; 9];
        over.push(0x02);
        let mut pos = 0;
        assert!(get_varint(&over, &mut pos).is_err());

        // Truncated mid-varint.
        let cut = [0x80u8, 0x80];
        let mut pos = 0;
        assert!(get_varint(&cut, &mut pos).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [0i64, 1, -1, 63, -64, 4096, -4096, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // Small magnitudes map to small codes (the compression property).
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-8), 15);
    }

    #[test]
    fn wrapping_delta_survives_any_offset_pair() {
        // The writer encodes offset deltas with wrapping arithmetic, so
        // even pathological u64 jumps round-trip.
        for (prev, next) in [(0u64, u64::MAX), (u64::MAX, 0), (5, 3), (3, 5)] {
            let delta = next.wrapping_sub(prev) as i64;
            assert_eq!(prev.wrapping_add(zigzag_round(delta) as u64), next);
        }
    }

    fn zigzag_round(d: i64) -> i64 {
        unzigzag(zigzag(d))
    }
}
