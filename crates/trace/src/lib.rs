//! mv-trace: a compact streaming binary format for memory-access traces,
//! plus everything needed to record, validate, synthesize, and replay
//! them through the simulator.
//!
//! A trace captures exactly what the driver loop consumes from a
//! [`mv_workloads::Workload`] — the ordered `(offset, read/write)` stream
//! plus the replay metadata (footprint, ideal cycles per access, churn
//! rate, duplicate fraction) — so replaying a recording reproduces the
//! live-generated run bit for bit. The on-disk form is little-endian:
//! a magic + versioned header, then varint-delta-encoded records framed
//! into chunks, so neither writer nor reader ever buffers a whole file.
//! `docs/TRACE_FORMAT.md` specifies every byte.
//!
//! The pieces:
//!
//! * [`TraceWriter`] / [`SharedTraceWriter`] / [`RecordingWorkload`] —
//!   record a stream (from any live generator, or synthesized).
//! * [`TraceReader`] / [`scan`] — stream records back out, with typed
//!   [`TraceError`]s for every way the bytes can be malformed.
//! * [`ReplaySource`] / [`TraceWorkload`] — drive any simulator machine
//!   from a trace, via the ordinary [`mv_workloads::Workload`] trait.
//! * [`write_gc_chase`] / [`write_serving`] — synthesize access-pattern
//!   families the live generators cannot express.
//!
//! # Example
//!
//! ```
//! use mv_trace::{decode_all, ReplaySource, TraceHeader, TraceWriter};
//! use mv_workloads::Workload;
//!
//! let header = TraceHeader {
//!     name: "gups".into(),
//!     footprint: 1 << 20,
//!     cycles_per_access: 104.0,
//!     churn_per_million: 0,
//!     duplicate_fraction: 0.005,
//!     seed: 42,
//!     warmup: 1,
//!     accesses: 1,
//! };
//! let mut w = TraceWriter::new(Vec::new(), &header)?;
//! w.push(4096, false)?;
//! w.push(8192, true)?;
//! let bytes = w.finish()?;
//!
//! let (h, records) = decode_all(&bytes)?;
//! assert_eq!(h, header);
//! assert_eq!(records.len(), 2);
//!
//! let mut replay = ReplaySource::bytes(bytes).open_workload()?;
//! assert_eq!(replay.next_access().offset, 4096);
//! # Ok::<(), mv_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod format;
mod reader;
mod replay;
mod synth;
mod writer;

pub use format::{TraceError, TraceHeader, TraceRecord, MAGIC, MAX_CHUNK_PAYLOAD, MAX_NAME_LEN, VERSION};
pub use reader::{decode_all, scan, TraceReader, TraceStats};
pub use replay::{ReplaySource, TraceWorkload};
pub use synth::{
    write_gc_chase, write_serving, GcChaseParams, ServingParams, GC_CHASE_NAME, SERVING_NAME,
};
pub use writer::{MemSink, RecordingWorkload, SharedTraceWriter, TraceWriter};
