//! Trace synthesizers: access-pattern families the live generators
//! cannot express, emitted straight into the on-disk format.
//!
//! Two shapes ship, both fully deterministic in their seed:
//!
//! * [`write_gc_chase`] — a GC-style transitive-closure pointer chase
//!   over a synthetic heap with tunable locality, modeled on tracing
//!   collectors walking heap dumps (mark-stack discipline: header read,
//!   mark write, then field reads that push unmarked children).
//! * [`write_serving`] — production-style key-value serving traffic:
//!   Zipfian key popularity over a hash-bucket + value-slab layout, a
//!   diurnal load envelope that trades request traffic against
//!   sequential maintenance sweeps, and a tunable SET fraction.

use std::io::Write;

use mv_types::rng::{split_seed, Rng, StdRng};

use crate::format::{TraceError, TraceHeader};
use crate::writer::TraceWriter;

/// Header name [`write_gc_chase`] stamps its traces with.
pub const GC_CHASE_NAME: &str = "gc_chase";

/// Header name [`write_serving`] stamps its traces with.
pub const SERVING_NAME: &str = "serving";

/// Synthetic heap object size for the GC chase (one cache-line-ish cell:
/// header word, mark word, fields).
const OBJ_SIZE: u64 = 64;

/// Parameters of the GC transitive-closure chase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcChaseParams {
    /// Heap (arena) size in bytes. At least 4 KiB.
    pub footprint: u64,
    /// Exact number of records to emit.
    pub records: u64,
    /// Seed; the trace is a pure function of the parameters.
    pub seed: u64,
    /// Probability in `[0, 1]` that an object's child lives near it (the
    /// tunable heap locality: 0 is a uniform pointer chase, 1 keeps the
    /// closure walking one neighborhood).
    pub locality: f64,
}

impl GcChaseParams {
    /// Defaults: moderately clustered heap (`locality = 0.7`).
    pub fn new(footprint: u64, records: u64, seed: u64) -> GcChaseParams {
        GcChaseParams {
            footprint,
            records,
            seed,
            locality: 0.7,
        }
    }
}

fn test_and_set(bits: &mut [u64], i: u64) -> bool {
    let w = (i / 64) as usize;
    let m = 1u64 << (i % 64);
    let was = bits[w] & m != 0;
    bits[w] |= m;
    was
}

/// Synthesizes a GC-style pointer-chase trace into `sink`, returning the
/// records written (exactly `params.records`).
///
/// Each object visit reads the object header, writes its mark word, then
/// reads up to three child headers; unmarked children are pushed on the
/// mark stack. When the closure drains (or the roots were all marked), a
/// new collection cycle starts with fresh roots and cleared marks, until
/// the record budget is spent.
///
/// # Errors
///
/// [`TraceError::BadHeader`] for out-of-range parameters; sink I/O errors.
pub fn write_gc_chase<W: Write>(sink: W, params: &GcChaseParams) -> Result<u64, TraceError> {
    if params.footprint < 64 * OBJ_SIZE {
        return Err(TraceError::BadHeader("gc_chase footprint below 4 KiB"));
    }
    if params.records == 0 {
        return Err(TraceError::BadHeader("gc_chase with zero records"));
    }
    if !(0.0..=1.0).contains(&params.locality) {
        return Err(TraceError::BadHeader("gc_chase locality outside [0, 1]"));
    }
    let objects = params.footprint / OBJ_SIZE;
    let warmup = params.records / 10;
    let header = TraceHeader {
        name: GC_CHASE_NAME.to_string(),
        footprint: params.footprint,
        // Pointer-chasing collectors spend real work per object touched;
        // modeled between gups (104) and memcached (233).
        cycles_per_access: 150.0,
        // Collection cycles free and re-fault heap pages.
        churn_per_million: 20_000,
        duplicate_fraction: 0.01,
        seed: params.seed,
        warmup,
        accesses: params.records - warmup,
    };
    let mut w = TraceWriter::new(sink, &header)?;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut marked = vec![0u64; objects.div_ceil(64) as usize];
    let mut stack: Vec<u64> = Vec::new();
    let roots = 16u64.min(objects);
    'budget: loop {
        // New collection cycle: clear marks, draw fresh roots.
        marked.iter_mut().for_each(|m| *m = 0);
        stack.clear();
        for _ in 0..roots {
            let r = rng.gen_range(0..objects);
            if !test_and_set(&mut marked, r) {
                stack.push(r);
            }
        }
        if stack.is_empty() {
            stack.push(0); // colliding roots: still make progress
        }
        while let Some(obj) = stack.pop() {
            // Header read, then the mark write.
            for (off, wr) in [(obj * OBJ_SIZE, false), (obj * OBJ_SIZE + 8, true)] {
                w.push(off, wr)?;
                if w.records_written() == params.records {
                    break 'budget;
                }
            }
            for _ in 0..rng.gen_range(0u32..4) {
                let child = if rng.gen_bool(params.locality) {
                    // Clustered: the child lives within ±64 objects.
                    let lo = obj.saturating_sub(64);
                    let hi = (obj + 65).min(objects);
                    rng.gen_range(lo..hi)
                } else {
                    rng.gen_range(0..objects)
                };
                // Examine the child's header (mark test).
                w.push(child * OBJ_SIZE, false)?;
                if w.records_written() == params.records {
                    break 'budget;
                }
                if !test_and_set(&mut marked, child) {
                    stack.push(child);
                }
            }
        }
    }
    w.finish()?;
    Ok(params.records)
}

/// Parameters of the serving-style trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingParams {
    /// Arena size in bytes. At least 32 KiB (hash buckets + value slabs).
    pub footprint: u64,
    /// Exact number of records to emit.
    pub records: u64,
    /// Seed; the trace is a pure function of the parameters.
    pub seed: u64,
    /// Zipf popularity exponent (`s`); 0.99 matches the classic
    /// memcached/YCSB skew, 0 degenerates to uniform keys.
    pub zipf_exponent: f64,
    /// Fraction of requests that are SETs (writes) in `[0, 1]`.
    pub write_fraction: f64,
    /// Records per simulated day: the load envelope runs one full
    /// diurnal cosine cycle over this many records.
    pub diurnal_period: u64,
}

impl ServingParams {
    /// Defaults: Zipf 0.99, 10% SETs, four diurnal cycles over the trace.
    pub fn new(footprint: u64, records: u64, seed: u64) -> ServingParams {
        ServingParams {
            footprint,
            records,
            seed,
            zipf_exponent: 0.99,
            write_fraction: 0.1,
            diurnal_period: (records / 4).max(1),
        }
    }
}

/// Synthesizes a serving-style trace into `sink`, returning the records
/// written (exactly `params.records`).
///
/// The arena is laid out as a hash-bucket region (first 1/16th) plus
/// value slabs (the rest, 1 KiB slots). A request reads the key's bucket
/// then bursts over its value slot in 256-byte strides — reads for a
/// GET, writes for a SET. Between requests, a diurnal load envelope
/// `0.5·(1 − cos(2πt))` decides whether the next record is request
/// traffic or one step of the sequential maintenance sweep (LRU crawler
/// / slab rebalancer) that dominates the quiet hours.
///
/// # Errors
///
/// [`TraceError::BadHeader`] for out-of-range parameters; sink I/O errors.
pub fn write_serving<W: Write>(sink: W, params: &ServingParams) -> Result<u64, TraceError> {
    if params.footprint < 32 * 1024 {
        return Err(TraceError::BadHeader("serving footprint below 32 KiB"));
    }
    if params.records == 0 {
        return Err(TraceError::BadHeader("serving with zero records"));
    }
    if !(0.0..=8.0).contains(&params.zipf_exponent) {
        return Err(TraceError::BadHeader("serving zipf exponent outside [0, 8]"));
    }
    if !(0.0..=1.0).contains(&params.write_fraction) {
        return Err(TraceError::BadHeader("serving write fraction outside [0, 1]"));
    }
    if params.diurnal_period == 0 {
        return Err(TraceError::BadHeader("serving diurnal period of zero"));
    }
    let warmup = params.records / 10;
    let header = TraceHeader {
        name: SERVING_NAME.to_string(),
        footprint: params.footprint,
        // Memcached-like request servicing cost (Table V).
        cycles_per_access: 233.0,
        churn_per_million: 45_000,
        duplicate_fraction: 0.02,
        seed: params.seed,
        warmup,
        accesses: params.records - warmup,
    };
    let bucket_bytes = (params.footprint / 16) & !63;
    let value_base = bucket_bytes;
    let value_slots = (params.footprint - value_base) / 1024;
    let buckets = bucket_bytes / 64;
    // Popularity CDF over the key space: weight 1/rank^s, sampled by
    // binary search. The key space is sized to the arena so the hot set
    // scales with the footprint.
    let keys = (params.footprint / 1024).clamp(16, 1 << 20);
    let mut cdf = Vec::with_capacity(keys as usize);
    let mut acc = 0.0f64;
    for rank in 1..=keys {
        acc += (rank as f64).powf(-params.zipf_exponent);
        cdf.push(acc);
    }
    let norm = acc;
    cdf.iter_mut().for_each(|c| *c /= norm);

    let mut w = TraceWriter::new(sink, &header)?;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut sweep = 0u64; // maintenance cursor, 4 KiB pages
    let value_hash_salt = params.seed ^ 0x5e21_11a9_b0c4_d5e6;
    'budget: loop {
        // Diurnal position of this instant, in [0, 1) of a day.
        let t = (w.records_written() % params.diurnal_period) as f64
            / params.diurnal_period as f64;
        let load = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * t).cos());
        if rng.gen_f64() < 0.15 + 0.85 * load {
            // A request: Zipf-popular key → bucket probe → value burst.
            let x = rng.gen_f64();
            let key = (cdf.partition_point(|&c| c < x) as u64).min(keys - 1);
            let bucket = split_seed(params.seed, key) % buckets;
            let value = split_seed(value_hash_salt, key) % value_slots;
            let set = rng.gen_bool(params.write_fraction);
            w.push(bucket * 64, set)?;
            if w.records_written() == params.records {
                break 'budget;
            }
            let slot = value_base + value * 1024;
            for step in 0..4u64 {
                w.push(slot + step * 256, set)?;
                if w.records_written() == params.records {
                    break 'budget;
                }
            }
        } else {
            // Quiet-hours maintenance: sequential sweep, one page a step.
            let off = (sweep * 4096) % params.footprint;
            sweep += 1;
            w.push(off & !7, false)?;
            if w.records_written() == params.records {
                break 'budget;
            }
        }
    }
    w.finish()?;
    Ok(params.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{decode_all, scan};

    #[test]
    fn gc_chase_is_deterministic_and_exact() {
        let p = GcChaseParams::new(1 << 20, 5_000, 11);
        let mut a = Vec::new();
        let mut b = Vec::new();
        assert_eq!(write_gc_chase(&mut a, &p).unwrap(), 5_000);
        assert_eq!(write_gc_chase(&mut b, &p).unwrap(), 5_000);
        assert_eq!(a, b, "same params, same bytes");
        let stats = scan(a.as_slice()).unwrap();
        assert_eq!(stats.records, 5_000);
        assert!(stats.writes > 0, "mark writes present");
        assert!(stats.max_offset < 1 << 20);

        let mut c = Vec::new();
        write_gc_chase(&mut c, &GcChaseParams::new(1 << 20, 5_000, 12)).unwrap();
        assert_ne!(a, c, "seed changes the trace");
    }

    #[test]
    fn gc_chase_locality_is_tunable() {
        // Higher locality → smaller average jump between consecutive
        // reads of the closure.
        let jump = |locality: f64| -> f64 {
            let p = GcChaseParams {
                locality,
                ..GcChaseParams::new(16 << 20, 20_000, 5)
            };
            let mut bytes = Vec::new();
            write_gc_chase(&mut bytes, &p).unwrap();
            let (_, recs) = decode_all(&bytes).unwrap();
            let total: u64 = recs
                .windows(2)
                .map(|w| w[1].offset.abs_diff(w[0].offset))
                .sum();
            total as f64 / (recs.len() - 1) as f64
        };
        let clustered = jump(0.95);
        let uniform = jump(0.0);
        assert!(
            clustered * 4.0 < uniform,
            "clustered avg jump {clustered} vs uniform {uniform}"
        );
    }

    #[test]
    fn serving_is_deterministic_and_diurnal() {
        let p = ServingParams::new(4 << 20, 30_000, 9);
        let mut a = Vec::new();
        assert_eq!(write_serving(&mut a, &p).unwrap(), 30_000);
        let mut b = Vec::new();
        write_serving(&mut b, &p).unwrap();
        assert_eq!(a, b);
        let (h, recs) = decode_all(&a).unwrap();
        assert_eq!(h.name, SERVING_NAME);
        assert_eq!(h.churn_per_million, 45_000);

        // Writes exist (SET traffic) but stay a minority at 10%.
        let writes = recs.iter().filter(|r| r.write).count();
        assert!(writes > 0);
        assert!(writes * 3 < recs.len());

        // Diurnal envelope: the first 10% of a period (trough) holds far
        // more sequential maintenance steps (4 KiB-stride deltas) than
        // the slice around the peak.
        let period = p.diurnal_period as usize;
        let seq = |r: &[crate::format::TraceRecord]| {
            r.windows(2)
                .filter(|w| w[1].offset.wrapping_sub(w[0].offset) == 4096)
                .count()
        };
        let trough = seq(&recs[..period / 10]);
        let peak = seq(&recs[(period * 45 / 100)..(period * 55 / 100)]);
        assert!(
            trough > peak * 2,
            "trough {trough} should be maintenance-heavy vs peak {peak}"
        );
    }

    #[test]
    fn zipf_skew_concentrates_on_hot_buckets() {
        let p = ServingParams::new(4 << 20, 40_000, 21);
        let mut bytes = Vec::new();
        write_serving(&mut bytes, &p).unwrap();
        let (h, recs) = decode_all(&bytes).unwrap();
        let bucket_bytes = (h.footprint / 16) & !63;
        // Count bucket-region reads per bucket; the top-16 must hold a
        // disproportionate share under Zipf 0.99.
        let mut counts = std::collections::HashMap::new();
        let mut total = 0u64;
        for r in &recs {
            if r.offset < bucket_bytes {
                *counts.entry(r.offset).or_insert(0u64) += 1;
                total += 1;
            }
        }
        let mut by_count: Vec<u64> = counts.into_values().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf 0.99 over ~4096 keys puts ~half the mass on the top 64
        // (1.5% of the key space); uniform keys would put ~1.5% there.
        let top64: u64 = by_count.iter().take(64).sum();
        assert!(
            top64 * 100 > total * 40,
            "top-64 buckets hold {top64} of {total} probes"
        );
    }

    #[test]
    fn synthesizers_reject_bad_parameters() {
        let mut sink = Vec::new();
        for p in [
            GcChaseParams::new(1024, 100, 0),                // tiny footprint
            GcChaseParams::new(1 << 20, 0, 0),               // zero records
            GcChaseParams {
                locality: 1.5,
                ..GcChaseParams::new(1 << 20, 100, 0)
            },
        ] {
            assert!(matches!(
                write_gc_chase(&mut sink, &p),
                Err(TraceError::BadHeader(_))
            ));
        }
        for p in [
            ServingParams::new(1024, 100, 0), // tiny footprint
            ServingParams::new(1 << 20, 0, 0),
            ServingParams {
                write_fraction: 2.0,
                ..ServingParams::new(1 << 20, 100, 0)
            },
            ServingParams {
                diurnal_period: 0,
                ..ServingParams::new(1 << 20, 100, 0)
            },
        ] {
            assert!(matches!(
                write_serving(&mut sink, &p),
                Err(TraceError::BadHeader(_))
            ));
        }
    }
}
