//! Recording side: the streaming [`TraceWriter`], a shareable handle for
//! hooking it into a running simulation, and the [`RecordingWorkload`]
//! tee that captures any live generator's stream as it plays.

use core::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

use mv_workloads::{Access, Workload};

use crate::format::{put_varint, zigzag, TraceError, TraceHeader};

/// Records flushed per chunk. Small enough that the writer's buffer stays
/// a few KiB; large enough that framing overhead (8 bytes per chunk) is
/// noise.
const RECORDS_PER_CHUNK: u32 = 4096;

/// Streaming trace encoder: writes the header eagerly, buffers one chunk
/// of varint-encoded records at a time, and seals the trace with the
/// terminator + trailer on [`TraceWriter::finish`].
///
/// Dropping a writer without calling `finish` leaves a truncated trace
/// that readers reject with [`TraceError::Truncated`] — a crashed
/// recording can never be mistaken for a complete one.
pub struct TraceWriter<W: Write> {
    sink: W,
    buf: Vec<u8>,
    count: u32,
    prev_offset: u64,
    prev_delta: Option<i64>,
    total: u64,
}

impl<W: Write> fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceWriter")
            .field("total", &self.total)
            .field("buffered", &self.count)
            .finish_non_exhaustive()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `sink`, writing `header` immediately.
    ///
    /// # Errors
    ///
    /// Header validation failures ([`TraceError::BadHeader`]) or sink I/O
    /// errors.
    pub fn new(mut sink: W, header: &TraceHeader) -> Result<TraceWriter<W>, TraceError> {
        sink.write_all(&header.encode()?)?;
        Ok(TraceWriter {
            sink,
            buf: Vec::with_capacity(8 * RECORDS_PER_CHUNK as usize),
            count: 0,
            prev_offset: 0,
            prev_delta: None,
            total: 0,
        })
    }

    /// Appends one record. Offsets are delta-encoded against the previous
    /// record with wrapping arithmetic, so any `u64` sequence encodes.
    ///
    /// # Errors
    ///
    /// Sink I/O errors (surfaced when a full chunk flushes).
    pub fn push(&mut self, offset: u64, write: bool) -> Result<(), TraceError> {
        let delta = offset.wrapping_sub(self.prev_offset) as i64;
        let v = if self.prev_delta == Some(delta) {
            // Stride hint: same delta as the previous record collapses to
            // bit 1, making constant-stride scans one byte per record.
            0b10 | u64::from(write)
        } else {
            (zigzag(delta) << 2) | u64::from(write)
        };
        put_varint(&mut self.buf, v);
        self.prev_offset = offset;
        self.prev_delta = Some(delta);
        self.count += 1;
        self.total += 1;
        if self.count >= RECORDS_PER_CHUNK {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// [`TraceWriter::push`] for an [`Access`].
    ///
    /// # Errors
    ///
    /// Same as [`TraceWriter::push`].
    pub fn push_access(&mut self, acc: Access) -> Result<(), TraceError> {
        self.push(acc.offset, acc.write)
    }

    /// Records appended so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.count == 0 {
            return Ok(());
        }
        self.sink.write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.sink.write_all(&self.count.to_le_bytes())?;
        self.sink.write_all(&self.buf)?;
        self.buf.clear();
        self.count = 0;
        Ok(())
    }

    /// Seals the trace — flushes the last partial chunk, writes the
    /// terminator chunk and the record-count trailer, flushes the sink —
    /// and returns the sink.
    ///
    /// # Errors
    ///
    /// Sink I/O errors.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.flush_chunk()?;
        self.sink.write_all(&[0u8; 8])?; // terminator: len = 0, count = 0
        self.sink.write_all(&self.total.to_le_bytes())?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

struct SharedInner {
    writer: Option<TraceWriter<Box<dyn Write + Send>>>,
    error: Option<TraceError>,
    total: u64,
}

/// A cloneable, thread-safe handle to one [`TraceWriter`], so a recorder
/// can be threaded into a simulation (whose workload lives in a grid
/// cell) and finalized from the outside afterwards.
///
/// Write errors during recording are *sticky*: the first one is kept and
/// reported by [`SharedTraceWriter::finish`], and recording stops, so the
/// hot path never has to unwind through the driver loop.
#[derive(Clone)]
pub struct SharedTraceWriter {
    inner: Arc<Mutex<SharedInner>>,
}

impl fmt::Debug for SharedTraceWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.lock();
        f.debug_struct("SharedTraceWriter")
            .field("active", &g.writer.is_some())
            .field("failed", &g.error.is_some())
            .finish_non_exhaustive()
    }
}

impl SharedTraceWriter {
    /// Wraps an already-started writer.
    pub fn new(writer: TraceWriter<Box<dyn Write + Send>>) -> SharedTraceWriter {
        SharedTraceWriter {
            inner: Arc::new(Mutex::new(SharedInner {
                writer: Some(writer),
                error: None,
                total: 0,
            })),
        }
    }

    /// Starts a trace with `header` on a boxed sink.
    ///
    /// # Errors
    ///
    /// Same as [`TraceWriter::new`].
    pub fn create(
        sink: Box<dyn Write + Send>,
        header: &TraceHeader,
    ) -> Result<SharedTraceWriter, TraceError> {
        Ok(Self::new(TraceWriter::new(sink, header)?))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedInner> {
        // A panicked recorder thread leaves consistent (if incomplete)
        // state; recover the guard rather than cascading the panic.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends one record; on failure the error is stored and recording
    /// stops (reported later by [`SharedTraceWriter::finish`]).
    pub fn record(&self, offset: u64, write: bool) {
        let mut g = self.lock();
        if let Some(w) = g.writer.as_mut() {
            if let Err(e) = w.push(offset, write) {
                g.writer = None;
                g.error = Some(e);
            }
        }
    }

    /// Seals the trace and returns the total records written.
    ///
    /// Idempotent: a second call returns the same total.
    ///
    /// # Errors
    ///
    /// The first sticky recording error, or a failure sealing the trace.
    pub fn finish(&self) -> Result<u64, TraceError> {
        let mut g = self.lock();
        if let Some(e) = g.error.take() {
            return Err(e);
        }
        if let Some(w) = g.writer.take() {
            g.total = w.records_written();
            w.finish()?;
        }
        Ok(g.total)
    }
}

/// Tees a live workload's access stream into a recorder while forwarding
/// it unchanged to the driver — recording perturbs nothing the simulation
/// can observe.
#[derive(Debug)]
pub struct RecordingWorkload {
    inner: Box<dyn Workload>,
    recorder: SharedTraceWriter,
}

impl RecordingWorkload {
    /// Wraps `inner`, teeing every access into `recorder`.
    pub fn new(inner: Box<dyn Workload>, recorder: SharedTraceWriter) -> RecordingWorkload {
        RecordingWorkload { inner, recorder }
    }
}

impl Workload for RecordingWorkload {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn footprint(&self) -> u64 {
        self.inner.footprint()
    }

    fn next_access(&mut self) -> Access {
        let acc = self.inner.next_access();
        self.recorder.record(acc.offset, acc.write);
        acc
    }

    fn cycles_per_access(&self) -> f64 {
        self.inner.cycles_per_access()
    }

    fn churn_per_million(&self) -> u64 {
        self.inner.churn_per_million()
    }

    fn duplicate_fraction(&self) -> f64 {
        self.inner.duplicate_fraction()
    }

    fn page_fingerprint_instanced(&self, page_index: u64, instance: u64) -> u64 {
        self.inner.page_fingerprint_instanced(page_index, instance)
    }
}

/// An in-memory `Write` sink shared by handle, for recording traces
/// without touching the filesystem (tests, round-trip checks).
#[derive(Debug, Clone, Default)]
pub struct MemSink {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }

    /// A copy of everything written so far.
    pub fn bytes(&self) -> Vec<u8> {
        match self.bytes.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }
}

impl Write for MemSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.bytes.lock() {
            Ok(mut g) => g.extend_from_slice(buf),
            Err(p) => p.into_inner().extend_from_slice(buf),
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            name: "gups".to_string(),
            footprint: 1 << 20,
            cycles_per_access: 104.0,
            churn_per_million: 0,
            duplicate_fraction: 0.005,
            seed: 7,
            warmup: 0,
            accesses: 4,
        }
    }

    #[test]
    fn strided_scan_compresses_to_one_byte_per_record() {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        for i in 0..1000u64 {
            w.push(i * 64, false).unwrap();
        }
        let bytes = w.finish().unwrap();
        let header_len = header().encode().unwrap().len();
        // header + one chunk frame (8) + first record (2 bytes: zigzag
        // delta 64 → 128 → <<2 needs 2 varint bytes) + 999 repeats (1
        // byte each) + terminator (8) + trailer (8).
        assert_eq!(bytes.len(), header_len + 8 + 2 + 999 + 8 + 8);
    }

    #[test]
    fn unfinished_writer_leaves_a_truncated_trace() {
        let sink = MemSink::new();
        {
            let mut w = TraceWriter::new(sink.clone(), &header()).unwrap();
            w.push(64, false).unwrap();
            // dropped without finish()
        }
        let bytes = sink.bytes();
        let err = crate::reader::scan(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::Truncated(_)), "got {err:?}");
    }

    #[test]
    fn shared_writer_finish_is_idempotent() {
        let sink = MemSink::new();
        let shared = SharedTraceWriter::create(Box::new(sink.clone()), &header()).unwrap();
        shared.record(8, false);
        shared.record(16, true);
        assert_eq!(shared.finish().unwrap(), 2);
        assert_eq!(shared.finish().unwrap(), 2);
        let stats = crate::reader::scan(&mut sink.bytes().as_slice()).unwrap();
        assert_eq!(stats.records, 2);
    }

    /// A sink that fails after a few bytes, to prove write errors are
    /// sticky and surfaced at finish, not panicked.
    struct FailingSink {
        budget: usize,
    }

    impl Write for FailingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.len() > self.budget {
                return Err(std::io::Error::other("disk full"));
            }
            self.budget -= buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn recording_errors_are_sticky_and_reported_at_finish() {
        let header_len = header().encode().unwrap().len();
        let sink = FailingSink {
            // Exactly the header fits; the first chunk flush fails.
            budget: header_len,
        };
        let shared = SharedTraceWriter::create(Box::new(sink), &header()).unwrap();
        for i in 0..10_000u64 {
            shared.record(i * 8, false); // must not panic
        }
        let err = shared.finish().unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "got {err:?}");
    }
}
