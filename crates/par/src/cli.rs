//! Minimal command-line helpers shared by the experiment binaries, so
//! every binary spells `--jobs N` and `--quiet` the same way.

use std::num::NonZeroUsize;

use crate::pool::default_jobs;

/// Extracts `--jobs N` from an argument list, defaulting to
/// [`default_jobs`] (the machine's available
/// parallelism) when absent.
///
/// # Errors
///
/// Returns a message suitable for printing when the value is missing,
/// not a number, or zero.
///
/// # Example
///
/// ```
/// let args: Vec<String> = vec!["--quick".into(), "--jobs".into(), "4".into()];
/// assert_eq!(mv_par::cli::parse_jobs(&args).unwrap().get(), 4);
/// assert!(mv_par::cli::parse_jobs(&["--jobs".into(), "0".into()]).is_err());
/// ```
pub fn parse_jobs(args: &[String]) -> Result<NonZeroUsize, String> {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(default_jobs());
    };
    let value = args
        .get(i + 1)
        .ok_or_else(|| "--jobs needs a value".to_string())?;
    value
        .parse::<NonZeroUsize>()
        .map_err(|_| format!("--jobs needs a positive integer, got {value:?}"))
}

/// Whether a bare flag (e.g. `--quiet`) appears in the argument list.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Extracts an optional `--flag N` numeric option from an argument list,
/// returning `Ok(None)` when the flag is absent (so binaries can default
/// a feature to off — e.g. `run --fault-rate`).
///
/// # Errors
///
/// Returns a printable message when the value is missing or not a
/// non-negative integer.
///
/// # Example
///
/// ```
/// let args: Vec<String> = vec!["--fault-rate".into(), "1000".into()];
/// assert_eq!(mv_par::cli::parse_u64_opt(&args, "--fault-rate").unwrap(), Some(1000));
/// assert_eq!(mv_par::cli::parse_u64_opt(&args, "--chaos-seed").unwrap(), None);
/// ```
pub fn parse_u64_opt(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let value = args
        .get(i + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse::<u64>()
        .map(Some)
        .map_err(|_| format!("{flag} needs a non-negative integer, got {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_when_absent() {
        assert_eq!(parse_jobs(&args(&["--quick"])).unwrap(), default_jobs());
    }

    #[test]
    fn explicit_value_wins() {
        assert_eq!(parse_jobs(&args(&["--jobs", "7"])).unwrap().get(), 7);
    }

    #[test]
    fn bad_values_error() {
        assert!(parse_jobs(&args(&["--jobs"])).is_err());
        assert!(parse_jobs(&args(&["--jobs", "zero"])).is_err());
        assert!(parse_jobs(&args(&["--jobs", "0"])).is_err());
    }

    #[test]
    fn flags_detected() {
        assert!(has_flag(&args(&["--quiet"]), "--quiet"));
        assert!(!has_flag(&args(&["--quick"]), "--quiet"));
    }

    #[test]
    fn numeric_options_are_optional() {
        assert_eq!(
            parse_u64_opt(&args(&["--chaos-seed", "9"]), "--chaos-seed").unwrap(),
            Some(9)
        );
        assert_eq!(parse_u64_opt(&args(&["--quick"]), "--chaos-seed").unwrap(), None);
        assert!(parse_u64_opt(&args(&["--chaos-seed"]), "--chaos-seed").is_err());
        assert!(parse_u64_opt(&args(&["--chaos-seed", "x"]), "--chaos-seed").is_err());
    }
}
