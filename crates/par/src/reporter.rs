//! Serialized progress reporting for concurrent jobs.

use std::io::Write;
use std::sync::Mutex;

/// A mutex-guarded progress reporter for parallel runs.
///
/// Concurrent jobs writing progress straight to stderr interleave at the
/// byte level once more than one worker is running (the `badgertrap`
/// per-epoch drift lines were the canonical victim). A `Reporter`
/// serializes whole messages: each [`Reporter::line`] and
/// [`Reporter::block`] call takes the lock, writes, and flushes, so lines
/// from different workers never shear mid-line.
///
/// Progress is advisory output on stderr — it is *not* part of a binary's
/// result tables, so its (worker-dependent) ordering does not violate the
/// determinism contract of [`crate::par_map`]. With `quiet` set, nothing
/// is written at all.
///
/// # Example
///
/// ```
/// let r = mv_par::Reporter::new(false);
/// r.line("starting trial 3/30");
/// r.block("cycles/miss by epoch:\n  [44 44 45]");
/// assert!(!r.is_quiet());
/// ```
#[derive(Debug, Default)]
pub struct Reporter {
    quiet: bool,
    lock: Mutex<()>,
}

impl Reporter {
    /// Creates a reporter; with `quiet` set, every write becomes a no-op.
    pub fn new(quiet: bool) -> Reporter {
        Reporter {
            quiet,
            lock: Mutex::new(()),
        }
    }

    /// Whether this reporter suppresses output.
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Writes one line to stderr atomically (a trailing newline is added).
    pub fn line(&self, msg: impl AsRef<str>) {
        self.write(msg.as_ref());
    }

    /// Writes a multi-line block to stderr atomically, so a job's related
    /// lines (e.g. a per-epoch drift table) stay contiguous even while
    /// other jobs report concurrently.
    pub fn block(&self, msg: impl AsRef<str>) {
        self.write(msg.as_ref());
    }

    fn write(&self, msg: &str) {
        if self.quiet {
            return;
        }
        let _guard = self.lock.lock().expect("reporter lock poisoned");
        let stderr = std::io::stderr();
        let mut out = stderr.lock();
        // Progress must never abort an experiment; ignore I/O errors
        // (closed stderr) like eprintln! does.
        let _ = writeln!(out, "{msg}");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_reporter_reports_quietness() {
        assert!(Reporter::new(true).is_quiet());
        assert!(!Reporter::new(false).is_quiet());
    }

    // Quiet, so `cargo test` output stays clean (raw stderr writes bypass
    // libtest capture); the concurrent-call surface is still exercised.
    #[test]
    fn writes_do_not_panic_from_threads() {
        let r = Reporter::new(true);
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..10 {
                        r.line(format!("worker {t} step {i}"));
                    }
                });
            }
        });
    }
}
