//! The scoped worker pool: a shared work queue of independent jobs,
//! executed by `std::thread::scope` workers with per-job panic isolation.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job that panicked instead of producing a result.
///
/// The panic is contained to its job: the worker that caught it moves on
/// to the next queue entry, and every other job's result is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job in the submitted slice.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case); `"non-string panic payload"` otherwise.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Result of one pool job: the mapped value, or the contained panic.
pub type JobResult<R> = Result<R, JobPanic>;

/// The number of workers the pool uses by default: the machine's available
/// parallelism, or 1 if it cannot be queried.
pub fn default_jobs() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in **item order** regardless of worker count or completion order.
///
/// Work distribution is a shared atomic cursor: each worker claims the
/// next unclaimed index, so there is no static partitioning and stragglers
/// do not idle the pool. A panicking job yields `Err(JobPanic)` in its
/// slot; the remaining jobs run to completion.
///
/// Determinism contract: `f` must derive everything from its arguments
/// (index and item) — never from shared mutable state, thread identity, or
/// wall-clock time. Under that contract the returned vector is identical
/// for every `jobs` value, which is what lets callers assert byte-identical
/// output between `--jobs 1` and `--jobs N`.
///
/// With one worker (or zero/one item) everything runs inline on the
/// calling thread — no threads are spawned, but panic isolation still
/// applies so the two paths are observationally identical.
///
/// # Example
///
/// ```
/// use std::num::NonZeroUsize;
///
/// let jobs = NonZeroUsize::new(4).unwrap();
/// let out = mv_par::par_map(jobs, &[1u64, 2, 3], |i, &x| x * 10 + i as u64);
/// let values: Vec<u64> = out.into_iter().map(Result::unwrap).collect();
/// assert_eq!(values, vec![10, 21, 32]);
/// ```
pub fn par_map<T, R, F>(jobs: NonZeroUsize, items: &[T], f: F) -> Vec<JobResult<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.get().min(items.len());
    let run_one = |i: usize| -> JobResult<R> {
        panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| JobPanic {
            index: i,
            message: panic_message(payload),
        })
    };

    if workers <= 1 {
        return (0..items.len()).map(run_one).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult<R>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = run_one(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(x: usize) -> NonZeroUsize {
        NonZeroUsize::new(x).unwrap()
    }

    #[test]
    fn maps_in_order_for_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got: Vec<u64> = par_map(n(jobs), &items, |_, &x| x * x)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<JobResult<u64>> = par_map(n(8), &[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(n(8), &[7u64], |i, &x| (i, x));
        assert_eq!(out, vec![Ok((0, 7))]);
    }

    #[test]
    fn panic_is_contained_to_its_job() {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {})); // keep test output clean
        let items: Vec<u64> = (0..20).collect();
        let out = par_map(n(4), &items, |_, &x| {
            assert!(x != 13, "unlucky item");
            x + 1
        });
        panic::set_hook(prev);
        assert_eq!(out.len(), 20);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 13);
                assert!(e.message.contains("unlucky item"), "{}", e.message);
            } else {
                assert_eq!(*r, Ok(i as u64 + 1));
            }
        }
    }

    #[test]
    fn panic_message_extracts_both_string_kinds() {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let out = par_map(n(1), &[0u8, 1], |_, &x| {
            if x == 0 {
                panic!("static str");
            } else {
                panic!("formatted {x}");
            }
        });
        panic::set_hook(prev);
        assert_eq!(out[0].as_ref().unwrap_err().message, "static str");
        assert_eq!(out[1].as_ref().unwrap_err().message, "formatted 1");
    }

    #[test]
    fn job_panic_displays_index_and_message() {
        let p = JobPanic {
            index: 3,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "job 3 panicked: boom");
    }
}
