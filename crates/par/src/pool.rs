//! The scoped worker pool: per-worker work-stealing deques over a block
//! partition of the jobs, executed by `std::thread::scope` workers with
//! per-job panic isolation.
//!
//! # Scheduling
//!
//! [`par_map`] partitions the item indices into contiguous blocks, one
//! per worker. Each worker drains its own block front to back; a worker
//! whose block runs dry turns thief and steals single jobs from the
//! *back* of other workers' blocks (a Chase–Lev-style split: owner and
//! thieves work opposite ends, so they contend only on a block's last
//! item). Because grid jobs never spawn jobs, the deques never grow —
//! each is just a `(lo, hi)` index pair packed into one atomic word, and
//! both ends retire items by compare-and-swap on that word, which makes
//! the owner/thief race on the last item trivially safe: exactly one CAS
//! wins it.
//!
//! Victim order is *deterministic*: worker `w`'s sweep `s` visits the
//! other workers in a rotation derived from
//! [`mv_types::rng::split_seed`]`(STEAL_SEED ^ w, s)` — a pure function
//! of (worker index, sweep number), never of thread identity, load, or
//! wall clock. A sweep that finds every victim empty terminates the
//! worker: blocks only shrink, so "all empty once" means "all empty
//! forever".
//!
//! Results are written to per-index slots and collected in item order,
//! so the output is byte-identical for any worker count and any steal
//! interleaving — the property the whole workspace's `--jobs` contract
//! rests on.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use mv_types::rng::split_seed;

/// Base seed of the deterministic victim-selection sequence. Fixed so the
/// steal order is a pure function of (worker, sweep) and two runs of the
/// same grid behave identically modulo OS scheduling.
const STEAL_SEED: u64 = 0x6d76_5f70_6172; // "mv_par"

/// A job that panicked instead of producing a result.
///
/// The panic is contained to its job: the worker that caught it moves on
/// to the next queue entry, and every other job's result is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job in the submitted slice.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case); `"non-string panic payload"` otherwise.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Result of one pool job: the mapped value, or the contained panic.
pub type JobResult<R> = Result<R, JobPanic>;

/// The number of workers the pool uses by default: the machine's available
/// parallelism, or 1 if it cannot be queried.
pub fn default_jobs() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Per-worker scheduling statistics from one [`par_map_with_stats`] run.
///
/// Which worker executes which job depends on OS scheduling, so these
/// numbers are *advisory* — they vary run to run, unlike the result
/// vector, which is byte-identical regardless. They exist so tests and
/// benchmarks can assert liveness properties: e.g. that one 100x-cost
/// cell does not starve the rest of the pool (other workers keep
/// executing, steals drain the stuck worker's block).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs each worker executed (own block plus stolen).
    pub executed: Vec<u64>,
    /// Successful steals each worker performed.
    pub steals: Vec<u64>,
}

impl PoolStats {
    /// Total successful steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.steals.iter().sum()
    }
}

/// One worker's block of the initial partition: item indices `[lo, hi)`
/// packed into a single atomic word, 32 bits per end. The owner retires
/// from the front, thieves from the back; both by CAS on the pair.
struct BlockDeque {
    state: AtomicU64,
}

fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

fn unpack(s: u64) -> (u32, u32) {
    ((s >> 32) as u32, s as u32)
}

impl BlockDeque {
    fn new(lo: usize, hi: usize) -> BlockDeque {
        BlockDeque {
            state: AtomicU64::new(pack(lo as u32, hi as u32)),
        }
    }

    /// Owner end: take the lowest remaining index.
    fn pop_front(&self) -> Option<usize> {
        let mut s = self.state.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(s);
            if lo >= hi {
                return None;
            }
            match self.state.compare_exchange_weak(
                s,
                pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize),
                Err(cur) => s = cur,
            }
        }
    }

    /// Thief end: take the highest remaining index.
    fn steal_back(&self) -> Option<usize> {
        let mut s = self.state.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(s);
            if lo >= hi {
                return None;
            }
            match self.state.compare_exchange_weak(
                s,
                pack(lo, hi - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - 1) as usize),
                Err(cur) => s = cur,
            }
        }
    }
}

/// The `j`-th victim of worker `w`'s sweep with rotation `rot`: the other
/// workers in rotated order, each visited exactly once per sweep.
fn victim(w: usize, workers: usize, rot: usize, j: usize) -> usize {
    (w + 1 + (rot + j) % (workers - 1)) % workers
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in **item order** regardless of worker count or completion order.
///
/// Work distribution is block-partitioned work stealing (see the module
/// docs): each worker owns a contiguous block of indices and drains it in
/// order; idle workers steal from the back of busy workers' blocks, so a
/// ragged grid (one 10x-cost cell) cannot leave the pool idle on the
/// tail. A panicking job yields `Err(JobPanic)` in its slot; the
/// remaining jobs run to completion.
///
/// Determinism contract: `f` must derive everything from its arguments
/// (index and item) — never from shared mutable state, thread identity, or
/// wall-clock time. Under that contract the returned vector is identical
/// for every `jobs` value, which is what lets callers assert byte-identical
/// output between `--jobs 1` and `--jobs N`.
///
/// With one worker (or zero/one item) everything runs inline on the
/// calling thread — no threads are spawned, but panic isolation still
/// applies so the two paths are observationally identical.
///
/// # Example
///
/// ```
/// use std::num::NonZeroUsize;
///
/// let jobs = NonZeroUsize::new(4).unwrap();
/// let out = mv_par::par_map(jobs, &[1u64, 2, 3], |i, &x| x * 10 + i as u64);
/// let values: Vec<u64> = out.into_iter().map(Result::unwrap).collect();
/// assert_eq!(values, vec![10, 21, 32]);
/// ```
pub fn par_map<T, R, F>(jobs: NonZeroUsize, items: &[T], f: F) -> Vec<JobResult<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.len() >= u32::MAX as usize {
        // The packed-word deque indexes with 32 bits per end; a grid of
        // four billion simulations falls back to the cursor queue rather
        // than failing.
        return par_map_cursor(jobs, items, f);
    }
    par_map_with_stats(jobs, items, f).0
}

/// Like [`par_map`], additionally returning per-worker [`PoolStats`]
/// (jobs executed, steals performed). The result vector is byte-identical
/// to [`par_map`]'s; the stats are advisory and scheduling-dependent.
pub fn par_map_with_stats<T, R, F>(
    jobs: NonZeroUsize,
    items: &[T],
    f: F,
) -> (Vec<JobResult<R>>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.get().min(n);
    let run_one = |i: usize| -> JobResult<R> {
        panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| JobPanic {
            index: i,
            message: panic_message(payload),
        })
    };

    if workers <= 1 {
        let results: Vec<JobResult<R>> = (0..n).map(run_one).collect();
        let stats = if n == 0 {
            PoolStats::default()
        } else {
            PoolStats {
                executed: vec![n as u64],
                steals: vec![0],
            }
        };
        return (results, stats);
    }

    // Initial block partition: worker w owns indices [w*n/W, (w+1)*n/W).
    let deques: Vec<BlockDeque> = (0..workers)
        .map(|w| BlockDeque::new(w * n / workers, (w + 1) * n / workers))
        .collect();
    let slots: Vec<Mutex<Option<JobResult<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let steals: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let run_one = &run_one;
            let executed = &executed;
            let steals = &steals;
            scope.spawn(move || {
                let mut ran = 0u64;
                let mut stolen = 0u64;
                // Phase 1: drain the owned block front to back.
                while let Some(i) = deques[w].pop_front() {
                    *slots[i].lock().expect("result slot poisoned") = Some(run_one(i));
                    ran += 1;
                }
                // Phase 2: steal. Blocks never refill (jobs don't spawn
                // jobs), so one full sweep that finds every victim empty
                // proves the pool is drained.
                let mut sweep = 0u64;
                loop {
                    let rot = split_seed(STEAL_SEED ^ w as u64, sweep) as usize;
                    let mut stole = false;
                    for j in 0..workers - 1 {
                        let v = victim(w, workers, rot, j);
                        if let Some(i) = deques[v].steal_back() {
                            stolen += 1;
                            *slots[i].lock().expect("result slot poisoned") = Some(run_one(i));
                            ran += 1;
                            stole = true;
                            break;
                        }
                    }
                    if !stole {
                        break;
                    }
                    sweep += 1;
                }
                executed[w].store(ran, Ordering::Relaxed);
                steals[w].store(stolen, Ordering::Relaxed);
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every partitioned index was executed")
        })
        .collect();
    let stats = PoolStats {
        executed: executed.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        steals: steals.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
    };
    (results, stats)
}

/// The pre-deque scheduler: a single shared fetch-add cursor. Kept as the
/// reference implementation for scheduler-comparison benchmarks (the
/// BENCH_8 jobs-scaling leg) and as the fallback for grids too large for
/// the packed-word deque. Output is byte-identical to [`par_map`]'s.
#[doc(hidden)]
pub fn par_map_cursor<T, R, F>(jobs: NonZeroUsize, items: &[T], f: F) -> Vec<JobResult<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.get().min(items.len());
    let run_one = |i: usize| -> JobResult<R> {
        panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| JobPanic {
            index: i,
            message: panic_message(payload),
        })
    };

    if workers <= 1 {
        return (0..items.len()).map(run_one).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult<R>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = run_one(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(x: usize) -> NonZeroUsize {
        NonZeroUsize::new(x).unwrap()
    }

    #[test]
    fn maps_in_order_for_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got: Vec<u64> = par_map(n(jobs), &items, |_, &x| x * x)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn cursor_reference_matches_the_deque() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 3, 8] {
            let steal: Vec<u64> = par_map(n(jobs), &items, |i, &x| x * 31 + i as u64)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            let cursor: Vec<u64> = par_map_cursor(n(jobs), &items, |i, &x| x * 31 + i as u64)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(steal, cursor, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<JobResult<u64>> = par_map(n(8), &[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
        let (out, stats) = par_map_with_stats(n(8), &[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
        assert!(stats.executed.is_empty());
        assert_eq!(stats.total_steals(), 0);
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(n(8), &[7u64], |i, &x| (i, x));
        assert_eq!(out, vec![Ok((0, 7))]);
    }

    #[test]
    fn stats_account_for_every_job() {
        let items: Vec<u64> = (0..64).collect();
        for jobs in [2, 4, 8] {
            let (out, stats) = par_map_with_stats(n(jobs), &items, |_, &x| x + 1);
            assert_eq!(out.len(), 64);
            assert_eq!(stats.executed.len(), jobs);
            assert_eq!(stats.steals.len(), jobs);
            assert_eq!(stats.executed.iter().sum::<u64>(), 64, "jobs={jobs}");
            assert!(
                stats.total_steals() <= 64,
                "steals are a subset of executions"
            );
        }
    }

    #[test]
    fn block_deque_ends_meet_exactly_once() {
        // Owner and thief retiring from opposite ends of one block must
        // hand out each index exactly once, including the last item.
        let d = BlockDeque::new(10, 14);
        assert_eq!(d.pop_front(), Some(10));
        assert_eq!(d.steal_back(), Some(13));
        assert_eq!(d.steal_back(), Some(12));
        assert_eq!(d.pop_front(), Some(11));
        assert_eq!(d.pop_front(), None);
        assert_eq!(d.steal_back(), None);
    }

    #[test]
    fn victim_sweep_visits_every_other_worker_once() {
        for workers in [2usize, 3, 5, 8] {
            for w in 0..workers {
                for rot in [0usize, 1, 7, 1_000_003] {
                    let mut seen: Vec<usize> = (0..workers - 1)
                        .map(|j| victim(w, workers, rot, j))
                        .collect();
                    seen.sort_unstable();
                    let expect: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
                    assert_eq!(seen, expect, "w={w} workers={workers} rot={rot}");
                }
            }
        }
    }

    #[test]
    fn panic_is_contained_to_its_job() {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {})); // keep test output clean
        let items: Vec<u64> = (0..20).collect();
        let out = par_map(n(4), &items, |_, &x| {
            assert!(x != 13, "unlucky item");
            x + 1
        });
        panic::set_hook(prev);
        assert_eq!(out.len(), 20);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 13);
                assert!(e.message.contains("unlucky item"), "{}", e.message);
            } else {
                assert_eq!(*r, Ok(i as u64 + 1));
            }
        }
    }

    #[test]
    fn panic_message_extracts_both_string_kinds() {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let out = par_map(n(1), &[0u8, 1], |_, &x| {
            if x == 0 {
                panic!("static str");
            } else {
                panic!("formatted {x}");
            }
        });
        panic::set_hook(prev);
        assert_eq!(out[0].as_ref().unwrap_err().message, "static str");
        assert_eq!(out[1].as_ref().unwrap_err().message, "formatted 1");
    }

    #[test]
    fn job_panic_displays_index_and_message() {
        let p = JobPanic {
            index: 3,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "job 3 panicked: boom");
    }
}
