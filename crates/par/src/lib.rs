//! Parallel experiment execution for the simulation workspace.
//!
//! The paper's evaluation is a grid — {workloads} × {translation modes} ×
//! {trials} (Figure 13 alone runs 30 random trials per point) — and every
//! cell is an independent simulation: it builds its own guest, VMM, and
//! MMU, and derives all randomness from its own seed. This crate exploits
//! that independence with three pieces, all `std`-only (the workspace
//! builds offline, with no external dependencies):
//!
//! * [`par_map`] — a scoped worker pool (`std::thread::scope`) with
//!   block-partitioned work-stealing deques: each worker owns a contiguous
//!   block of jobs and idle workers steal from the back of busy workers'
//!   blocks, so one straggler cell cannot idle the pool on a ragged grid.
//!   Results come back **in item order**, so output is identical for any
//!   worker count and any steal interleaving; a panic in one job becomes
//!   an `Err(`[`JobPanic`]`)` in that job's slot instead of killing the
//!   sweep. [`par_map_with_stats`] additionally reports per-worker
//!   executed/steal counts ([`PoolStats`]) for liveness assertions.
//! * [`Reporter`] — a mutex-guarded progress writer, so concurrent jobs'
//!   stderr lines never interleave mid-line, with a `--quiet` switch.
//! * [`cli`] — shared parsing for the `--jobs N` / `--quiet` flags every
//!   experiment binary exposes.
//!
//! # Determinism
//!
//! The pool does not make programs deterministic — it *preserves* the
//! determinism of jobs that are already pure functions of their inputs.
//! The workspace's convention (enforced by the `mv-sim` grid runner and
//! its integration tests) is to derive each cell's seed with
//! `mv_types::rng::split_seed` from the cell's coordinates, never from
//! shared state, and to merge per-cell counters and telemetry with
//! order-insensitive (commutative, associative) merges. Under those rules
//! `--jobs 1` and `--jobs N` produce byte-identical tables, which CI
//! asserts.
//!
//! # Example
//!
//! ```
//! use std::num::NonZeroUsize;
//!
//! // Four workers, five independent jobs, results in submission order.
//! let seeds: Vec<u64> = (0..5).collect();
//! let jobs = NonZeroUsize::new(4).unwrap();
//! let out = mv_par::par_map(jobs, &seeds, |_, &seed| seed.wrapping_mul(31));
//! assert_eq!(out.len(), 5);
//! assert!(out.iter().all(Result::is_ok));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
mod pool;
mod reporter;

pub use pool::{
    default_jobs, par_map, par_map_cursor, par_map_with_stats, JobPanic, JobResult, PoolStats,
};
pub use reporter::Reporter;
