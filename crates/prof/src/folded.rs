//! Folded-stack export: one `frame;frame;frame cycles` line per nonzero
//! attribution bucket, the input format of `flamegraph.pl` and compatible
//! renderers (inferno, speedscope). The "stack" for a walk cost is the
//! path the hardware took to incur it: `gva;<guest step>;<nested slot>`.

use mv_obs::{COL_LABELS, GUEST_ROWS, MID_COLS, MID_LABELS, NESTED_COLS, ROW_LABELS};

use crate::matrix::WalkMatrix;
use crate::profile::Profile;

/// Root frame for every stack — the cost of translating a guest virtual
/// address.
pub const ROOT_FRAME: &str = "gva";

/// Appends the folded-stack lines for one matrix to `out`, in a fixed
/// deterministic order: hit tiers first, then cells row-major, then the
/// unattributed remainder (nonzero only when events were recorded without
/// per-cell attribution). Zero buckets are skipped — flamegraph input has
/// no use for empty frames.
pub fn fold_matrix(m: &WalkMatrix, out: &mut String) {
    use std::fmt::Write;
    let mut line = |stack: &str, cycles: u64| {
        if cycles > 0 {
            writeln!(out, "{ROOT_FRAME};{stack} {cycles}").expect("String write");
        }
    };
    line("l2_hit", m.l2_hit_cycles);
    line("nested_tlb", m.nested_tlb_cycles);
    line("pwc", m.pwc_cycles);
    line("bound_check", m.bound_check_cycles);
    for (r, row) in ROW_LABELS.iter().enumerate().take(GUEST_ROWS) {
        for (c, col) in COL_LABELS.iter().enumerate().take(NESTED_COLS) {
            line(&format!("{row};{col}"), m.cycles[r][c]);
        }
    }
    // Mid-dimension cells (3-level walks only): all-zero on 2-level
    // profiles, so the nonzero filter keeps legacy output byte-identical.
    for (r, row) in ROW_LABELS.iter().enumerate().take(GUEST_ROWS) {
        for (c, col) in MID_LABELS.iter().enumerate().take(MID_COLS) {
            line(&format!("{row};{col}"), m.mid_cycles[r][c]);
        }
    }
    line(
        "unattributed",
        m.total_cycles.saturating_sub(m.attributed_cycles()),
    );
}

/// Renders a whole profile as folded stacks: the run-total matrix plus a
/// `gva;vm_exit` frame for the VM-exit cycles the machine layer charges
/// outside the walker.
pub fn fold_profile(p: &Profile) -> String {
    let mut out = String::new();
    fold_matrix(p.total(), &mut out);
    if p.exit_cycles() > 0 {
        out.push_str(&format!("{ROOT_FRAME};vm_exit {}\n", p.exit_cycles()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_obs::{EscapeOutcome, FaultKind, WalkAttr, WalkClass, WalkEvent, WalkObserver, REF_COL};

    use crate::profile::ProfileConfig;

    fn event() -> WalkEvent {
        let mut attr = WalkAttr::default();
        attr.record(0, REF_COL, 160);
        attr.record(4, 3, 18);
        attr.add_pwc(2);
        WalkEvent {
            seq: 1,
            gva: 0x1000,
            gpa: Some(0x2000),
            mode: "4K+4K",
            class: WalkClass::Walk2d,
            write: false,
            cycles: attr.total_cycles(),
            guest_refs: 1,
            nested_refs: 1,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr,
        }
    }

    #[test]
    fn folds_nonzero_buckets_in_deterministic_order() {
        let mut m = WalkMatrix::default();
        m.record(&event());
        let mut out = String::new();
        fold_matrix(&m, &mut out);
        assert_eq!(out, "gva;pwc 2\ngva;gL4;ref 160\ngva;data;nL1 18\n");
    }

    #[test]
    fn unattributed_remainder_shows_up_as_its_own_frame() {
        let mut e = event();
        e.attr = WalkAttr::default(); // telemetry-style event, no attribution
        let mut m = WalkMatrix::default();
        m.record(&e);
        let mut out = String::new();
        fold_matrix(&m, &mut out);
        assert_eq!(out, format!("gva;unattributed {}\n", e.cycles));
    }

    #[test]
    fn profile_fold_appends_vm_exit_cycles() {
        let mut p = Profile::new(ProfileConfig { epoch_len: 0 });
        p.on_walk(&event());
        p.record_exits(4, 3200);
        p.finish();
        let out = fold_profile(&p);
        assert!(out.ends_with("gva;vm_exit 3200\n"), "got: {out}");
        assert!(out.contains("gva;gL4;ref 160\n"));
    }
}
