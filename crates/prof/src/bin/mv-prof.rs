//! `mv-prof` — inspect, fold, and diff profile exports.
//!
//! ```text
//! mv-prof show a.jsonl                  # human-readable matrix table
//! mv-prof fold a.jsonl                  # folded stacks for flamegraph.pl
//! mv-prof diff a.jsonl b.jsonl          # per-cell / per-counter deltas
//!          [--abs-tol N] [--rel-tol-pct P] [--fail-on-diff]
//! ```

use std::process::ExitCode;

use mv_obs::{COL_LABELS, GUEST_ROWS, NESTED_COLS, ROW_LABELS};
use mv_prof::{diff_docs, parse_jsonl, render_diff, DiffOptions, ProfileDoc, WalkMatrix};

const USAGE: &str = "usage: mv-prof <show|fold|diff> <a.jsonl> [b.jsonl] \
                     [--abs-tol N] [--rel-tol-pct P] [--fail-on-diff]";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mv-prof: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut opts = DiffOptions::default();
    let mut fail_on_diff = false;
    let mut cmd = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--abs-tol" => {
                opts.abs_tol = num_arg(&mut it, "--abs-tol")?;
            }
            "--rel-tol-pct" => {
                opts.rel_tol = num_arg(&mut it, "--rel-tol-pct")? / 100.0;
            }
            "--fail-on-diff" => fail_on_diff = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg}\n{USAGE}")),
            _ if cmd.is_none() => cmd = Some(arg),
            _ => files.push(arg),
        }
    }

    match (cmd.as_deref(), files.as_slice()) {
        (Some("show"), [a]) => {
            let doc = load(a)?;
            print!("{}", show(&doc));
            Ok(ExitCode::SUCCESS)
        }
        (Some("fold"), [a]) => {
            let doc = load(a)?;
            print!("{}", fold(&doc));
            Ok(ExitCode::SUCCESS)
        }
        (Some("diff"), [a, b]) => {
            let (da, db) = (load(a)?, load(b)?);
            let deltas = diff_docs(&da, &db, opts);
            print!("{}", render_diff(&deltas, opts));
            if fail_on_diff && !deltas.is_empty() {
                Ok(ExitCode::FAILURE)
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn num_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<f64, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: not a number: {raw}"))
}

fn load(path: &str) -> Result<ProfileDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Replicates `fold_profile` from a parsed doc (which has no `Profile`).
fn fold(doc: &ProfileDoc) -> String {
    let mut out = String::new();
    mv_prof::fold_matrix(&doc.run, &mut out);
    if doc.exit_cycles > 0 {
        out.push_str(&format!("gva;vm_exit {}\n", doc.exit_cycles));
    }
    out
}

fn show(doc: &ProfileDoc) -> String {
    let m = &doc.run;
    let mut out = String::new();
    out.push_str(&format!(
        "run matrix: {} events, {} cycles ({} attributed), {} epochs\n\n",
        m.events,
        m.total_cycles,
        m.attributed_cycles(),
        doc.epochs.len()
    ));
    out.push_str(&table(m));
    out.push_str(&format!(
        "\ntiers:  l2_hit {}  nested_tlb {}  pwc {}  bound_check {}\n",
        m.l2_hit_cycles, m.nested_tlb_cycles, m.pwc_cycles, m.bound_check_cycles
    ));
    out.push_str(&format!(
        "dims:   guest {}  nested {}\n",
        m.guest_dimension_cycles(),
        m.nested_dimension_cycles()
    ));
    out.push_str(&format!(
        "run:    escapes {}  faults {} ({} cycles)  vm_exits {} ({} cycles)\n",
        m.escapes,
        m.fault_events(),
        m.fault_cycles,
        doc.vm_exits,
        doc.exit_cycles
    ));
    out
}

/// Renders the cycles grid with a refs grid alongside, labeled by the
/// shared row/column names.
fn table(m: &WalkMatrix) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>6}", "cycles"));
    for c in COL_LABELS {
        out.push_str(&format!("{c:>12}"));
    }
    out.push_str(&format!("{:>14}", "refs/row"));
    out.push('\n');
    for (r, row) in ROW_LABELS.iter().enumerate().take(GUEST_ROWS) {
        out.push_str(&format!("{row:>6}"));
        for c in 0..NESTED_COLS {
            out.push_str(&format!("{:>12}", m.cycles[r][c]));
        }
        let row_refs: u64 = m.refs[r].iter().sum();
        out.push_str(&format!("{row_refs:>14}"));
        out.push('\n');
    }
    out
}
