//! JSONL export for profiles, and the reader that parses an export back
//! into matrices (used by `mv-prof diff`/`fold`/`show`).
//!
//! A profile export is line-oriented and self-describing:
//!
//! ```text
//! {"type":"profile_meta","epoch_len":10000,"rows":[...],"cols":[...]}
//! {"type":"walk_matrix","scope":"epoch","index":0, ...matrix fields...}
//! {"type":"walk_matrix","scope":"run", ...matrix fields...,"vm_exits":N,"exit_cycles":N}
//! ```
//!
//! The lines coexist with telemetry JSONL in the same file — every reader
//! in the workspace dispatches on `"type"`, so `run --profile
//! --telemetry-out` appends profile lines to the telemetry export and both
//! stay parseable.

use std::io::{self, Write};

use mv_obs::{COL_LABELS, GUEST_ROWS, MID_COLS, NESTED_COLS, ROW_LABELS};

use crate::json::{self, Value};
use crate::matrix::WalkMatrix;
use crate::profile::Profile;

/// Renders the body of a matrix as JSON object members (no braces), shared
/// by the epoch and run scopes.
fn matrix_members(m: &WalkMatrix) -> String {
    fn rows_json(rows: Vec<String>) -> String {
        format!("[{}]", rows.join(","))
    }
    fn row_json(row: &[u64]) -> String {
        let cells: Vec<String> = row.iter().map(u64::to_string).collect();
        format!("[{}]", cells.join(","))
    }
    let grid = |g: &[[u64; NESTED_COLS]; GUEST_ROWS]| -> String {
        rows_json(g.iter().map(|row| row_json(row)).collect())
    };
    // Mid-dimension grids (3-level walks) and fault counts are emitted
    // only when nonzero, so 2-level exports are byte-identical to the
    // pre-L2 format (and its golden fixtures).
    let mid = if m.has_mid() {
        let mid_grid = |g: &[[u64; MID_COLS]; GUEST_ROWS]| -> String {
            rows_json(g.iter().map(|row| row_json(row)).collect())
        };
        format!(
            ",\"mid_refs\":{},\"mid_cycles\":{}",
            mid_grid(&m.mid_refs),
            mid_grid(&m.mid_cycles)
        )
    } else {
        String::new()
    };
    let mid_faults = if m.faults[3] != 0 {
        format!(",\"mid_not_mapped\":{}", m.faults[3])
    } else {
        String::new()
    };
    format!(
        "\"events\":{},\"refs\":{},\"cycles\":{}{mid},\
         \"tiers\":{{\"l2_hit\":{},\"nested_tlb\":{},\"pwc\":{},\"bound_check\":{}}},\
         \"total_cycles\":{},\"attributed_cycles\":{},\"escapes\":{},\
         \"faults\":{{\"guest_not_mapped\":{},\"nested_not_mapped\":{},\"write_protected\":{}{mid_faults}}},\
         \"fault_cycles\":{}",
        m.events,
        grid(&m.refs),
        grid(&m.cycles),
        m.l2_hit_cycles,
        m.nested_tlb_cycles,
        m.pwc_cycles,
        m.bound_check_cycles,
        m.total_cycles,
        m.attributed_cycles(),
        m.escapes,
        m.faults[0],
        m.faults[1],
        m.faults[2],
        m.fault_cycles,
    )
}

/// Renders one matrix as a standalone `walk_matrix` JSONL line (no trailing
/// newline). `scope` is `"epoch"` (with `Some(index)`) or `"run"`.
pub fn matrix_jsonl(m: &WalkMatrix, scope: &str, index: Option<u64>) -> String {
    let idx = index.map_or(String::new(), |i| format!("\"index\":{i},"));
    format!(
        "{{\"type\":\"walk_matrix\",\"scope\":\"{scope}\",{idx}{}}}",
        matrix_members(m)
    )
}

impl Profile {
    /// Writes the profile as JSONL: a `profile_meta` line, one epoch-scope
    /// `walk_matrix` line per epoch, and a final run-scope `walk_matrix`
    /// line carrying the VM-exit totals.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let labels = |ls: &[&str]| -> String {
            let quoted: Vec<String> = ls.iter().map(|l| format!("\"{l}\"")).collect();
            format!("[{}]", quoted.join(","))
        };
        writeln!(
            w,
            "{{\"type\":\"profile_meta\",\"epoch_len\":{},\"rows\":{},\"cols\":{}}}",
            self.config().epoch_len,
            labels(&ROW_LABELS),
            labels(&COL_LABELS),
        )?;
        for e in self.epochs() {
            writeln!(w, "{}", matrix_jsonl(&e.matrix, "epoch", Some(e.index)))?;
        }
        let mut run = matrix_jsonl(self.total(), "run", None);
        run.pop(); // re-open the object to append the run-only members
        run.push_str(&format!(
            ",\"vm_exits\":{},\"exit_cycles\":{}}}",
            self.vm_exits(),
            self.exit_cycles()
        ));
        writeln!(w, "{run}")
    }
}

/// A profile export parsed back from JSONL, plus whatever telemetry
/// `summary` counters shared the file.
#[derive(Debug, Clone, Default)]
pub struct ProfileDoc {
    /// The run-scope matrix.
    pub run: WalkMatrix,
    /// Epoch-scope matrices as `(index, matrix)`, in file order.
    pub epochs: Vec<(u64, WalkMatrix)>,
    /// Run-scope VM exits.
    pub vm_exits: u64,
    /// Run-scope VM-exit cycles.
    pub exit_cycles: u64,
    /// Counters lifted from a telemetry `summary` line, if the file had
    /// one: `(name, value)` pairs sorted by name.
    pub summary: Vec<(String, f64)>,
}

/// Parses a JSONL export (profile lines, optionally interleaved with
/// telemetry lines) into a [`ProfileDoc`]. Unknown line types are skipped;
/// a malformed line is an error with its 1-based line number.
///
/// # Errors
///
/// Returns a message naming the offending line on parse failure, or if no
/// run-scope `walk_matrix` line is present.
pub fn parse_jsonl(text: &str) -> Result<ProfileDoc, String> {
    let mut doc = ProfileDoc::default();
    let mut saw_run = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match v.get("type").and_then(Value::as_str) {
            Some("walk_matrix") => {
                let m = matrix_from_value(&v)
                    .ok_or_else(|| format!("line {}: malformed walk_matrix", lineno + 1))?;
                match v.get("scope").and_then(Value::as_str) {
                    Some("run") => {
                        doc.run = m;
                        doc.vm_exits = u64_field(&v, "vm_exits").unwrap_or(0);
                        doc.exit_cycles = u64_field(&v, "exit_cycles").unwrap_or(0);
                        saw_run = true;
                    }
                    Some("epoch") => {
                        let idx = u64_field(&v, "index")
                            .ok_or_else(|| format!("line {}: epoch without index", lineno + 1))?;
                        doc.epochs.push((idx, m));
                    }
                    _ => return Err(format!("line {}: unknown walk_matrix scope", lineno + 1)),
                }
            }
            Some("summary") => {
                if let Value::Obj(map) = &v {
                    for (k, val) in map {
                        if k == "type" {
                            continue;
                        }
                        if let Some(n) = val.as_f64() {
                            doc.summary.push((k.clone(), n));
                        }
                    }
                }
            }
            _ => {} // meta, epoch, event, transition, profile_meta: not diffed here
        }
    }
    if !saw_run {
        return Err("no run-scope walk_matrix line found".into());
    }
    Ok(doc)
}

fn u64_field(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

/// Rebuilds a [`WalkMatrix`] from a parsed `walk_matrix` object.
pub fn matrix_from_value(v: &Value) -> Option<WalkMatrix> {
    let mut m = WalkMatrix {
        events: u64_field(v, "events")?,
        total_cycles: u64_field(v, "total_cycles")?,
        escapes: u64_field(v, "escapes")?,
        fault_cycles: u64_field(v, "fault_cycles")?,
        ..WalkMatrix::default()
    };
    let grid = |key: &str, dst: &mut [[u64; NESTED_COLS]; GUEST_ROWS]| -> Option<()> {
        let rows = v.get(key)?.as_arr()?;
        if rows.len() != GUEST_ROWS {
            return None;
        }
        for (r, row) in rows.iter().enumerate() {
            let cells = row.as_arr()?;
            if cells.len() != NESTED_COLS {
                return None;
            }
            for (c, cell) in cells.iter().enumerate() {
                dst[r][c] = cell.as_u64()?;
            }
        }
        Some(())
    };
    grid("refs", &mut m.refs)?;
    grid("cycles", &mut m.cycles)?;
    // Mid grids are optional: pre-L2 exports (and every 2-level export
    // since) simply omit them.
    let mid_grid = |key: &str, dst: &mut [[u64; MID_COLS]; GUEST_ROWS]| -> Option<()> {
        let Some(rows) = v.get(key).and_then(Value::as_arr) else {
            return Some(());
        };
        if rows.len() != GUEST_ROWS {
            return None;
        }
        for (r, row) in rows.iter().enumerate() {
            let cells = row.as_arr()?;
            if cells.len() != MID_COLS {
                return None;
            }
            for (c, cell) in cells.iter().enumerate() {
                dst[r][c] = cell.as_u64()?;
            }
        }
        Some(())
    };
    mid_grid("mid_refs", &mut m.mid_refs)?;
    mid_grid("mid_cycles", &mut m.mid_cycles)?;
    let tiers = v.get("tiers")?;
    m.l2_hit_cycles = u64_field(tiers, "l2_hit")?;
    m.nested_tlb_cycles = u64_field(tiers, "nested_tlb")?;
    m.pwc_cycles = u64_field(tiers, "pwc")?;
    m.bound_check_cycles = u64_field(tiers, "bound_check")?;
    let faults = v.get("faults")?;
    m.faults = [
        u64_field(faults, "guest_not_mapped")?,
        u64_field(faults, "nested_not_mapped")?,
        u64_field(faults, "write_protected")?,
        u64_field(faults, "mid_not_mapped").unwrap_or(0),
    ];
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileConfig;
    use mv_obs::{EscapeOutcome, FaultKind, WalkAttr, WalkClass, WalkEvent, WalkObserver, REF_COL};

    fn ev(seq: u64) -> WalkEvent {
        let mut attr = WalkAttr::default();
        attr.record(1, REF_COL, 160);
        attr.record(1, 2, 18);
        attr.add_l2_hit(7);
        WalkEvent {
            seq,
            gva: seq * 0x1000,
            gpa: Some(seq * 0x2000),
            mode: "4K+4K",
            class: WalkClass::Walk2d,
            write: seq % 2 == 0,
            cycles: attr.total_cycles(),
            guest_refs: 1,
            nested_refs: 1,
            escape: EscapeOutcome::Escaped,
            fault: if seq == 3 {
                FaultKind::GuestNotMapped
            } else {
                FaultKind::None
            },
            attr,
        }
    }

    fn sample_profile() -> Profile {
        let mut p = Profile::new(ProfileConfig { epoch_len: 2 });
        for s in 1..=5 {
            p.on_walk(&ev(s));
        }
        p.record_exits(7, 5600);
        p.finish();
        p
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let p = sample_profile();
        let mut buf = Vec::new();
        p.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"type\":\"profile_meta\",\"epoch_len\":2,"));

        let doc = parse_jsonl(&text).unwrap();
        assert_eq!(doc.run, *p.total());
        assert_eq!(doc.vm_exits, 7);
        assert_eq!(doc.exit_cycles, 5600);
        assert_eq!(doc.epochs.len(), p.epochs().len());
        for ((idx, m), e) in doc.epochs.iter().zip(p.epochs()) {
            assert_eq!(*idx, e.index);
            assert_eq!(*m, e.matrix);
        }
    }

    #[test]
    fn mid_grids_round_trip_and_stay_absent_on_two_level_exports() {
        // A 2-level matrix must not mention the mid grids at all.
        let p = sample_profile();
        let mut buf = Vec::new();
        p.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("mid_refs"), "2-level exports carry no mid grid");
        assert!(!text.contains("mid_not_mapped"));

        // A 3-level matrix round-trips its mid cells exactly.
        let mut e = ev(7);
        e.attr.record_mid(2, 1, 60);
        e.fault = FaultKind::MidNotMapped;
        e.cycles = e.attr.total_cycles();
        let mut m = WalkMatrix::default();
        m.record(&e);
        let line = matrix_jsonl(&m, "run", None);
        assert!(line.contains("\"mid_refs\""));
        assert!(line.contains("\"mid_not_mapped\":1"));
        let parsed = matrix_from_value(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn parser_skips_telemetry_lines_but_lifts_summary_counters() {
        let p = sample_profile();
        let mut buf = Vec::new();
        buf.extend_from_slice(
            b"{\"type\":\"meta\",\"epoch_len\":2,\"flight_capacity\":4}\n\
              {\"type\":\"summary\",\"events\":5,\"cycles_sum\":925,\"p99\":185}\n",
        );
        p.write_jsonl(&mut buf).unwrap();
        let doc = parse_jsonl(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(doc.run.events, 5);
        assert_eq!(
            doc.summary,
            vec![
                ("cycles_sum".to_string(), 925.0),
                ("events".to_string(), 5.0),
                ("p99".to_string(), 185.0),
            ]
        );
    }

    #[test]
    fn missing_run_scope_is_an_error() {
        let err = parse_jsonl("{\"type\":\"summary\",\"events\":1}\n").unwrap_err();
        assert!(err.contains("no run-scope"), "got: {err}");
    }

    #[test]
    fn malformed_line_is_reported_with_its_number() {
        let err = parse_jsonl("{\"type\":\"profile_meta\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
    }
}
