//! Differential telemetry: compare two profile exports cell by cell and
//! counter by counter, suppressing deltas inside a noise threshold.

use mv_obs::{COL_LABELS, GUEST_ROWS, NESTED_COLS, ROW_LABELS};

use crate::export::ProfileDoc;

/// Noise thresholds for [`diff_docs`]. A delta is reported only when it
/// clears **both** gates: `|b - a| > abs_tol` and `|b - a| / max(|a|, 1) >
/// rel_tol`. The defaults report every nonzero delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Absolute threshold, in the counter's own unit.
    pub abs_tol: f64,
    /// Relative threshold as a fraction (`0.05` = suppress changes under
    /// 5 %).
    pub rel_tol: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            abs_tol: 0.0,
            rel_tol: 0.0,
        }
    }
}

/// One counter that moved between the two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Counter name, e.g. `cell.gL1xnL2.cycles` or `tier.l2_hit` or
    /// `summary.p99`.
    pub name: String,
    /// Value in the first (baseline) profile.
    pub a: f64,
    /// Value in the second (candidate) profile.
    pub b: f64,
}

impl Delta {
    /// Signed change, `b - a`.
    pub fn change(&self) -> f64 {
        self.b - self.a
    }

    /// Relative change against the baseline (baseline 0 compares against
    /// 1, so a counter appearing from nothing still gets a finite ratio).
    pub fn rel_change(&self) -> f64 {
        self.change() / self.a.abs().max(1.0)
    }

    /// Renders the delta as one aligned report line.
    pub fn render(&self) -> String {
        format!(
            "{:<28} {:>14} -> {:>14}  ({:+},  {:+.1}%)",
            self.name,
            trim_num(self.a),
            trim_num(self.b),
            trim_num(self.change()),
            self.rel_change() * 100.0,
        )
    }
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Diffs two parsed profile exports. Returns the deltas that clear the
/// noise thresholds, ordered by descending absolute cycle change within
/// each section (cells, tiers, scalars, summary counters).
pub fn diff_docs(a: &ProfileDoc, b: &ProfileDoc, opts: DiffOptions) -> Vec<Delta> {
    let mut out = Vec::new();
    let mut push = |deltas: &mut Vec<Delta>| {
        deltas.sort_by(|x, y| {
            y.change()
                .abs()
                .partial_cmp(&x.change().abs())
                .expect("finite deltas")
        });
        out.append(deltas);
    };

    let keep = |d: &Delta| -> bool {
        let change = d.change().abs();
        change > opts.abs_tol && change / d.a.abs().max(1.0) > opts.rel_tol
    };
    let mk = |name: String, x: f64, y: f64| -> Option<Delta> {
        let d = Delta { name, a: x, b: y };
        keep(&d).then_some(d)
    };

    let mut cells = Vec::new();
    for (r, row) in ROW_LABELS.iter().enumerate().take(GUEST_ROWS) {
        for (c, col) in COL_LABELS.iter().enumerate().take(NESTED_COLS) {
            cells.extend(mk(
                format!("cell.{row}x{col}.cycles"),
                a.run.cycles[r][c] as f64,
                b.run.cycles[r][c] as f64,
            ));
            cells.extend(mk(
                format!("cell.{row}x{col}.refs"),
                a.run.refs[r][c] as f64,
                b.run.refs[r][c] as f64,
            ));
        }
    }
    push(&mut cells);

    let mut tiers = Vec::new();
    for (name, x, y) in [
        ("tier.l2_hit", a.run.l2_hit_cycles, b.run.l2_hit_cycles),
        (
            "tier.nested_tlb",
            a.run.nested_tlb_cycles,
            b.run.nested_tlb_cycles,
        ),
        ("tier.pwc", a.run.pwc_cycles, b.run.pwc_cycles),
        (
            "tier.bound_check",
            a.run.bound_check_cycles,
            b.run.bound_check_cycles,
        ),
    ] {
        tiers.extend(mk(name.to_string(), x as f64, y as f64));
    }
    push(&mut tiers);

    let mut scalars = Vec::new();
    for (name, x, y) in [
        ("events", a.run.events, b.run.events),
        ("total_cycles", a.run.total_cycles, b.run.total_cycles),
        (
            "guest_dim_cycles",
            a.run.guest_dimension_cycles(),
            b.run.guest_dimension_cycles(),
        ),
        (
            "nested_dim_cycles",
            a.run.nested_dimension_cycles(),
            b.run.nested_dimension_cycles(),
        ),
        ("escapes", a.run.escapes, b.run.escapes),
        ("fault_events", a.run.fault_events(), b.run.fault_events()),
        ("fault_cycles", a.run.fault_cycles, b.run.fault_cycles),
        ("vm_exits", a.vm_exits, b.vm_exits),
        ("exit_cycles", a.exit_cycles, b.exit_cycles),
    ] {
        scalars.extend(mk(name.to_string(), x as f64, y as f64));
    }
    push(&mut scalars);

    // Telemetry summary counters, when both files carried a summary line.
    let mut counters = Vec::new();
    for (name, x) in &a.summary {
        if let Some((_, y)) = b.summary.iter().find(|(n, _)| n == name) {
            counters.extend(mk(format!("summary.{name}"), *x, *y));
        }
    }
    push(&mut counters);

    out
}

/// Renders a diff as a text report: one [`Delta::render`] line each, or a
/// "no deltas" note when everything was inside tolerance.
pub fn render_diff(deltas: &[Delta], opts: DiffOptions) -> String {
    if deltas.is_empty() {
        return format!(
            "no deltas above tolerance (abs > {}, rel > {:.1}%)\n",
            opts.abs_tol,
            opts.rel_tol * 100.0
        );
    }
    let mut out = String::new();
    for d in deltas {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::WalkMatrix;

    fn doc(cycles_00: u64, l2: u64, events: u64) -> ProfileDoc {
        let mut run = WalkMatrix::default();
        run.cycles[0][0] = cycles_00;
        run.refs[0][0] = cycles_00 / 18;
        run.l2_hit_cycles = l2;
        run.events = events;
        run.total_cycles = cycles_00 + l2;
        ProfileDoc {
            run,
            summary: vec![("p99".into(), events as f64)],
            ..ProfileDoc::default()
        }
    }

    #[test]
    fn reports_every_nonzero_delta_by_default() {
        let a = doc(1800, 70, 100);
        let b = doc(3600, 70, 120);
        let deltas = diff_docs(&a, &b, DiffOptions::default());
        let names: Vec<&str> = deltas.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "cell.gL4xnL4.cycles",
                "cell.gL4xnL4.refs",
                "total_cycles",
                "nested_dim_cycles",
                "events",
                "summary.p99",
            ]
        );
        assert_eq!(deltas[0].change(), 1800.0);
        assert!((deltas[0].rel_change() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tolerances_suppress_noise() {
        let a = doc(1800, 70, 100);
        let b = doc(1818, 70, 101); // +1% cell cycles, +1 event
        let strict = diff_docs(&a, &b, DiffOptions::default());
        assert_eq!(strict.len(), 6);
        let loose = diff_docs(
            &a,
            &b,
            DiffOptions {
                abs_tol: 2.0,
                rel_tol: 0.05,
            },
        );
        assert!(loose.is_empty(), "got: {loose:?}");
    }

    #[test]
    fn identical_docs_render_the_quiet_note() {
        let a = doc(1800, 70, 100);
        let deltas = diff_docs(&a, &a.clone(), DiffOptions::default());
        assert!(deltas.is_empty());
        let report = render_diff(&deltas, DiffOptions::default());
        assert!(report.starts_with("no deltas above tolerance"));
    }
}
