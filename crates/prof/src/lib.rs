//! # mv-prof — walk-cost attribution profiler
//!
//! Where `mv-obs` answers *"how expensive were the walks?"*, this crate
//! answers *"where did the cycles go?"* Every observed walk event carries a
//! per-access [`WalkAttr`](mv_obs::WalkAttr) — a (guest level × nested
//! level) matrix of modeled cycles, populated by the MMU only when the
//! attached observer asks for attribution. This crate aggregates those
//! matrices:
//!
//! - [`WalkMatrix`] — the aggregate over many events, saturating and
//!   associatively mergeable so parallel sweeps stay byte-identical.
//! - [`Profile`] / [`SharedProfile`] — the [`WalkObserver`](mv_obs::WalkObserver)
//!   collector: a run-total matrix, per-epoch matrices keyed like
//!   telemetry epochs, and run-scope VM-exit costs.
//! - [`fold_profile`] / [`fold_matrix`] — folded-stack export
//!   (`gva;gL1;nL2 cycles` lines) for flamegraph tooling.
//! - [`Profile::write_jsonl`] / [`parse_jsonl`] — line-oriented export and
//!   its reader.
//! - [`diff_docs`] — differential telemetry between two exports, with
//!   noise thresholds (the `mv-prof diff` command).
//!
//! The row/column geometry comes from the paper's 2D walk: rows are the
//! guest translation steps (`gL4..gL1` plus the final `data` reference),
//! columns are the nested levels resolving each step's address (`nL4..nL1`)
//! plus `ref`, the access to the guest/native PTE itself. Cell
//! (`data`, `nL2`) holding most of the cycles reads as: "the nested L2
//! lookups for final data addresses dominate" — exactly the quantity the
//! paper's dimensionality-reduction techniques attack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod export;
mod folded;
pub mod json;
mod matrix;
mod profile;

pub use diff::{diff_docs, render_diff, Delta, DiffOptions};
pub use export::{matrix_from_value, matrix_jsonl, parse_jsonl, ProfileDoc};
pub use folded::{fold_matrix, fold_profile, ROOT_FRAME};
pub use matrix::WalkMatrix;
pub use profile::{EpochMatrix, Profile, ProfileConfig, SharedProfile};
