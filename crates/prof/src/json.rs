//! A minimal JSON parser for reading the profiler's own JSONL exports
//! back (the `mv-prof` binary's diff/fold/show commands and the bench
//! harness's history gate). Hand-rolled like the exporters: the workspace
//! is dependency-free by design.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64` (the exporters emit nothing that
    /// needs more than 53 bits of integer precision except raw addresses,
    /// which they emit as hex *strings*).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keyed by a sorted map — key order is not significant in
    /// any of the profiler's schemas.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by any exporter here;
                            // map unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // input is a &str, so the bytes are valid UTF-8.
                    let len = utf8_len(c);
                    let chunk = self
                        .b
                        .get(self.i..self.i + len)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("bad utf-8"))?);
                    self.i += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(self.err("expected : in object"));
            }
            self.i += 1;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_exporter_shapes() {
        let v = parse(
            "{\"type\":\"walk_matrix\",\"scope\":\"run\",\"events\":25,\
             \"refs\":[[1,2],[3,4]],\"mpka\":1.125,\"ok\":true,\"gpa\":null}",
        )
        .unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("walk_matrix"));
        assert_eq!(v.get("events").unwrap().as_u64(), Some(25));
        assert_eq!(v.get("mpka").unwrap().as_f64(), Some(1.125));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("gpa"), Some(&Value::Null));
        let refs = v.get("refs").unwrap().as_arr().unwrap();
        assert_eq!(refs[1].as_arr().unwrap()[0].as_u64(), Some(3));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse("\"a\\\"b\\\\c\\n\\u0041ß\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nAß"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn round_trips_negative_and_exponent_numbers() {
        assert_eq!(parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        // u64::MAX rounds to 2^64 as f64; the saturating cast lands back on
        // u64::MAX, so saturated counters survive a round trip.
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("4294967296").unwrap().as_u64(), Some(1 << 32));
    }
}
