//! The aggregate walk matrix: per-cell cycle and reference totals over many
//! events, with the same associative-merge discipline as `Telemetry`.

use mv_obs::{EscapeOutcome, FaultKind, WalkAttr, WalkEvent, GUEST_ROWS, MID_COLS, NESTED_COLS};

/// Aggregated attribution over a set of walk events — one epoch's worth or
/// a whole run's.
///
/// Every field is a saturating sum, and [`WalkMatrix::merge`] is
/// commutative and associative (saturating addition of non-negative
/// totals), so folding trial matrices in cell order yields byte-identical
/// exports for any worker count — the same discipline as
/// `Telemetry::merge`, property-tested in `tests/prop_matrix.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkMatrix {
    /// Events folded into this matrix.
    pub events: u64,
    /// Memory references per (guest step × nested slot) cell.
    pub refs: [[u64; NESTED_COLS]; GUEST_ROWS],
    /// Modeled cycles per (guest step × nested slot) cell.
    pub cycles: [[u64; NESTED_COLS]; GUEST_ROWS],
    /// Mid-dimension references per (guest step × mid level) cell —
    /// populated only by 3-level (L2 nested-nested) walks.
    pub mid_refs: [[u64; MID_COLS]; GUEST_ROWS],
    /// Mid-dimension cycles per (guest step × mid level) cell.
    pub mid_cycles: [[u64; MID_COLS]; GUEST_ROWS],
    /// Cycles on the L2 TLB hit tier.
    pub l2_hit_cycles: u64,
    /// Cycles on nested-TLB hits inside walks.
    pub nested_tlb_cycles: u64,
    /// Cycles on page-walk-cache hits.
    pub pwc_cycles: u64,
    /// Cycles on segment bound checks.
    pub bound_check_cycles: u64,
    /// Total cycles across the folded events (attributed or not).
    pub total_cycles: u64,
    /// Events whose escape filter flagged the address back to paging.
    pub escapes: u64,
    /// Events that faulted before completing, by [`FaultKind`] minus
    /// `None`: `[guest_not_mapped, nested_not_mapped, write_protected,
    /// mid_not_mapped]`.
    pub faults: [u64; 4],
    /// Cycles charged to faulted events (their partial walks).
    pub fault_cycles: u64,
}

impl WalkMatrix {
    /// Folds one event's attribution in.
    pub fn record(&mut self, e: &WalkEvent) {
        self.events = self.events.saturating_add(1);
        self.add_attr(&e.attr);
        self.total_cycles = self.total_cycles.saturating_add(e.cycles);
        if e.escape == EscapeOutcome::Escaped {
            self.escapes = self.escapes.saturating_add(1);
        }
        if e.fault != FaultKind::None {
            self.faults[e.fault as usize - 1] = self.faults[e.fault as usize - 1].saturating_add(1);
            self.fault_cycles = self.fault_cycles.saturating_add(e.cycles);
        }
    }

    fn add_attr(&mut self, a: &WalkAttr) {
        for r in 0..GUEST_ROWS {
            for c in 0..NESTED_COLS {
                self.refs[r][c] = self.refs[r][c].saturating_add(u64::from(a.refs[r][c]));
                self.cycles[r][c] = self.cycles[r][c].saturating_add(u64::from(a.cycles[r][c]));
            }
            for c in 0..MID_COLS {
                self.mid_refs[r][c] =
                    self.mid_refs[r][c].saturating_add(u64::from(a.mid_refs[r][c]));
                self.mid_cycles[r][c] =
                    self.mid_cycles[r][c].saturating_add(u64::from(a.mid_cycles[r][c]));
            }
        }
        self.l2_hit_cycles = self.l2_hit_cycles.saturating_add(u64::from(a.l2_hit_cycles));
        self.nested_tlb_cycles = self
            .nested_tlb_cycles
            .saturating_add(u64::from(a.nested_tlb_cycles));
        self.pwc_cycles = self.pwc_cycles.saturating_add(u64::from(a.pwc_cycles));
        self.bound_check_cycles = self
            .bound_check_cycles
            .saturating_add(u64::from(a.bound_check_cycles));
    }

    /// Folds another matrix in. Commutative and associative: every field
    /// is a saturating sum.
    pub fn merge(&mut self, other: &WalkMatrix) {
        self.events = self.events.saturating_add(other.events);
        for r in 0..GUEST_ROWS {
            for c in 0..NESTED_COLS {
                self.refs[r][c] = self.refs[r][c].saturating_add(other.refs[r][c]);
                self.cycles[r][c] = self.cycles[r][c].saturating_add(other.cycles[r][c]);
            }
            for c in 0..MID_COLS {
                self.mid_refs[r][c] = self.mid_refs[r][c].saturating_add(other.mid_refs[r][c]);
                self.mid_cycles[r][c] =
                    self.mid_cycles[r][c].saturating_add(other.mid_cycles[r][c]);
            }
        }
        self.l2_hit_cycles = self.l2_hit_cycles.saturating_add(other.l2_hit_cycles);
        self.nested_tlb_cycles = self.nested_tlb_cycles.saturating_add(other.nested_tlb_cycles);
        self.pwc_cycles = self.pwc_cycles.saturating_add(other.pwc_cycles);
        self.bound_check_cycles = self
            .bound_check_cycles
            .saturating_add(other.bound_check_cycles);
        self.total_cycles = self.total_cycles.saturating_add(other.total_cycles);
        self.escapes = self.escapes.saturating_add(other.escapes);
        for (a, b) in self.faults.iter_mut().zip(other.faults) {
            *a = a.saturating_add(b);
        }
        self.fault_cycles = self.fault_cycles.saturating_add(other.fault_cycles);
    }

    /// Sum of all cell cycles (excluding tiers), mid cells included.
    pub fn cell_cycles(&self) -> u64 {
        self.cycles
            .iter()
            .flatten()
            .chain(self.mid_cycles.iter().flatten())
            .fold(0u64, |s, &c| s.saturating_add(c))
    }

    /// Sum of all cell references, mid cells included.
    pub fn cell_refs(&self) -> u64 {
        self.refs
            .iter()
            .flatten()
            .chain(self.mid_refs.iter().flatten())
            .fold(0u64, |s, &r| s.saturating_add(r))
    }

    /// Whether any mid-dimension cell is populated (3-level walks only).
    pub fn has_mid(&self) -> bool {
        self.mid_refs.iter().flatten().any(|&r| r != 0)
            || self.mid_cycles.iter().flatten().any(|&c| c != 0)
    }

    /// Sum of the scalar tiers.
    pub fn tier_cycles(&self) -> u64 {
        self.l2_hit_cycles
            .saturating_add(self.nested_tlb_cycles)
            .saturating_add(self.pwc_cycles)
            .saturating_add(self.bound_check_cycles)
    }

    /// Cycles attributed to cells or tiers — equals [`Self::total_cycles`]
    /// whenever the events came from an attributing MMU (the conservation
    /// invariant checked in `mv-core`).
    pub fn attributed_cycles(&self) -> u64 {
        self.cell_cycles().saturating_add(self.tier_cycles())
    }

    /// Cycles spent in the guest dimension (the `ref` column): reading
    /// guest (or native) page-table entries themselves.
    pub fn guest_dimension_cycles(&self) -> u64 {
        self.cycles
            .iter()
            .fold(0u64, |s, row| s.saturating_add(row[mv_obs::REF_COL]))
    }

    /// Cycles spent in the mid dimension (L1-hypervisor table entry
    /// reads; nonzero only on 3-level walks).
    pub fn mid_dimension_cycles(&self) -> u64 {
        self.mid_cycles
            .iter()
            .flatten()
            .fold(0u64, |s, &c| s.saturating_add(c))
    }

    /// Cycles spent in the nested (host) dimension: all non-`ref` columns
    /// of the main grid.
    pub fn nested_dimension_cycles(&self) -> u64 {
        self.cell_cycles()
            .saturating_sub(self.guest_dimension_cycles())
            .saturating_sub(self.mid_dimension_cycles())
    }

    /// Total faulted events across all kinds.
    pub fn fault_events(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Whether nothing was folded in.
    pub fn is_empty(&self) -> bool {
        *self == WalkMatrix::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_obs::{WalkClass, REF_COL};

    fn event(seq: u64) -> WalkEvent {
        let mut attr = WalkAttr::default();
        attr.record(0, 1, 18);
        attr.record(0, REF_COL, 160);
        attr.record(4, 0, 18);
        attr.add_pwc(1);
        attr.add_l2_hit(0);
        WalkEvent {
            seq,
            gva: seq * 0x1000,
            gpa: Some(seq * 0x2000),
            mode: "4K+4K",
            class: WalkClass::Walk2d,
            write: false,
            cycles: attr.total_cycles(),
            guest_refs: 1,
            nested_refs: 2,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr,
        }
    }

    #[test]
    fn record_accumulates_cells_tiers_and_totals() {
        let mut m = WalkMatrix::default();
        m.record(&event(1));
        m.record(&event(2));
        assert_eq!(m.events, 2);
        assert_eq!(m.refs[0][1], 2);
        assert_eq!(m.cycles[0][REF_COL], 320);
        assert_eq!(m.pwc_cycles, 2);
        assert_eq!(m.attributed_cycles(), m.total_cycles);
        assert_eq!(m.guest_dimension_cycles(), 320);
        assert_eq!(m.nested_dimension_cycles(), 2 * 36);
        assert!(!m.is_empty());
    }

    #[test]
    fn faulted_events_split_out() {
        let mut e = event(1);
        e.fault = FaultKind::NestedNotMapped;
        let mut m = WalkMatrix::default();
        m.record(&e);
        assert_eq!(m.faults, [0, 1, 0, 0]);
        assert_eq!(m.fault_events(), 1);
        assert_eq!(m.fault_cycles, e.cycles);
    }

    #[test]
    fn mid_cells_fold_merge_and_split_out() {
        let mut e = event(1);
        e.attr.record_mid(0, 3, 160);
        e.attr.record_mid(4, 0, 18);
        e.cycles = e.attr.total_cycles();
        let mut m = WalkMatrix::default();
        m.record(&e);
        assert!(m.has_mid());
        assert_eq!(m.mid_refs[0][3], 1);
        assert_eq!(m.mid_cycles[4][0], 18);
        assert_eq!(m.mid_dimension_cycles(), 178);
        assert_eq!(m.attributed_cycles(), m.total_cycles, "conservation");
        // The host split excludes mid cycles.
        assert_eq!(
            m.guest_dimension_cycles() + m.mid_dimension_cycles() + m.nested_dimension_cycles(),
            m.cell_cycles()
        );
        let mut merged = WalkMatrix::default();
        merged.merge(&m);
        assert_eq!(merged, m);
    }

    #[test]
    fn merge_matches_sequential_record() {
        let mut all = WalkMatrix::default();
        let mut a = WalkMatrix::default();
        let mut b = WalkMatrix::default();
        for s in 1..=10 {
            all.record(&event(s));
            if s % 2 == 0 {
                a.record(&event(s));
            } else {
                b.record(&event(s));
            }
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all, "merge is commutative");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = WalkMatrix {
            total_cycles: u64::MAX - 5,
            l2_hit_cycles: u64::MAX,
            ..WalkMatrix::default()
        };
        let b = WalkMatrix {
            total_cycles: 100,
            l2_hit_cycles: 1,
            ..WalkMatrix::default()
        };
        a.merge(&b);
        assert_eq!(a.total_cycles, u64::MAX);
        assert_eq!(a.l2_hit_cycles, u64::MAX);
    }
}
