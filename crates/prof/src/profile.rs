//! The profile collector: a run-total [`WalkMatrix`] plus per-epoch
//! matrices, collected through the [`WalkObserver`] hook.

use std::cell::RefCell;
use std::rc::Rc;

use mv_obs::{WalkEvent, WalkObserver};

use crate::matrix::WalkMatrix;

/// Configuration for a [`Profile`] collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Accesses per epoch matrix; 0 disables epoch collection (only the
    /// run-total matrix is kept). Matches `TelemetryConfig::epoch_len`
    /// semantics so `--profile` epochs line up with telemetry epochs.
    pub epoch_len: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { epoch_len: 10_000 }
    }
}

/// One epoch's attribution matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMatrix {
    /// Epoch index (access `seq / epoch_len`).
    pub index: u64,
    /// The matrix of events observed in this epoch.
    pub matrix: WalkMatrix,
}

impl EpochMatrix {
    /// Folds another snapshot of the **same epoch** in.
    ///
    /// # Panics
    ///
    /// Panics if the indices differ — merging different epochs is a grid
    /// wiring bug (same contract as `EpochSnapshot::merge`).
    pub fn merge(&mut self, other: &EpochMatrix) {
        assert_eq!(
            self.index, other.index,
            "merged epoch matrices must cover the same epoch"
        );
        self.matrix.merge(&other.matrix);
    }
}

/// Run-level walk-cost attribution: a cumulative [`WalkMatrix`] plus
/// periodic per-epoch matrices, and the run-scope VM-exit/fault-servicing
/// costs the driver records after the access loop.
///
/// Implements [`WalkObserver`] (with
/// [`wants_attribution`](WalkObserver::wants_attribution) = `true`); use
/// [`SharedProfile`] to keep a handle across the MMU attachment.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    cfg: ProfileConfig,
    total: WalkMatrix,
    epochs: Vec<EpochMatrix>,
    cur: Option<EpochMatrix>,
    finished: bool,
    vm_exits: u64,
    exit_cycles: u64,
}

impl Profile {
    /// Creates an empty collector.
    pub fn new(cfg: ProfileConfig) -> Self {
        Profile {
            cfg,
            ..Profile::default()
        }
    }

    /// The configuration the collector was built with.
    pub fn config(&self) -> ProfileConfig {
        self.cfg
    }

    /// The run-total matrix.
    pub fn total(&self) -> &WalkMatrix {
        &self.total
    }

    /// Completed epoch matrices (includes the trailing partial epoch once
    /// [`Profile::finish`] has run).
    pub fn epochs(&self) -> &[EpochMatrix] {
        &self.epochs
    }

    /// VM exits recorded at run scope (see [`Profile::record_exits`]).
    pub fn vm_exits(&self) -> u64 {
        self.vm_exits
    }

    /// VM-exit cycles recorded at run scope.
    pub fn exit_cycles(&self) -> u64 {
        self.exit_cycles
    }

    /// Records the run's VM-exit statistics — the machine layer charges
    /// exits outside the walker, so they arrive once, after the access
    /// loop, rather than per event.
    pub fn record_exits(&mut self, vm_exits: u64, exit_cycles: u64) {
        self.vm_exits = self.vm_exits.saturating_add(vm_exits);
        self.exit_cycles = self.exit_cycles.saturating_add(exit_cycles);
    }

    /// Folds another (finished) collector in: the run totals merge, and
    /// epoch matrices with the same index merge pairwise (merge-join on
    /// the sorted index lists — the discipline of `Telemetry::merge`), so
    /// a parallel sweep's merged profile is byte-identical for any worker
    /// count.
    pub fn merge(&mut self, other: &Profile) {
        self.total.merge(&other.total);
        self.vm_exits = self.vm_exits.saturating_add(other.vm_exits);
        self.exit_cycles = self.exit_cycles.saturating_add(other.exit_cycles);

        let mut merged = Vec::with_capacity(self.epochs.len().max(other.epochs.len()));
        let mut mine = std::mem::take(&mut self.epochs).into_iter().peekable();
        let mut theirs = other.epochs.iter().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(a), Some(b)) if a.index == b.index => {
                    let mut a = mine.next().expect("peeked");
                    a.merge(theirs.next().expect("peeked"));
                    merged.push(a);
                }
                (Some(a), Some(b)) if a.index < b.index => {
                    merged.push(mine.next().expect("peeked"));
                    let _ = b;
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    merged.push(*theirs.next().expect("peeked"));
                }
                (Some(_), None) => merged.push(mine.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.epochs = merged;
    }

    /// Closes the collector, flushing the trailing partial epoch.
    /// Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(cur) = self.cur.take() {
            self.epochs.push(cur);
        }
    }
}

impl WalkObserver for Profile {
    fn on_walk(&mut self, e: &WalkEvent) {
        self.total.record(e);
        if let Some(epoch) = e.seq.saturating_sub(1).checked_div(self.cfg.epoch_len) {
            match &self.cur {
                Some(cur) if cur.index != epoch => {
                    let cur = self.cur.take().expect("matched Some");
                    self.epochs.push(cur);
                    self.cur = Some(EpochMatrix {
                        index: epoch,
                        matrix: WalkMatrix::default(),
                    });
                }
                None => {
                    self.cur = Some(EpochMatrix {
                        index: epoch,
                        matrix: WalkMatrix::default(),
                    });
                }
                Some(_) => {}
            }
            self.cur.as_mut().expect("just ensured").matrix.record(e);
        }
    }

    fn wants_attribution(&self) -> bool {
        true
    }
}

/// A clonable handle to a [`Profile`] collector — the attachment side
/// hands a boxed clone to the MMU while keeping its own handle, exactly
/// like `SharedTelemetry`.
#[derive(Debug, Clone, Default)]
pub struct SharedProfile(Rc<RefCell<Profile>>);

impl SharedProfile {
    /// Creates a fresh collector behind a shared handle.
    pub fn new(cfg: ProfileConfig) -> Self {
        SharedProfile(Rc::new(RefCell::new(Profile::new(cfg))))
    }

    /// A boxed observer feeding this handle's collector. The observer
    /// reports `wants_attribution`, so the MMU populates per-cell
    /// attribution while it is attached.
    pub fn observer(&self) -> Box<dyn WalkObserver> {
        Box::new(self.clone())
    }

    /// Finishes the collector and returns it. Clones the inner data only
    /// if another handle is still alive.
    pub fn take(self) -> Profile {
        self.0.borrow_mut().finish();
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl WalkObserver for SharedProfile {
    fn on_walk(&mut self, event: &WalkEvent) {
        self.0.borrow_mut().on_walk(event);
    }

    fn wants_attribution(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_obs::{EscapeOutcome, FaultKind, WalkAttr, WalkClass};

    fn ev(seq: u64, cycles: u64) -> WalkEvent {
        let mut attr = WalkAttr::default();
        attr.record(0, mv_obs::REF_COL, cycles);
        WalkEvent {
            seq,
            gva: seq * 0x1000,
            gpa: None,
            mode: "test",
            class: WalkClass::Walk2d,
            write: false,
            cycles,
            guest_refs: 1,
            nested_refs: 0,
            escape: EscapeOutcome::NotChecked,
            fault: FaultKind::None,
            attr,
        }
    }

    #[test]
    fn epochs_key_on_seq_and_tile_the_run() {
        let mut p = Profile::new(ProfileConfig { epoch_len: 100 });
        p.on_walk(&ev(5, 10));
        p.on_walk(&ev(99, 20));
        p.on_walk(&ev(150, 30));
        p.on_walk(&ev(350, 40));
        p.finish();
        let epochs = p.epochs();
        assert_eq!(epochs.len(), 3);
        assert_eq!(epochs[0].index, 0);
        assert_eq!(epochs[0].matrix.events, 2);
        assert_eq!(epochs[2].index, 3);
        let epoch_events: u64 = epochs.iter().map(|e| e.matrix.events).sum();
        assert_eq!(epoch_events, p.total().events);
        let epoch_cycles: u64 = epochs.iter().map(|e| e.matrix.total_cycles).sum();
        assert_eq!(epoch_cycles, p.total().total_cycles);
    }

    #[test]
    fn zero_epoch_len_keeps_only_the_total() {
        let mut p = Profile::new(ProfileConfig { epoch_len: 0 });
        for s in 1..=20 {
            p.on_walk(&ev(s, 5));
        }
        p.finish();
        assert!(p.epochs().is_empty());
        assert_eq!(p.total().events, 20);
    }

    #[test]
    fn merge_joins_epochs_and_is_associative() {
        let collect = |seqs: &[u64]| {
            let mut p = Profile::new(ProfileConfig { epoch_len: 100 });
            for &s in seqs {
                p.on_walk(&ev(s, s));
            }
            p.finish();
            p
        };
        let (a, b, c) = (collect(&[5, 150]), collect(&[160, 350]), collect(&[20]));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left.total(), right.total());
        assert_eq!(left.epochs(), right.epochs());
        let indices: Vec<u64> = left.epochs().iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![0, 1, 3], "union of epoch indices, sorted");
        assert_eq!(left.epochs()[1].matrix.events, 2, "same-index epochs fold");
    }

    #[test]
    #[should_panic(expected = "same epoch")]
    fn epoch_merge_rejects_mismatched_indices() {
        let mut a = EpochMatrix {
            index: 1,
            matrix: WalkMatrix::default(),
        };
        let b = EpochMatrix {
            index: 2,
            matrix: WalkMatrix::default(),
        };
        a.merge(&b);
    }

    #[test]
    fn shared_handle_round_trips_and_wants_attribution() {
        let shared = SharedProfile::new(ProfileConfig { epoch_len: 10 });
        let mut obs = shared.observer();
        assert!(obs.wants_attribution());
        for s in 1..=25 {
            obs.on_walk(&ev(s, 44));
        }
        drop(obs);
        let mut p = shared.take();
        p.record_exits(3, 900);
        assert_eq!(p.total().events, 25);
        assert_eq!(p.epochs().len(), 3);
        assert_eq!(p.vm_exits(), 3);
        assert_eq!(p.exit_cycles(), 900);
    }
}
