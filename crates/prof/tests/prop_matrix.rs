//! Property tests for the attribution-matrix merge discipline: random
//! event streams, random partitions, and the three properties that make
//! `--jobs N` byte-identical — associativity, commutativity of the fold
//! order across grid cells, and saturation instead of wraparound.

use mv_obs::{
    EscapeOutcome, FaultKind, WalkAttr, WalkClass, WalkEvent, WalkObserver, GUEST_ROWS, MID_COLS,
    NESTED_COLS,
};
use mv_prof::{Profile, ProfileConfig, WalkMatrix};
use mv_types::rng::{split_seed, Rng, StdRng};

const TRIALS: u64 = 64;
const EVENTS_PER_TRIAL: usize = 200;

fn random_event(rng: &mut StdRng, seq: u64) -> WalkEvent {
    let mut attr = WalkAttr::default();
    // A handful of random cell and tier charges per event.
    for _ in 0..rng.gen_range(1..8u64) {
        let r = rng.gen_range(0..GUEST_ROWS as u64) as usize;
        let c = rng.gen_range(0..NESTED_COLS as u64) as usize;
        attr.record(r, c, rng.gen_range(1..200u64));
    }
    if rng.gen_bool(0.3) {
        attr.add_l2_hit(7);
    }
    if rng.gen_bool(0.3) {
        attr.add_nested_tlb(rng.gen_range(1..30u64));
    }
    if rng.gen_bool(0.2) {
        attr.add_pwc(1);
    }
    if rng.gen_bool(0.2) {
        attr.add_bound_check(2);
    }
    let fault = match rng.gen_range(0..20u64) {
        0 => FaultKind::GuestNotMapped,
        1 => FaultKind::NestedNotMapped,
        2 => FaultKind::WriteProtected,
        _ => FaultKind::None,
    };
    WalkEvent {
        seq,
        gva: rng.next_u64() & 0x0000_7fff_ffff_f000,
        gpa: (fault == FaultKind::None).then(|| rng.next_u64() & 0xffff_f000),
        mode: "4K+4K",
        class: WalkClass::Walk2d,
        write: rng.gen_bool(0.5),
        cycles: attr.total_cycles(),
        guest_refs: 4,
        nested_refs: 20,
        escape: if rng.gen_bool(0.1) {
            EscapeOutcome::Escaped
        } else {
            EscapeOutcome::NotChecked
        },
        fault,
        attr,
    }
}

fn stream(seed: u64) -> Vec<WalkEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..=EVENTS_PER_TRIAL as u64)
        .map(|seq| random_event(&mut rng, seq))
        .collect()
}

fn fold(events: &[WalkEvent]) -> WalkMatrix {
    let mut m = WalkMatrix::default();
    for e in events {
        m.record(e);
    }
    m
}

#[test]
fn merge_is_associative_over_random_partitions() {
    for trial in 0..TRIALS {
        let seed = split_seed(0xA11C, trial);
        let events = stream(seed);
        // Partition into three shards by a random per-event draw, the way a
        // parallel sweep splits trials across workers.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut shards: [Vec<WalkEvent>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for e in &events {
            shards[rng.gen_range(0..3u64) as usize].push(*e);
        }
        let [a, b, c] = shards.map(|s| fold(&s));

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) == sequential fold of everything.
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        let sequential = fold(&events);

        assert_eq!(left, right, "associativity failed for seed {seed:#x}");
        assert_eq!(left, sequential, "merge != sequential for seed {seed:#x}");
    }
}

#[test]
fn merge_is_commutative_across_grid_cell_fold_order() {
    for trial in 0..TRIALS {
        let seed = split_seed(0xC0DE, trial);
        let events = stream(seed);
        // Split per-event round-robin into a grid-cell-like shard list,
        // then fold the shards forward and reverse.
        let shards: Vec<WalkMatrix> = events.chunks(17).map(fold).collect();
        let mut forward = WalkMatrix::default();
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = WalkMatrix::default();
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        assert_eq!(forward, reverse, "commutativity failed for seed {seed:#x}");
        assert_eq!(forward, fold(&events));
    }
}

#[test]
fn merge_saturates_every_field_instead_of_wrapping() {
    // A matrix already at the ceiling must absorb any other matrix without
    // wrapping — the same policy as the LatencyHistogram overflow fix.
    let mut hot = WalkMatrix::default();
    hot.record(&{
        let mut rng = StdRng::seed_from_u64(7);
        random_event(&mut rng, 1)
    });
    let ceiling = WalkMatrix {
        events: u64::MAX,
        refs: [[u64::MAX; NESTED_COLS]; GUEST_ROWS],
        cycles: [[u64::MAX; NESTED_COLS]; GUEST_ROWS],
        mid_refs: [[u64::MAX; MID_COLS]; GUEST_ROWS],
        mid_cycles: [[u64::MAX; MID_COLS]; GUEST_ROWS],
        l2_hit_cycles: u64::MAX,
        nested_tlb_cycles: u64::MAX,
        pwc_cycles: u64::MAX,
        bound_check_cycles: u64::MAX,
        total_cycles: u64::MAX,
        escapes: u64::MAX,
        faults: [u64::MAX; 4],
        fault_cycles: u64::MAX,
    };
    let mut merged = ceiling;
    merged.merge(&hot);
    assert_eq!(merged, ceiling, "saturated fields must stay at MAX");
    // And the symmetric direction.
    let mut other = hot;
    other.merge(&ceiling);
    assert_eq!(other, ceiling);
}

#[test]
fn profile_merge_matches_single_collector_for_any_partition() {
    // The end-to-end property behind `--jobs N` byte-identity: feeding the
    // whole stream to one collector equals splitting it across collectors
    // (epoch boundaries preserved) and merging.
    for trial in 0..8 {
        let seed = split_seed(0xBEEF, trial);
        let events = stream(seed);
        let cfg = ProfileConfig { epoch_len: 32 };

        let mut solo = Profile::new(cfg);
        for e in &events {
            solo.on_walk(e);
        }
        solo.record_exits(11, 8800);
        solo.finish();

        let mut workers: Vec<Profile> = (0..4).map(|_| Profile::new(cfg)).collect();
        for (i, e) in events.iter().enumerate() {
            workers[i % 4].on_walk(e);
        }
        workers[2].record_exits(11, 8800);
        let mut merged = Profile::new(cfg);
        for mut w in workers {
            w.finish();
            merged.merge(&w);
        }
        merged.finish();

        assert_eq!(merged.total(), solo.total());
        assert_eq!(merged.epochs(), solo.epochs());
        assert_eq!(merged.vm_exits(), solo.vm_exits());
        assert_eq!(merged.exit_cycles(), solo.exit_cycles());
    }
}
