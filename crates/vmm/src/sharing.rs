//! Content-based page sharing (the Section IX.E study).
//!
//! The VMM scans guest pages for identical contents; duplicates are backed
//! by a single host frame mapped copy-on-write into every sharer. The
//! paper finds this saves under 3% for big-memory workloads — their data
//! is overwhelmingly unique — while VMM segments preclude sharing for
//! segment-covered memory (Table II), so the feature matters most for
//! compute workloads under Base Virtualized / Guest Direct.
//!
//! Page contents are modeled as 64-bit fingerprints supplied by the
//! workload model (two pages share iff fingerprints match, a collision-free
//! idealization that, if anything, *over*states sharing).

use std::collections::HashMap;

use mv_types::{Gpa, Hpa, PageSize, Prot};

use crate::vm::VmId;
use crate::vmm::Vmm;
use crate::VmmError;

/// Result of a sharing scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShareOutcome {
    /// Pages examined across all VMs.
    pub scanned_pages: u64,
    /// Pages now backed by another page's frame.
    pub deduplicated_pages: u64,
    /// Host bytes freed.
    pub bytes_saved: u64,
}

impl Vmm {
    /// Scans the given `(vm, gpa, fingerprint)` triples and deduplicates
    /// pages with identical fingerprints, rewriting nested mappings
    /// copy-on-write. Only 4 KiB-backed pages outside any VMM segment are
    /// eligible (Table II's sharing restriction).
    ///
    /// # Errors
    ///
    /// Fails only on nested-page-table corruption.
    pub fn share_pages(&mut self, pages: &[(VmId, Gpa, u64)]) -> Result<ShareOutcome, VmmError> {
        let mut out = ShareOutcome::default();
        // fingerprint -> canonical (vm, gpa page, host frame)
        let mut canonical: HashMap<u64, (VmId, Gpa, Hpa)> = HashMap::new();

        for &(id, gpa, print) in pages {
            out.scanned_pages += 1;
            {
                let vm = self.vm(id);
                if vm.config().nested_page_size != PageSize::Size4K {
                    continue; // huge backing cannot be shared at 4 KiB
                }
                if vm.segment().is_some_and(|s| s.contains(gpa)) {
                    continue; // segment-covered memory cannot be shared
                }
            }
            let gpa_page = Gpa::new(gpa.as_u64() & !0xfff);
            let gfn = gpa_page.as_u64() >> 12;
            let Some(&frame) = self.vms[&id.0].backing.get(&gfn) else {
                continue; // unbacked pages have no copy to share
            };

            match canonical.get(&print).copied() {
                None => {
                    canonical.insert(print, (id, gpa_page, frame));
                }
                Some((_, _, keep_frame)) if keep_frame == frame => {}
                Some((canon_vm, canon_gpa, keep_frame)) => {
                    // Retarget this page at the canonical frame,
                    // write-protect both sharers, free the duplicate.
                    {
                        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
                        vm.npt
                            .remap(&mut self.hmem, gpa_page, PageSize::Size4K, keep_frame)?;
                    }
                    self.write_protect_shared(id, gpa_page, keep_frame)?;
                    self.write_protect_shared(canon_vm, canon_gpa, keep_frame)?;
                    // Free the duplicate frame.
                    self.owners.remove(&(frame.as_u64() >> 12));
                    self.hmem.free(frame, PageSize::Size4K)?;
                    let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
                    vm.backing.remove(&gfn);
                    vm.counters.backed_pages -= 1;
                    out.deduplicated_pages += 1;
                    out.bytes_saved += PageSize::Size4K.bytes();
                }
            }
        }
        Ok(out)
    }

    fn write_protect_shared(
        &mut self,
        id: VmId,
        gpa_page: Gpa,
        frame: Hpa,
    ) -> Result<(), VmmError> {
        let gfn = gpa_page.as_u64() >> 12;
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        if vm.cow.insert(gfn, frame).is_none() {
            vm.npt
                .protect(&mut self.hmem, gpa_page, PageSize::Size4K, Prot::READ)?;
            vm.counters.shared_pages += 1;
        }
        Ok(())
    }

    /// Breaks copy-on-write after a write fault on a shared page: gives the
    /// writing VM a private copy with write access restored. Costs a VM
    /// exit.
    ///
    /// # Errors
    ///
    /// * [`VmmError::Phys`] — host memory exhausted.
    pub fn break_cow(&mut self, id: VmId, gpa: Gpa) -> Result<(), VmmError> {
        let gpa_page = Gpa::new(gpa.as_u64() & !0xfff);
        let gfn = gpa_page.as_u64() >> 12;
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        vm.counters.vm_exits += 1;
        if vm.cow.remove(&gfn).is_none() {
            // Not shared (e.g. plain write-protection): restore access.
            vm.npt
                .protect(&mut self.hmem, gpa_page, PageSize::Size4K, Prot::RW)?;
            return Ok(());
        }
        let private = self.hmem.alloc(PageSize::Size4K)?;
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        vm.npt
            .remap(&mut self.hmem, gpa_page, PageSize::Size4K, private)?;
        vm.npt
            .protect(&mut self.hmem, gpa_page, PageSize::Size4K, Prot::RW)?;
        vm.backing.insert(gfn, private);
        vm.counters.backed_pages += 1;
        vm.counters.cow_breaks += 1;
        vm.counters.shared_pages = vm.counters.shared_pages.saturating_sub(1);
        self.owners.insert(private.as_u64() >> 12, (id, gpa_page));
        Ok(())
    }
}
