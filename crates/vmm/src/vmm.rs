//! The hypervisor: host memory, VM lifecycle, nested backing, and
//! VMM-segment creation.

use std::collections::HashMap;

use mv_core::{EscapeFilter, Segment};
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Hpa, PageSize, Prot, PAGE_SIZE_4K};

use crate::vm::{Vm, VmConfig, VmId};
use crate::VmmError;

/// Options for [`Vmm::create_vmm_segment`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentOptions {
    /// Tolerate bad host frames inside the segment window by escaping them
    /// through the Bloom filter (Section V).
    pub allow_bad: bool,
    /// Run memory compaction to manufacture contiguity if none exists
    /// (Section IV / Table III).
    pub compact: bool,
    /// Seed for the escape filter's H3 hash matrices.
    pub escape_seed: u64,
}

/// The hypervisor.
///
/// Owns host-physical memory and every VM's nested state. See the crate
/// docs for an example.
#[derive(Debug)]
pub struct Vmm {
    pub(crate) hmem: PhysMem<Hpa>,
    pub(crate) vms: HashMap<u32, Vm>,
    next_id: u32,
    /// Reverse map: host 4 KiB frame index → (vm, gpa page base) for
    /// movable 4 KiB backings, so compaction can fix nested mappings.
    pub(crate) owners: HashMap<u64, (VmId, Gpa)>,
}

impl Vmm {
    /// Creates a hypervisor managing `host_bytes` of host-physical memory.
    pub fn new(host_bytes: u64) -> Self {
        Vmm {
            hmem: PhysMem::new(host_bytes),
            vms: HashMap::new(),
            next_id: 0,
            owners: HashMap::new(),
        }
    }

    /// Host-physical memory (shared).
    pub fn hmem(&self) -> &PhysMem<Hpa> {
        &self.hmem
    }

    /// Host-physical memory (mutable — used by experiments to fragment or
    /// damage the host).
    pub fn hmem_mut(&mut self) -> &mut PhysMem<Hpa> {
        &mut self.hmem
    }

    /// Creates a VM with an empty nested page table.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::PageTable`] if host memory cannot hold the
    /// nested root table.
    pub fn create_vm(&mut self, cfg: VmConfig) -> Result<VmId, VmmError> {
        let id = VmId(self.next_id);
        self.next_id += 1;
        let npt = PageTable::new(&mut self.hmem)?;
        self.vms.insert(id.0, Vm::new(id, cfg, npt));
        Ok(id)
    }

    /// The VM with this id.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id (callers hold ids they created).
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[&id.0]
    }

    /// Borrows the nested page table and host memory for an MMU context.
    pub fn npt_and_hmem(&self, id: VmId) -> (&PageTable<Gpa, Hpa>, &PhysMem<Hpa>) {
        (&self.vms[&id.0].npt, &self.hmem)
    }

    /// Total VM exits this VM has taken — the counter drivers snapshot at
    /// the warmup boundary to charge exits to the measured window.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id (callers hold ids they created).
    pub fn vm_exits(&self, id: VmId) -> u64 {
        self.vm(id).counters().vm_exits
    }

    /// Services a nested page fault: allocates host backing at the VM's
    /// nested page size and maps it. Spurious faults (already mapped) are
    /// no-ops. Each genuine fault costs a VM exit.
    ///
    /// # Errors
    ///
    /// * [`VmmError::OutsideSlots`] — `gpa` beyond the VM's span.
    /// * [`VmmError::Phys`] — host memory exhausted.
    pub fn handle_nested_fault(&mut self, id: VmId, gpa: Gpa) -> Result<(), VmmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        if !vm.in_span(gpa) {
            return Err(VmmError::OutsideSlots { gpa: gpa.as_u64() });
        }
        if vm.npt.translate(&self.hmem, gpa).is_some() {
            return Ok(());
        }
        // Segment-covered gpas map their segment-computed frame — never a
        // fresh allocation — so nested translations stay consistent with
        // the segment arithmetic even when the hardware bypass is off
        // (escaped pages, degraded operation). The backing was reserved at
        // segment creation, so no allocator state changes here.
        if let Some(seg) = vm.segment.filter(|s| !s.is_nullified()) {
            let gpa_page = Gpa::new(gpa.as_u64() & !0xfff);
            if let Some(hpa) = seg.translate(gpa_page) {
                vm.npt
                    .map(&mut self.hmem, gpa_page, hpa, PageSize::Size4K, Prot::RW)?;
                vm.counters.nested_faults += 1;
                vm.counters.vm_exits += 1;
                return Ok(());
            }
        }
        let size = vm.cfg.nested_page_size;
        let gpa_page = Gpa::new(gpa.as_u64() & !size.offset_mask());
        let frame = self.hmem.alloc(size)?;
        vm.npt.map(&mut self.hmem, gpa_page, frame, size, Prot::RW)?;
        vm.backing.insert(vm.gfn(gpa_page), frame);
        if size == PageSize::Size4K {
            self.owners
                .insert(frame.as_u64() >> 12, (id, gpa_page));
        } else {
            // Huge backings are unmovable by compaction (as in Linux).
            self.hmem.set_pinned(frame, true)?;
        }
        vm.counters.nested_faults += 1;
        vm.counters.vm_exits += 1;
        vm.counters.backed_pages += size.covered_4k_pages();
        Ok(())
    }

    /// Records a VM exit that did no mapping work (interrupt storm, host
    /// preemption): charges the exit to the VM without touching state.
    ///
    /// # Errors
    ///
    /// [`VmmError::NoSuchVm`] for an unknown id.
    pub fn record_spurious_exit(&mut self, id: VmId) -> Result<(), VmmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        vm.counters.vm_exits += 1;
        Ok(())
    }

    /// Eagerly backs an entire guest-physical range (experiments prefill
    /// so that steady-state measurements see no nested faults).
    ///
    /// # Errors
    ///
    /// Propagates the first backing failure.
    pub fn map_guest_range(&mut self, id: VmId, range: AddrRange<Gpa>) -> Result<(), VmmError> {
        let step = self.vm(id).cfg.nested_page_size.bytes();
        let mut gpa = range.start().as_u64() & !(step - 1);
        while gpa < range.end().as_u64() {
            self.handle_nested_fault(id, Gpa::new(gpa))?;
            gpa += step;
        }
        Ok(())
    }

    /// Creates the VMM segment covering guest-physical range `cover`:
    /// finds contiguous host backing (optionally via compaction), migrates
    /// any existing scattered backing into it, escapes bad frames through a
    /// Bloom filter, and pre-maps filter false positives so escaped
    /// translations always succeed (Section V).
    ///
    /// Returns the programmed segment registers; the escape filter (if one
    /// was needed) is available via [`Vm::escape_filter`].
    ///
    /// # Errors
    ///
    /// * [`VmmError::HostFragmented`] — no contiguous run and compaction
    ///   disabled or impossible.
    pub fn create_vmm_segment(
        &mut self,
        id: VmId,
        cover: AddrRange<Gpa>,
        opts: SegmentOptions,
    ) -> Result<Segment<Gpa, Hpa>, VmmError> {
        if !self.vms.contains_key(&id.0) {
            return Err(VmmError::NoSuchVm { id: id.0 });
        }
        let len = cover.len();

        // 1. Contiguous host backing.
        let (backing, bad) = if opts.compact {
            // Pin every nested-page-table page — page tables are unmovable
            // kernel allocations in the real system too. Everything else
            // (4 KiB backings, anonymous filler) is movable; backings are
            // fixed up through the owners map after the move, and filler
            // has no mapping to fix.
            let mut temp_pinned = Vec::new();
            for vm in self.vms.values() {
                for page in vm.npt.table_pages(&self.hmem) {
                    self.hmem.set_pinned(page, true)?;
                    temp_pinned.push(page.as_u64() >> 12);
                }
            }
            // Collect the moves and fix nested mappings afterwards: the
            // callback cannot touch host memory (compaction holds it), and
            // compaction itself never consults the nested page tables.
            let mut moves: Vec<(Hpa, Hpa)> = Vec::new();
            let outcome = self.hmem.compact_and_reserve(
                len,
                PageSize::Size2M,
                opts.allow_bad,
                &mut |old, new| moves.push((old, new)),
            );
            for start in temp_pinned {
                self.hmem.set_pinned(Hpa::new(start << 12), false)?;
            }
            let outcome = outcome?;
            for (old, new) in moves {
                // Frames without an owner are anonymous filler (other
                // tenants' movable pages) — nothing of ours points at them.
                let Some((vm_id, gpa_page)) = self.owners.remove(&(old.as_u64() >> 12)) else {
                    continue;
                };
                let vm = self
                    .vms
                    .get_mut(&vm_id.0)
                    .ok_or(VmmError::NoSuchVm { id: vm_id.0 })?;
                vm.npt
                    .remap(&mut self.hmem, gpa_page, PageSize::Size4K, new)?;
                vm.backing.insert(vm.gfn(gpa_page), new);
                self.owners.insert(new.as_u64() >> 12, (vm_id, gpa_page));
            }
            (outcome.range, outcome.bad_inside)
        } else if opts.allow_bad {
            let (range, bad) = self
                .hmem
                .reserve_contiguous_allowing_bad(len, PageSize::Size2M)?;
            (range, bad)
        } else {
            (self.hmem.reserve_contiguous(len, PageSize::Size2M)?, Vec::new())
        };

        let seg = Segment::map(cover, backing.start());
        let offset = backing.start().as_u64().wrapping_sub(cover.start().as_u64());

        // 2. Escape filter for truly bad frames.
        let mut filter = (!bad.is_empty()).then(|| EscapeFilter::new(opts.escape_seed));
        let bad_gpas: Vec<Gpa> = bad
            .iter()
            .map(|h| Gpa::new(h.as_u64().wrapping_sub(offset)))
            .collect();

        // 3. Migrate existing scattered backing into the segment.
        let vm = self
            .vms
            .get_mut(&id.0)
            .ok_or(VmmError::NoSuchVm { id: id.0 })?;
        let in_range: Vec<(u64, Hpa)> = vm
            .backing
            .iter()
            .map(|(&gfn, &frame)| (gfn, frame))
            .filter(|&(gfn, _)| {
                let gpa = Gpa::new(gfn << vm.cfg.nested_page_size.shift());
                cover.contains(gpa)
            })
            .collect();
        for (gfn, old_frame) in in_range {
            let size = vm.cfg.nested_page_size;
            let gpa_page = Gpa::new(gfn << size.shift());
            let target = Hpa::new(gpa_page.as_u64().wrapping_add(offset));
            for off in (0..size.bytes()).step_by(PAGE_SIZE_4K as usize) {
                let dst = target.add(off);
                if !self.hmem.bad_frames().is_bad(dst) {
                    self.hmem.relocate_contents(old_frame.add(off), dst);
                }
            }
            // The nested entry now points into the segment backing, so the
            // mapping stays coherent if the segment is later dropped (e.g.
            // a downgrade to Guest Direct for live migration).
            vm.npt.remap(&mut self.hmem, gpa_page, size, target)?;
            if size == PageSize::Size4K {
                self.owners.remove(&(old_frame.as_u64() >> 12));
            } else {
                self.hmem.set_pinned(old_frame, false)?;
            }
            self.hmem.free(old_frame, size)?;
            vm.backing.insert(gfn, target);
        }

        // 4. Remap bad frames to spares and insert them into the filter.
        for gpa_b in &bad_gpas {
            let spare = self.hmem.alloc(PageSize::Size4K)?;
            self.owners
                .insert(spare.as_u64() >> 12, (id, Gpa::new(gpa_b.as_u64() & !0xfff)));
            // Map (or remap) the 4 KiB nested entry for the escaped page.
            match vm.npt.translate(&self.hmem, *gpa_b) {
                Some(t) if t.size == PageSize::Size4K => {
                    vm.npt.remap(&mut self.hmem, Gpa::new(gpa_b.as_u64() & !0xfff), PageSize::Size4K, spare)?;
                }
                Some(_) => {
                    return Err(VmmError::PageTable(mv_pt::PtError::HugeConflict {
                        va: gpa_b.as_u64(),
                        level: 2,
                    }))
                }
                None => {
                    vm.npt.map(
                        &mut self.hmem,
                        Gpa::new(gpa_b.as_u64() & !0xfff),
                        spare,
                        PageSize::Size4K,
                        Prot::RW,
                    )?;
                }
            }
            // The filter was created above iff any bad frames exist, so it
            // is always present on this path.
            if let Some(f) = filter.as_mut() {
                f.insert(gpa_b.as_u64());
            }
        }

        // 5. Pre-map filter false positives: any page the filter claims is
        // escaped must have a working nested mapping.
        if let Some(f) = &filter {
            let mut gpa = cover.start().as_u64();
            while gpa < cover.end().as_u64() {
                if f.maybe_contains(gpa) && vm.npt.translate(&self.hmem, Gpa::new(gpa)).is_none() {
                    vm.npt.map(
                        &mut self.hmem,
                        Gpa::new(gpa),
                        Hpa::new(gpa.wrapping_add(offset)),
                        PageSize::Size4K,
                        Prot::RW,
                    )?;
                }
                gpa += PAGE_SIZE_4K;
            }
        }

        vm.segment = Some(seg);
        vm.segment_backing = Some(backing);
        vm.escape = filter;
        // Segment backing is unmovable: protect it from future compaction.
        self.hmem.set_pinned_range(&backing, true)?;
        Ok(seg)
    }

    /// Swaps out the host backing of the guest page at `gpa`: the nested
    /// mapping is removed and the host frame freed; the next access takes a
    /// nested fault and swaps the page back in.
    ///
    /// Table II: under Dual/VMM Direct, VMM swapping is *limited* —
    /// segment-covered guest-physical pages translate by arithmetic and
    /// never take nested faults, so they cannot be swapped.
    ///
    /// # Errors
    ///
    /// * [`VmmError::SwapPrecluded`] — the page is covered by the VMM
    ///   segment, is shared copy-on-write, or uses a huge backing.
    pub fn swap_out_guest_page(&mut self, id: VmId, gpa: Gpa) -> Result<(), VmmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        let gpa_page = Gpa::new(gpa.as_u64() & !0xfff);
        if vm.segment.is_some_and(|s| s.contains(gpa_page)) {
            return Err(VmmError::SwapPrecluded {
                gpa: gpa_page.as_u64(),
                why: "page is covered by the VMM segment (Table II)",
            });
        }
        if vm.cfg.nested_page_size != PageSize::Size4K {
            return Err(VmmError::SwapPrecluded {
                gpa: gpa_page.as_u64(),
                why: "huge nested backings are not swapped in this model",
            });
        }
        let gfn = gpa_page.as_u64() >> 12;
        if vm.cow.contains_key(&gfn) {
            return Err(VmmError::SwapPrecluded {
                gpa: gpa_page.as_u64(),
                why: "shared (copy-on-write) pages are not swapped",
            });
        }
        let Some(frame) = vm.backing.remove(&gfn) else {
            return Ok(()); // unbacked pages have nothing to swap
        };
        vm.npt.unmap(&mut self.hmem, gpa_page, PageSize::Size4K)?;
        self.owners.remove(&(frame.as_u64() >> 12));
        self.hmem.free(frame, PageSize::Size4K)?;
        vm.counters.backed_pages -= 1;
        vm.counters.vm_exits += 1;
        Ok(())
    }

    /// Host half of ballooning: reclaims the backing of guest frames the
    /// balloon driver surrendered. Only 4 KiB-backed VMs release memory;
    /// huge backings are merely counted (they cannot be split, as in
    /// Linux/THP).
    ///
    /// # Errors
    ///
    /// Returns accounting errors on corruption only.
    pub fn balloon_reclaim(&mut self, id: VmId, frames: &[Gpa]) -> Result<u64, VmmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        let mut freed = 0;
        for &gpa in frames {
            vm.counters.ballooned_pages += 1;
            if vm.cfg.nested_page_size != PageSize::Size4K {
                continue;
            }
            let gfn = vm.gfn(gpa);
            let in_segment = vm
                .segment_backing
                .as_ref()
                .zip(vm.backing.get(&gfn))
                .is_some_and(|(b, f)| b.contains(*f));
            if in_segment {
                continue; // Table II: ballooning is limited under segments
            }
            if let Some(frame) = vm.backing.remove(&gfn) {
                vm.npt
                    .unmap(&mut self.hmem, Gpa::new(gpa.as_u64() & !0xfff), PageSize::Size4K)?;
                self.owners.remove(&(frame.as_u64() >> 12));
                self.hmem.free(frame, PageSize::Size4K)?;
                vm.counters.backed_pages -= 1;
                freed += 1;
            }
        }
        vm.counters.vm_exits += 1;
        Ok(freed)
    }
}
