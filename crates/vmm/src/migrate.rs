//! Pre-copy live migration with dirty tracking.
//!
//! Live migration is *why* Guest Direct mode exists: it keeps 4 KiB nested
//! page tables in the VMM, so the hypervisor can still write-protect guest
//! pages, track dirtying, and stream the VM to another host while the
//! guest segment keeps translation near-native (Table II: VMM segments
//! preclude this; Dual/VMM Direct must first drop their segment).
//!
//! The model implements the classic pre-copy loop:
//!
//! 1. write-protect everything and enqueue all backed pages;
//! 2. each **round** sends the current dirty set and re-protects it;
//!    writes during the round trap (VM exit), re-dirtying pages;
//! 3. when the dirty set stops shrinking (or is small enough), stop the VM
//!    and send the remainder — the **downtime set**.

use std::collections::BTreeSet;

use mv_types::{Gpa, PageSize, Prot};

use crate::vm::VmId;
use crate::vmm::Vmm;
use crate::VmmError;

/// An in-progress pre-copy migration of one VM.
#[derive(Debug)]
pub struct Migration {
    vm: VmId,
    /// 4 KiB guest frames dirtied since they were last sent.
    dirty: BTreeSet<u64>,
    stats: MigrationStats,
}

/// Statistics of a completed (or in-progress) migration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Pre-copy rounds performed.
    pub rounds: u64,
    /// Pages transferred during pre-copy (guest still running).
    pub precopy_pages: u64,
    /// Pages transferred during the stop-and-copy phase (downtime).
    pub downtime_pages: u64,
    /// Write faults absorbed for dirty tracking.
    pub tracking_faults: u64,
}

impl Migration {
    /// The VM being migrated.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Pages currently dirty (pending transfer).
    pub fn dirty_pages(&self) -> usize {
        self.dirty.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }
}

impl Vmm {
    /// Begins pre-copy migration of `id`: write-protects every backed page
    /// and marks the whole footprint dirty (the round-0 transfer set).
    ///
    /// # Errors
    ///
    /// * [`VmmError::MigrationPrecluded`] — the VM has a VMM segment
    ///   (segment-covered memory cannot be tracked; drop to Guest Direct
    ///   first, per Table II) or uses huge nested pages.
    pub fn start_migration(&mut self, id: VmId) -> Result<Migration, VmmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmmError::NoSuchVm { id: id.0 })?;
        if vm.segment.is_some() {
            return Err(VmmError::MigrationPrecluded {
                why: "VMM segment precludes dirty tracking; drop the segment (Guest Direct) first",
            });
        }
        if vm.cfg.nested_page_size != PageSize::Size4K {
            return Err(VmmError::MigrationPrecluded {
                why: "dirty tracking requires 4 KiB nested pages",
            });
        }
        let mut dirty = BTreeSet::new();
        for (&gfn, _) in vm.backing.iter() {
            let gpa = Gpa::new(gfn << 12);
            vm.npt
                .protect(&mut self.hmem, gpa, PageSize::Size4K, Prot::READ)?;
            dirty.insert(gfn);
        }
        Ok(Migration {
            vm: id,
            dirty,
            stats: MigrationStats::default(),
        })
    }

    /// Absorbs a write-protection fault during migration: re-enables write
    /// access and marks the page dirty. Costs a VM exit.
    ///
    /// Pages shared copy-on-write are *not* handled here — route those to
    /// [`Vmm::break_cow`] (the CoW map distinguishes them).
    ///
    /// # Errors
    ///
    /// Fails on nested-table corruption only.
    pub fn migration_write_fault(
        &mut self,
        m: &mut Migration,
        gpa: Gpa,
    ) -> Result<(), VmmError> {
        let gfn = gpa.as_u64() >> 12;
        let vm = self.vms.get_mut(&m.vm.0).ok_or(VmmError::NoSuchVm { id: m.vm.0 })?;
        vm.counters.vm_exits += 1;
        m.stats.tracking_faults += 1;
        vm.npt.protect(
            &mut self.hmem,
            Gpa::new(gpa.as_u64() & !0xfff),
            PageSize::Size4K,
            Prot::RW,
        )?;
        m.dirty.insert(gfn);
        Ok(())
    }

    /// Performs one pre-copy round: "sends" the current dirty set and
    /// re-write-protects those pages so new writes are tracked. Returns
    /// the number of pages sent this round.
    ///
    /// # Errors
    ///
    /// Fails on nested-table corruption only.
    pub fn migration_round(&mut self, m: &mut Migration) -> Result<u64, VmmError> {
        let vm = self.vms.get_mut(&m.vm.0).ok_or(VmmError::NoSuchVm { id: m.vm.0 })?;
        let sending: Vec<u64> = m.dirty.iter().copied().collect();
        m.dirty.clear();
        for gfn in &sending {
            // The page may have been ballooned out mid-migration.
            if vm.backing.contains_key(gfn) {
                vm.npt.protect(
                    &mut self.hmem,
                    Gpa::new(gfn << 12),
                    PageSize::Size4K,
                    Prot::READ,
                )?;
            }
        }
        m.stats.rounds += 1;
        m.stats.precopy_pages += sending.len() as u64;
        Ok(sending.len() as u64)
    }

    /// Stop-and-copy: sends the remaining dirty set (the downtime cost),
    /// restores write access everywhere, and returns the final statistics.
    ///
    /// # Errors
    ///
    /// Fails on nested-table corruption only.
    pub fn complete_migration(&mut self, mut m: Migration) -> Result<MigrationStats, VmmError> {
        m.stats.downtime_pages = m.dirty.len() as u64;
        let vm = self.vms.get_mut(&m.vm.0).ok_or(VmmError::NoSuchVm { id: m.vm.0 })?;
        let backed: Vec<u64> = vm.backing.keys().copied().collect();
        for gfn in backed {
            vm.npt.protect(
                &mut self.hmem,
                Gpa::new(gfn << 12),
                PageSize::Size4K,
                Prot::RW,
            )?;
        }
        Ok(m.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use crate::vmm::SegmentOptions;
    use mv_types::{AddrRange, MIB};

    fn backed_vmm() -> (Vmm, VmId) {
        let mut vmm = Vmm::new(128 * MIB);
        let vm = vmm.create_vm(VmConfig::new(16 * MIB, PageSize::Size4K)).unwrap();
        vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(4 * MIB)))
            .unwrap();
        (vmm, vm)
    }

    #[test]
    fn start_protects_and_enqueues_everything() {
        let (mut vmm, vm) = backed_vmm();
        let m = vmm.start_migration(vm).unwrap();
        assert_eq!(m.dirty_pages(), 1024);
        let (npt, hmem) = vmm.npt_and_hmem(vm);
        assert_eq!(
            npt.translate(hmem, Gpa::new(0x1000)).unwrap().prot,
            Prot::READ
        );
    }

    #[test]
    fn write_faults_redirty_pages() {
        let (mut vmm, vm) = backed_vmm();
        let mut m = vmm.start_migration(vm).unwrap();
        vmm.migration_round(&mut m).unwrap();
        assert_eq!(m.dirty_pages(), 0);
        vmm.migration_write_fault(&mut m, Gpa::new(0x2345)).unwrap();
        assert_eq!(m.dirty_pages(), 1);
        let (npt, hmem) = vmm.npt_and_hmem(vm);
        assert_eq!(npt.translate(hmem, Gpa::new(0x2000)).unwrap().prot, Prot::RW);
        assert_eq!(m.stats().tracking_faults, 1);
    }

    #[test]
    fn precopy_converges_and_completes() {
        let (mut vmm, vm) = backed_vmm();
        let mut m = vmm.start_migration(vm).unwrap();
        // Round 0 sends everything.
        assert_eq!(vmm.migration_round(&mut m).unwrap(), 1024);
        // The guest dirties 3 pages during the round.
        for gpa in [0x1000u64, 0x5000, 0x9000] {
            vmm.migration_write_fault(&mut m, Gpa::new(gpa)).unwrap();
        }
        assert_eq!(vmm.migration_round(&mut m).unwrap(), 3);
        // One last write, then stop-and-copy.
        vmm.migration_write_fault(&mut m, Gpa::new(0x1000)).unwrap();
        let stats = vmm.complete_migration(m).unwrap();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.precopy_pages, 1027);
        assert_eq!(stats.downtime_pages, 1);
        // Everything is writable again.
        let (npt, hmem) = vmm.npt_and_hmem(vm);
        assert_eq!(npt.translate(hmem, Gpa::new(0x7000)).unwrap().prot, Prot::RW);
    }

    #[test]
    fn vmm_segment_precludes_migration() {
        let (mut vmm, vm) = backed_vmm();
        vmm.create_vmm_segment(
            vm,
            AddrRange::new(Gpa::ZERO, Gpa::new(16 * MIB)),
            SegmentOptions::default(),
        )
        .unwrap();
        let err = vmm.start_migration(vm).unwrap_err();
        assert!(matches!(err, VmmError::MigrationPrecluded { .. }));
    }

    #[test]
    fn huge_nested_pages_preclude_migration() {
        let mut vmm = Vmm::new(128 * MIB);
        let vm = vmm.create_vm(VmConfig::new(16 * MIB, PageSize::Size2M)).unwrap();
        let err = vmm.start_migration(vm).unwrap_err();
        assert!(matches!(err, VmmError::MigrationPrecluded { .. }));
    }
}
