//! Shadow paging (the Section IX.D alternative).
//!
//! With shadow paging the VMM composes the guest page table (gVA→gPA) and
//! its own nested mapping (gPA→hPA) into a *shadow* table (gVA→hPA) that
//! the hardware walks directly — a 1D walk on TLB misses. The price is
//! coherence: every guest page-table update traps to the VMM (a VM exit)
//! so the shadow copy can be fixed, which is exactly why workloads with
//! frequent mapping churn (memcached, GemsFDTD, omnetpp, canneal) suffer
//! under shadow paging while static workloads do fine.

use mv_guestos::FaultFix;
use mv_pt::PageTable;
use mv_types::{Gpa, Gva, Hpa, PageSize};

use crate::vm::VmId;
use crate::vmm::Vmm;
use crate::{VmmError, VM_EXIT_CYCLES};

/// Shadow page tables for one VM: one gVA→hPA table per guest process.
#[derive(Debug)]
pub struct ShadowPaging {
    vm: VmId,
    tables: std::collections::HashMap<u32, PageTable<Gva, Hpa>>,
    vm_exits: u64,
    exit_cycles: u64,
}

impl ShadowPaging {
    /// Creates an empty shadow state for `vm`.
    pub fn new(vm: VmId) -> Self {
        ShadowPaging {
            vm,
            tables: std::collections::HashMap::new(),
            vm_exits: 0,
            exit_cycles: 0,
        }
    }

    /// VM exits taken to keep shadows coherent.
    pub fn vm_exits(&self) -> u64 {
        self.vm_exits
    }

    /// Cycles spent in those exits.
    pub fn exit_cycles(&self) -> u64 {
        self.exit_cycles
    }

    /// Records a VM exit that did no shadow work (interrupt storm, host
    /// preemption): charges one exit at the standard cost.
    pub fn record_spurious_exit(&mut self) {
        self.vm_exits += 1;
        self.exit_cycles += VM_EXIT_CYCLES;
    }

    /// The shadow table for guest process `pid`, creating it on first use.
    ///
    /// # Errors
    ///
    /// Fails if host memory cannot supply the root table page.
    pub fn shadow_for(
        &mut self,
        vmm: &mut Vmm,
        pid: u32,
    ) -> Result<&PageTable<Gva, Hpa>, VmmError> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.tables.entry(pid) {
            e.insert(PageTable::new(vmm.hmem_mut())?);
        }
        Ok(&self.tables[&pid])
    }

    /// Intercepts one guest page-table update (the guest mapped `fix`):
    /// takes a VM exit, composes gPA→hPA through the VM's backing, and
    /// installs the combined gVA→hPA mapping in the shadow.
    ///
    /// The shadow maps at the *nested* granularity: a guest 2 MiB mapping
    /// over 4 KiB nested backing becomes 512 shadow entries, as real
    /// shadow implementations do.
    ///
    /// # Errors
    ///
    /// Fails if the guest page has no host backing yet and none can be
    /// allocated.
    pub fn on_guest_update(&mut self, vmm: &mut Vmm, pid: u32, fix: &FaultFix) -> Result<(), VmmError> {
        self.vm_exits += 1;
        self.exit_cycles += VM_EXIT_CYCLES;
        let vm_id = self.vm;
        let shadow = match self.tables.entry(pid) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PageTable::new(vmm.hmem_mut())?)
            }
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        };

        // Compose each 4 KiB (or larger, when both levels align) piece.
        let nested_size = vmm.vm(vm_id).config().nested_page_size;
        let piece = nested_size.min(fix.size);
        let mut off = 0;
        while off < fix.size.bytes() {
            let gpa = Gpa::new(fix.gpa.as_u64() + off);
            vmm.handle_nested_fault(vm_id, gpa)?;
            let (npt, hmem_ref) = vmm.npt_and_hmem(vm_id);
            // The nested fault above just backed this gpa; a miss here means
            // the nested table is corrupt.
            let hpa = npt
                .translate(hmem_ref, gpa)
                .ok_or(VmmError::PageTable(mv_pt::PtError::NotMapped {
                    va: gpa.as_u64(),
                }))?
                .pa;
            let hpa_page = Hpa::new(hpa.as_u64() & !piece.offset_mask());
            let va = Gva::new(fix.va_page.as_u64() + off);
            match shadow.map(vmm.hmem_mut(), va, hpa_page, piece, fix.prot) {
                Ok(()) => {}
                Err(mv_pt::PtError::AlreadyMapped { .. }) => {
                    shadow.remap(vmm.hmem_mut(), va, piece, hpa_page)?;
                }
                Err(e) => return Err(e.into()),
            }
            off += piece.bytes();
        }
        Ok(())
    }

    /// Intercepts a guest unmap: VM exit plus shadow invalidation.
    ///
    /// # Errors
    ///
    /// Fails only on accounting corruption.
    pub fn on_guest_unmap(
        &mut self,
        vmm: &mut Vmm,
        pid: u32,
        va: Gva,
        size: PageSize,
    ) -> Result<(), VmmError> {
        self.vm_exits += 1;
        self.exit_cycles += VM_EXIT_CYCLES;
        if let Some(shadow) = self.tables.get_mut(&pid) {
            let nested_size = vmm.vm(self.vm).config().nested_page_size;
            let piece = nested_size.min(size);
            let mut off = 0;
            while off < size.bytes() {
                let _ = shadow.unmap(
                    vmm.hmem_mut(),
                    Gva::new(va.as_u64() + off),
                    piece,
                );
                off += piece.bytes();
            }
        }
        Ok(())
    }

    /// Read access to a process's shadow table (for building MMU contexts).
    ///
    /// # Panics
    ///
    /// Panics if no shadow exists for `pid` yet.
    pub fn table(&self, pid: u32) -> &PageTable<Gva, Hpa> {
        &self.tables[&pid]
    }
}
