//! Self-ballooning and I/O-gap reclamation (Section IV / VI.C).
//!
//! Self-ballooning converts *fragmented* free guest-physical memory into
//! *contiguous* free guest-physical memory without copying:
//!
//! 1. the guest balloon driver pins and surrenders fragmented free frames;
//! 2. the VMM reclaims their host backing;
//! 3. the VMM hot-adds the same amount of fresh, contiguous guest-physical
//!    address space (from the pre-provisioned offline region);
//! 4. the guest creates its guest segment in the new contiguous range.
//!
//! I/O-gap reclamation uses hot-*unplug* instead of ballooning, because
//! unplug removes *specific* addresses (those below the gap), letting a
//! single segment cover almost all guest memory.

use mv_guestos::GuestOs;
use mv_types::{AddrRange, Gpa, PAGE_SIZE_4K};

use crate::vm::VmId;
use crate::vmm::Vmm;
use crate::VmmError;

impl Vmm {
    /// Runs the self-ballooning flow for `bytes` of contiguous guest
    /// memory, returning the newly online contiguous range.
    ///
    /// # Errors
    ///
    /// * [`VmmError::Guest`] — the guest lacks free memory to balloon or
    ///   offline capacity to hot-add.
    pub fn self_balloon(
        &mut self,
        id: VmId,
        guest: &mut GuestOs,
        bytes: u64,
    ) -> Result<AddrRange<Gpa>, VmmError> {
        let frames = (bytes / PAGE_SIZE_4K) as usize;
        // 1–2. Balloon out fragmented frames and reclaim their backing.
        let surrendered = guest.balloon_inflate(frames)?;
        self.balloon_reclaim(id, &surrendered)?;
        // 3. Hot-add the same amount of contiguous guest-physical memory.
        let added = guest.hotplug_add(bytes)?;
        Ok(added)
    }

    /// Runs the I/O-gap reclamation flow: the guest hot-unplugs its low
    /// memory (keeping `keep` bytes to boot), the VMM reclaims the backing
    /// of the removed range, and the guest hot-adds the same amount above
    /// the gap. Returns the newly online high range.
    ///
    /// # Errors
    ///
    /// * [`VmmError::Guest`] — low memory is busy or capacity exhausted.
    pub fn reclaim_io_gap(
        &mut self,
        id: VmId,
        guest: &mut GuestOs,
        keep: u64,
    ) -> Result<AddrRange<Gpa>, VmmError> {
        let removed = guest.unplug_low_memory(keep)?;
        if removed == 0 {
            return Err(VmmError::Guest(mv_guestos::OsError::Hotplug {
                what: "nothing to unplug below the gap",
            }));
        }
        // Reclaim host backing of the unplugged range, if any was mapped.
        let Some(&unplugged) = guest.unplugged().last() else {
            return Err(VmmError::Guest(mv_guestos::OsError::Hotplug {
                what: "unplug reported progress but recorded no region",
            }));
        };
        let gpas: Vec<Gpa> = unplugged.pages(mv_types::PageSize::Size4K).collect();
        self.balloon_reclaim(id, &gpas)?;
        let added = guest.hotplug_add(removed)?;
        Ok(added)
    }
}
