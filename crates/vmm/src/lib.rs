//! Hypervisor (VMM) model.
//!
//! Models the KVM-side software of the paper's prototype: per-VM nested
//! page tables with demand backing, VMM-segment creation (with boot-time
//! reservation, memory compaction, and escape-filter handling of bad host
//! frames), the host half of ballooning and self-ballooning, shadow paging
//! (the Section IX.D comparison), and content-based page sharing (the
//! Section IX.E study).
//!
//! The VMM owns host-physical memory; guests own their guest-physical
//! spaces. Cross-layer flows (self-ballooning, I/O-gap reclamation) are
//! explicit methods taking both sides.
//!
//! # Example
//!
//! ```
//! use mv_vmm::{VmConfig, Vmm};
//! use mv_types::{Gpa, PageSize, MIB};
//!
//! let mut vmm = Vmm::new(256 * MIB);
//! let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size2M))?;
//! vmm.handle_nested_fault(vm, Gpa::new(0x123_4000))?; // demand backing
//! let (npt, hmem) = vmm.npt_and_hmem(vm);
//! assert!(npt.translate(hmem, Gpa::new(0x123_4000)).is_some());
//! # Ok::<(), mv_vmm::VmmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Fault-reachable library code must degrade via typed errors, never abort
// (tests may still unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod l2;
mod migrate;
mod selfballoon;
mod shadow;
mod sharing;
mod vm;
mod vmm;

pub use error::VmmError;
pub use l2::{L1Counters, L1Hypervisor, L2_EXIT_MULTIPLIER};
pub use migrate::{Migration, MigrationStats};
pub use shadow::ShadowPaging;
pub use sharing::ShareOutcome;
pub use vm::{Vm, VmConfig, VmCounters, VmId};
pub use vmm::{SegmentOptions, Vmm};

/// Cycles charged per VM exit (hypervisor round trip). The value matches
/// the order of magnitude of hardware-assisted exits on the paper's era of
/// hardware (~1–2k cycles).
pub const VM_EXIT_CYCLES: u64 = 1500;
