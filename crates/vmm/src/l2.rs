//! The L1 hypervisor of a nested-nested (L2) virtualization stack.
//!
//! Under L2 virtualization the paper's two-level picture grows a middle
//! layer: an L2 guest's physical space (space A) is mapped by an L1
//! hypervisor onto *its* physical space (space B), which the L0 host maps
//! onto host-physical memory. [`L1Hypervisor`] models that middle layer:
//! a mid page table (A→B) with demand backing, an optional mid direct
//! segment, and exit accounting — every L1 exit is emulated by L0, so it
//! costs a multiple of a plain VM exit.

use mv_core::Segment;
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, PageSize, Prot};

use crate::{VmmError, VM_EXIT_CYCLES};

/// Cycle multiplier for L1-hypervisor exits: each exit of the L1
/// hypervisor traps to L0, which decodes and emulates it — roughly a
/// three-way round trip (L2→L0→L1→L0→L2) instead of a single one.
pub const L2_EXIT_MULTIPLIER: u64 = 3;

/// Exit and fault counters of an [`L1Hypervisor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Counters {
    /// Exits the L1 hypervisor has taken (each emulated by L0).
    pub l1_exits: u64,
    /// Mid page faults serviced (A→B demand mappings installed).
    pub mid_faults: u64,
}

/// The middle layer of an L2 stack: owns space B and the mid page table
/// mapping the L2 guest's physical space (A) onto it.
///
/// Space B is itself guest-physical memory of the L0 host — the caller
/// wires it up as an ordinary [`crate::Vmm`] VM spanning this
/// hypervisor's memory.
#[derive(Debug)]
pub struct L1Hypervisor {
    mem: PhysMem<Gpa>,
    mpt: PageTable<Gpa, Gpa>,
    span: u64,
    mid_page_size: PageSize,
    segment: Option<Segment<Gpa, Gpa>>,
    counters: L1Counters,
}

impl L1Hypervisor {
    /// Boots an L1 hypervisor owning `mem_bytes` of space B, willing to
    /// map up to `l2_span` bytes of space A at `mid_page_size`
    /// granularity.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::PageTable`] if space B cannot hold the mid
    /// root table.
    pub fn boot(mem_bytes: u64, l2_span: u64, mid_page_size: PageSize) -> Result<Self, VmmError> {
        let mut mem = PhysMem::new(mem_bytes);
        let mpt = PageTable::new(&mut mem)?;
        Ok(L1Hypervisor {
            mem,
            mpt,
            span: l2_span,
            mid_page_size,
            segment: None,
            counters: L1Counters::default(),
        })
    }

    /// Space B (shared).
    pub fn mem(&self) -> &PhysMem<Gpa> {
        &self.mem
    }

    /// Space B (mutable — chaos experiments fragment or damage it).
    pub fn mem_mut(&mut self) -> &mut PhysMem<Gpa> {
        &mut self.mem
    }

    /// Borrows the mid page table and space B for an MMU context.
    pub fn mpt_and_mem(&self) -> (&PageTable<Gpa, Gpa>, &PhysMem<Gpa>) {
        (&self.mpt, &self.mem)
    }

    /// The mid direct segment, if one was created.
    pub fn segment(&self) -> Option<Segment<Gpa, Gpa>> {
        self.segment
    }

    /// Counter snapshot.
    pub fn counters(&self) -> L1Counters {
        self.counters
    }

    /// Cycles the L1 hypervisor's exits have cost so far — each exit is
    /// L0-emulated, hence the [`L2_EXIT_MULTIPLIER`].
    pub fn exit_cycles(&self) -> u64 {
        self.counters.l1_exits * L2_EXIT_MULTIPLIER * VM_EXIT_CYCLES
    }

    /// Records an exit that did no mapping work (interrupt storm, host
    /// preemption amplified through L0).
    pub fn record_spurious_exit(&mut self) {
        self.counters.l1_exits += 1;
    }

    /// Services a mid page fault at space-A address `apa`: installs an
    /// A→B demand mapping. Spurious faults (already mapped) are no-ops.
    /// Each genuine fault costs one L1 exit.
    ///
    /// # Errors
    ///
    /// * [`VmmError::OutsideSlots`] — `apa` beyond the L2 span.
    /// * [`VmmError::Phys`] — space B exhausted.
    pub fn handle_mid_fault(&mut self, apa: Gpa) -> Result<(), VmmError> {
        if apa.as_u64() >= self.span {
            return Err(VmmError::OutsideSlots { gpa: apa.as_u64() });
        }
        if self.mpt.translate(&self.mem, apa).is_some() {
            return Ok(());
        }
        // Segment-covered space-A pages map their segment-computed frame —
        // never a fresh allocation — so mid translations stay consistent
        // with the segment arithmetic for escaped pages and degraded modes.
        if let Some(seg) = self.segment.filter(|s| !s.is_nullified()) {
            let apa_page = Gpa::new(apa.as_u64() & !0xfff);
            if let Some(bpa) = seg.translate(apa_page) {
                self.mpt
                    .map(&mut self.mem, apa_page, bpa, PageSize::Size4K, Prot::RW)?;
                self.counters.mid_faults += 1;
                self.counters.l1_exits += 1;
                return Ok(());
            }
        }
        let size = self.mid_page_size;
        let apa_page = Gpa::new(apa.as_u64() & !size.offset_mask());
        let frame = self.mem.alloc(size)?;
        self.mpt
            .map(&mut self.mem, apa_page, frame, size, Prot::RW)?;
        self.counters.mid_faults += 1;
        self.counters.l1_exits += 1;
        Ok(())
    }

    /// Eagerly maps an entire space-A range (steady-state prefill, so
    /// measurements see no mid faults).
    ///
    /// # Errors
    ///
    /// Propagates the first mapping failure.
    pub fn map_range(&mut self, range: AddrRange<Gpa>) -> Result<(), VmmError> {
        let step = self.mid_page_size.bytes();
        let mut apa = range.start().as_u64() & !(step - 1);
        while apa < range.end().as_u64() {
            self.handle_mid_fault(Gpa::new(apa))?;
            apa += step;
        }
        Ok(())
    }

    /// Creates the mid direct segment covering space-A range `cover`:
    /// reserves contiguous space-B backing and migrates existing scattered
    /// mid mappings into it, so translations are identical whether the
    /// hardware uses the segment registers or walks the mid table.
    ///
    /// # Errors
    ///
    /// * [`VmmError::HostFragmented`] — space B has no contiguous run.
    pub fn create_mid_segment(
        &mut self,
        cover: AddrRange<Gpa>,
    ) -> Result<Segment<Gpa, Gpa>, VmmError> {
        let backing = self.mem.reserve_contiguous(cover.len(), PageSize::Size2M)?;
        let seg = Segment::map(cover, backing.start());
        let offset = backing
            .start()
            .as_u64()
            .wrapping_sub(cover.start().as_u64());
        // Re-point existing mid mappings into the segment backing so the
        // table and the registers agree (the same discipline as
        // `Vmm::create_vmm_segment`): walk covered pages, remap any that
        // already translate, and move their contents.
        let step = self.mid_page_size;
        let mut apa = cover.start().as_u64() & !step.offset_mask();
        while apa < cover.end().as_u64() {
            let apa_page = Gpa::new(apa);
            if let Some(t) = self.mpt.translate(&self.mem, apa_page) {
                let target = Gpa::new(apa.wrapping_add(offset));
                if t.page_base != target {
                    for off in (0..t.size.bytes()).step_by(PageSize::Size4K.bytes() as usize) {
                        self.mem
                            .relocate_contents(t.page_base.add(off), target.add(off));
                    }
                    self.mpt.remap(&mut self.mem, apa_page, t.size, target)?;
                    self.mem.free(t.page_base, t.size)?;
                }
            }
            apa += step.bytes();
        }
        self.segment = Some(seg);
        self.counters.l1_exits += 1;
        Ok(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_types::MIB;

    #[test]
    fn demand_maps_and_prices_exits_with_the_multiplier() {
        let mut l1 = L1Hypervisor::boot(64 * MIB, 32 * MIB, PageSize::Size4K).unwrap();
        l1.handle_mid_fault(Gpa::new(0x5000)).unwrap();
        let (mpt, mem) = l1.mpt_and_mem();
        assert!(mpt.translate(mem, Gpa::new(0x5123)).is_some());
        assert_eq!(l1.counters().l1_exits, 1);
        assert_eq!(l1.exit_cycles(), L2_EXIT_MULTIPLIER * VM_EXIT_CYCLES);
        // Spurious re-fault is free.
        l1.handle_mid_fault(Gpa::new(0x5000)).unwrap();
        assert_eq!(l1.counters().l1_exits, 1);
    }

    #[test]
    fn out_of_span_faults_are_rejected() {
        let mut l1 = L1Hypervisor::boot(64 * MIB, 8 * MIB, PageSize::Size4K).unwrap();
        assert!(matches!(
            l1.handle_mid_fault(Gpa::new(9 * MIB)),
            Err(VmmError::OutsideSlots { .. })
        ));
    }

    #[test]
    fn mid_segment_agrees_with_the_mid_table() {
        let mut l1 = L1Hypervisor::boot(128 * MIB, 64 * MIB, PageSize::Size4K).unwrap();
        // Scatter some pre-existing mappings, then create the segment.
        for apa in [0x1000u64, 0x20_3000, 0x40_5000] {
            l1.handle_mid_fault(Gpa::new(apa)).unwrap();
        }
        let cover = AddrRange::new(Gpa::ZERO, Gpa::new(8 * MIB));
        let seg = l1.create_mid_segment(cover).unwrap();
        for apa in [0x1000u64, 0x20_3000, 0x40_5000] {
            let (mpt, mem) = l1.mpt_and_mem();
            let walked = mpt.translate(mem, Gpa::new(apa)).unwrap().page_base;
            let seg_bpa = seg.translate(Gpa::new(apa & !0xfff)).unwrap();
            assert_eq!(walked, seg_bpa, "table and registers must agree");
        }
        // New faults inside the cover also land on segment-computed frames.
        l1.handle_mid_fault(Gpa::new(0x66_7000)).unwrap();
        let (mpt, mem) = l1.mpt_and_mem();
        assert_eq!(
            mpt.translate(mem, Gpa::new(0x66_7000)).unwrap().page_base,
            seg.translate(Gpa::new(0x66_7000)).unwrap()
        );
    }
}
