//! Per-VM state.

use std::collections::BTreeMap;

use mv_core::{EscapeFilter, Segment};
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Hpa, PageSize};

/// Virtual-machine identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

impl core::fmt::Display for VmId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Configuration of a virtual machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// Guest-physical span the VMM is willing to back (memory-slot size).
    pub guest_span: u64,
    /// Page size the VMM uses for nested mappings (the "+4K"/"+2M"/"+1G"
    /// of the paper's configuration labels).
    pub nested_page_size: PageSize,
}

impl VmConfig {
    /// Convenience constructor.
    pub fn new(guest_span: u64, nested_page_size: PageSize) -> Self {
        VmConfig {
            guest_span,
            nested_page_size,
        }
    }
}

/// Event counters for one VM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Nested page faults the VMM serviced (each costs a VM exit).
    pub nested_faults: u64,
    /// Total VM exits (faults, balloon operations, shadow updates).
    pub vm_exits: u64,
    /// 4 KiB-equivalents of host memory currently backing the guest
    /// outside any segment.
    pub backed_pages: u64,
    /// Pages reclaimed through ballooning.
    pub ballooned_pages: u64,
    /// Pages currently deduplicated by content-based sharing.
    pub shared_pages: u64,
    /// Copy-on-write breaks performed.
    pub cow_breaks: u64,
}

/// One virtual machine: nested page table, backing map, optional VMM
/// segment and escape filter.
#[derive(Debug)]
pub struct Vm {
    pub(crate) id: VmId,
    pub(crate) cfg: VmConfig,
    pub(crate) npt: PageTable<Gpa, Hpa>,
    /// Host frames backing guest pages, keyed by guest frame number at the
    /// VM's nested page granularity.
    pub(crate) backing: BTreeMap<u64, Hpa>,
    /// VMM segment, once established.
    pub(crate) segment: Option<Segment<Gpa, Hpa>>,
    /// Host range backing the segment.
    pub(crate) segment_backing: Option<AddrRange<Hpa>>,
    /// Escape filter for bad frames inside the segment.
    pub(crate) escape: Option<EscapeFilter>,
    /// Guest pages currently shared copy-on-write (by 4 KiB gfn).
    pub(crate) cow: BTreeMap<u64, Hpa>,
    pub(crate) counters: VmCounters,
}

impl Vm {
    pub(crate) fn new(id: VmId, cfg: VmConfig, npt: PageTable<Gpa, Hpa>) -> Self {
        Vm {
            id,
            cfg,
            npt,
            backing: BTreeMap::new(),
            segment: None,
            segment_backing: None,
            escape: None,
            cow: BTreeMap::new(),
            counters: VmCounters::default(),
        }
    }

    /// The VM's id.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM's configuration.
    pub fn config(&self) -> &VmConfig {
        &self.cfg
    }

    /// The nested page table.
    pub fn npt(&self) -> &PageTable<Gpa, Hpa> {
        &self.npt
    }

    /// Established VMM segment, if any.
    pub fn segment(&self) -> Option<Segment<Gpa, Hpa>> {
        self.segment
    }

    /// The escape filter guarding the segment, if any.
    pub fn escape_filter(&self) -> Option<&EscapeFilter> {
        self.escape.as_ref()
    }

    /// Event counters.
    pub fn counters(&self) -> &VmCounters {
        &self.counters
    }

    /// Number of distinct backed guest pages (at nested granularity).
    pub fn backed_pages(&self) -> usize {
        self.backing.len()
    }

    /// Number of distinct guest pages with a live nested mapping: pages
    /// with private backing plus shared (copy-on-write) pages, counting a
    /// page that is both (a canonical sharer) once.
    pub fn resident_pages(&self) -> usize {
        let mut gfns: std::collections::BTreeSet<u64> =
            self.backing.keys().copied().collect();
        gfns.extend(self.cow.keys().copied());
        gfns.len()
    }

    /// Whether the guest page at `gpa` is currently shared copy-on-write.
    pub fn is_shared(&self, gpa: Gpa) -> bool {
        self.cow.contains_key(&(gpa.as_u64() >> 12))
    }

    /// Whether `gpa` lies in the VM's addressable span.
    pub fn in_span(&self, gpa: Gpa) -> bool {
        gpa.as_u64() < self.cfg.guest_span
    }

    /// The guest frame number of `gpa` at the VM's nested granularity.
    pub(crate) fn gfn(&self, gpa: Gpa) -> u64 {
        gpa.as_u64() >> self.cfg.nested_page_size.shift()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_phys::PhysMem;
    use mv_types::MIB;

    #[test]
    fn vm_accessors() {
        let mut hmem: PhysMem<Hpa> = PhysMem::new(16 * MIB);
        let npt = PageTable::new(&mut hmem).unwrap();
        let vm = Vm::new(VmId(3), VmConfig::new(8 * MIB, PageSize::Size2M), npt);
        assert_eq!(vm.id(), VmId(3));
        assert_eq!(vm.id().to_string(), "vm3");
        assert!(vm.in_span(Gpa::new(8 * MIB - 1)));
        assert!(!vm.in_span(Gpa::new(8 * MIB)));
        assert_eq!(vm.gfn(Gpa::new(2 * MIB)), 1);
        assert_eq!(vm.backed_pages(), 0);
        assert!(vm.segment().is_none());
    }
}
