//! VMM error type.

use core::fmt;

use mv_guestos::OsError;
use mv_phys::PhysError;
use mv_pt::PtError;

/// Errors surfaced by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmmError {
    /// No VM with this id.
    NoSuchVm {
        /// The unknown id.
        id: u32,
    },
    /// Host physical memory is too fragmented for a VMM segment; memory
    /// compaction is needed (Table III).
    HostFragmented {
        /// Bytes requested contiguously.
        requested: u64,
        /// Largest contiguous run available.
        largest_run: u64,
    },
    /// The guest-physical address lies outside every memory slot.
    OutsideSlots {
        /// Raw guest-physical address.
        gpa: u64,
    },
    /// Host physical memory exhausted.
    Phys(PhysError),
    /// Nested page-table manipulation failed.
    PageTable(PtError),
    /// A guest-side operation failed during a cross-layer flow.
    Guest(OsError),
    /// The page cannot be swapped in the current mode (Table II: VMM
    /// swapping is limited under Dual/VMM Direct).
    SwapPrecluded {
        /// Raw guest-physical page address.
        gpa: u64,
        /// What stands in the way.
        why: &'static str,
    },
    /// The VM's configuration precludes live migration (Table II).
    MigrationPrecluded {
        /// What stands in the way.
        why: &'static str,
    },
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::NoSuchVm { id } => write!(f, "no such vm {id}"),
            VmmError::HostFragmented {
                requested,
                largest_run,
            } => write!(
                f,
                "host memory fragmented: need {requested:#x} contiguous, largest run {largest_run:#x}"
            ),
            VmmError::OutsideSlots { gpa } => {
                write!(f, "guest physical address {gpa:#x} outside memory slots")
            }
            VmmError::Phys(e) => write!(f, "host physical memory error: {e}"),
            VmmError::PageTable(e) => write!(f, "nested page-table error: {e}"),
            VmmError::Guest(e) => write!(f, "guest error during vmm flow: {e}"),
            VmmError::MigrationPrecluded { why } => {
                write!(f, "live migration precluded: {why}")
            }
            VmmError::SwapPrecluded { gpa, why } => {
                write!(f, "cannot swap guest page at {gpa:#x}: {why}")
            }
        }
    }
}

impl std::error::Error for VmmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmmError::Phys(e) => Some(e),
            VmmError::PageTable(e) => Some(e),
            VmmError::Guest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysError> for VmmError {
    fn from(e: PhysError) -> Self {
        match e {
            PhysError::Fragmented {
                requested,
                largest_free_run,
            } => VmmError::HostFragmented {
                requested,
                largest_run: largest_free_run,
            },
            other => VmmError::Phys(other),
        }
    }
}

impl From<PtError> for VmmError {
    fn from(e: PtError) -> Self {
        VmmError::PageTable(e)
    }
}

impl From<OsError> for VmmError {
    fn from(e: OsError) -> Self {
        VmmError::Guest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_converts_specially() {
        let e = VmmError::from(PhysError::Fragmented {
            requested: 64,
            largest_free_run: 8,
        });
        assert!(matches!(e, VmmError::HostFragmented { .. }));
    }
}
