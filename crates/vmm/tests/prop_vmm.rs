//! Property tests for the hypervisor: host-frame conservation and
//! nested-mapping consistency under arbitrary fault / balloon / sharing /
//! CoW sequences across two VMs. Randomized via the workspace's internal
//! deterministic RNG.

use mv_types::rng::{Rng, StdRng};
use mv_types::{Gpa, PageSize, Prot, MIB};
use mv_vmm::{VmConfig, VmId, Vmm};

#[derive(Debug, Clone)]
enum Op {
    Fault { vm: u8, page: u64 },
    Balloon { vm: u8, page: u64 },
    Share { page_a: u64, page_b: u64 },
    BreakCow { vm: u8, page: u64 },
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..11) {
        0..=4 => Op::Fault {
            vm: rng.gen_range(0u8..2),
            page: rng.gen_range(0u64..128),
        },
        5 | 6 => Op::Balloon {
            vm: rng.gen_range(0u8..2),
            page: rng.gen_range(0u64..128),
        },
        7 | 8 => Op::Share {
            page_a: rng.gen_range(0u64..128),
            page_b: rng.gen_range(0u64..128),
        },
        _ => Op::BreakCow {
            vm: rng.gen_range(0u8..2),
            page: rng.gen_range(0u64..128),
        },
    }
}

#[test]
fn vmm_preserves_mapping_invariants() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x1509_5000 + case);
        let n_ops = rng.gen_range(1usize..100);
        let mut vmm = Vmm::new(64 * MIB);
        let vms = [
            vmm.create_vm(VmConfig::new(8 * MIB, PageSize::Size4K)).unwrap(),
            vmm.create_vm(VmConfig::new(8 * MIB, PageSize::Size4K)).unwrap(),
        ];
        let vm_of = |i: u8| -> VmId { vms[i as usize] };

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Fault { vm, page } => {
                    vmm.handle_nested_fault(vm_of(vm), Gpa::new(page * 4096)).unwrap();
                }
                Op::Balloon { vm, page } => {
                    vmm.balloon_reclaim(vm_of(vm), &[Gpa::new(page * 4096)]).unwrap();
                }
                Op::Share { page_a, page_b } => {
                    // Same synthetic content for both pages; the scan may
                    // share them if both are backed and unshared.
                    let pages = vec![
                        (vms[0], Gpa::new(page_a * 4096), 0xc0de),
                        (vms[1], Gpa::new(page_b * 4096), 0xc0de),
                    ];
                    vmm.share_pages(&pages).unwrap();
                }
                Op::BreakCow { vm, page } => {
                    let gpa = Gpa::new(page * 4096);
                    let id = vm_of(vm);
                    // Only meaningful if mapped at all.
                    let mapped = {
                        let (npt, hmem) = vmm.npt_and_hmem(id);
                        npt.translate(hmem, gpa).is_some()
                    };
                    if mapped {
                        vmm.break_cow(id, gpa).unwrap();
                    }
                }
            }

            // Invariant 1: every backed page has a present 4 KiB nested leaf.
            for &id in &vms {
                let vm = vmm.vm(id);
                let backed: Vec<u64> = (0..128)
                    .filter(|&p| {
                        let (npt, hmem) = vmm.npt_and_hmem(id);
                        npt.translate(hmem, Gpa::new(p * 4096)).is_some()
                    })
                    .collect();
                assert_eq!(
                    backed.len(),
                    vm.resident_pages(),
                    "case {case}: vm {id:?}: mapped-leaf count diverged from resident set"
                );
            }

            // Invariant 2: no two distinct unshared pages point at the same
            // host frame; shared pages are read-only.
            let mut seen = std::collections::HashMap::new();
            for &id in &vms {
                for p in 0..128u64 {
                    let gpa = Gpa::new(p * 4096);
                    let (npt, hmem) = vmm.npt_and_hmem(id);
                    let Some(t) = npt.translate(hmem, gpa) else { continue };
                    if let Some(&(oid, op_)) = seen.get(&t.page_base) {
                        // Aliasing is legal only for read-only (shared) pages.
                        assert_eq!(
                            t.prot, Prot::READ,
                            "case {case}: writable frame aliased by \
                             {oid:?}:{op_} and {id:?}:{p}"
                        );
                    } else {
                        seen.insert(t.page_base, (id, p));
                    }
                }
            }
        }
    }
}
