//! Property tests for the hypervisor: host-frame conservation and
//! nested-mapping consistency under arbitrary fault / balloon / sharing /
//! CoW sequences across two VMs.

use mv_types::{Gpa, PageSize, Prot, MIB};
use mv_vmm::{VmConfig, VmId, Vmm};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Fault { vm: u8, page: u64 },
    Balloon { vm: u8, page: u64 },
    Share { page_a: u64, page_b: u64 },
    BreakCow { vm: u8, page: u64 },
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..2, 0u64..128).prop_map(|(vm, page)| Op::Fault { vm, page }),
        2 => (0u8..2, 0u64..128).prop_map(|(vm, page)| Op::Balloon { vm, page }),
        2 => (0u64..128, 0u64..128).prop_map(|(page_a, page_b)| Op::Share { page_a, page_b }),
        2 => (0u8..2, 0u64..128).prop_map(|(vm, page)| Op::BreakCow { vm, page }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn vmm_preserves_mapping_invariants(seq in proptest::collection::vec(ops(), 1..100)) {
        let mut vmm = Vmm::new(64 * MIB);
        let vms = [
            vmm.create_vm(VmConfig::new(8 * MIB, PageSize::Size4K)),
            vmm.create_vm(VmConfig::new(8 * MIB, PageSize::Size4K)),
        ];
        let vm_of = |i: u8| -> VmId { vms[i as usize] };

        for op in seq {
            match op {
                Op::Fault { vm, page } => {
                    vmm.handle_nested_fault(vm_of(vm), Gpa::new(page * 4096)).unwrap();
                }
                Op::Balloon { vm, page } => {
                    vmm.balloon_reclaim(vm_of(vm), &[Gpa::new(page * 4096)]).unwrap();
                }
                Op::Share { page_a, page_b } => {
                    // Same synthetic content for both pages; the scan may
                    // share them if both are backed and unshared.
                    let pages = vec![
                        (vms[0], Gpa::new(page_a * 4096), 0xc0de),
                        (vms[1], Gpa::new(page_b * 4096), 0xc0de),
                    ];
                    vmm.share_pages(&pages).unwrap();
                }
                Op::BreakCow { vm, page } => {
                    let gpa = Gpa::new(page * 4096);
                    let id = vm_of(vm);
                    // Only meaningful if mapped at all.
                    let mapped = {
                        let (npt, hmem) = vmm.npt_and_hmem(id);
                        npt.translate(hmem, gpa).is_some()
                    };
                    if mapped {
                        vmm.break_cow(id, gpa).unwrap();
                    }
                }
            }

            // Invariant 1: every backed page has a present 4 KiB nested leaf.
            for &id in &vms {
                let vm = vmm.vm(id);
                let backed: Vec<u64> = (0..128)
                    .filter(|&p| {
                        let (npt, hmem) = vmm.npt_and_hmem(id);
                        npt.translate(hmem, Gpa::new(p * 4096)).is_some()
                    })
                    .collect();
                prop_assert_eq!(
                    backed.len(),
                    vm.resident_pages(),
                    "vm {:?}: mapped-leaf count diverged from resident set", id
                );
            }

            // Invariant 2: no two distinct unshared pages point at the same
            // host frame; shared pages are read-only.
            let mut seen = std::collections::HashMap::new();
            for &id in &vms {
                for p in 0..128u64 {
                    let gpa = Gpa::new(p * 4096);
                    let (npt, hmem) = vmm.npt_and_hmem(id);
                    let Some(t) = npt.translate(hmem, gpa) else { continue };
                    if let Some(&(oid, op_)) = seen.get(&t.page_base) {
                        // Aliasing is legal only for read-only (shared) pages.
                        prop_assert_eq!(
                            t.prot, Prot::READ,
                            "writable frame aliased by {:?}:{} and {:?}:{}",
                            oid, op_, id, p
                        );
                    } else {
                        seen.insert(t.page_base, (id, p));
                    }
                }
            }
        }
    }
}
