//! Behavioral tests for the VMM: nested backing, segment creation with
//! compaction and escape filters, ballooning flows, shadow paging, and
//! content-based page sharing.

use mv_guestos::{GuestConfig, GuestOs, PageSizePolicy};
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, GIB, MIB};
use mv_vmm::{ShadowPaging, VmConfig, Vmm, VmmError};
use mv_types::rng::StdRng;

fn seg_opts() -> mv_vmm::SegmentOptions {
    mv_vmm::SegmentOptions::default()
}

#[test]
fn nested_faults_back_memory_at_configured_size() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size2M)).unwrap();
    vmm.handle_nested_fault(vm, Gpa::new(0x123_4567)).unwrap();
    let (npt, hmem) = vmm.npt_and_hmem(vm);
    let t = npt.translate(hmem, Gpa::new(0x123_4567)).unwrap();
    assert_eq!(t.size, PageSize::Size2M);
    assert_eq!(vmm.vm(vm).counters().nested_faults, 1);
    assert_eq!(vmm.vm(vm).counters().backed_pages, 512);
    // Spurious refault is a no-op.
    vmm.handle_nested_fault(vm, Gpa::new(0x123_0000)).unwrap();
    assert_eq!(vmm.vm(vm).counters().nested_faults, 1);
}

#[test]
fn faults_outside_the_span_are_rejected() {
    let mut vmm = Vmm::new(64 * MIB);
    let vm = vmm.create_vm(VmConfig::new(16 * MIB, PageSize::Size4K)).unwrap();
    let err = vmm.handle_nested_fault(vm, Gpa::new(16 * MIB)).unwrap_err();
    assert!(matches!(err, VmmError::OutsideSlots { .. }));
}

#[test]
fn vmm_segment_on_fresh_host_translates_by_addition() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB));
    let seg = vmm.create_vmm_segment(vm, cover, seg_opts()).unwrap();
    assert!(seg.contains(Gpa::new(64 * MIB - 1)));
    assert!(vmm.vm(vm).escape_filter().is_none(), "healthy host needs no filter");
    let hpa = seg.translate(Gpa::new(0x1234)).unwrap();
    assert_eq!(
        hpa.as_u64() - seg.translate(Gpa::new(0)).unwrap().as_u64(),
        0x1234
    );
}

#[test]
fn segment_creation_migrates_existing_backing() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    // Pre-back a couple of pages (scattered).
    vmm.handle_nested_fault(vm, Gpa::new(0x5000)).unwrap();
    vmm.handle_nested_fault(vm, Gpa::new(0x9000)).unwrap();
    let backed_before = vmm.vm(vm).counters().backed_pages;
    assert_eq!(backed_before, 2);

    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB));
    let seg = vmm.create_vmm_segment(vm, cover, seg_opts()).unwrap();
    // The scattered backing was migrated into the segment: the nested page
    // table now agrees with the segment's arithmetic, so dropping the
    // segment later (e.g. for live migration) keeps translations coherent.
    for gpa in [Gpa::new(0x5000), Gpa::new(0x9000)] {
        let (npt, hmem) = vmm.npt_and_hmem(vm);
        let via_npt = npt.translate(hmem, gpa).expect("still mapped").pa;
        assert_eq!(Some(via_npt), seg.translate(gpa));
    }
    assert_eq!(vmm.vm(vm).counters().backed_pages, backed_before);
}

#[test]
fn fragmented_host_blocks_segment_without_compaction() {
    let mut vmm = Vmm::new(128 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let _held = vmm.hmem_mut().fragment(&mut rng, 0.3);
    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB));
    let err = vmm.create_vmm_segment(vm, cover, seg_opts()).unwrap_err();
    assert!(matches!(err, VmmError::HostFragmented { .. }));
}

#[test]
fn compaction_rescues_a_fragmented_host() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    // Give the VM real backing first, then fragment the rest of the host.
    vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(8 * MIB)))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let _held = vmm.hmem_mut().fragment(&mut rng, 0.25);

    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB));
    assert!(vmm
        .create_vmm_segment(vm, cover, seg_opts())
        .is_err());
    let seg = vmm
        .create_vmm_segment(
            vm,
            cover,
            mv_vmm::SegmentOptions {
                compact: true,
                ..seg_opts()
            },
        )
        .unwrap();
    assert!(seg.contains(Gpa::new(32 * MIB)));
    assert!(vmm.hmem().stats().pages_moved_by_compaction > 0);
    // Nested page table survived compaction: previously backed range was
    // migrated into the segment; the rest of guest memory still faults in.
    vmm.handle_nested_fault(vm, Gpa::new(63 * MIB)).unwrap();
}

#[test]
fn bad_host_frames_get_escaped_and_remapped() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    // Damage a frame near the middle of the host.
    let bad = Hpa::new(64 * MIB);
    vmm.hmem_mut().mark_bad(bad).unwrap();

    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(128 * MIB));
    // Without tolerance, no 128M window avoids the bad frame in a 256M host
    // after the npt root allocation fragmented the front... allow_bad path:
    let seg = vmm
        .create_vmm_segment(
            vm,
            cover,
            mv_vmm::SegmentOptions {
                allow_bad: true,
                ..seg_opts()
            },
        )
        .unwrap();
    let filter = vmm.vm(vm).escape_filter();
    if let Some(f) = filter {
        // The bad frame's guest address is in the filter, and the nested
        // page table maps it to a working spare frame.
        let offset = seg.translate(Gpa::ZERO).unwrap().as_u64();
        if bad.as_u64() >= offset {
            let bad_gpa = Gpa::new(bad.as_u64() - offset);
            if seg.contains(bad_gpa) {
                assert!(f.maybe_contains(bad_gpa.as_u64()));
                let (npt, hmem) = vmm.npt_and_hmem(vm);
                let t = npt.translate(hmem, bad_gpa).expect("escaped page is mapped");
                assert_ne!(t.page_base, bad, "remapped away from the bad frame");
            }
        }
    }
}

#[test]
fn escape_filter_false_positives_are_premapped() {
    let mut vmm = Vmm::new(512 * MIB);
    let vm = vmm.create_vm(VmConfig::new(256 * MIB, PageSize::Size4K)).unwrap();
    // Damage a frame inside what will be the segment backing so a filter
    // exists.
    vmm.hmem_mut().mark_bad(Hpa::new(128 * MIB)).unwrap();
    let cover = AddrRange::new(Gpa::ZERO, Gpa::new(256 * MIB));
    let _seg = vmm
        .create_vmm_segment(
            vm,
            cover,
            mv_vmm::SegmentOptions {
                allow_bad: true,
                ..seg_opts()
            },
        )
        .unwrap();
    let f = vmm.vm(vm).escape_filter().expect("bad frame forces a filter").clone();
    // Every address the filter claims escaped must have a nested mapping.
    let (npt, hmem) = vmm.npt_and_hmem(vm);
    let mut positives = 0;
    for gpa in cover.pages(PageSize::Size4K) {
        if f.maybe_contains(gpa.as_u64()) {
            positives += 1;
            assert!(
                npt.translate(hmem, gpa).is_some(),
                "filter-positive page {gpa} lacks a nested mapping"
            );
        }
    }
    assert!(positives >= 1, "at least the truly bad page is positive");
}

#[test]
fn self_ballooning_creates_contiguous_guest_memory() {
    let mut vmm = Vmm::new(GIB);
    let vm = vmm.create_vm(VmConfig::new(512 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig {
        installed_bytes: 128 * MIB,
        hotplug_capacity: 64 * MIB,
        model_io_gap: false,
        boot_reservation: 0,
    }).unwrap();
    // Fragment free guest memory badly.
    let mut rng = StdRng::seed_from_u64(11);
    let _held = guest.mem_mut().fragment(&mut rng, 0.5);
    let want = 32 * MIB;
    assert!(
        guest.mem().stats().largest_free_run_bytes < want,
        "fragmentation precondition"
    );

    let added = vmm.self_balloon(vm, &mut guest, want).unwrap();
    assert_eq!(added.len(), want);
    // The added range is contiguous free guest-physical memory: a guest
    // segment can now be created.
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    guest.create_primary_region(pid, want).unwrap();
    let seg = guest.setup_guest_segment(pid).unwrap();
    let backing = guest.process(pid).segment_backing().unwrap();
    assert!(
        backing.overlaps(&added),
        "segment backing {backing:?} uses the hot-added contiguous range {added:?}"
    );
    let _ = seg;
}

#[test]
fn io_gap_reclaim_flow_yields_big_contiguous_region() {
    let mut vmm = Vmm::new(8 * GIB);
    let vm = vmm.create_vm(VmConfig::new(8 * GIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::with_io_gap(5 * GIB, 3 * GIB)).unwrap();
    let added = vmm.reclaim_io_gap(vm, &mut guest, 256 * MIB).unwrap();
    assert_eq!(added.len(), 3 * GIB - 256 * MIB);
    // Guest high memory is now one long run: [4G, 4G+2G installed) plus the
    // added range.
    assert!(guest.mem().stats().largest_free_run_bytes >= 2 * GIB + added.len());
}

#[test]
fn shadow_paging_composes_and_counts_exits() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(64 * MIB, PageSize::Size4K)).unwrap();
    let mut guest = GuestOs::boot(GuestConfig::small(64 * MIB)).unwrap();
    let pid = guest.create_process(PageSizePolicy::Fixed(PageSize::Size4K)).unwrap();
    let va = guest.mmap(pid, MIB, Prot::RW).unwrap();

    let mut shadow = ShadowPaging::new(vm);
    // Guest maps two pages; each update traps to the VMM.
    for off in [0u64, 0x1000] {
        let fix = guest
            .handle_page_fault(pid, Gva::new(va.as_u64() + off))
            .unwrap();
        shadow.on_guest_update(&mut vmm, pid, &fix).unwrap();
    }
    assert_eq!(shadow.vm_exits(), 2);
    assert!(shadow.exit_cycles() >= 2 * mv_vmm::VM_EXIT_CYCLES);

    // The shadow composes both translations: gVA → hPA directly.
    let spt = shadow.table(pid);
    let t = spt.translate(vmm.hmem(), va).expect("shadow maps the page");
    let (gpt, gmem) = guest.pt_and_mem(pid);
    let gpa = gpt.translate(gmem, va).unwrap().pa;
    let (npt, hmem) = vmm.npt_and_hmem(vm);
    assert_eq!(t.pa, npt.translate(hmem, gpa).unwrap().pa);
}

#[test]
fn page_sharing_deduplicates_identical_content() {
    let mut vmm = Vmm::new(256 * MIB);
    let a = vmm.create_vm(VmConfig::new(32 * MIB, PageSize::Size4K)).unwrap();
    let b = vmm.create_vm(VmConfig::new(32 * MIB, PageSize::Size4K)).unwrap();
    for vm in [a, b] {
        vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(MIB)))
            .unwrap();
    }
    // VM a and b each have 256 pages; 64 have identical content across the
    // two (e.g. OS code pages), the rest are unique.
    let mut pages = Vec::new();
    for (vm, salt) in [(a, 1_000_000u64), (b, 2_000_000)] {
        for i in 0..256u64 {
            let print = if i < 64 { i } else { salt + i };
            pages.push((vm, Gpa::new(i * 4096), print));
        }
    }
    let free_before = vmm.hmem().free_bytes();
    let out = vmm.share_pages(&pages).unwrap();
    assert_eq!(out.scanned_pages, 512);
    assert_eq!(out.deduplicated_pages, 64);
    assert_eq!(out.bytes_saved, 64 * 4096);
    assert_eq!(vmm.hmem().free_bytes(), free_before + 64 * 4096);

    // Shared pages are read-only in the nested table.
    let shared_gpa = Gpa::new(0x3000);
    let (npt, hmem) = vmm.npt_and_hmem(b);
    assert_eq!(npt.translate(hmem, shared_gpa).unwrap().prot, Prot::READ);
    // Both VMs resolve to the same host frame.
    let pa_a = {
        let (npt, hmem) = vmm.npt_and_hmem(a);
        npt.translate(hmem, shared_gpa).unwrap().pa
    };
    let pa_b = {
        let (npt, hmem) = vmm.npt_and_hmem(b);
        npt.translate(hmem, shared_gpa).unwrap().pa
    };
    assert_eq!(pa_a, pa_b);

    // Breaking CoW gives the writer a private, writable copy.
    vmm.break_cow(b, shared_gpa).unwrap();
    let (npt, hmem) = vmm.npt_and_hmem(b);
    let t = npt.translate(hmem, shared_gpa).unwrap();
    assert_eq!(t.prot, Prot::RW);
    assert_ne!(t.pa, pa_a);
    assert_eq!(vmm.vm(b).counters().cow_breaks, 1);
}

#[test]
fn sharing_skips_segment_covered_memory() {
    let mut vmm = Vmm::new(256 * MIB);
    let vm = vmm.create_vm(VmConfig::new(32 * MIB, PageSize::Size4K)).unwrap();
    vmm.map_guest_range(vm, AddrRange::new(Gpa::ZERO, Gpa::new(MIB)))
        .unwrap();
    vmm.create_vmm_segment(vm, AddrRange::new(Gpa::ZERO, Gpa::new(32 * MIB)), seg_opts())
        .unwrap();
    // Two identical pages inside the segment: Table II says no sharing.
    let pages = vec![
        (vm, Gpa::new(0x1000), 42u64),
        (vm, Gpa::new(0x2000), 42u64),
    ];
    let out = vmm.share_pages(&pages).unwrap();
    assert_eq!(out.deduplicated_pages, 0);
}
