//! The layer stack is now the single source of truth for Table II: the
//! hand-written per-mode cost tables were deleted in favor of deriving
//! every quantity from [`TranslationMode::stack`]. These tests pin the
//! derivation to the exact values the deleted tables held, so a stack
//! regression can never silently reprice a mode, and cross-check the
//! stack combinatorics against independent models.

use mv_core::{LayerMode, LayerStack, TranslationMode};

/// The deleted hand-written tables, verbatim: (mode, dimensions, common
/// walk refs, bound checks) for Figure 3's six modes.
const TABLE_II: [(TranslationMode, u8, u32, u32); 6] = [
    (TranslationMode::BaseNative, 1, 4, 0),
    (TranslationMode::NativeDirect, 1, 0, 1),
    (TranslationMode::BaseVirtualized, 2, 24, 0),
    (TranslationMode::DualDirect, 0, 0, 1),
    (TranslationMode::VmmDirect, 1, 4, 5),
    (TranslationMode::GuestDirect, 1, 4, 1),
];

#[test]
fn stack_derivation_reproduces_the_deleted_hand_tables() {
    for (mode, dims, refs, checks) in TABLE_II {
        let stack = mode.stack();
        assert_eq!(stack.walk_dimensions(), dims, "{mode} dimensionality");
        assert_eq!(stack.common_walk_refs(), refs, "{mode} walk refs");
        assert_eq!(stack.bound_checks(), checks, "{mode} bound checks");
        // And the mode-level accessors are pure delegation.
        assert_eq!(mode.walk_dimensions(), dims);
        assert_eq!(mode.common_walk_refs(), refs);
        assert_eq!(mode.bound_checks(), checks);
        assert_eq!(mode.is_virtualized(), stack.is_virtualized());
    }
}

/// Every stack of every depth, by cartesian product of the three modes.
fn all_stacks() -> Vec<LayerStack> {
    const MODES: [LayerMode; 3] = [
        LayerMode::Base4K,
        LayerMode::Base2M,
        LayerMode::DirectSegment,
    ];
    let mut stacks = Vec::new();
    for g in MODES {
        stacks.push(LayerStack::native(g));
        for h in MODES {
            stacks.push(LayerStack::virtualized(g, h));
            for m in MODES {
                stacks.push(LayerStack::l2(g, m, h));
            }
        }
    }
    stacks
}

#[test]
fn walk_refs_match_a_direct_evaluation_of_the_recurrence() {
    // Independent model: T(d) for d stacked *paging* layers, ignoring
    // where the segment layers sit (they are pass-through).
    fn t(d: usize) -> u32 {
        (0..d).fold(0, |t, _| 4 * (t + 1) + t)
    }
    assert_eq!([t(0), t(1), t(2), t(3)], [0, 4, 24, 124]);
    for stack in all_stacks() {
        let paging = stack
            .layers()
            .iter()
            .filter(|l| l.mode.is_paging())
            .count();
        assert_eq!(
            stack.common_walk_refs(),
            t(paging),
            "stack {stack}: refs depend only on the paging-layer count"
        );
    }
}

#[test]
fn dimensionality_is_bounded_by_depth_and_counts_paging_layers() {
    for stack in all_stacks() {
        let paging = stack
            .layers()
            .iter()
            .filter(|l| l.mode.is_paging())
            .count() as u8;
        let dims = stack.walk_dimensions();
        assert!(dims as usize <= stack.depth(), "stack {stack}");
        if paging == 0 && stack.depth() == 1 {
            // Table II's native Direct Segment exception keeps its 1D walker.
            assert_eq!(dims, 1, "stack {stack}");
        } else {
            assert_eq!(dims, paging, "stack {stack}");
        }
    }
}

#[test]
fn bound_checks_match_an_independent_run_fusion_model() {
    // Independent model: simulate the address fan-out top-down. `addrs`
    // addresses enter each layer; a paging layer forwards 5 per incoming
    // address (4 table pointers + the output), a segment layer charges one
    // check per incoming address only at the start of a contiguous run.
    for stack in all_stacks() {
        let mut addrs = 1u32;
        let mut checks = 0u32;
        let mut prev_was_segment = false;
        for layer in stack.layers() {
            if layer.mode.is_paging() {
                addrs *= 5;
                prev_was_segment = false;
            } else {
                if !prev_was_segment {
                    checks += addrs;
                }
                prev_was_segment = true;
            }
        }
        assert_eq!(stack.bound_checks(), checks, "stack {stack}");
    }
}

#[test]
fn three_level_stacks_price_the_l2_study() {
    use LayerMode::{Base4K, DirectSegment};
    // The 3D wall and what each direct-segment placement buys back.
    let all_paging = LayerStack::l2(Base4K, Base4K, Base4K);
    assert_eq!(all_paging.walk_dimensions(), 3);
    assert_eq!(all_paging.common_walk_refs(), 124);
    for (stack, refs) in [
        (LayerStack::l2(DirectSegment, Base4K, Base4K), 24),
        (LayerStack::l2(Base4K, DirectSegment, Base4K), 24),
        (LayerStack::l2(Base4K, Base4K, DirectSegment), 24),
    ] {
        assert_eq!(stack.walk_dimensions(), 2, "stack {stack}");
        assert_eq!(stack.common_walk_refs(), refs, "stack {stack}");
    }
}
