//! Property test: for ANY mapping layout, segment configuration, escape
//! set, access sequence, and translation mode, the MMU's result equals the
//! reference translation (software-composing the two page tables, with
//! segments taking precedence where architecture says they do).
//! Randomized via the workspace's internal deterministic RNG.

use mv_core::{EscapeFilter, MemoryContext, Mmu, MmuConfig, Segment, TranslationMode};
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::rng::{Rng, StdRng};
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};

const GMEM: u64 = 32 * MIB;
const SEG_GVA_BASE: u64 = 1 << 30;

#[derive(Debug, Clone)]
struct Layout {
    /// Guest pages: (va_slot, gpa_slot) pairs, each slot 4 KiB.
    guest_pages: Vec<(u64, u64)>,
    /// Guest segment covers this many MiB of gVA at SEG_GVA_BASE → gPA 16M.
    gseg_mib: u64,
    /// VMM segment covers the first this-many MiB of gPA.
    vseg_mib: u64,
    /// Pages (by gpa slot within the vmm segment) escaped to paging.
    escaped: Vec<u64>,
    mode: TranslationMode,
    accesses: Vec<(u64, bool)>, // (va selector, write)
}

fn random_layout(rng: &mut StdRng) -> Layout {
    const MODES: [TranslationMode; 4] = [
        TranslationMode::BaseVirtualized,
        TranslationMode::VmmDirect,
        TranslationMode::GuestDirect,
        TranslationMode::DualDirect,
    ];
    let n_pages = rng.gen_range(1usize..40);
    let guest_pages = (0..n_pages)
        .map(|_| (rng.gen_range(0u64..512), rng.gen_range(0u64..1024)))
        .collect();
    let n_escaped = rng.gen_range(0usize..4);
    let escaped = (0..n_escaped).map(|_| rng.gen_range(0u64..2048)).collect();
    let n_accesses = rng.gen_range(1usize..150);
    let accesses = (0..n_accesses)
        .map(|_| (rng.gen_range(0u64..4096), rng.gen_bool(0.5)))
        .collect();
    Layout {
        guest_pages,
        gseg_mib: rng.gen_range(0u64..8),
        vseg_mib: rng.gen_range(0u64..24),
        escaped,
        mode: MODES[rng.gen_range(0usize..MODES.len())],
        accesses,
    }
}

#[test]
fn mmu_matches_reference_translation() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x3_0050_0000u64 + case);
        let l = random_layout(&mut rng);

        // --- Build the two-level world. -------------------------------
        let mut gmem: PhysMem<Gpa> = PhysMem::new(GMEM);
        let mut hmem: PhysMem<Hpa> = PhysMem::new(4 * GMEM);
        let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut gmem).unwrap();
        let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();

        // Nested: all of gPA backed contiguously (so the VMM segment is an
        // exact shortcut of the nested table).
        let backing = hmem.reserve_contiguous(GMEM, PageSize::Size2M).unwrap();
        for gpa in AddrRange::new(Gpa::ZERO, Gpa::new(GMEM)).pages(PageSize::Size4K) {
            npt.map(
                &mut hmem,
                gpa,
                Hpa::new(gpa.as_u64() + backing.start().as_u64()),
                PageSize::Size4K,
                Prot::RW,
            )
            .unwrap();
        }

        // Guest pages: dedicated gPA window [24M, 28M) so they never
        // collide with page-table pages or the guest-segment backing.
        let gpa_window = 24 * MIB;
        let mut mapped = std::collections::HashMap::new();
        for &(va_slot, gpa_slot) in &l.guest_pages {
            let va = Gva::new(0x10_0000_0000 + va_slot * 4096);
            let gpa = Gpa::new(gpa_window + gpa_slot * 4096);
            if mapped.contains_key(&va) {
                continue;
            }
            if gmem.carve_range(&AddrRange::from_start_len(gpa, 4096)).is_err() {
                // Another va already took this frame — fine, share it.
            }
            if gpt.map(&mut gmem, va, gpa, PageSize::Size4K, Prot::RW).is_ok() {
                mapped.insert(va, gpa);
            }
        }

        // Segments.
        let gseg = Segment::map(
            AddrRange::from_start_len(Gva::new(SEG_GVA_BASE), l.gseg_mib * MIB),
            Gpa::new(16 * MIB),
        );
        let vseg = Segment::map(
            AddrRange::from_start_len(Gpa::ZERO, l.vseg_mib * MIB),
            backing.start(),
        );

        // Escape filter: escaped pages are remapped to spare frames.
        let mut filter = EscapeFilter::new(9);
        let mut remapped = std::collections::HashMap::new();
        for &slot in &l.escaped {
            let gpa = Gpa::new((slot * 4096) % GMEM);
            if remapped.contains_key(&gpa) {
                continue;
            }
            let spare = hmem.alloc(PageSize::Size4K).unwrap();
            npt.remap(&mut hmem, gpa, PageSize::Size4K, spare).unwrap();
            filter.insert(gpa.as_u64());
            remapped.insert(gpa, spare);
        }
        let use_filter = !l.escaped.is_empty();

        let mut mmu = Mmu::new(MmuConfig {
            mode: l.mode,
            ..MmuConfig::default()
        });
        mmu.set_guest_segment(gseg);
        mmu.set_vmm_segment(vseg);
        if use_filter {
            mmu.set_vmm_escape_filter(Some(filter.clone()));
        }

        // --- Reference translation. ------------------------------------
        let guest_seg_active = matches!(
            l.mode,
            TranslationMode::GuestDirect | TranslationMode::DualDirect
        ) && !gseg.is_nullified();
        let reference = |va: Gva| -> Option<Hpa> {
            // First dimension.
            let gpa = if guest_seg_active {
                match gseg.translate(va) {
                    Some(g) => g,
                    None => gpt.translate(&gmem, va)?.pa,
                }
            } else {
                gpt.translate(&gmem, va)?.pa
            };
            // Second dimension: the nested page table is ground truth —
            // the segment (when active and not escaped) is an exact
            // shortcut of it except for escaped pages.
            Some(npt.translate(&hmem, gpa)?.pa)
        };

        // --- Drive accesses through the MMU and compare. ----------------
        let va_pool: Vec<Gva> = mapped
            .keys()
            .copied()
            .chain((0..64).map(|i| Gva::new(SEG_GVA_BASE + i * 37 * 4096)))
            .chain((0..8).map(|i| Gva::new(0x20_0000_0000 + i * 4096))) // unmapped
            .collect();

        for &(sel, write) in &l.accesses {
            let va = va_pool[(sel as usize) % va_pool.len()];
            let expect = reference(va);
            let got = {
                let ctx = MemoryContext::Virtualized {
                    gpt: &gpt,
                    gmem: &gmem,
                    npt: &npt,
                    hmem: &hmem,
                };
                mmu.access(&ctx, 0, va, write)
            };
            match (got, expect) {
                (Ok(out), Some(hpa)) => assert_eq!(
                    out.hpa, hpa,
                    "case {case}: mode {:?} mistranslated {va:?}",
                    l.mode
                ),
                (Err(_), None) => {} // unmapped: any not-mapped fault is right
                (Ok(out), None) => panic!(
                    "case {case}: mode {:?}: MMU translated unmapped {va:?} to {:?}",
                    l.mode, out.hpa
                ),
                (Err(f), Some(_)) => panic!(
                    "case {case}: mode {:?}: MMU faulted ({f}) on mapped {va:?}",
                    l.mode
                ),
            }
        }
    }
}
