//! MMU state-management tests: mode switches, counter resets, and the
//! cached-translation hygiene around segment reprogramming.

use mv_core::{MemoryContext, Mmu, MmuConfig, Segment, TranslationMode};
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};

type World = (PhysMem<Gpa>, PhysMem<Hpa>, PageTable<Gva, Gpa>, PageTable<Gpa, Hpa>, Hpa);

fn world() -> World {
    let mut gmem: PhysMem<Gpa> = PhysMem::new(32 * MIB);
    let mut hmem: PhysMem<Hpa> = PhysMem::new(128 * MIB);
    let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut gmem).unwrap();
    let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();
    let backing = hmem.reserve_contiguous(32 * MIB, PageSize::Size2M).unwrap();
    for gpa in AddrRange::new(Gpa::ZERO, Gpa::new(32 * MIB)).pages(PageSize::Size4K) {
        npt.map(
            &mut hmem,
            gpa,
            Hpa::new(gpa.as_u64() + backing.start().as_u64()),
            PageSize::Size4K,
            Prot::RW,
        )
        .unwrap();
    }
    let frame = gmem.alloc(PageSize::Size4K).unwrap();
    gpt.map(&mut gmem, Gva::new(0x40_0000), frame, PageSize::Size4K, Prot::RW)
        .unwrap();
    (gmem, hmem, gpt, npt, backing.start())
}

#[test]
fn set_mode_flushes_cached_translations() {
    let (gmem, hmem, gpt, npt, _) = world();
    let mut mmu = Mmu::new(MmuConfig::default());
    let ctx = MemoryContext::Virtualized {
        gpt: &gpt,
        gmem: &gmem,
        npt: &npt,
        hmem: &hmem,
    };
    mmu.access(&ctx, 0, Gva::new(0x40_0000), false).unwrap();
    assert_eq!(mmu.counters().l1_misses, 1);
    // Re-access hits L1...
    mmu.access(&ctx, 0, Gva::new(0x40_0000), false).unwrap();
    assert_eq!(mmu.counters().l1_misses, 1);
    // ...until a mode switch flushes everything.
    mmu.set_mode(TranslationMode::BaseVirtualized);
    mmu.access(&ctx, 0, Gva::new(0x40_0000), false).unwrap();
    assert_eq!(mmu.counters().l1_misses, 2);
}

#[test]
fn reset_counters_keeps_cached_state() {
    let (gmem, hmem, gpt, npt, _) = world();
    let mut mmu = Mmu::new(MmuConfig::default());
    let ctx = MemoryContext::Virtualized {
        gpt: &gpt,
        gmem: &gmem,
        npt: &npt,
        hmem: &hmem,
    };
    mmu.access(&ctx, 0, Gva::new(0x40_0000), false).unwrap();
    mmu.reset_counters();
    assert_eq!(mmu.counters().accesses, 0);
    // The TLB entry survived the counter reset.
    let out = mmu.access(&ctx, 0, Gva::new(0x40_0000), false).unwrap();
    assert_eq!(out.path, mv_core::HitPath::L1Hit);
    assert_eq!(mmu.counters().l1_misses, 0);
}

#[test]
fn segment_reprogramming_flushes() {
    let (gmem, hmem, gpt, npt, backing) = world();
    let mut mmu = Mmu::new(MmuConfig {
        mode: TranslationMode::DualDirect,
        ..MmuConfig::default()
    });
    let seg_a = Segment::map(
        AddrRange::from_start_len(Gva::new(1 << 30), 8 * MIB),
        Gpa::new(0),
    );
    let seg_b = Segment::map(
        AddrRange::from_start_len(Gva::new(1 << 30), 8 * MIB),
        Gpa::new(8 * MIB),
    );
    let vseg = Segment::map(AddrRange::from_start_len(Gpa::ZERO, 32 * MIB), backing);
    mmu.set_vmm_segment(vseg);

    let ctx = MemoryContext::Virtualized {
        gpt: &gpt,
        gmem: &gmem,
        npt: &npt,
        hmem: &hmem,
    };
    mmu.set_guest_segment(seg_a);
    let a = mmu.access(&ctx, 0, Gva::new(1 << 30), false).unwrap().hpa;
    // Reprogramming the guest segment must not serve stale L1 entries.
    mmu.set_guest_segment(seg_b);
    let b = mmu.access(&ctx, 0, Gva::new(1 << 30), false).unwrap().hpa;
    assert_eq!(b.as_u64() - a.as_u64(), 8 * MIB, "new registers take effect");
}

#[test]
fn miss_trace_round_trip() {
    let (gmem, hmem, gpt, npt, _) = world();
    let mut mmu = Mmu::new(MmuConfig::default());
    assert!(mmu.take_miss_trace().is_none(), "no trace by default");
    mmu.enable_miss_trace(8);
    let ctx = MemoryContext::Virtualized {
        gpt: &gpt,
        gmem: &gmem,
        npt: &npt,
        hmem: &hmem,
    };
    mmu.access(&ctx, 0, Gva::new(0x40_0123), false).unwrap();
    let trace = mmu.take_miss_trace().expect("trace was enabled");
    assert_eq!(trace.records().len(), 1);
    assert_eq!(trace.records()[0].gva, Gva::new(0x40_0123));
    // The traced gPA matches the software walk.
    let expect = gpt.translate(&gmem, Gva::new(0x40_0123)).unwrap().pa;
    assert_eq!(trace.records()[0].gpa, expect);
    assert!(mmu.take_miss_trace().is_none(), "take detaches");
}
