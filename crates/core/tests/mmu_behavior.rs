//! Behavioral tests for the MMU: Table I translation steps, Figure 2 walk
//! dimensionality, escape-filter semantics, and fault surfacing.

use mv_core::{
    EscapeFilter, HitPath, MemoryContext, Mmu, MmuConfig, Segment, TranslationFault,
    TranslationMode,
};
use mv_phys::PhysMem;
use mv_pt::PageTable;
use mv_types::{AddrRange, Gpa, Gva, Hpa, PageSize, Prot, MIB};

/// A two-level translation rig: guest memory + gPT, host memory + nPT.
struct Rig {
    gmem: PhysMem<Gpa>,
    hmem: PhysMem<Hpa>,
    gpt: PageTable<Gva, Gpa>,
    npt: PageTable<Gpa, Hpa>,
    /// hPA = gPA + this offset for nested-identity setups.
    nested_offset: u64,
}

impl Rig {
    /// Builds a rig where all of guest-physical memory is nested-mapped
    /// with `nested_size` pages at a fixed offset in host memory.
    fn new(gsize: u64, nested_size: PageSize) -> Rig {
        let mut gmem: PhysMem<Gpa> = PhysMem::new(gsize);
        let mut hmem: PhysMem<Hpa> = PhysMem::new(4 * gsize);
        let npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();
        let mut rig = Rig {
            gpt: PageTable::new(&mut gmem).unwrap(),
            gmem,
            hmem,
            npt,
            nested_offset: 0,
        };
        // Back all of guest-physical memory with one contiguous host block
        // so the identity relation hPA = gPA + off holds exactly.
        let backing = rig
            .hmem
            .reserve_contiguous(gsize, PageSize::Size1G)
            .or_else(|_| rig.hmem.reserve_contiguous(gsize, PageSize::Size2M))
            .unwrap();
        rig.nested_offset = backing.start().as_u64();
        for gpa in AddrRange::new(Gpa::ZERO, Gpa::new(gsize)).pages(nested_size) {
            rig.npt
                .map(
                    &mut rig.hmem,
                    gpa,
                    Hpa::new(gpa.as_u64() + rig.nested_offset),
                    nested_size,
                    Prot::RW,
                )
                .unwrap();
        }
        rig
    }

    /// Maps one guest page at `va`, returning its gPA frame.
    fn map_guest(&mut self, va: u64, size: PageSize, prot: Prot) -> Gpa {
        let frame = self.gmem.alloc(size).unwrap();
        self.gpt
            .map(&mut self.gmem, Gva::new(va), frame, size, prot)
            .unwrap();
        frame
    }

    fn ctx(&self) -> MemoryContext<'_> {
        MemoryContext::Virtualized {
            gpt: &self.gpt,
            gmem: &self.gmem,
            npt: &self.npt,
            hmem: &self.hmem,
        }
    }

    /// Reference translation: software-walk both dimensions.
    fn reference(&self, va: u64) -> Option<Hpa> {
        let g = self.gpt.translate(&self.gmem, Gva::new(va))?;
        let n = self.npt.translate(&self.hmem, g.pa)?;
        Some(n.pa)
    }
}

fn mmu(mode: TranslationMode, caching: bool) -> Mmu {
    Mmu::new(MmuConfig {
        mode,
        walk_caching: caching,
        ..MmuConfig::default()
    })
}

#[test]
fn base_virtualized_cold_walk_performs_24_references() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
    let mut m = mmu(TranslationMode::BaseVirtualized, false);
    let out = m.access(&rig.ctx(), 0, Gva::new(0x40_0123), false).unwrap();
    assert_eq!(out.path, HitPath::PageWalk);
    let c = m.counters();
    assert_eq!(c.guest_walk_refs, 4, "4 guest page-table reads");
    assert_eq!(
        c.nested_walk_refs, 20,
        "5 nested walks of 4 reads each (Figure 2's 5*4+4 = 24 total)"
    );
    assert_eq!(c.walk_refs(), 24);
    assert_eq!(c.bound_checks, 0, "base virtualized performs no checks");
    // Reference agreement.
    assert_eq!(Some(out.hpa), rig.reference(0x40_0123));
}

#[test]
fn walk_caching_reduces_references_below_24() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
    rig.map_guest(0x40_1000, PageSize::Size4K, Prot::RW);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    m.access(&rig.ctx(), 0, Gva::new(0x40_0000), false).unwrap();
    let refs_first = m.counters().walk_refs();
    assert!(refs_first <= 24);
    // Neighboring page: PWCs and the nested TLB shortcut most of the walk.
    m.access(&rig.ctx(), 0, Gva::new(0x40_1000), false).unwrap();
    let refs_second = m.counters().walk_refs() - refs_first;
    assert!(
        refs_second <= 2,
        "warm walk should need at most the leaf references, got {refs_second}"
    );
}

#[test]
fn second_access_hits_l1_with_zero_cost() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    let first = m.access(&rig.ctx(), 0, Gva::new(0x40_0040), false).unwrap();
    let second = m.access(&rig.ctx(), 0, Gva::new(0x40_0080), false).unwrap();
    assert_eq!(second.path, HitPath::L1Hit);
    assert_eq!(second.cycles, 0);
    assert_eq!(second.hpa, Hpa::new(first.hpa.as_u64() + 0x40));
    assert_eq!(m.counters().l1_misses, 1);
}

#[test]
fn vmm_direct_walk_is_4_references_and_5_checks() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
    let mut m = mmu(TranslationMode::VmmDirect, false);
    m.set_vmm_segment(Segment::map(
        AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
        Hpa::new(rig.nested_offset),
    ));
    let out = m.access(&rig.ctx(), 0, Gva::new(0x40_0123), false).unwrap();
    let c = m.counters();
    assert_eq!(c.guest_walk_refs, 4, "guest dimension still walks");
    assert_eq!(c.nested_walk_refs, 0, "nested dimension replaced by additions");
    assert_eq!(c.bound_checks, 5, "Δ_VD = 5: four pointers + final gPA");
    assert_eq!(c.cat_vmm_only, 1);
    assert_eq!(Some(out.hpa), rig.reference(0x40_0123));
}

#[test]
fn guest_direct_walk_is_4_references_and_1_check() {
    let rig = Rig::new(64 * MIB, PageSize::Size4K);
    // Guest segment: a primary region over gVA [1G, 1G+16M) → gPA [16M, 32M).
    let seg_gva = AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 16 * MIB));
    let seg_gpa_base = Gpa::new(16 * MIB);
    let mut m = mmu(TranslationMode::GuestDirect, false);
    m.set_guest_segment(Segment::map(seg_gva, seg_gpa_base));
    let out = m
        .access(&rig.ctx(), 0, Gva::new((1 << 30) + 0x1234), false)
        .unwrap();
    let c = m.counters();
    assert_eq!(c.guest_walk_refs, 0, "first dimension is one addition");
    assert_eq!(c.nested_walk_refs, 4, "one nested walk for the final gPA");
    assert_eq!(c.bound_checks, 1, "Δ_GD = 1");
    assert_eq!(c.cat_guest_only, 1);
    // hPA = (gVA - base + 16M) + nested_offset.
    assert_eq!(
        out.hpa,
        Hpa::new(16 * MIB + 0x1234 + rig.nested_offset)
    );
}

#[test]
fn dual_direct_is_a_zero_reference_bypass() {
    let rig = Rig::new(64 * MIB, PageSize::Size4K);
    let seg_gva = AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 16 * MIB));
    let mut m = mmu(TranslationMode::DualDirect, false);
    m.set_guest_segment(Segment::map(seg_gva, Gpa::new(16 * MIB)));
    m.set_vmm_segment(Segment::map(
        AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
        Hpa::new(rig.nested_offset),
    ));
    let out = m
        .access(&rig.ctx(), 0, Gva::new((1 << 30) + 0x4567), false)
        .unwrap();
    assert_eq!(out.path, HitPath::SegmentBypass);
    let c = m.counters();
    assert_eq!(c.walk_refs(), 0, "0D: no memory references at all");
    assert_eq!(c.cat_both, 1);
    assert_eq!(c.l2_misses, 0, "bypass happens before the L2 lookup");
    assert_eq!(c.bound_checks, 1, "Table II: one check for Dual Direct");
    assert_eq!(out.hpa, Hpa::new(16 * MIB + 0x4567 + rig.nested_offset));
    // And it still L1-hits afterwards.
    let again = m
        .access(&rig.ctx(), 0, Gva::new((1 << 30) + 0x4000), false)
        .unwrap();
    assert_eq!(again.path, HitPath::L1Hit);
}

#[test]
fn dual_direct_outside_segment_falls_back_to_full_walk() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
    let mut m = mmu(TranslationMode::DualDirect, false);
    m.set_guest_segment(Segment::map(
        AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + MIB)),
        Gpa::new(16 * MIB),
    ));
    m.set_vmm_segment(Segment::map(
        AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
        Hpa::new(rig.nested_offset),
    ));
    // 0x40_0000 is outside the guest segment → VMM-only category.
    let out = m.access(&rig.ctx(), 0, Gva::new(0x40_0123), false).unwrap();
    assert_eq!(out.path, HitPath::PageWalk);
    let c = m.counters();
    assert_eq!(c.cat_vmm_only, 1);
    assert_eq!(c.guest_walk_refs, 4);
    assert_eq!(c.nested_walk_refs, 0);
    assert_eq!(Some(out.hpa), rig.reference(0x40_0123));
}

#[test]
fn all_modes_agree_with_the_reference_translation() {
    for mode in [
        TranslationMode::BaseVirtualized,
        TranslationMode::VmmDirect,
        TranslationMode::GuestDirect,
        TranslationMode::DualDirect,
    ] {
        let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
        // Pages both inside and outside the (eventual) guest segment.
        rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
        rig.map_guest(0x7000_0000, PageSize::Size4K, Prot::RW);
        let mut m = mmu(mode, true);
        m.set_guest_segment(Segment::map(
            AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 8 * MIB)),
            Gpa::new(32 * MIB),
        ));
        m.set_vmm_segment(Segment::map(
            AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
            Hpa::new(rig.nested_offset),
        ));
        for va in [0x40_0000u64, 0x40_0abc, 0x7000_0777] {
            let out = m.access(&rig.ctx(), 0, Gva::new(va), false).unwrap();
            assert_eq!(
                Some(out.hpa),
                rig.reference(va),
                "mode {mode:?} mistranslated {va:#x}"
            );
        }
        // Segment-covered address (not in the gPT at all): modes with a
        // guest segment translate it; hPA = gPA + nested_offset.
        if matches!(
            mode,
            TranslationMode::GuestDirect | TranslationMode::DualDirect
        ) {
            let va = (1u64 << 30) + 0x2345;
            let out = m.access(&rig.ctx(), 0, Gva::new(va), false).unwrap();
            assert_eq!(out.hpa, Hpa::new(32 * MIB + 0x2345 + rig.nested_offset));
        }
    }
}

#[test]
fn escaped_page_falls_back_to_nested_paging() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    let mut m = mmu(TranslationMode::DualDirect, true);
    let seg_gva = AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 16 * MIB));
    m.set_guest_segment(Segment::map(seg_gva, Gpa::new(16 * MIB)));
    m.set_vmm_segment(Segment::map(
        AddrRange::new(Gpa::ZERO, Gpa::new(64 * MIB)),
        Hpa::new(rig.nested_offset),
    ));

    // The VMM escapes gPA page 16M+8K (say its host frame went bad) and
    // remaps it in the nested page table to a spare host frame.
    let bad_gpa = Gpa::new(16 * MIB + 0x2000);
    let spare = rig.hmem.alloc(PageSize::Size4K).unwrap();
    rig.npt
        .remap(&mut rig.hmem, bad_gpa, PageSize::Size4K, spare)
        .unwrap();
    let mut filter = EscapeFilter::new(1);
    filter.insert(bad_gpa.as_u64());
    m.set_vmm_escape_filter(Some(filter));

    // An access to the escaped page goes through paging to the spare frame.
    let va = Gva::new((1 << 30) + 0x2abc);
    let out = m.access(&rig.ctx(), 0, va, false).unwrap();
    assert_eq!(out.path, HitPath::PageWalk);
    assert_eq!(out.hpa, spare.add(0xabc));
    assert!(m.counters().escape_hits >= 1);

    // A non-escaped neighbor still takes the 0D path.
    let out2 = m
        .access(&rig.ctx(), 0, Gva::new((1 << 30) + 0x5000), false)
        .unwrap();
    assert_eq!(out2.path, HitPath::SegmentBypass);
}

#[test]
fn guest_fault_and_nested_fault_are_distinguished() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    // Unmapped gVA → guest fault.
    let err = m.access(&rig.ctx(), 0, Gva::new(0x123_4000), false).unwrap_err();
    assert_eq!(
        err,
        TranslationFault::GuestNotMapped {
            gva: Gva::new(0x123_4000)
        }
    );
    assert_eq!(m.counters().guest_faults, 1);

    // Mapped gVA whose gPA has no nested mapping → nested fault.
    let gframe = rig.gmem.alloc(PageSize::Size4K).unwrap();
    rig.gpt
        .map(&mut rig.gmem, Gva::new(0x55_5000), gframe, PageSize::Size4K, Prot::RW)
        .unwrap();
    rig.npt.unmap(&mut rig.hmem, gframe, PageSize::Size4K).ok();
    // (nested mapping in the rig is 4K so the unmap removed exactly it)
    let err = m.access(&rig.ctx(), 0, Gva::new(0x55_5123), false).unwrap_err();
    match err {
        TranslationFault::NestedNotMapped { gva, gpa } => {
            assert_eq!(gva, Gva::new(0x55_5123));
            assert_eq!(gpa.align_down(4096), gframe);
        }
        other => panic!("expected nested fault, got {other:?}"),
    }
    assert!(m.counters().nested_faults >= 1);
}

#[test]
fn write_to_read_only_page_faults_on_walk_and_on_l1_hit() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x40_0000, PageSize::Size4K, Prot::READ);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    // Fault surfaced by the walk.
    let err = m.access(&rig.ctx(), 0, Gva::new(0x40_0000), true).unwrap_err();
    assert_eq!(err, TranslationFault::WriteProtected { gva: Gva::new(0x40_0000) });
    // Reads succeed and fill the TLB...
    m.access(&rig.ctx(), 0, Gva::new(0x40_0000), false).unwrap();
    // ...and a write then faults from the L1 hit path too.
    let err = m.access(&rig.ctx(), 0, Gva::new(0x40_0004), true).unwrap_err();
    assert_eq!(err, TranslationFault::WriteProtected { gva: Gva::new(0x40_0004) });
    assert_eq!(m.counters().prot_faults, 2);
}

#[test]
fn huge_guest_and_nested_pages_yield_huge_tlb_entries() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size2M);
    rig.map_guest(0x20_0000, PageSize::Size2M, Prot::RW);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    m.access(&rig.ctx(), 0, Gva::new(0x20_0000), false).unwrap();
    // Any other address in the same 2 MiB page must hit L1 — the entry
    // granularity is min(guest 2M, nested 2M) = 2M.
    let out = m.access(&rig.ctx(), 0, Gva::new(0x3f_ffff), false).unwrap();
    assert_eq!(out.path, HitPath::L1Hit);
    assert_eq!(m.counters().l1_misses, 1);
}

#[test]
fn four_kib_nested_pages_cap_tlb_entry_granularity() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x20_0000, PageSize::Size2M, Prot::RW);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    m.access(&rig.ctx(), 0, Gva::new(0x20_0000), false).unwrap();
    // A distant address in the same guest 2M page misses L1: the entry was
    // capped at 4K by the nested dimension.
    let out = m.access(&rig.ctx(), 0, Gva::new(0x3f_0000), false).unwrap();
    assert_ne!(out.path, HitPath::L1Hit);
    assert_eq!(m.counters().l1_misses, 2);
    assert_eq!(Some(out.hpa), rig.reference(0x3f_0000));
}

#[test]
fn native_walk_performs_4_references() {
    let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
    let mut pt: PageTable<Gva, Hpa> = PageTable::new(&mut mem).unwrap();
    let frame = mem.alloc(PageSize::Size4K).unwrap();
    pt.map(&mut mem, Gva::new(0x40_0000), frame, PageSize::Size4K, Prot::RW)
        .unwrap();
    let mut m = mmu(TranslationMode::BaseNative, false);
    let ctx = MemoryContext::Native { pt: &pt, mem: &mem };
    let out = m.access(&ctx, 0, Gva::new(0x40_0123), false).unwrap();
    assert_eq!(m.counters().guest_walk_refs, 4);
    assert_eq!(m.counters().nested_walk_refs, 0);
    assert_eq!(out.hpa, frame.add(0x123));
}

#[test]
fn native_direct_segment_translates_with_one_calculation() {
    let mut mem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
    let pt: PageTable<Gva, Hpa> = PageTable::new(&mut mem).unwrap();
    let backing = mem.reserve_contiguous(16 * MIB, PageSize::Size2M).unwrap();
    let mut m = mmu(TranslationMode::NativeDirect, false);
    m.set_native_segment(Segment::map(
        AddrRange::new(Gva::new(1 << 30), Gva::new((1 << 30) + 16 * MIB)),
        backing.start(),
    ));
    let ctx = MemoryContext::Native { pt: &pt, mem: &mem };
    let out = m.access(&ctx, 0, Gva::new((1 << 30) + 0x7777), false).unwrap();
    assert_eq!(out.path, HitPath::SegmentBypass);
    assert_eq!(out.hpa, backing.start().add(0x7777));
    let c = m.counters();
    assert_eq!(c.ds_hits, 1);
    assert_eq!(c.walk_refs(), 0);
    assert_eq!(c.bound_checks, 1);
}

#[test]
fn invalidate_nested_drops_stale_translations() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    let gframe = rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    let before = m.access(&rig.ctx(), 0, Gva::new(0x40_0000), false).unwrap();
    // The VMM moves the backing host frame (e.g. page sharing break).
    let new_frame = rig.hmem.alloc(PageSize::Size4K).unwrap();
    rig.npt
        .remap(&mut rig.hmem, gframe, PageSize::Size4K, new_frame)
        .unwrap();
    m.invalidate_nested(gframe);
    let after = m.access(&rig.ctx(), 0, Gva::new(0x40_0000), false).unwrap();
    assert_ne!(before.hpa, after.hpa);
    assert_eq!(after.hpa, new_frame);
}

#[test]
fn asids_keep_processes_separate() {
    let mut rig = Rig::new(64 * MIB, PageSize::Size4K);
    rig.map_guest(0x40_0000, PageSize::Size4K, Prot::RW);
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    m.access(&rig.ctx(), 1, Gva::new(0x40_0000), false).unwrap();
    // Same VA from a different ASID must not hit the other process's entry.
    m.access(&rig.ctx(), 2, Gva::new(0x40_0000), false).unwrap();
    assert_eq!(m.counters().l1_misses, 2);
}

#[test]
#[should_panic(expected = "context kind does not match mode")]
fn mismatched_context_panics() {
    let mut mem: PhysMem<Hpa> = PhysMem::new(16 * MIB);
    let pt: PageTable<Gva, Hpa> = PageTable::new(&mut mem).unwrap();
    let mut m = mmu(TranslationMode::BaseVirtualized, true);
    let ctx = MemoryContext::Native { pt: &pt, mem: &mem };
    let _ = m.access(&ctx, 0, Gva::new(0), false);
}
