//! The composable translation-layer stack.
//!
//! The paper studies exactly two stack depths — native (1 level) and
//! virtualized (2 levels, Figure 1) — and hand-derives the cost of every
//! mode from the 2D walk picture. This module generalizes that derivation:
//! a translation pipeline is a stack of 1..=3 [`TranslationLayer`]s, each
//! independently mapped by paging or by a direct segment, and every
//! Table II quantity (walk dimensionality, common-case walk references,
//! base-bound checks) falls out of the stack shape instead of a
//! hand-maintained per-mode table.
//!
//! The key recurrence (Section II generalized): let `T(d)` be the memory
//! references of a TLB miss under `d` stacked paging layers. A radix-4
//! walk reads 4 table entries, and under further virtualization each
//! entry pointer — plus the final output address — must itself be
//! translated by the stack below:
//!
//! ```text
//! T(0) = 0                      (direct segment / physical addresses)
//! T(d) = 4 × (T(d−1) + 1) + T(d−1)
//! T(1) = 4, T(2) = 24, T(3) = 124
//! ```
//!
//! `T(2) = 24` is the paper's 2D nested walk; `T(3) = 124` is the 3D
//! nested-nested walk that motivates the L2 study.
//!
//! # Example
//!
//! ```
//! use mv_core::{LayerMode, LayerStack};
//!
//! // The paper's base virtualized stack: guest paging over host paging.
//! let virt = LayerStack::virtualized(LayerMode::Base4K, LayerMode::Base4K);
//! assert_eq!(virt.common_walk_refs(), 24);
//!
//! // Nested-nested virtualization, all layers paged: the 3D wall.
//! let l2 = LayerStack::l2(LayerMode::Base4K, LayerMode::Base4K, LayerMode::Base4K);
//! assert_eq!(l2.common_walk_refs(), 124);
//!
//! // A direct segment on the host layer collapses the stack back to 2D cost.
//! let l2_ds = LayerStack::l2(LayerMode::Base4K, LayerMode::Base4K, LayerMode::DirectSegment);
//! assert_eq!(l2_ds.common_walk_refs(), 24);
//! ```

use core::fmt;

/// How one layer of the stack maps its addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerMode {
    /// Conventional 4-level radix paging with 4 KiB leaves.
    Base4K,
    /// 4-level radix paging with 2 MiB leaves (one fewer level walked on
    /// leaf hits, but the same 4-entry common-case walk shape — large
    /// pages shrink *reach* pressure, not walk dimensionality).
    Base2M,
    /// A direct segment: BASE/LIMIT/OFFSET registers translate the layer
    /// by addition, contributing zero walk references (Section III).
    DirectSegment,
}

impl LayerMode {
    /// Whether the layer walks a page table on misses.
    #[inline]
    pub fn is_paging(self) -> bool {
        !matches!(self, LayerMode::DirectSegment)
    }

    /// Stable lowercase identifier used in labels and reports.
    pub fn label(self) -> &'static str {
        match self {
            LayerMode::Base4K => "4K",
            LayerMode::Base2M => "2M",
            LayerMode::DirectSegment => "ds",
        }
    }
}

impl fmt::Display for LayerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One level of the translation pipeline: a mapping mechanism plus the
/// hardware structures that participate at this level.
///
/// Participation is derived from the mode: paging layers cache leaves in
/// the TLB hierarchy and intermediate entries in the page-walk caches,
/// while direct-segment layers bypass both and instead carry the escape
/// filter that lets faulty pages fall back to paging (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TranslationLayer {
    /// How this layer maps addresses.
    pub mode: LayerMode,
}

impl TranslationLayer {
    /// A layer in the given mode.
    #[inline]
    pub const fn new(mode: LayerMode) -> Self {
        TranslationLayer { mode }
    }

    /// Whether this layer's leaf translations are cached by the TLB
    /// hierarchy (segments translate by addition; caching would only
    /// waste TLB entries).
    #[inline]
    pub fn caches_in_tlb(&self) -> bool {
        self.mode.is_paging()
    }

    /// Whether this layer's intermediate entries are cached by the
    /// page-walk caches.
    #[inline]
    pub fn caches_in_pwc(&self) -> bool {
        self.mode.is_paging()
    }

    /// Whether this layer needs escape handling: a direct-segment layer
    /// must route addresses flagged by the escape filter back to paging.
    #[inline]
    pub fn needs_escape_handling(&self) -> bool {
        !self.mode.is_paging()
    }
}

/// A stack of 1..=3 translation layers, ordered from the layer that
/// translates the application's virtual address (index 0) down to the
/// layer that produces a host-physical address (last index).
///
/// * Depth 1 — native execution.
/// * Depth 2 — classic virtualization (the paper's subject).
/// * Depth 3 — nested-nested (L2) virtualization: an L2 guest above an L1
///   hypervisor that itself runs as a guest of the L0 host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerStack {
    layers: [TranslationLayer; Self::MAX_DEPTH],
    depth: u8,
}

impl LayerStack {
    /// Deepest supported stack: L2 nested-nested virtualization.
    pub const MAX_DEPTH: usize = 3;

    /// A native (single-layer) stack.
    pub const fn native(mode: LayerMode) -> Self {
        LayerStack {
            layers: [
                TranslationLayer::new(mode),
                TranslationLayer::new(mode),
                TranslationLayer::new(mode),
            ],
            depth: 1,
        }
    }

    /// A classic 2-level virtualized stack: `guest` over `host`.
    pub const fn virtualized(guest: LayerMode, host: LayerMode) -> Self {
        LayerStack {
            layers: [
                TranslationLayer::new(guest),
                TranslationLayer::new(host),
                TranslationLayer::new(host),
            ],
            depth: 2,
        }
    }

    /// A 3-level nested-nested stack: the L2 `guest` over the L1
    /// hypervisor's `mid` layer over the L0 `host` layer.
    pub const fn l2(guest: LayerMode, mid: LayerMode, host: LayerMode) -> Self {
        LayerStack {
            layers: [
                TranslationLayer::new(guest),
                TranslationLayer::new(mid),
                TranslationLayer::new(host),
            ],
            depth: 3,
        }
    }

    /// Builds a stack from a top-down mode slice; `None` unless the slice
    /// holds 1..=3 modes.
    pub fn from_modes(modes: &[LayerMode]) -> Option<Self> {
        match *modes {
            [g] => Some(Self::native(g)),
            [g, h] => Some(Self::virtualized(g, h)),
            [g, m, h] => Some(Self::l2(g, m, h)),
            _ => None,
        }
    }

    /// Number of layers in the stack.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// The layers, application side first.
    #[inline]
    pub fn layers(&self) -> &[TranslationLayer] {
        &self.layers[..self.depth as usize]
    }

    /// Whether the stack runs under at least one hypervisor.
    #[inline]
    pub fn is_virtualized(&self) -> bool {
        self.depth > 1
    }

    /// Role name of layer `i` for reports: `"host"` for the last layer,
    /// `"guest"` for the first of a multi-layer stack (or `"native"` at
    /// depth 1), `"mid"` for the L1 hypervisor layer in between.
    pub fn role(&self, i: usize) -> &'static str {
        if self.depth == 1 {
            "native"
        } else if i == 0 {
            "guest"
        } else if i + 1 == self.depth as usize {
            "host"
        } else {
            "mid"
        }
    }

    /// Page-walk dimensionality for addresses on the stack's fast path
    /// (Table II row 1, generalized): the number of layers still walking
    /// page tables. The single exception is the depth-1 all-segment stack
    /// — the paper's native Direct Segment mode — which Table II lists as
    /// 1D because its conventional 1D walker stays architected (heap
    /// outside the segment, escapes) rather than becoming a 0D pipeline.
    pub fn walk_dimensions(&self) -> u8 {
        let paging = self
            .layers()
            .iter()
            .filter(|l| l.mode.is_paging())
            .count() as u8;
        if paging == 0 && self.depth == 1 {
            1
        } else {
            paging
        }
    }

    /// Memory accesses for most page walks (Table II row 2, generalized
    /// by the `T(d) = 4 × (T(d−1) + 1) + T(d−1)` recurrence). Evaluated
    /// bottom-up: a paging layer multiplies the cost of the stack below;
    /// a direct-segment layer passes it through unchanged.
    pub fn common_walk_refs(&self) -> u32 {
        let mut t = 0u32;
        for layer in self.layers().iter().rev() {
            if layer.mode.is_paging() {
                // 4 entry reads, each pointer (plus the final output
                // address) translated by the layers below.
                t = 4 * (t + 1) + t;
            }
        }
        t
    }

    /// Base-bound checks per common-case walk (Table II row 3,
    /// generalized). A contiguous run of direct-segment layers fuses into
    /// one check per address entering the run (Dual Direct's two segments
    /// cost a single combined check — Section III.A), and each paging
    /// layer above multiplies the addresses flowing downward by 5 (its 4
    /// table pointers plus the final output — VMM Direct's 5 checks,
    /// Section III.B).
    pub fn bound_checks(&self) -> u32 {
        let mut checks = 0u32;
        let mut addrs = 1u32;
        let mut in_segment_run = false;
        for layer in self.layers() {
            if layer.mode.is_paging() {
                addrs *= 5;
                in_segment_run = false;
            } else {
                if !in_segment_run {
                    checks += addrs;
                }
                in_segment_run = true;
            }
        }
        checks
    }
}

impl fmt::Display for LayerStack {
    /// Top-down mode labels joined by `/`, e.g. `"4K/ds/4K"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, layer) in self.layers().iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            f.write_str(layer.mode.label())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LayerMode::*;

    #[test]
    fn recurrence_matches_the_paper_at_every_depth() {
        assert_eq!(LayerStack::native(Base4K).common_walk_refs(), 4);
        assert_eq!(
            LayerStack::virtualized(Base4K, Base4K).common_walk_refs(),
            24
        );
        assert_eq!(LayerStack::l2(Base4K, Base4K, Base4K).common_walk_refs(), 124);
    }

    #[test]
    fn direct_segment_layers_pass_walk_cost_through() {
        // Collapsing any one dimension of the 3D walk returns it to 2D
        // cost; collapsing two returns it to 1D; all three to 0.
        for (stack, refs) in [
            (LayerStack::l2(DirectSegment, Base4K, Base4K), 24),
            (LayerStack::l2(Base4K, DirectSegment, Base4K), 24),
            (LayerStack::l2(Base4K, Base4K, DirectSegment), 24),
            (LayerStack::l2(Base4K, DirectSegment, DirectSegment), 4),
            (LayerStack::l2(DirectSegment, DirectSegment, Base4K), 4),
            (
                LayerStack::l2(DirectSegment, DirectSegment, DirectSegment),
                0,
            ),
        ] {
            assert_eq!(stack.common_walk_refs(), refs, "stack {stack}");
        }
    }

    #[test]
    fn dimensionality_counts_paging_layers() {
        assert_eq!(LayerStack::l2(Base4K, Base4K, Base4K).walk_dimensions(), 3);
        assert_eq!(
            LayerStack::l2(Base4K, DirectSegment, Base4K).walk_dimensions(),
            2
        );
        assert_eq!(
            LayerStack::virtualized(DirectSegment, DirectSegment).walk_dimensions(),
            0
        );
        // Table II's native Direct Segment exception: the 1D walker stays.
        assert_eq!(LayerStack::native(DirectSegment).walk_dimensions(), 1);
    }

    #[test]
    fn bound_checks_fuse_contiguous_segment_runs() {
        // One fused check for Dual Direct's adjacent segments…
        assert_eq!(
            LayerStack::virtualized(DirectSegment, DirectSegment).bound_checks(),
            1
        );
        // …five for a host segment below guest paging (VMM Direct)…
        assert_eq!(
            LayerStack::virtualized(Base4K, DirectSegment).bound_checks(),
            5
        );
        // …and a paging layer *between* segments splits the run: the L2
        // guest segment costs 1 check, the host segment below the mid
        // paging layer costs 5 more.
        assert_eq!(
            LayerStack::l2(DirectSegment, Base4K, DirectSegment).bound_checks(),
            6
        );
        // 25 for a host segment under two stacked paging layers.
        assert_eq!(
            LayerStack::l2(Base4K, Base4K, DirectSegment).bound_checks(),
            25
        );
    }

    #[test]
    fn large_pages_change_reach_not_shape() {
        assert_eq!(
            LayerStack::virtualized(Base2M, Base4K).common_walk_refs(),
            LayerStack::virtualized(Base4K, Base4K).common_walk_refs()
        );
    }

    #[test]
    fn construction_roles_and_display() {
        let stack = LayerStack::l2(Base4K, DirectSegment, Base4K);
        assert_eq!(stack.depth(), 3);
        assert_eq!(stack.role(0), "guest");
        assert_eq!(stack.role(1), "mid");
        assert_eq!(stack.role(2), "host");
        assert_eq!(stack.to_string(), "4K/ds/4K");
        assert_eq!(LayerStack::native(Base4K).role(0), "native");
        assert!(!LayerStack::native(Base4K).is_virtualized());
        assert!(stack.is_virtualized());

        assert_eq!(
            LayerStack::from_modes(&[Base4K, DirectSegment]),
            Some(LayerStack::virtualized(Base4K, DirectSegment))
        );
        assert_eq!(LayerStack::from_modes(&[]), None);
        assert_eq!(LayerStack::from_modes(&[Base4K; 4]), None);
    }

    #[test]
    fn participation_follows_mode() {
        let paged = TranslationLayer::new(Base4K);
        assert!(paged.caches_in_tlb() && paged.caches_in_pwc());
        assert!(!paged.needs_escape_handling());
        let seg = TranslationLayer::new(DirectSegment);
        assert!(!seg.caches_in_tlb() && !seg.caches_in_pwc());
        assert!(seg.needs_escape_handling());
    }
}
