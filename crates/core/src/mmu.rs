//! The virtualized MMU model: Figure 5's translation flow and Table I's
//! per-category steps, with exact event counting.
//!
//! One [`Mmu`] models one hardware thread's translation machinery: split L1
//! TLB, unified L2 TLB (shared with nested entries), guest and nested
//! page-walk caches, the two levels of direct-segment registers, the escape
//! filter, and the (up to) 2D page walker. The page tables and physical
//! memories it walks are borrowed per access through [`MemoryContext`],
//! since they belong to the guest OS and VMM models.

use mv_obs::{EscapeOutcome, FaultKind, WalkAttr, WalkClass, WalkEvent, WalkObserver, REF_COL};
use mv_phys::PhysMem;
use mv_pt::{entry_addr, PageTable, Pte};
use mv_tlb::{L1Tlb, L2Key, L2Tlb, PwCache, PwcKey, TlbConfig, TlbEntry};
use mv_types::{Gpa, Gva, Hpa, PageSize, Prot};

use crate::cost::{CostParams, PteCache};
use crate::counters::MmuCounters;
use crate::escape::EscapeFilter;
use crate::fault::TranslationFault;
use crate::mode::TranslationMode;
use crate::segment::Segment;
use crate::trace::{MissRecord, MissTrace};

/// log2 of the functional-walk memo's slot count (16Ki slots — enough to
/// hold every page of the differential-test footprints with few conflict
/// evictions, at ~0.5 MiB when allocated).
const FUNCTIONAL_MEMO_BITS: u32 = 14;

/// Leaf metadata from the nested dimension: `None` when the VMM segment
/// served the translation (unbounded contiguity, always read-write).
type NestedLeaf = Option<(PageSize, Prot)>;

/// The translation structures an access runs against: either a native
/// 1-level configuration or the virtualized 2-level configuration.
#[derive(Debug)]
pub enum MemoryContext<'a> {
    /// Native execution: one page table mapping VA→PA.
    Native {
        /// The process page table.
        pt: &'a PageTable<Gva, Hpa>,
        /// Physical memory holding the page table.
        mem: &'a PhysMem<Hpa>,
    },
    /// Virtualized execution: guest page table plus nested page table.
    Virtualized {
        /// Guest page table (gVA→gPA), stored in guest-physical frames.
        gpt: &'a PageTable<Gva, Gpa>,
        /// Guest-physical memory.
        gmem: &'a PhysMem<Gpa>,
        /// Nested page table (gPA→hPA), stored in host-physical frames.
        npt: &'a PageTable<Gpa, Hpa>,
        /// Host-physical memory.
        hmem: &'a PhysMem<Hpa>,
    },
    /// Nested-nested (L2) execution: three stacked tables. The L2 guest's
    /// physical space is "space A" (mapped by the L1 hypervisor's mid
    /// table onto its own "space B"), and space B is the L0 host's
    /// guest-physical space.
    L2 {
        /// L2-guest page table (gVA→A), stored in space-A frames.
        gpt: &'a PageTable<Gva, Gpa>,
        /// Space A: the L2 guest's physical memory.
        amem: &'a PhysMem<Gpa>,
        /// Mid page table (A→B), stored in space-B frames.
        mpt: &'a PageTable<Gpa, Gpa>,
        /// Space B: the L1 hypervisor's physical memory.
        bmem: &'a PhysMem<Gpa>,
        /// Nested page table (B→hPA), stored in host-physical frames.
        npt: &'a PageTable<Gpa, Hpa>,
        /// Host-physical memory.
        hmem: &'a PhysMem<Hpa>,
    },
}

impl<'a> MemoryContext<'a> {
    /// Native context from the `(page table, memory)` pair that OS models
    /// lend out (e.g. `NativeOs::pt_and_mem`).
    pub fn native((pt, mem): (&'a PageTable<Gva, Hpa>, &'a PhysMem<Hpa>)) -> Self {
        MemoryContext::Native { pt, mem }
    }

    /// Virtualized context from the guest's and the VMM's
    /// `(page table, memory)` pairs (`GuestOs::pt_and_mem` and
    /// `Vmm::npt_and_hmem`).
    pub fn virtualized(
        (gpt, gmem): (&'a PageTable<Gva, Gpa>, &'a PhysMem<Gpa>),
        (npt, hmem): (&'a PageTable<Gpa, Hpa>, &'a PhysMem<Hpa>),
    ) -> Self {
        MemoryContext::Virtualized {
            gpt,
            gmem,
            npt,
            hmem,
        }
    }

    /// L2 context from the three layers' `(page table, memory)` pairs:
    /// the L2 guest's, the L1 hypervisor's (`L1Hypervisor::mpt_and_mem`),
    /// and the L0 host's (`Vmm::npt_and_hmem`).
    pub fn l2(
        (gpt, amem): (&'a PageTable<Gva, Gpa>, &'a PhysMem<Gpa>),
        (mpt, bmem): (&'a PageTable<Gpa, Gpa>, &'a PhysMem<Gpa>),
        (npt, hmem): (&'a PageTable<Gpa, Hpa>, &'a PhysMem<Hpa>),
    ) -> Self {
        MemoryContext::L2 {
            gpt,
            amem,
            mpt,
            bmem,
            npt,
            hmem,
        }
    }
}

/// The three L2 layers bundled for the 3D walk helpers.
#[derive(Debug, Clone, Copy)]
struct L2Layers<'a> {
    gpt: &'a PageTable<Gva, Gpa>,
    amem: &'a PhysMem<Gpa>,
    mpt: &'a PageTable<Gpa, Gpa>,
    bmem: &'a PhysMem<Gpa>,
    npt: &'a PageTable<Gpa, Hpa>,
    hmem: &'a PhysMem<Hpa>,
}

/// Which dimension's page-walk cache a probe targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkDim {
    /// The top (guest page table) dimension.
    Guest,
    /// The middle (L1-hypervisor table) dimension of 3-level walks.
    Mid,
    /// The bottom (nested page table) dimension.
    Nested,
}

/// Which path completed a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitPath {
    /// L1 TLB hit — no overhead.
    L1Hit,
    /// Completed by segment registers on the L1-miss path (0D / DS).
    SegmentBypass,
    /// L2 TLB hit.
    L2Hit,
    /// Required a page walk (of whatever dimensionality the mode allows).
    PageWalk,
}

/// Result of a successful access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Final host-physical address.
    pub hpa: Hpa,
    /// Path that produced the translation.
    pub path: HitPath,
    /// Cycles charged to translation for this access (0 on L1 hits).
    pub cycles: u64,
}

/// Configuration for constructing an [`Mmu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuConfig {
    /// TLB/PWC geometry.
    pub tlb: TlbConfig,
    /// Cycle prices.
    pub costs: CostParams,
    /// Initial translation mode.
    pub mode: TranslationMode,
    /// Enables the page-walk caches and the nested TLB. Disabling them
    /// exposes the architectural worst case (24 references per 2D walk) for
    /// ablation studies; real hardware has them on.
    pub walk_caching: bool,
    /// PTE-residency model size in 64-byte lines (see
    /// [`crate::PteCache`]); the default models the share of a last-level
    /// cache that page-table lines hold.
    pub pte_cache_lines: usize,
    /// PTE-residency model associativity.
    pub pte_cache_ways: usize,
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig {
            tlb: TlbConfig::sandy_bridge(),
            costs: CostParams::default(),
            mode: TranslationMode::BaseVirtualized,
            walk_caching: true,
            pte_cache_lines: 4096,
            pte_cache_ways: 8,
        }
    }
}

/// The MMU model.
///
/// # Example
///
/// Running one access against a virtualized context (see `mv-sim` for the
/// full wiring):
///
/// ```
/// use mv_core::{MemoryContext, Mmu, MmuConfig, TranslationMode};
/// use mv_phys::PhysMem;
/// use mv_pt::PageTable;
/// use mv_types::{Gpa, Gva, Hpa, PageSize, Prot, MIB};
///
/// let mut gmem: PhysMem<Gpa> = PhysMem::new(32 * MIB);
/// let mut hmem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
/// let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut gmem)?;
/// let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem)?;
///
/// // Map one guest page and identity-map guest-physical memory.
/// let gframe = gmem.alloc(PageSize::Size4K)?;
/// gpt.map(&mut gmem, Gva::new(0x1000), gframe, PageSize::Size4K, Prot::RW)?;
/// for off in (0..(32 * MIB)).step_by(2 << 20) {
///     let h = hmem.alloc(PageSize::Size2M)?;
///     npt.map(&mut hmem, Gpa::new(off), h, PageSize::Size2M, Prot::RW)?;
/// }
///
/// let mut mmu = Mmu::new(MmuConfig::default());
/// let ctx = MemoryContext::Virtualized { gpt: &gpt, gmem: &gmem, npt: &npt, hmem: &hmem };
/// let out = mmu.access(&ctx, 0, Gva::new(0x1234), false)?;
/// assert!(out.cycles > 0, "first access walks");
/// let again = mmu.access(&ctx, 0, Gva::new(0x1234), false)?;
/// assert_eq!(again.cycles, 0, "second access hits L1");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Mmu {
    mode: TranslationMode,
    costs: CostParams,
    walk_caching: bool,
    l1: L1Tlb,
    l2: L2Tlb,
    guest_pwc: PwCache,
    nested_pwc: PwCache,
    /// Walk cache of the mid (L1-hypervisor) dimension; only 3-level
    /// stacks populate it.
    mid_pwc: PwCache,
    /// TLB caching complete mid translations (space A → hPA) at 4 KiB
    /// granularity. A separate instance rather than more `L2Tlb` traffic,
    /// so 2-level machines' cache state is untouched by the L2 study.
    mid_tlb: L2Tlb,
    pte_cache: PteCache,
    /// Guest segment: gVA→gPA (Dual/Guest Direct).
    guest_seg: Segment<Gva, Gpa>,
    /// VMM segment: gPA→hPA (Dual/VMM Direct).
    vmm_seg: Segment<Gpa, Hpa>,
    /// Mid segment: space A → space B by addition (L2 modes with a
    /// direct-segment middle layer).
    mid_seg: Segment<Gpa, Gpa>,
    /// Native direct segment: VA→PA (Section III.D mode, reusing the guest
    /// segment registers in hardware).
    native_seg: Segment<Gva, Hpa>,
    /// Escape filter checked against the VMM segment (and native segment).
    vmm_escape: Option<EscapeFilter>,
    /// Escape filter checked against the guest segment.
    guest_escape: Option<EscapeFilter>,
    /// Escape filter checked against the mid segment.
    mid_escape: Option<EscapeFilter>,
    /// Optional DTLB-miss trace (the simulator's BadgerTrap, Section VII).
    miss_trace: Option<MissTrace>,
    /// Optional structured-event observer, invoked once per L1 miss. When
    /// `None` (the default) the miss path pays exactly one branch.
    observer: Option<Box<dyn WalkObserver>>,
    /// Final first-dimension gPA of the walk in flight, captured for the
    /// observer (meaningful only while an observer is attached).
    pending_gpa: Option<u64>,
    /// Per-cell cycle attribution of the walk in flight. Populated only
    /// when `attr_on`; otherwise it stays all-zero and events export
    /// byte-identically to pre-attribution output.
    attr: WalkAttr,
    /// Whether the attached observer asked for attribution
    /// ([`WalkObserver::wants_attribution`], sampled at attachment). Every
    /// recording site branches on this, so a telemetry-only or unobserved
    /// run pays no attribution bookkeeping.
    attr_on: bool,
    /// Guest-dimension row (gL4..gL1 = 0..3, data = 4) the nested
    /// dimension is currently resolving for, meaningful only while
    /// `attr_on`.
    attr_row: usize,
    /// Batched mode switches applied via [`Mmu::mode_switch`] (each one
    /// cost a single [`Mmu::flush_all`]). A plain diagnostic, deliberately
    /// outside [`MmuCounters`] so chaos-free exports stay byte-identical.
    mode_switch_flushes: u64,
    /// Nested-kind L2 `(lookups, hits)` accrued by [`Mmu::access_warm`]
    /// calls — warm-up traffic a sampled run must subtract from
    /// [`Mmu::nested_l2_stats`] so the §IX.A diagnostic reports only
    /// measured-window lookups.
    nested_l2_debt: (u64, u64),
    /// Direct-mapped memo of functional-walk leaves, (asid, vpn) → entry,
    /// consulted by [`Mmu::access_functional`] after an L2 miss so a
    /// sampled run's fast-forward gaps skip repeated page-table walks. A
    /// hit replays exactly the entry the walk would produce (same TLB
    /// inserts, same result), so it changes wall time and nothing else.
    /// Every invalidation path that touches the TLBs drops the memo
    /// wholesale — it can never outlive an entry's validity. Lazily
    /// allocated on first fill: detailed-only runs never pay for it.
    functional_memo: Vec<Option<(u16, u64, TlbEntry)>>,
    counters: MmuCounters,
}

/// Deferred-invalidation view of an [`Mmu`] inside [`Mmu::mode_switch`]:
/// the setters mirror the MMU's flushing ones but only stage state — the
/// enclosing `mode_switch` applies one [`Mmu::flush_all`] for the whole
/// batch, modeling a live mode transition as a single hardware switch.
#[derive(Debug)]
pub struct ModeSwitch<'a> {
    mmu: &'a mut Mmu,
}

impl ModeSwitch<'_> {
    /// Stages the guest segment registers (no flush).
    pub fn set_guest_segment(&mut self, seg: Segment<Gva, Gpa>) {
        self.mmu.guest_seg = seg;
    }

    /// Stages the VMM segment registers (no flush).
    pub fn set_vmm_segment(&mut self, seg: Segment<Gpa, Hpa>) {
        self.mmu.vmm_seg = seg;
    }

    /// Stages the mid segment registers (no flush).
    pub fn set_mid_segment(&mut self, seg: Segment<Gpa, Gpa>) {
        self.mmu.mid_seg = seg;
    }

    /// Stages the native direct segment (no flush).
    pub fn set_native_segment(&mut self, seg: Segment<Gva, Hpa>) {
        self.mmu.native_seg = seg;
    }

    /// Stages the VMM/native escape filter (no flush).
    pub fn set_vmm_escape_filter(&mut self, filter: Option<EscapeFilter>) {
        self.mmu.vmm_escape = filter;
    }

    /// Stages the guest escape filter (no flush).
    pub fn set_guest_escape_filter(&mut self, filter: Option<EscapeFilter>) {
        self.mmu.guest_escape = filter;
    }

    /// Stages the mid escape filter (no flush).
    pub fn set_mid_escape_filter(&mut self, filter: Option<EscapeFilter>) {
        self.mmu.mid_escape = filter;
    }

    /// Current guest segment registers (as staged so far).
    pub fn guest_segment(&self) -> Segment<Gva, Gpa> {
        self.mmu.guest_seg
    }

    /// Current VMM segment registers (as staged so far).
    pub fn vmm_segment(&self) -> Segment<Gpa, Hpa> {
        self.mmu.vmm_seg
    }

    /// Current mid segment registers (as staged so far).
    pub fn mid_segment(&self) -> Segment<Gpa, Gpa> {
        self.mmu.mid_seg
    }
}

impl Mmu {
    /// Creates an MMU with nullified segments and empty TLBs.
    pub fn new(cfg: MmuConfig) -> Self {
        Mmu {
            mode: cfg.mode,
            costs: cfg.costs,
            walk_caching: cfg.walk_caching,
            l1: L1Tlb::new(&cfg.tlb),
            l2: L2Tlb::new(&cfg.tlb),
            guest_pwc: PwCache::new(&cfg.tlb),
            nested_pwc: PwCache::new(&cfg.tlb),
            mid_pwc: PwCache::new(&cfg.tlb),
            mid_tlb: L2Tlb::new(&cfg.tlb),
            pte_cache: PteCache::new(cfg.pte_cache_lines, cfg.pte_cache_ways),
            guest_seg: Segment::nullified(),
            vmm_seg: Segment::nullified(),
            mid_seg: Segment::nullified(),
            native_seg: Segment::nullified(),
            vmm_escape: None,
            guest_escape: None,
            mid_escape: None,
            miss_trace: None,
            observer: None,
            pending_gpa: None,
            attr: WalkAttr::default(),
            attr_on: false,
            attr_row: 0,
            mode_switch_flushes: 0,
            nested_l2_debt: (0, 0),
            functional_memo: Vec::new(),
            counters: MmuCounters::default(),
        }
    }

    /// Attaches a DTLB-miss trace of at most `capacity` records — the
    /// simulator's BadgerTrap (Section VII). Each page walk appends its
    /// `(gVA, gPA)` pair for offline segment classification.
    pub fn enable_miss_trace(&mut self, capacity: usize) {
        self.miss_trace = Some(MissTrace::new(capacity));
    }

    /// Detaches and returns the miss trace, if one was enabled.
    pub fn take_miss_trace(&mut self) -> Option<MissTrace> {
        self.miss_trace.take()
    }

    /// Attaches a [`WalkObserver`], which receives one [`WalkEvent`] per L1
    /// TLB miss. Attachment changes no translation state or counters — an
    /// observed run measures identically to an unobserved one — and costs
    /// the unobserved miss path a single branch.
    pub fn set_observer(&mut self, observer: Box<dyn WalkObserver>) {
        self.attr_on = observer.wants_attribution();
        self.observer = Some(observer);
    }

    /// Detaches and returns the observer, if one was attached.
    pub fn take_observer(&mut self) -> Option<Box<dyn WalkObserver>> {
        self.attr_on = false;
        self.observer.take()
    }

    /// Whether a walk observer is currently attached.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Current translation mode.
    #[inline]
    pub fn mode(&self) -> TranslationMode {
        self.mode
    }

    /// Switches translation mode, flushing all cached translation state
    /// (modes can be switched dynamically during execution; flushing keeps
    /// the switch trivially correct).
    pub fn set_mode(&mut self, mode: TranslationMode) {
        self.mode = mode;
        self.flush_all();
    }

    /// Programs the guest segment registers (BASE_G/LIMIT_G/OFFSET_G).
    /// Saved/restored on guest context switches by the guest OS.
    pub fn set_guest_segment(&mut self, seg: Segment<Gva, Gpa>) {
        self.guest_seg = seg;
        self.flush_all();
    }

    /// Programs the VMM segment registers (BASE_V/LIMIT_V/OFFSET_V).
    /// Saved/restored on VM exit/entry by the VMM.
    pub fn set_vmm_segment(&mut self, seg: Segment<Gpa, Hpa>) {
        self.vmm_seg = seg;
        self.flush_all();
    }

    /// Programs the mid segment registers (the L1 hypervisor's space A →
    /// space B mapping). Saved/restored by L0 when it world-switches the
    /// L1 hypervisor.
    pub fn set_mid_segment(&mut self, seg: Segment<Gpa, Gpa>) {
        self.mid_seg = seg;
        self.flush_all();
    }

    /// Programs the native direct segment (Section III.D mode).
    pub fn set_native_segment(&mut self, seg: Segment<Gva, Hpa>) {
        self.native_seg = seg;
        self.flush_all();
    }

    /// Current guest segment registers.
    pub fn guest_segment(&self) -> Segment<Gva, Gpa> {
        self.guest_seg
    }

    /// Current VMM segment registers.
    pub fn vmm_segment(&self) -> Segment<Gpa, Hpa> {
        self.vmm_seg
    }

    /// Current mid segment registers.
    pub fn mid_segment(&self) -> Segment<Gpa, Gpa> {
        self.mid_seg
    }

    /// Installs (or clears) the escape filter checked against the VMM /
    /// native segment.
    pub fn set_vmm_escape_filter(&mut self, filter: Option<EscapeFilter>) {
        self.vmm_escape = filter;
        self.flush_all();
    }

    /// Installs (or clears) the escape filter checked against the guest
    /// segment.
    pub fn set_guest_escape_filter(&mut self, filter: Option<EscapeFilter>) {
        self.guest_escape = filter;
        self.flush_all();
    }

    /// Installs (or clears) the escape filter checked against the mid
    /// segment.
    pub fn set_mid_escape_filter(&mut self, filter: Option<EscapeFilter>) {
        self.mid_escape = filter;
        self.flush_all();
    }

    /// Applies a batched mode switch: `f` may re-program any combination
    /// of segments and escape filters through the [`ModeSwitch`] proxy
    /// without intermediate flushes, and the MMU pays exactly one
    /// [`Mmu::flush_all`] when `f` returns — the hardware cost model for a
    /// live translation-mode transition (TLBs, PWCs, the mid structures,
    /// and the PTE cache all go cold at once).
    ///
    /// A sequence of plain setters between accesses produces the same
    /// post-switch cache state (consecutive flushes are idempotent); this
    /// entry point exists so a transition reads as *one* switch and is
    /// counted as such via [`Mmu::mode_switch_flushes`].
    pub fn mode_switch<R>(&mut self, f: impl FnOnce(&mut ModeSwitch<'_>) -> R) -> R {
        let r = f(&mut ModeSwitch { mmu: self });
        self.mode_switch_flushes += 1;
        self.flush_all();
        r
    }

    /// Number of batched mode switches applied so far (each cost one full
    /// flush).
    pub fn mode_switch_flushes(&self) -> u64 {
        self.mode_switch_flushes
    }

    /// Counter snapshot.
    #[inline]
    pub fn counters(&self) -> &MmuCounters {
        &self.counters
    }

    /// Resets counters (not cached state).
    pub fn reset_counters(&mut self) {
        self.counters = MmuCounters::default();
        self.nested_l2_debt = (0, 0);
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.guest_pwc.reset_stats();
        self.nested_pwc.reset_stats();
        self.mid_pwc.reset_stats();
        self.mid_tlb.reset_stats();
    }

    /// `(lookups, hits)` of nested-kind entries in the shared L2 TLB —
    /// the §IX.A capacity-pollution diagnostic.
    pub fn nested_l2_stats(&self) -> (u64, u64) {
        self.l2.nested_stats()
    }

    /// Nested-kind L2 `(lookups, hits)` contributed by [`Mmu::access_warm`]
    /// calls since the last [`Mmu::reset_counters`]. Sampled runs subtract
    /// this from [`Mmu::nested_l2_stats`] so the pollution diagnostic
    /// covers only detailed-window traffic.
    pub fn nested_l2_debt(&self) -> (u64, u64) {
        self.nested_l2_debt
    }

    /// Flushes every TLB, PWC, and residency structure.
    pub fn flush_all(&mut self) {
        self.l1.flush_all();
        self.l2.flush_all();
        self.guest_pwc.flush_all();
        self.nested_pwc.flush_all();
        self.mid_pwc.flush_all();
        self.mid_tlb.flush_all();
        self.pte_cache.flush();
        self.memo_flush();
    }

    /// Invalidates cached translations for the page at `va` in `asid`
    /// (guest `invlpg`).
    pub fn invalidate_page(&mut self, asid: u16, va: Gva) {
        self.l1.invalidate_page(asid, va.as_u64());
        self.l2.invalidate_page(asid, va.as_u64());
        self.memo_flush();
    }

    /// Invalidates cached state for an address space (guest CR3 switch
    /// without ASID reuse).
    pub fn flush_asid(&mut self, asid: u16) {
        self.l1.flush_asid(asid);
        self.l2.flush_asid(asid);
        self.guest_pwc.flush_asid(asid);
        self.memo_flush();
    }

    /// Invalidates the nested translation for a guest frame (VMM changed
    /// the nested page table, e.g. page sharing or swapping).
    pub fn invalidate_nested(&mut self, gpa: Gpa) {
        self.l2.invalidate_nested(gpa.as_u64() >> 12);
        // Conservatively drop complete translations: any L1/L2 guest entry
        // may embed the old hPA — as may any cached mid translation.
        self.l1.flush_all();
        self.l2.flush_all();
        self.mid_tlb.flush_all();
        self.memo_flush();
    }

    /// Invalidates the cached mid translation for a space-A frame (the L1
    /// hypervisor changed its table). Complete translations above it may
    /// embed the old addresses, so they flush conservatively too.
    pub fn invalidate_mid(&mut self, apa: Gpa) {
        self.mid_tlb.invalidate_nested(apa.as_u64() >> 12);
        self.l1.flush_all();
        self.l2.flush_all();
        self.memo_flush();
    }

    /// Drops the functional-walk memo wholesale. Invalidations are rare
    /// (churn events, mode switches), so precision buys nothing here —
    /// correctness only needs the memo to never outlive the TLB entries
    /// derived from the same walks.
    fn memo_flush(&mut self) {
        self.functional_memo = Vec::new();
    }

    /// Memo slot for `(asid, vpn)`: top bits of a multiplicative hash.
    fn memo_slot(asid: u16, vpn: u64) -> usize {
        let h = (vpn ^ (u64::from(asid) << 40)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> (64 - FUNCTIONAL_MEMO_BITS)) as usize
    }

    /// Performs one data access: the full Figure 5 flow.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslationFault`] if a dimension is unmapped or the
    /// access violates the leaf protection. The caller services the fault
    /// and retries.
    ///
    /// # Panics
    ///
    /// Panics if the context kind does not match the mode (native context
    /// with a virtualized mode or vice versa) — a wiring bug.
    pub fn access(
        &mut self,
        ctx: &MemoryContext<'_>,
        asid: u16,
        va: Gva,
        write: bool,
    ) -> Result<AccessOutcome, TranslationFault> {
        let ctx_matches = match ctx {
            MemoryContext::Native { .. } => !self.mode.is_virtualized(),
            MemoryContext::Virtualized { .. } => {
                self.mode.is_virtualized()
                    && !matches!(self.mode, TranslationMode::L2Nested { .. })
            }
            MemoryContext::L2 { .. } => matches!(self.mode, TranslationMode::L2Nested { .. }),
        };
        assert!(
            ctx_matches,
            "context kind does not match mode {:?} (layer depth must agree)",
            self.mode
        );
        self.counters.accesses += 1;
        if write {
            self.counters.writes += 1;
        }

        // L1 TLB (no charged cost — the baseline path).
        if let Some(e) = self.l1.lookup(asid, va.as_u64()) {
            if write && !e.prot.contains(Prot::WRITE) {
                self.counters.prot_faults += 1;
                self.l1.invalidate_page(asid, va.as_u64());
                self.l2.invalidate_page(asid, va.as_u64());
                return Err(TranslationFault::WriteProtected { gva: va });
            }
            return Ok(AccessOutcome {
                hpa: Hpa::new(e.translate(va.as_u64())),
                path: HitPath::L1Hit,
                cycles: 0,
            });
        }
        self.counters.l1_misses += 1;
        if self.observer.is_none() {
            return self.miss_path(ctx, asid, va, write);
        }
        let pre = self.counters;
        self.pending_gpa = None;
        if self.attr_on {
            self.attr = WalkAttr::default();
        }
        let result = self.miss_path(ctx, asid, va, write);
        self.emit_event(va, write, &pre, &result);
        result
    }

    /// Performs one *warm-up* access: the full detailed path of
    /// [`Mmu::access`] — every TLB, PWC, and PTE-residency structure is
    /// exercised and updated exactly as a counted access would — but with
    /// all measurement suppressed: counters are snapshot-restored, no miss
    /// record is traced, no event reaches the observer, and the nested-kind
    /// L2 lookups it causes are logged to [`Mmu::nested_l2_debt`] for later
    /// subtraction. Sampled runs use this to re-warm cache state right
    /// before a detailed measurement window.
    ///
    /// # Errors
    ///
    /// Same fault behavior as [`Mmu::access`]; the caller services the
    /// fault and retries.
    pub fn access_warm(
        &mut self,
        ctx: &MemoryContext<'_>,
        asid: u16,
        va: Gva,
        write: bool,
    ) -> Result<AccessOutcome, TranslationFault> {
        let saved = self.counters;
        let trace = self.miss_trace.take();
        let observer = self.observer.take();
        let attr_was = self.attr_on;
        self.attr_on = false;
        let nested_pre = self.l2.nested_stats();
        let result = self.access(ctx, asid, va, write);
        let nested_post = self.l2.nested_stats();
        self.nested_l2_debt.0 += nested_post.0 - nested_pre.0;
        self.nested_l2_debt.1 += nested_post.1 - nested_pre.1;
        self.counters = saved;
        self.miss_trace = trace;
        self.observer = observer;
        self.attr_on = attr_was;
        result
    }

    /// Performs one access on the *functional-only* fast-forward path: the
    /// L1/L2 TLBs are looked up and refilled (so locality state keeps
    /// evolving), but an L2 miss resolves the leaf by software-walking the
    /// page tables directly ([`mv_pt::PageTable::translate`]) instead of
    /// driving the modeled walker — no cycles are charged, no counters or
    /// walk caches are touched, no events are emitted. The inserted TLB
    /// entry composes the guest and nested (and mid) leaves with the same
    /// size/protection intersection as the detailed walk, so the state a
    /// later detailed window inherits is faithful.
    ///
    /// Two deliberate divergences from the detailed path, both repaired by
    /// a few [`Mmu::access_warm`] calls before each measurement window:
    /// the PWCs, nested/mid TLBs, and PTE-residency model are left
    /// untouched (they go stale across a gap), and the nested leaf uses
    /// true walked sizes where a detailed nested-TLB hit would have capped
    /// the effective size at 4 KiB.
    ///
    /// # Errors
    ///
    /// Same fault semantics as [`Mmu::access`] (unmapped dimensions and
    /// write protection still fault, so OS/VMM models service demand
    /// faults at full cadence through fast-forward gaps), minus the fault
    /// counters.
    pub fn access_functional(
        &mut self,
        ctx: &MemoryContext<'_>,
        asid: u16,
        va: Gva,
        write: bool,
    ) -> Result<Hpa, TranslationFault> {
        if let Some(e) = self.l1.lookup(asid, va.as_u64()) {
            if write && !e.prot.contains(Prot::WRITE) {
                self.l1.invalidate_page(asid, va.as_u64());
                self.l2.invalidate_page(asid, va.as_u64());
                return Err(TranslationFault::WriteProtected { gva: va });
            }
            return Ok(Hpa::new(e.translate(va.as_u64())));
        }

        // Memo probe, ahead of the modeled structures: a hit refills L1
        // with exactly the entry the walk below would produce and skips
        // the L2 round-trip. The L2 still warms from every walk (memo
        // miss), every warm access, and every detailed access, so the
        // measurement windows open on plausible L2 state — only the gap's
        // redundant L2 traffic is elided. A write to a read-only memoized
        // page drops the slot (mirroring the L2-hit path below) so the
        // retry after fault service re-walks. Bypass environments never
        // fill the memo, so the probe cannot shadow a segment bypass.
        let vpn = va.as_u64() >> 12;
        let slot = Self::memo_slot(asid, vpn);
        if let Some(&Some((a, v, entry))) = self.functional_memo.get(slot) {
            if a == asid && v == vpn {
                if write && !entry.prot.contains(Prot::WRITE) {
                    self.functional_memo[slot] = None;
                    return Err(TranslationFault::WriteProtected { gva: va });
                }
                self.l1.insert(asid, va.as_u64(), entry);
                return Ok(Hpa::new(entry.translate(va.as_u64())));
            }
        }

        if let Some(hpa) = self.segment_bypass_functional(va) {
            self.l1.insert(
                asid,
                va.as_u64(),
                TlbEntry {
                    page_base: hpa.as_u64() & !0xfff,
                    size: PageSize::Size4K,
                    prot: Prot::RW,
                },
            );
            return Ok(hpa);
        }

        let l2key = L2Key::Guest { asid, vpn };
        if let Some(e) = self.l2.lookup(l2key) {
            if write && !e.prot.contains(Prot::WRITE) {
                self.l2.invalidate_page(asid, va.as_u64());
                return Err(TranslationFault::WriteProtected { gva: va });
            }
            self.l1.insert(asid, va.as_u64(), e);
            return Ok(Hpa::new(e.translate(va.as_u64())));
        }

        let entry = match ctx {
            MemoryContext::Native { pt, mem } => {
                let t = pt
                    .translate(mem, va)
                    .ok_or(TranslationFault::GuestNotMapped { gva: va })?;
                TlbEntry {
                    page_base: t.page_base.as_u64(),
                    size: t.size,
                    prot: t.prot,
                }
            }
            MemoryContext::Virtualized {
                gpt,
                gmem,
                npt,
                hmem,
            } => self.functional_walk_2d(gpt, gmem, npt, hmem, va)?,
            MemoryContext::L2 {
                gpt,
                amem,
                mpt,
                bmem,
                npt,
                hmem,
            } => self.functional_walk_3d(
                &L2Layers {
                    gpt,
                    amem,
                    mpt,
                    bmem,
                    npt,
                    hmem,
                },
                va,
            )?,
        };
        if write && !entry.prot.contains(Prot::WRITE) {
            return Err(TranslationFault::WriteProtected { gva: va });
        }
        if self.functional_memo.is_empty() {
            self.functional_memo = vec![None; 1 << FUNCTIONAL_MEMO_BITS];
        }
        self.functional_memo[slot] = Some((asid, vpn, entry));
        self.l2.insert(l2key, entry);
        self.l1.insert(asid, va.as_u64(), entry);
        Ok(Hpa::new(entry.translate(va.as_u64())))
    }

    /// Counter-free mirror of [`Mmu::segment_bypass`]: same mode dispatch,
    /// same segment translations, same escape-filter decisions — no
    /// bookkeeping.
    fn segment_bypass_functional(&self, va: Gva) -> Option<Hpa> {
        match self.mode {
            TranslationMode::DualDirect => {
                let gpa = self.guest_seg.translate(va)?;
                if escaped_quiet(&self.guest_escape, va.as_u64()) {
                    return None;
                }
                let hpa = self.vmm_seg.translate(gpa)?;
                if escaped_quiet(&self.vmm_escape, gpa.as_u64()) {
                    return None;
                }
                Some(hpa)
            }
            TranslationMode::NativeDirect => {
                let pa = self.native_seg.translate(va)?;
                if escaped_quiet(&self.vmm_escape, va.as_u64())
                    || escaped_quiet(&self.guest_escape, va.as_u64())
                {
                    return None;
                }
                Some(pa)
            }
            TranslationMode::L2Nested {
                guest_ds: true,
                mid_ds: true,
                host_ds: true,
            } => {
                let apa = self.guest_seg.translate(va)?;
                if escaped_quiet(&self.guest_escape, va.as_u64()) {
                    return None;
                }
                let bpa = self.mid_seg.translate(apa)?;
                if escaped_quiet(&self.mid_escape, apa.as_u64()) {
                    return None;
                }
                let hpa = self.vmm_seg.translate(bpa)?;
                if escaped_quiet(&self.vmm_escape, bpa.as_u64()) {
                    return None;
                }
                Some(hpa)
            }
            _ => None,
        }
    }

    /// Functional 2D leaf resolution with the exact effective-size and
    /// protection composition of [`Mmu::nested_walk_2d`].
    fn functional_walk_2d(
        &self,
        gpt: &PageTable<Gva, Gpa>,
        gmem: &PhysMem<Gpa>,
        npt: &PageTable<Gpa, Hpa>,
        hmem: &PhysMem<Hpa>,
        va: Gva,
    ) -> Result<TlbEntry, TranslationFault> {
        let raw = va.as_u64();
        let guest_seg_active = self.mode.uses_guest_segment() && !self.guest_seg.is_nullified();
        let mut used_guest_seg = false;
        let (gpa_page, size, prot) = if guest_seg_active {
            match self.guest_seg.translate(va) {
                Some(gpa) if !escaped_quiet(&self.guest_escape, raw) => {
                    used_guest_seg = true;
                    (Gpa::new(gpa.as_u64() & !0xfff), PageSize::Size4K, Prot::RW)
                }
                _ => functional_guest_leaf(gpt, gmem, va)?,
            }
        } else {
            functional_guest_leaf(gpt, gmem, va)?
        };

        let gpa_of_access = Gpa::new(gpa_page.as_u64() + (raw & size.offset_mask()));
        let (hpa, nested_leaf) = self.functional_nested(npt, hmem, va, gpa_of_access)?;
        let prot = match nested_leaf {
            Some((_, nprot)) => prot & nprot,
            None => prot,
        };
        let eff = if used_guest_seg {
            PageSize::Size4K
        } else {
            match nested_leaf {
                Some((n, _)) => size.min(n),
                None => size,
            }
        };
        Ok(TlbEntry {
            page_base: hpa.as_u64() - (raw & eff.offset_mask()),
            size: eff,
            prot,
        })
    }

    /// Functional second-dimension resolution: VMM-segment check, then a
    /// software nested walk — no nested TLB, no walk caches, no cost.
    fn functional_nested(
        &self,
        npt: &PageTable<Gpa, Hpa>,
        hmem: &PhysMem<Hpa>,
        gva: Gva,
        gpa: Gpa,
    ) -> Result<(Hpa, NestedLeaf), TranslationFault> {
        if self.mode.uses_vmm_segment() && !self.vmm_seg.is_nullified() {
            if let Some(hpa) = self.vmm_seg.translate(gpa) {
                if !escaped_quiet(&self.vmm_escape, gpa.as_u64()) {
                    return Ok((hpa, None));
                }
            }
        }
        match npt.translate(hmem, gpa) {
            Some(t) => Ok((t.pa, Some((t.size, t.prot)))),
            None => Err(TranslationFault::NestedNotMapped { gva, gpa }),
        }
    }

    /// Functional 3D leaf resolution mirroring [`Mmu::nested_walk_3d`]'s
    /// composition.
    fn functional_walk_3d(&self, l: &L2Layers<'_>, va: Gva) -> Result<TlbEntry, TranslationFault> {
        let raw = va.as_u64();
        let guest_seg_active = self.mode.uses_guest_segment() && !self.guest_seg.is_nullified();
        let mut used_guest_seg = false;
        let (apa_page, size, prot) = if guest_seg_active {
            match self.guest_seg.translate(va) {
                Some(apa) if !escaped_quiet(&self.guest_escape, raw) => {
                    used_guest_seg = true;
                    (Gpa::new(apa.as_u64() & !0xfff), PageSize::Size4K, Prot::RW)
                }
                _ => functional_guest_leaf(l.gpt, l.amem, va)?,
            }
        } else {
            functional_guest_leaf(l.gpt, l.amem, va)?
        };

        let apa_of_access = Gpa::new(apa_page.as_u64() + (raw & size.offset_mask()));
        let (hpa, lower_leaf) = self.functional_mid(l, va, apa_of_access)?;
        let prot = match lower_leaf {
            Some((_, lprot)) => prot & lprot,
            None => prot,
        };
        let eff = if used_guest_seg {
            PageSize::Size4K
        } else {
            match lower_leaf {
                Some((n, _)) => size.min(n),
                None => size,
            }
        };
        Ok(TlbEntry {
            page_base: hpa.as_u64() - (raw & eff.offset_mask()),
            size: eff,
            prot,
        })
    }

    /// Functional mid+host resolution mirroring [`Mmu::mid_translate`]'s
    /// leaf composition.
    fn functional_mid(
        &self,
        l: &L2Layers<'_>,
        gva: Gva,
        apa: Gpa,
    ) -> Result<(Hpa, NestedLeaf), TranslationFault> {
        if self.mode.uses_mid_segment() && !self.mid_seg.is_nullified() {
            if let Some(bpa) = self.mid_seg.translate(apa) {
                if !escaped_quiet(&self.mid_escape, apa.as_u64()) {
                    // Mid contiguity is unbounded: the host leaf governs.
                    return self.functional_nested(l.npt, l.hmem, gva, bpa);
                }
            }
        }
        let t = l
            .mpt
            .translate(l.bmem, apa)
            .ok_or(TranslationFault::MidNotMapped { gva, gpa: apa })?;
        let (hpa, host_leaf) = self.functional_nested(l.npt, l.hmem, gva, t.pa)?;
        let eff = match host_leaf {
            Some((hsize, hprot)) => (t.size.min(hsize), t.prot & hprot),
            None => (t.size, t.prot),
        };
        Ok((hpa, Some(eff)))
    }

    /// Everything below the L1 TLB: segment bypass, L2 lookup, page walk.
    fn miss_path(
        &mut self,
        ctx: &MemoryContext<'_>,
        asid: u16,
        va: Gva,
        write: bool,
    ) -> Result<AccessOutcome, TranslationFault> {
        let mut cycles = 0u64;

        // Segment bypass on the L1-miss path (Table I "Both" column, and
        // the Section III.D native direct-segment mode).
        if let Some(hpa) = self.segment_bypass(va) {
            self.l1.insert(
                asid,
                va.as_u64(),
                TlbEntry {
                    page_base: hpa.as_u64() & !0xfff,
                    size: PageSize::Size4K,
                    prot: Prot::RW,
                },
            );
            self.counters.translation_cycles += cycles;
            return Ok(AccessOutcome {
                hpa,
                path: HitPath::SegmentBypass,
                cycles,
            });
        }

        // L2 TLB.
        let l2key = L2Key::Guest {
            asid,
            vpn: va.as_u64() >> 12,
        };
        if let Some(e) = self.l2.lookup(l2key) {
            cycles += self.costs.l2_tlb_hit;
            if self.attr_on {
                self.attr.add_l2_hit(self.costs.l2_tlb_hit);
            }
            self.counters.translation_cycles += cycles;
            if write && !e.prot.contains(Prot::WRITE) {
                self.counters.prot_faults += 1;
                self.l2.invalidate_page(asid, va.as_u64());
                return Err(TranslationFault::WriteProtected { gva: va });
            }
            self.l1.insert(asid, va.as_u64(), e);
            return Ok(AccessOutcome {
                hpa: Hpa::new(e.translate(va.as_u64())),
                path: HitPath::L2Hit,
                cycles,
            });
        }
        self.counters.l2_misses += 1;

        // Page walk (whatever dimensionality the mode leaves standing).
        let walk = match ctx {
            MemoryContext::Native { pt, mem } => self.native_walk(pt, mem, asid, va, &mut cycles),
            MemoryContext::Virtualized {
                gpt,
                gmem,
                npt,
                hmem,
            } => self.nested_walk_2d(gpt, gmem, npt, hmem, asid, va, write, &mut cycles),
            MemoryContext::L2 {
                gpt,
                amem,
                mpt,
                bmem,
                npt,
                hmem,
            } => self.nested_walk_3d(
                &L2Layers {
                    gpt,
                    amem,
                    mpt,
                    bmem,
                    npt,
                    hmem,
                },
                asid,
                va,
                write,
                &mut cycles,
            ),
        };
        self.counters.translation_cycles += cycles;
        let (hpa_page, size, prot) = walk?;

        if write && !prot.contains(Prot::WRITE) {
            self.counters.prot_faults += 1;
            return Err(TranslationFault::WriteProtected { gva: va });
        }

        let entry = TlbEntry {
            page_base: hpa_page.as_u64(),
            size,
            prot,
        };
        self.l2.insert(l2key, entry); // 4K entries only; larger are skipped
        self.l1.insert(asid, va.as_u64(), entry);
        Ok(AccessOutcome {
            hpa: Hpa::new(entry.translate(va.as_u64())),
            path: HitPath::PageWalk,
            cycles,
        })
    }

    /// Builds the structured event for the miss just serviced (from counter
    /// deltas, so observation never perturbs the counted quantities) and
    /// delivers it to the attached observer.
    fn emit_event(
        &mut self,
        va: Gva,
        write: bool,
        pre: &MmuCounters,
        result: &Result<AccessOutcome, TranslationFault>,
    ) {
        let Some(mut observer) = self.observer.take() else {
            return;
        };
        let c = &self.counters;
        let class = match result {
            Ok(o) => match o.path {
                HitPath::SegmentBypass => {
                    if c.ds_hits > pre.ds_hits {
                        WalkClass::DirectSegment
                    } else {
                        WalkClass::Bypass0d
                    }
                }
                HitPath::L2Hit => WalkClass::L2Hit,
                // L1Hit returns before the miss path; walks classify by the
                // Table I category they incremented.
                HitPath::L1Hit | HitPath::PageWalk => {
                    if c.cat_guest_only > pre.cat_guest_only {
                        WalkClass::GuestSeg1d
                    } else if c.cat_vmm_only > pre.cat_vmm_only {
                        WalkClass::VmmSeg1d
                    } else if matches!(self.mode, TranslationMode::L2Nested { .. }) {
                        WalkClass::Walk3d
                    } else if self.mode.is_virtualized() {
                        WalkClass::Walk2d
                    } else {
                        WalkClass::Walk1d
                    }
                }
            },
            Err(_) => WalkClass::Faulted,
        };
        let fault = match result {
            Ok(_) => FaultKind::None,
            Err(TranslationFault::GuestNotMapped { .. }) => FaultKind::GuestNotMapped,
            Err(TranslationFault::NestedNotMapped { .. }) => FaultKind::NestedNotMapped,
            Err(TranslationFault::WriteProtected { .. }) => FaultKind::WriteProtected,
            Err(TranslationFault::MidNotMapped { .. }) => FaultKind::MidNotMapped,
        };
        let escape = if c.escape_hits > pre.escape_hits {
            EscapeOutcome::Escaped
        } else if c.bound_checks > pre.bound_checks {
            EscapeOutcome::Passed
        } else {
            EscapeOutcome::NotChecked
        };
        observer.on_walk(&WalkEvent {
            seq: c.accesses,
            gva: va.as_u64(),
            gpa: self.pending_gpa,
            mode: self.mode.label(),
            class,
            write,
            // Deltas of u64 counters, passed through losslessly — these
            // were once narrowed `as u32`, which silently truncated long
            // multi-walk deltas (see `emit_event_ref_counts_are_lossless`).
            cycles: c.translation_cycles - pre.translation_cycles,
            guest_refs: c.guest_walk_refs - pre.guest_walk_refs,
            nested_refs: c.nested_walk_refs - pre.nested_walk_refs,
            escape,
            fault,
            // All-zero unless the observer asked for attribution.
            attr: self.attr,
        });
        self.observer = Some(observer);
    }

    /// The L1-miss segment fast path: Dual Direct's 0D translation and the
    /// unvirtualized direct-segment mode.
    fn segment_bypass(&mut self, va: Gva) -> Option<Hpa> {
        // The bypass check runs in parallel with the L2 TLB lookup
        // (Section III.D moved it off the L1 critical path), so its
        // latency is hidden: Table IV prices these misses at zero cycles.
        match self.mode {
            TranslationMode::DualDirect => {
                self.counters.bound_checks += 1;
                let gpa = self.guest_seg.translate(va)?;
                if self.guest_escaped(va.as_u64()) {
                    return None;
                }
                let hpa = self.vmm_seg.translate(gpa)?;
                if self.vmm_escaped(gpa.as_u64()) {
                    return None;
                }
                self.counters.cat_both += 1;
                Some(hpa)
            }
            TranslationMode::NativeDirect => {
                self.counters.bound_checks += 1;
                let pa = self.native_seg.translate(va)?;
                if self.vmm_escaped(va.as_u64()) || self.guest_escaped(va.as_u64()) {
                    return None;
                }
                self.counters.ds_hits += 1;
                Some(pa)
            }
            // Triple Direct: all three L2 layers by addition — the fused
            // run covers the whole stack with one bound check.
            TranslationMode::L2Nested {
                guest_ds: true,
                mid_ds: true,
                host_ds: true,
            } => {
                self.counters.bound_checks += 1;
                let apa = self.guest_seg.translate(va)?;
                if self.guest_escaped(va.as_u64()) {
                    return None;
                }
                let bpa = self.mid_seg.translate(apa)?;
                if self.mid_escaped(apa.as_u64()) {
                    return None;
                }
                let hpa = self.vmm_seg.translate(bpa)?;
                if self.vmm_escaped(bpa.as_u64()) {
                    return None;
                }
                self.counters.cat_both += 1;
                Some(hpa)
            }
            _ => None,
        }
    }

    fn guest_escaped(&mut self, raw: u64) -> bool {
        match &self.guest_escape {
            Some(f) if f.maybe_contains(raw) => {
                self.counters.escape_hits += 1;
                true
            }
            _ => false,
        }
    }

    fn vmm_escaped(&mut self, raw: u64) -> bool {
        match &self.vmm_escape {
            Some(f) if f.maybe_contains(raw) => {
                self.counters.escape_hits += 1;
                true
            }
            _ => false,
        }
    }

    fn mid_escaped(&mut self, raw: u64) -> bool {
        match &self.mid_escape {
            Some(f) if f.maybe_contains(raw) => {
                self.counters.escape_hits += 1;
                true
            }
            _ => false,
        }
    }

    /// Native 1D walk with page-walk-cache skipping.
    fn native_walk(
        &mut self,
        pt: &PageTable<Gva, Hpa>,
        mem: &PhysMem<Hpa>,
        asid: u16,
        va: Gva,
        cycles: &mut u64,
    ) -> Result<(Hpa, PageSize, Prot), TranslationFault> {
        self.counters.cat_neither += 1;
        let raw = va.as_u64();
        let (mut level, mut table) =
            self.pwc_probe(WalkDim::Guest, asid, raw, pt.root().as_u64(), cycles);
        loop {
            let eaddr = entry_addr(Hpa::new(table), raw, level);
            let step = self.pte_cache.access(eaddr.as_u64(), &self.costs);
            *cycles += step;
            if self.attr_on {
                self.attr.record(4 - level as usize, REF_COL, step);
            }
            self.counters.guest_walk_refs += 1;
            let pte = Pte::from_bits(mem.read_u64(eaddr));
            if !pte.is_present() {
                self.counters.guest_faults += 1;
                return Err(TranslationFault::GuestNotMapped { gva: va });
            }
            if level == 1 || pte.is_huge() {
                let size = leaf_size(level);
                return Ok((pte.addr(), size, pte.prot()));
            }
            table = pte.addr::<Hpa>().as_u64();
            self.pwc_insert(WalkDim::Guest, asid, raw, level - 1, table);
            level -= 1;
        }
    }

    /// The 2D walk of Figure 2, flattened per mode: each guest page-table
    /// pointer (and the final gPA) goes through [`Self::nested_translate`],
    /// which is where VMM Direct's dimensionality reduction happens; the
    /// guest dimension itself may be replaced by the guest segment (Guest
    /// Direct / Dual Direct).
    #[allow(clippy::too_many_arguments)]
    fn nested_walk_2d(
        &mut self,
        gpt: &PageTable<Gva, Gpa>,
        gmem: &PhysMem<Gpa>,
        npt: &PageTable<Gpa, Hpa>,
        hmem: &PhysMem<Hpa>,
        asid: u16,
        va: Gva,
        write: bool,
        cycles: &mut u64,
    ) -> Result<(Hpa, PageSize, Prot), TranslationFault> {
        let raw = va.as_u64();
        let guest_seg_active = self.mode.uses_guest_segment() && !self.guest_seg.is_nullified();

        // First dimension: gVA → gPA.
        let mut used_guest_seg = false;
        let (gpa_page, size, prot) = if guest_seg_active {
            self.counters.bound_checks += 1;
            *cycles += self.costs.bound_check;
            if self.attr_on {
                self.attr.add_bound_check(self.costs.bound_check);
            }
            match self.guest_seg.translate(va) {
                Some(gpa) if !self.guest_escaped(raw) => {
                    used_guest_seg = true;
                    (
                        Gpa::new(gpa.as_u64() & !0xfff),
                        PageSize::Size4K,
                        Prot::RW,
                    )
                }
                _ => self.guest_dimension_walk(gpt, gmem, npt, hmem, asid, va, cycles)?,
            }
        } else {
            self.guest_dimension_walk(gpt, gmem, npt, hmem, asid, va, cycles)?
        };

        // Second dimension for the final guest-physical address.
        let gpa_of_access = Gpa::new(gpa_page.as_u64() + (raw & size.offset_mask()));
        self.pending_gpa = Some(gpa_of_access.as_u64());
        if self.attr_on {
            // The final data reference resolves through the nested
            // dimension on the matrix's last row.
            self.attr_row = 4;
        }
        if let Some(trace) = &mut self.miss_trace {
            trace.record(MissRecord {
                gva: va,
                gpa: gpa_of_access,
                write,
            });
        }
        let (hpa, used_vmm_seg, nested_leaf) =
            self.nested_translate(npt, hmem, va, gpa_of_access, cycles)?;
        // Effective protection is the intersection of both dimensions: the
        // VMM write-protects nested entries for dirty tracking and
        // copy-on-write sharing, and those traps must fire regardless of
        // the guest's own permissions.
        let prot = match nested_leaf {
            Some((_, nprot)) => prot & nprot,
            None => prot,
        };

        // Table I category bookkeeping (the "Both" category was already
        // served by the 0D bypass before the L2 lookup).
        match (used_guest_seg, used_vmm_seg) {
            (true, _) => self.counters.cat_guest_only += 1,
            (false, true) => self.counters.cat_vmm_only += 1,
            (false, false) => self.counters.cat_neither += 1,
        }

        // The TLB entry covers the largest region over which both
        // dimensions are contiguous: min(guest leaf, nested leaf), with the
        // VMM segment providing unbounded second-dimension contiguity.
        let eff = if used_guest_seg {
            PageSize::Size4K
        } else {
            match nested_leaf {
                Some((n, _)) => size.min(n),
                None => size, // VMM segment: guest leaf size governs
            }
        };
        let page_base = hpa.as_u64() - (raw & eff.offset_mask());
        Ok((Hpa::new(page_base), eff, prot))
    }

    /// Walks the guest page table, translating each table pointer through
    /// the nested dimension.
    #[allow(clippy::too_many_arguments)] // the walk needs both dimensions' tables and memories
    fn guest_dimension_walk(
        &mut self,
        gpt: &PageTable<Gva, Gpa>,
        gmem: &PhysMem<Gpa>,
        npt: &PageTable<Gpa, Hpa>,
        hmem: &PhysMem<Hpa>,
        asid: u16,
        va: Gva,
        cycles: &mut u64,
    ) -> Result<(Gpa, PageSize, Prot), TranslationFault> {
        let raw = va.as_u64();
        let (mut level, mut table_gpa) =
            self.pwc_probe(WalkDim::Guest, asid, raw, gpt.root().as_u64(), cycles);
        loop {
            let entry_gpa = entry_addr(Gpa::new(table_gpa), raw, level);
            if self.attr_on {
                self.attr_row = 4 - level as usize;
            }
            // The guest entry lives in guest-physical memory, which the
            // hardware reaches through the second dimension.
            let (entry_hpa, _, _) = self.nested_translate(npt, hmem, va, entry_gpa, cycles)?;
            let step = self.pte_cache.access(entry_hpa.as_u64(), &self.costs);
            *cycles += step;
            if self.attr_on {
                self.attr.record(4 - level as usize, REF_COL, step);
            }
            self.counters.guest_walk_refs += 1;
            let pte = Pte::from_bits(gmem.read_u64(entry_gpa));
            if !pte.is_present() {
                self.counters.guest_faults += 1;
                return Err(TranslationFault::GuestNotMapped { gva: va });
            }
            if level == 1 || pte.is_huge() {
                return Ok((pte.addr(), leaf_size(level), pte.prot()));
            }
            table_gpa = pte.addr::<Gpa>().as_u64();
            self.pwc_insert(WalkDim::Guest, asid, raw, level - 1, table_gpa);
            level -= 1;
        }
    }

    /// Second-dimension translation of one guest-physical address:
    /// VMM-segment check, then nested TLB, then a nested walk. Returns the
    /// hPA for exactly `gpa`, whether the VMM segment served it, and the
    /// nested leaf's `(size, prot)` (`None` when the segment served it —
    /// segment contiguity is unbounded and always read-write).
    fn nested_translate(
        &mut self,
        npt: &PageTable<Gpa, Hpa>,
        hmem: &PhysMem<Hpa>,
        gva: Gva,
        gpa: Gpa,
        cycles: &mut u64,
    ) -> Result<(Hpa, bool, NestedLeaf), TranslationFault> {
        if self.mode.uses_vmm_segment() && !self.vmm_seg.is_nullified() {
            self.counters.bound_checks += 1;
            *cycles += self.costs.bound_check;
            if self.attr_on {
                self.attr.add_bound_check(self.costs.bound_check);
            }
            if let Some(hpa) = self.vmm_seg.translate(gpa) {
                if !self.vmm_escaped(gpa.as_u64()) {
                    return Ok((hpa, true, None));
                }
            }
        }

        // Nested TLB: shares the L2 structure (Table VI).
        let gfn = gpa.as_u64() >> 12;
        if self.walk_caching {
            if let Some(e) = self.l2.lookup(L2Key::Nested { gfn }) {
                *cycles += self.costs.nested_tlb_hit;
                if self.attr_on {
                    self.attr.add_nested_tlb(self.costs.nested_tlb_hit);
                }
                return Ok((
                    Hpa::new(e.translate(gpa.as_u64())),
                    false,
                    Some((PageSize::Size4K, e.prot)),
                ));
            }
        }

        // Nested page walk with its own walk cache.
        let raw = gpa.as_u64();
        let (mut level, mut table) =
            self.pwc_probe(WalkDim::Nested, 0, raw, npt.root().as_u64(), cycles);
        loop {
            let eaddr = entry_addr(Hpa::new(table), raw, level);
            let step = self.pte_cache.access(eaddr.as_u64(), &self.costs);
            *cycles += step;
            if self.attr_on {
                self.attr.record(self.attr_row, 4 - level as usize, step);
            }
            self.counters.nested_walk_refs += 1;
            let pte = Pte::from_bits(hmem.read_u64(eaddr));
            if !pte.is_present() {
                self.counters.nested_faults += 1;
                return Err(TranslationFault::NestedNotMapped { gva, gpa });
            }
            if level == 1 || pte.is_huge() {
                let size = leaf_size(level);
                let hpa_4k_page =
                    pte.addr::<Hpa>().as_u64() + ((raw & size.offset_mask()) & !0xfff);
                // The nested TLB caches at 4 KiB granularity.
                if self.walk_caching {
                    self.l2.insert(
                        L2Key::Nested { gfn },
                        TlbEntry {
                            page_base: hpa_4k_page,
                            size: PageSize::Size4K,
                            prot: pte.prot(),
                        },
                    );
                }
                return Ok((
                    Hpa::new(hpa_4k_page + (raw & 0xfff)),
                    false,
                    Some((size, pte.prot())),
                ));
            }
            table = pte.addr::<Hpa>().as_u64();
            self.pwc_insert(WalkDim::Nested, 0, raw, level - 1, table);
            level -= 1;
        }
    }

    /// The 3D walk of an L2 stack: the 2D structure of
    /// [`Self::nested_walk_2d`] with every space-A physical address —
    /// guest table pointers and the final data address — resolved through
    /// [`Self::mid_translate`] instead of going straight to the nested
    /// dimension. With walk caching off this costs the recurrence's
    /// T(3) = 124 references (4 guest + 20 mid + 100 host).
    fn nested_walk_3d(
        &mut self,
        l: &L2Layers<'_>,
        asid: u16,
        va: Gva,
        write: bool,
        cycles: &mut u64,
    ) -> Result<(Hpa, PageSize, Prot), TranslationFault> {
        let raw = va.as_u64();
        let guest_seg_active = self.mode.uses_guest_segment() && !self.guest_seg.is_nullified();

        // Top dimension: gVA → space A.
        let mut used_guest_seg = false;
        let (apa_page, size, prot) = if guest_seg_active {
            self.counters.bound_checks += 1;
            *cycles += self.costs.bound_check;
            if self.attr_on {
                self.attr.add_bound_check(self.costs.bound_check);
            }
            match self.guest_seg.translate(va) {
                Some(apa) if !self.guest_escaped(raw) => {
                    used_guest_seg = true;
                    (
                        Gpa::new(apa.as_u64() & !0xfff),
                        PageSize::Size4K,
                        Prot::RW,
                    )
                }
                _ => self.guest_dimension_walk_3d(l, asid, va, cycles)?,
            }
        } else {
            self.guest_dimension_walk_3d(l, asid, va, cycles)?
        };

        // Lower dimensions for the final space-A address of the access.
        let apa_of_access = Gpa::new(apa_page.as_u64() + (raw & size.offset_mask()));
        self.pending_gpa = Some(apa_of_access.as_u64());
        if self.attr_on {
            self.attr_row = 4;
        }
        if let Some(trace) = &mut self.miss_trace {
            trace.record(MissRecord {
                gva: va,
                gpa: apa_of_access,
                write,
            });
        }
        let (hpa, used_lower_seg, lower_leaf) =
            self.mid_translate(l, va, apa_of_access, cycles)?;
        let prot = match lower_leaf {
            Some((_, lprot)) => prot & lprot,
            None => prot,
        };

        // Category bookkeeping mirrors Table I, with "VMM" meaning any
        // lower (mid or host) segment.
        match (used_guest_seg, used_lower_seg) {
            (true, _) => self.counters.cat_guest_only += 1,
            (false, true) => self.counters.cat_vmm_only += 1,
            (false, false) => self.counters.cat_neither += 1,
        }

        let eff = if used_guest_seg {
            PageSize::Size4K
        } else {
            match lower_leaf {
                Some((n, _)) => size.min(n),
                None => size,
            }
        };
        let page_base = hpa.as_u64() - (raw & eff.offset_mask());
        Ok((Hpa::new(page_base), eff, prot))
    }

    /// Walks the L2 guest's page table; each table pointer is a space-A
    /// address that resolves through the mid and host dimensions.
    fn guest_dimension_walk_3d(
        &mut self,
        l: &L2Layers<'_>,
        asid: u16,
        va: Gva,
        cycles: &mut u64,
    ) -> Result<(Gpa, PageSize, Prot), TranslationFault> {
        let raw = va.as_u64();
        let (mut level, mut table_apa) =
            self.pwc_probe(WalkDim::Guest, asid, raw, l.gpt.root().as_u64(), cycles);
        loop {
            let entry_apa = entry_addr(Gpa::new(table_apa), raw, level);
            if self.attr_on {
                self.attr_row = 4 - level as usize;
            }
            let (entry_hpa, _, _) = self.mid_translate(l, va, entry_apa, cycles)?;
            let step = self.pte_cache.access(entry_hpa.as_u64(), &self.costs);
            *cycles += step;
            if self.attr_on {
                self.attr.record(4 - level as usize, REF_COL, step);
            }
            self.counters.guest_walk_refs += 1;
            let pte = Pte::from_bits(l.amem.read_u64(entry_apa));
            if !pte.is_present() {
                self.counters.guest_faults += 1;
                return Err(TranslationFault::GuestNotMapped { gva: va });
            }
            if level == 1 || pte.is_huge() {
                return Ok((pte.addr(), leaf_size(level), pte.prot()));
            }
            table_apa = pte.addr::<Gpa>().as_u64();
            self.pwc_insert(WalkDim::Guest, asid, raw, level - 1, table_apa);
            level -= 1;
        }
    }

    /// Resolves one space-A physical address through the mid (A→B) and
    /// host (B→hPA) dimensions: mid-segment check, then the mid TLB, then
    /// a mid walk whose own entries resolve through
    /// [`Self::nested_translate`]. Returns the hPA for exactly `apa`,
    /// whether any lower segment served it, and the effective lower leaf
    /// (`None` when segments served both lower dimensions).
    fn mid_translate(
        &mut self,
        l: &L2Layers<'_>,
        gva: Gva,
        apa: Gpa,
        cycles: &mut u64,
    ) -> Result<(Hpa, bool, NestedLeaf), TranslationFault> {
        if self.mode.uses_mid_segment() && !self.mid_seg.is_nullified() {
            self.counters.bound_checks += 1;
            *cycles += self.costs.bound_check;
            if self.attr_on {
                self.attr.add_bound_check(self.costs.bound_check);
            }
            if let Some(bpa) = self.mid_seg.translate(apa) {
                if !self.mid_escaped(apa.as_u64()) {
                    // Mid contiguity is unbounded: the host leaf governs
                    // (and is itself `None` when the VMM segment served).
                    let (hpa, _, host_leaf) =
                        self.nested_translate(l.npt, l.hmem, gva, bpa, cycles)?;
                    return Ok((hpa, true, host_leaf));
                }
            }
        }

        // Mid TLB: caches complete space A → hPA translations at 4 KiB.
        let afn = apa.as_u64() >> 12;
        if self.walk_caching {
            if let Some(e) = self.mid_tlb.lookup(L2Key::Nested { gfn: afn }) {
                *cycles += self.costs.nested_tlb_hit;
                if self.attr_on {
                    self.attr.add_nested_tlb(self.costs.nested_tlb_hit);
                }
                return Ok((
                    Hpa::new(e.translate(apa.as_u64())),
                    false,
                    Some((PageSize::Size4K, e.prot)),
                ));
            }
        }

        // Mid page walk: each entry lives in space B, which the hardware
        // reaches through the host dimension.
        let raw = apa.as_u64();
        let (mut level, mut table_bpa) =
            self.pwc_probe(WalkDim::Mid, 0, raw, l.mpt.root().as_u64(), cycles);
        loop {
            let entry_bpa = entry_addr(Gpa::new(table_bpa), raw, level);
            let (entry_hpa, _, _) =
                self.nested_translate(l.npt, l.hmem, gva, entry_bpa, cycles)?;
            let step = self.pte_cache.access(entry_hpa.as_u64(), &self.costs);
            *cycles += step;
            if self.attr_on {
                self.attr.record_mid(self.attr_row, 4 - level as usize, step);
            }
            self.counters.mid_walk_refs += 1;
            let pte = Pte::from_bits(l.bmem.read_u64(entry_bpa));
            if !pte.is_present() {
                self.counters.mid_faults += 1;
                return Err(TranslationFault::MidNotMapped { gva, gpa: apa });
            }
            if level == 1 || pte.is_huge() {
                let size = leaf_size(level);
                let bpa_4k_page =
                    pte.addr::<Gpa>().as_u64() + ((raw & size.offset_mask()) & !0xfff);
                let bpa = Gpa::new(bpa_4k_page + (raw & 0xfff));
                // Host dimension for the address itself.
                let (hpa, used_vmm, host_leaf) =
                    self.nested_translate(l.npt, l.hmem, gva, bpa, cycles)?;
                // Effective lower leaf: intersection of mid and host.
                let eff = match host_leaf {
                    Some((hsize, hprot)) => (size.min(hsize), pte.prot() & hprot),
                    None => (size, pte.prot()),
                };
                if self.walk_caching {
                    self.mid_tlb.insert(
                        L2Key::Nested { gfn: afn },
                        TlbEntry {
                            page_base: hpa.as_u64() & !0xfff,
                            size: PageSize::Size4K,
                            prot: eff.1,
                        },
                    );
                }
                return Ok((hpa, used_vmm, Some(eff)));
            }
            table_bpa = pte.addr::<Gpa>().as_u64();
            self.pwc_insert(WalkDim::Mid, 0, raw, level - 1, table_bpa);
            level -= 1;
        }
    }

    /// Finds the deepest page-walk-cache hit for `raw`, returning the level
    /// to start reading at and that level's table base. `dim` selects
    /// which dimension's cache to probe.
    fn pwc_probe(
        &mut self,
        dim: WalkDim,
        asid: u16,
        raw: u64,
        root: u64,
        cycles: &mut u64,
    ) -> (u8, u64) {
        if !self.walk_caching {
            return (4, root);
        }
        let pwc = match dim {
            WalkDim::Guest => &mut self.guest_pwc,
            WalkDim::Mid => &mut self.mid_pwc,
            WalkDim::Nested => &mut self.nested_pwc,
        };
        for points_to in 1..=3u8 {
            let key = PwcKey {
                asid,
                points_to_level: points_to,
                va_prefix: raw >> (12 + 9 * points_to as u32),
            };
            if let Some(table) = pwc.lookup(key) {
                *cycles += self.costs.pwc_hit;
                if self.attr_on {
                    self.attr.add_pwc(self.costs.pwc_hit);
                }
                return (points_to, table);
            }
        }
        (4, root)
    }

    fn pwc_insert(&mut self, dim: WalkDim, asid: u16, raw: u64, points_to: u8, table: u64) {
        if !self.walk_caching {
            return;
        }
        let pwc = match dim {
            WalkDim::Guest => &mut self.guest_pwc,
            WalkDim::Mid => &mut self.mid_pwc,
            WalkDim::Nested => &mut self.nested_pwc,
        };
        pwc.insert(
            PwcKey {
                asid,
                points_to_level: points_to,
                va_prefix: raw >> (12 + 9 * points_to as u32),
            },
            table,
        );
    }
}

/// Escape-filter check without the `escape_hits` bookkeeping — the
/// functional path's decisions must match the detailed path's
/// (`maybe_contains` is pure) while leaving counters untouched.
fn escaped_quiet(filter: &Option<EscapeFilter>, raw: u64) -> bool {
    matches!(filter, Some(f) if f.maybe_contains(raw))
}

/// Guest-dimension leaf by software walk, for the functional path.
fn functional_guest_leaf(
    gpt: &PageTable<Gva, Gpa>,
    gmem: &PhysMem<Gpa>,
    va: Gva,
) -> Result<(Gpa, PageSize, Prot), TranslationFault> {
    match gpt.translate(gmem, va) {
        Some(t) => Ok((t.page_base, t.size, t.prot)),
        None => Err(TranslationFault::GuestNotMapped { gva: va }),
    }
}

fn leaf_size(level: u8) -> PageSize {
    match level {
        1 => PageSize::Size4K,
        2 => PageSize::Size2M,
        3 => PageSize::Size1G,
        _ => unreachable!("no leaves above level 3"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_phys::PhysMem;
    use mv_pt::PageTable;
    use mv_types::{AddrRange, MIB};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Observer that records every delivered event verbatim.
    #[derive(Debug, Default)]
    struct Capture(Rc<RefCell<Vec<WalkEvent>>>);

    impl WalkObserver for Capture {
        fn on_walk(&mut self, event: &WalkEvent) {
            self.0.borrow_mut().push(*event);
        }
    }

    /// Like [`Capture`], but asks the MMU for per-cell attribution.
    #[derive(Debug, Default)]
    struct AttrCapture(Rc<RefCell<Vec<WalkEvent>>>);

    impl WalkObserver for AttrCapture {
        fn on_walk(&mut self, event: &WalkEvent) {
            self.0.borrow_mut().push(*event);
        }

        fn wants_attribution(&self) -> bool {
            true
        }
    }

    /// A minimal virtualized context: a handful of mapped guest pages over
    /// an identity-mapped nested dimension.
    struct VirtSetup {
        gpt: PageTable<Gva, Gpa>,
        gmem: PhysMem<Gpa>,
        npt: PageTable<Gpa, Hpa>,
        hmem: PhysMem<Hpa>,
        pages: Vec<Gva>,
    }

    fn virt_setup() -> VirtSetup {
        let mut gmem: PhysMem<Gpa> = PhysMem::new(32 * MIB);
        let mut hmem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut gmem).unwrap();
        let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();
        let mut pages = Vec::new();
        for i in 0..16u64 {
            // Spread VAs across L2/L3 table boundaries so walks differ.
            let va = Gva::new(0x4000_0000 * (i % 4) + 0x20_0000 * i + 0x1000 * i);
            let frame = gmem.alloc(PageSize::Size4K).unwrap();
            gpt.map(&mut gmem, va, frame, PageSize::Size4K, Prot::RW)
                .unwrap();
            pages.push(va);
        }
        for off in (0..(32 * MIB)).step_by(2 << 20) {
            let h = hmem.alloc(PageSize::Size2M).unwrap();
            npt.map(&mut hmem, Gpa::new(off), h, PageSize::Size2M, Prot::RW)
                .unwrap();
        }
        VirtSetup {
            gpt,
            gmem,
            npt,
            hmem,
            pages,
        }
    }

    #[test]
    fn attribution_conserves_cycles_and_refs() {
        // The conservation invariant behind mv-prof: every cycle the walker
        // charges lands in exactly one attribution bucket (a grid cell or a
        // tier), and the ref grid partitions the guest/nested ref counters.
        let s = virt_setup();
        let ctx = MemoryContext::Virtualized {
            gpt: &s.gpt,
            gmem: &s.gmem,
            npt: &s.npt,
            hmem: &s.hmem,
        };
        let mut mmu = Mmu::new(MmuConfig::default());
        let events = Rc::new(RefCell::new(Vec::new()));
        mmu.set_observer(Box::new(AttrCapture(events.clone())));

        // Two rounds: the second exercises the PWC/nested-TLB/L2 tiers.
        for round in 0..2 {
            for &va in &s.pages {
                mmu.access(&ctx, 1, va, round == 1).unwrap();
            }
            mmu.l1.flush_all();
        }

        let got = events.borrow();
        assert!(!got.is_empty());
        let mut saw_cells = false;
        let mut saw_l2_tier = false;
        for e in got.iter() {
            assert_eq!(
                e.attr.total_cycles(),
                e.cycles,
                "attribution must conserve the event's charged cycles: {e:?}"
            );
            let ref_col: u64 = (0..mv_obs::GUEST_ROWS)
                .map(|r| u64::from(e.attr.refs[r][REF_COL]))
                .sum();
            let nested_cells: u64 = (0..mv_obs::GUEST_ROWS)
                .flat_map(|r| (0..REF_COL).map(move |c| (r, c)))
                .map(|(r, c)| u64::from(e.attr.refs[r][c]))
                .sum();
            assert_eq!(ref_col, e.guest_refs, "ref column counts guest refs");
            assert_eq!(nested_cells, e.nested_refs, "cells count nested refs");
            saw_cells |= e.attr.total_refs() > 0;
            saw_l2_tier |= e.attr.l2_hit_cycles > 0;
        }
        assert!(saw_cells, "some events walked");
        assert!(saw_l2_tier, "round two hit the L2 TLB");
    }

    #[test]
    fn plain_observer_gets_empty_attribution() {
        // A telemetry-style observer (wants_attribution = false) must see
        // all-zero WalkAttr on every event — that emptiness is what keeps
        // JSONL exports byte-identical across the profiler's introduction.
        let s = virt_setup();
        let ctx = MemoryContext::Virtualized {
            gpt: &s.gpt,
            gmem: &s.gmem,
            npt: &s.npt,
            hmem: &s.hmem,
        };
        let mut mmu = Mmu::new(MmuConfig::default());
        let events = Rc::new(RefCell::new(Vec::new()));
        mmu.set_observer(Box::new(Capture(events.clone())));
        for &va in &s.pages {
            mmu.access(&ctx, 1, va, false).unwrap();
        }
        let got = events.borrow();
        assert!(!got.is_empty());
        for e in got.iter() {
            assert!(e.attr.is_empty(), "unattributed event carries attr: {e:?}");
        }
    }

    #[test]
    fn warm_access_updates_state_but_not_measurement() {
        let s = virt_setup();
        let ctx = MemoryContext::Virtualized {
            gpt: &s.gpt,
            gmem: &s.gmem,
            npt: &s.npt,
            hmem: &s.hmem,
        };
        let mut mmu = Mmu::new(MmuConfig::default());
        mmu.enable_miss_trace(64);
        let events = Rc::new(RefCell::new(Vec::new()));
        mmu.set_observer(Box::new(Capture(events.clone())));

        let pre = *mmu.counters();
        for &va in &s.pages {
            mmu.access_warm(&ctx, 1, va, false).unwrap();
        }
        // No counters moved, no events fired, no miss records taken.
        assert_eq!(*mmu.counters(), pre);
        assert!(events.borrow().is_empty());
        assert_ne!(mmu.nested_l2_debt(), (0, 0), "warm walks probed nested L2");
        // ...but the state warmed: the same accesses now hit the L1 TLB.
        for &va in &s.pages {
            let out = mmu.access(&ctx, 1, va, false).unwrap();
            assert_eq!(out.path, HitPath::L1Hit, "warmed access missed: {va:?}");
        }
        assert!(mmu.take_miss_trace().unwrap().records().is_empty());
        assert!(mmu.has_observer(), "observer must be re-attached after warm");
    }

    #[test]
    fn functional_access_matches_detailed_hpa_2d() {
        // Two identical MMUs over one context: the functional path must
        // resolve every VA to the hPA the detailed walker produces, and
        // the TLB entry it installs must serve later detailed hits.
        let s = virt_setup();
        let ctx = MemoryContext::Virtualized {
            gpt: &s.gpt,
            gmem: &s.gmem,
            npt: &s.npt,
            hmem: &s.hmem,
        };
        let mut detailed = Mmu::new(MmuConfig::default());
        let mut functional = Mmu::new(MmuConfig::default());
        for round in 0..2 {
            for &va in &s.pages {
                let va = Gva::new(va.as_u64() + 8 * round);
                let d = detailed.access(&ctx, 1, va, false).unwrap();
                let f = functional.access_functional(&ctx, 1, va, false).unwrap();
                assert_eq!(f, d.hpa, "hpa diverged at {va:?}");
            }
        }
        // The functional MMU counted nothing and charged nothing.
        assert_eq!(*functional.counters(), MmuCounters::default());
        // Its TLB state serves detailed accesses without walking.
        for &va in &s.pages {
            let out = functional.access(&ctx, 1, va, false).unwrap();
            assert_eq!(out.path, HitPath::L1Hit);
        }
    }

    #[test]
    fn functional_access_matches_detailed_hpa_3d() {
        let s = l2_setup();
        let ctx = s.ctx();
        let mode = TranslationMode::L2Nested {
            guest_ds: false,
            mid_ds: false,
            host_ds: false,
        };
        let mut detailed = Mmu::new(MmuConfig {
            mode,
            ..MmuConfig::default()
        });
        let mut functional = Mmu::new(MmuConfig {
            mode,
            ..MmuConfig::default()
        });
        for &va in &s.pages {
            let d = detailed.access(&ctx, 1, va, false).unwrap();
            let f = functional.access_functional(&ctx, 1, va, false).unwrap();
            assert_eq!(f, d.hpa, "hpa diverged at {va:?}");
        }
        assert_eq!(*functional.counters(), MmuCounters::default());
    }

    #[test]
    fn functional_access_surfaces_faults() {
        let s = virt_setup();
        let ctx = MemoryContext::Virtualized {
            gpt: &s.gpt,
            gmem: &s.gmem,
            npt: &s.npt,
            hmem: &s.hmem,
        };
        let mut mmu = Mmu::new(MmuConfig::default());
        let unmapped = Gva::new(0x7357_0000_0000);
        match mmu.access_functional(&ctx, 1, unmapped, false) {
            Err(TranslationFault::GuestNotMapped { gva }) => assert_eq!(gva, unmapped),
            other => panic!("expected GuestNotMapped, got {other:?}"),
        }
        // Fault counters stay untouched on the functional path.
        assert_eq!(mmu.counters().guest_faults, 0);
    }

    /// A minimal L2 context: guest pages in space A, space A mapped onto
    /// space B by the mid table, space B mapped onto the host.
    struct L2Setup {
        gpt: PageTable<Gva, Gpa>,
        amem: PhysMem<Gpa>,
        mpt: PageTable<Gpa, Gpa>,
        bmem: PhysMem<Gpa>,
        npt: PageTable<Gpa, Hpa>,
        hmem: PhysMem<Hpa>,
        pages: Vec<Gva>,
    }

    impl L2Setup {
        fn ctx(&self) -> MemoryContext<'_> {
            MemoryContext::l2(
                (&self.gpt, &self.amem),
                (&self.mpt, &self.bmem),
                (&self.npt, &self.hmem),
            )
        }
    }

    fn l2_setup() -> L2Setup {
        let mut amem: PhysMem<Gpa> = PhysMem::new(16 * MIB);
        let mut bmem: PhysMem<Gpa> = PhysMem::new(32 * MIB);
        let mut hmem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut amem).unwrap();
        let mut mpt: PageTable<Gpa, Gpa> = PageTable::new(&mut bmem).unwrap();
        let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();
        let mut pages = Vec::new();
        for i in 0..8u64 {
            let va = Gva::new(0x4000_0000 * (i % 4) + 0x20_0000 * i + 0x1000 * i);
            let frame = amem.alloc(PageSize::Size4K).unwrap();
            gpt.map(&mut amem, va, frame, PageSize::Size4K, Prot::RW)
                .unwrap();
            pages.push(va);
        }
        // Cover all of space A with mid mappings and all of space B with
        // nested ones, at 4 KiB so every dimension walks all four levels
        // (the recurrence's worst case).
        for off in (0..(16 * MIB)).step_by(4 << 10) {
            let b = bmem.alloc(PageSize::Size4K).unwrap();
            mpt.map(&mut bmem, Gpa::new(off), b, PageSize::Size4K, Prot::RW)
                .unwrap();
        }
        for off in (0..(32 * MIB)).step_by(4 << 10) {
            let h = hmem.alloc(PageSize::Size4K).unwrap();
            npt.map(&mut hmem, Gpa::new(off), h, PageSize::Size4K, Prot::RW)
                .unwrap();
        }
        L2Setup {
            gpt,
            amem,
            mpt,
            bmem,
            npt,
            hmem,
            pages,
        }
    }

    fn l2_mode(guest_ds: bool, mid_ds: bool, host_ds: bool) -> TranslationMode {
        TranslationMode::L2Nested {
            guest_ds,
            mid_ds,
            host_ds,
        }
    }

    #[test]
    fn uncached_3d_walk_pays_the_124_reference_budget() {
        // T(3) = 124 with walk caching off: 4 guest entry reads, 4 mid
        // reads for each of the 5 space-A addresses (4 entries + data),
        // and 20 host reads under each of those 5 mid walks.
        let s = l2_setup();
        let mut mmu = Mmu::new(MmuConfig {
            mode: l2_mode(false, false, false),
            walk_caching: false,
            ..MmuConfig::default()
        });
        mmu.access(&s.ctx(), 1, s.pages[0], false).unwrap();
        let c = mmu.counters();
        assert_eq!(c.guest_walk_refs, 4);
        assert_eq!(c.mid_walk_refs, 20);
        assert_eq!(c.nested_walk_refs, 100);
        assert_eq!(c.walk_refs(), 124);
        assert_eq!(
            c.walk_refs() as u32,
            l2_mode(false, false, false).common_walk_refs(),
            "the walker must realize the stack-derived recurrence"
        );
    }

    #[test]
    fn attribution_conserves_cycles_on_3d_walks() {
        let s = l2_setup();
        let mut mmu = Mmu::new(MmuConfig {
            mode: l2_mode(false, false, false),
            ..MmuConfig::default()
        });
        let events = Rc::new(RefCell::new(Vec::new()));
        mmu.set_observer(Box::new(AttrCapture(events.clone())));
        for round in 0..2 {
            for &va in &s.pages {
                mmu.access(&s.ctx(), 1, va, round == 1).unwrap();
            }
            mmu.l1.flush_all();
        }
        let got = events.borrow();
        assert!(!got.is_empty());
        let mut saw_mid = false;
        for e in got.iter() {
            assert_eq!(
                e.attr.total_cycles(),
                e.cycles,
                "3D attribution must conserve the event's charged cycles: {e:?}"
            );
            let mid_cells: u64 = e
                .attr
                .mid_refs
                .iter()
                .flatten()
                .map(|&r| u64::from(r))
                .sum();
            saw_mid |= mid_cells > 0;
            if matches!(e.class, WalkClass::Walk3d) {
                assert!(e.attr.has_mid() || e.cycles == 0);
            }
        }
        assert!(saw_mid, "3-level walks populate the mid grid");
    }

    #[test]
    fn triple_direct_bypasses_all_three_dimensions() {
        let s = l2_setup();
        let mut mmu = Mmu::new(MmuConfig {
            mode: l2_mode(true, true, true),
            ..MmuConfig::default()
        });
        // Segments: VA window → space A at +0, A → B at +2M, B → host at
        // +4M (all inside the identity-style mapped spans).
        let win = AddrRange::new(Gva::new(0), Gva::new(4 * MIB));
        mmu.set_guest_segment(Segment::map(win, Gpa::new(0)));
        mmu.set_mid_segment(Segment::map(
            AddrRange::new(Gpa::new(0), Gpa::new(4 * MIB)),
            Gpa::new(2 * MIB),
        ));
        mmu.set_vmm_segment(Segment::map(
            AddrRange::new(Gpa::new(0), Gpa::new(16 * MIB)),
            Hpa::new(4 * MIB),
        ));
        let va = Gva::new(0x12_3456);
        let out = mmu.access(&s.ctx(), 1, va, false).unwrap();
        assert_eq!(out.path, HitPath::SegmentBypass);
        assert_eq!(
            out.hpa.as_u64(),
            0x12_3456 + 2 * MIB + 4 * MIB,
            "three additions compose"
        );
        let c = mmu.counters();
        assert_eq!(c.bound_checks, 1, "the fused run costs one check");
        assert_eq!(c.walk_refs(), 0);
        assert_eq!(c.cat_both, 1);
    }

    #[test]
    fn mid_fault_reports_the_space_a_address() {
        let mut amem: PhysMem<Gpa> = PhysMem::new(16 * MIB);
        let mut bmem: PhysMem<Gpa> = PhysMem::new(32 * MIB);
        let mut hmem: PhysMem<Hpa> = PhysMem::new(64 * MIB);
        let mut gpt: PageTable<Gva, Gpa> = PageTable::new(&mut amem).unwrap();
        let mpt: PageTable<Gpa, Gpa> = PageTable::new(&mut bmem).unwrap();
        let mut npt: PageTable<Gpa, Hpa> = PageTable::new(&mut hmem).unwrap();
        let va = Gva::new(0x7000);
        let frame = amem.alloc(PageSize::Size4K).unwrap();
        gpt.map(&mut amem, va, frame, PageSize::Size4K, Prot::RW)
            .unwrap();
        for off in (0..(32 * MIB)).step_by(2 << 20) {
            let h = hmem.alloc(PageSize::Size2M).unwrap();
            npt.map(&mut hmem, Gpa::new(off), h, PageSize::Size2M, Prot::RW)
                .unwrap();
        }
        let mut mmu = Mmu::new(MmuConfig {
            mode: l2_mode(false, false, false),
            ..MmuConfig::default()
        });
        let ctx = MemoryContext::l2((&gpt, &amem), (&mpt, &bmem), (&npt, &hmem));
        // The empty mid table faults on the guest root pointer itself.
        let err = mmu.access(&ctx, 1, va, false).unwrap_err();
        assert!(matches!(err, TranslationFault::MidNotMapped { .. }));
        assert_eq!(mmu.counters().mid_faults, 1);
    }

    #[test]
    fn mid_tlb_collapses_repeat_mid_walks() {
        let s = l2_setup();
        let mut mmu = Mmu::new(MmuConfig {
            mode: l2_mode(false, false, false),
            ..MmuConfig::default()
        });
        let va = s.pages[0];
        mmu.access(&s.ctx(), 1, va, false).unwrap();
        let after_first = mmu.counters().mid_walk_refs;
        assert!(after_first > 0);
        // Same page again after an L1/L2 flush: the mid TLB still holds
        // every space-A translation the first walk resolved.
        mmu.l1.flush_all();
        mmu.l2.flush_all();
        mmu.guest_pwc.flush_all();
        mmu.access(&s.ctx(), 1, va, false).unwrap();
        assert_eq!(
            mmu.counters().mid_walk_refs,
            after_first,
            "repeat walk is served by the mid TLB"
        );
    }

    #[test]
    fn emit_event_ref_counts_are_lossless() {
        // Regression test for the `as u32` truncation: `emit_event`
        // reports per-access deltas of the u64 walk-ref and cycle
        // counters, and a delta above u32::MAX (a long multi-walk
        // retry chain) must arrive unclipped at the observer.
        let mut mmu = Mmu::new(MmuConfig::default());
        let events = Rc::new(RefCell::new(Vec::new()));
        mmu.set_observer(Box::new(Capture(events.clone())));

        let pre = mmu.counters;
        let huge = u64::from(u32::MAX) + 77;
        mmu.counters.guest_walk_refs = huge;
        mmu.counters.nested_walk_refs = 2 * huge;
        mmu.counters.translation_cycles = 3 * huge;
        let result = Ok(AccessOutcome {
            hpa: Hpa::new(0x1000),
            path: HitPath::PageWalk,
            cycles: 0,
        });
        mmu.emit_event(Gva::new(0x4000), false, &pre, &result);

        let got = events.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0].guest_refs, huge,
            "guest-ref delta was truncated (historically cast `as u32`)"
        );
        assert_eq!(got[0].nested_refs, 2 * huge);
        assert_eq!(got[0].cycles, 3 * huge, "cycle delta must stay u64");
    }
}
