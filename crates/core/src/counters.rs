//! Translation-event counters.
//!
//! The paper's evaluation is driven entirely by counted events (TLB misses,
//! walk cycles, segment-coverage fractions — Section VII). The simulator
//! counts the same events exactly rather than sampling them.

/// Counters accumulated by an [`crate::Mmu`] while servicing accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuCounters {
    /// Data accesses issued.
    pub accesses: u64,
    /// Accesses that were writes.
    pub writes: u64,
    /// L1 TLB misses.
    pub l1_misses: u64,
    /// L2 TLB misses among guest-kind lookups (page walks invoked).
    pub l2_misses: u64,
    /// Translations completed by the 0D dual-segment path (Table I "Both").
    pub cat_both: u64,
    /// Walks whose final gPA was covered by the VMM segment only.
    pub cat_vmm_only: u64,
    /// Walks whose gVA was covered by the guest segment only.
    pub cat_guest_only: u64,
    /// Walks covered by neither segment (full 2D cost).
    pub cat_neither: u64,
    /// Unvirtualized direct-segment translations (Section III.D mode).
    pub ds_hits: u64,
    /// Guest-dimension page-table memory references performed.
    pub guest_walk_refs: u64,
    /// Nested-dimension page-table memory references performed.
    pub nested_walk_refs: u64,
    /// Mid-dimension page-table memory references performed (the L1
    /// hypervisor's table on 3-level walks; always zero on 1D/2D modes).
    pub mid_walk_refs: u64,
    /// Base-bound checks performed.
    pub bound_checks: u64,
    /// Cycles charged to address translation beyond L1 hits.
    pub translation_cycles: u64,
    /// Addresses that hit the escape filter (true escapes + false
    /// positives) and fell back to paging.
    pub escape_hits: u64,
    /// Guest page faults surfaced (first dimension unmapped).
    pub guest_faults: u64,
    /// Nested page faults surfaced (second dimension unmapped).
    pub nested_faults: u64,
    /// Write-protection faults surfaced (copy-on-write breaks etc.).
    pub prot_faults: u64,
    /// Mid-dimension page faults surfaced (L1 hypervisor table unmapped,
    /// 3-level walks only).
    pub mid_faults: u64,
}

impl MmuCounters {
    /// TLB misses in the paper's sense: L1 misses (every one of which
    /// engages the proposed hardware).
    #[inline]
    pub fn tlb_misses(&self) -> u64 {
        self.l1_misses
    }

    /// Page walks performed (L2 misses minus the 0D/DS segment bypasses
    /// happen as walks; the segment categories partition them).
    #[inline]
    pub fn walks(&self) -> u64 {
        self.cat_vmm_only + self.cat_guest_only + self.cat_neither
    }

    /// Average translation cycles per TLB (L1) miss; 0 if no misses.
    pub fn cycles_per_miss(&self) -> f64 {
        if self.l1_misses == 0 {
            0.0
        } else {
            self.translation_cycles as f64 / self.l1_misses as f64
        }
    }

    /// Total page-walk memory references (all dimensions).
    #[inline]
    pub fn walk_refs(&self) -> u64 {
        self.guest_walk_refs + self.nested_walk_refs + self.mid_walk_refs
    }

    /// Scales every counter by the rational `num / den` with deterministic
    /// integer arithmetic (per-field `v * num / den` in 128-bit, truncating)
    /// — how a sampled run extrapolates its measured-window counters to a
    /// full-run estimate. A zero `den` returns the counters unchanged
    /// (nothing was measured, so there is nothing to scale).
    #[must_use]
    pub fn scaled(&self, num: u64, den: u64) -> MmuCounters {
        if den == 0 {
            return *self;
        }
        let s = |v: u64| ((v as u128 * num as u128) / den as u128) as u64;
        MmuCounters {
            accesses: s(self.accesses),
            writes: s(self.writes),
            l1_misses: s(self.l1_misses),
            l2_misses: s(self.l2_misses),
            cat_both: s(self.cat_both),
            cat_vmm_only: s(self.cat_vmm_only),
            cat_guest_only: s(self.cat_guest_only),
            cat_neither: s(self.cat_neither),
            ds_hits: s(self.ds_hits),
            guest_walk_refs: s(self.guest_walk_refs),
            nested_walk_refs: s(self.nested_walk_refs),
            mid_walk_refs: s(self.mid_walk_refs),
            bound_checks: s(self.bound_checks),
            translation_cycles: s(self.translation_cycles),
            escape_hits: s(self.escape_hits),
            guest_faults: s(self.guest_faults),
            nested_faults: s(self.nested_faults),
            prot_faults: s(self.prot_faults),
            mid_faults: s(self.mid_faults),
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &MmuCounters) {
        self.accesses += other.accesses;
        self.writes += other.writes;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.cat_both += other.cat_both;
        self.cat_vmm_only += other.cat_vmm_only;
        self.cat_guest_only += other.cat_guest_only;
        self.cat_neither += other.cat_neither;
        self.ds_hits += other.ds_hits;
        self.guest_walk_refs += other.guest_walk_refs;
        self.nested_walk_refs += other.nested_walk_refs;
        self.mid_walk_refs += other.mid_walk_refs;
        self.bound_checks += other.bound_checks;
        self.translation_cycles += other.translation_cycles;
        self.escape_hits += other.escape_hits;
        self.guest_faults += other.guest_faults;
        self.nested_faults += other.nested_faults;
        self.prot_faults += other.prot_faults;
        self.mid_faults += other.mid_faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let c = MmuCounters {
            l1_misses: 10,
            translation_cycles: 250,
            cat_vmm_only: 2,
            cat_guest_only: 3,
            cat_neither: 1,
            guest_walk_refs: 24,
            nested_walk_refs: 40,
            ..MmuCounters::default()
        };
        assert_eq!(c.tlb_misses(), 10);
        assert_eq!(c.walks(), 6);
        assert!((c.cycles_per_miss() - 25.0).abs() < 1e-12);
        assert_eq!(c.walk_refs(), 64);
    }

    #[test]
    fn cycles_per_miss_of_empty_counters_is_zero() {
        assert_eq!(MmuCounters::default().cycles_per_miss(), 0.0);
    }

    #[test]
    fn scaled_uses_integer_math_per_field() {
        let c = MmuCounters {
            accesses: 1_000,
            l1_misses: 333,
            translation_cycles: 7,
            ..MmuCounters::default()
        };
        let s = c.scaled(10_000, 1_000);
        assert_eq!(s.accesses, 10_000);
        assert_eq!(s.l1_misses, 3_330);
        assert_eq!(s.translation_cycles, 70);
        // Truncating division, never rounding up.
        let t = c.scaled(1, 3);
        assert_eq!(t.l1_misses, 111);
        assert_eq!(t.translation_cycles, 2);
        // Zero denominator: nothing measured, nothing scaled.
        assert_eq!(c.scaled(5, 0), c);
        // Large values must not overflow in the intermediate product.
        let big = MmuCounters {
            translation_cycles: u64::MAX / 2,
            ..MmuCounters::default()
        };
        assert_eq!(big.scaled(2, 1).translation_cycles, u64::MAX - 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MmuCounters {
            accesses: 1,
            l1_misses: 2,
            ..MmuCounters::default()
        };
        let b = MmuCounters {
            accesses: 10,
            l1_misses: 20,
            prot_faults: 1,
            ..MmuCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 11);
        assert_eq!(a.l1_misses, 22);
        assert_eq!(a.prot_faults, 1);
    }
}
