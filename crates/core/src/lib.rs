//! The paper's primary contribution: direct-segment hardware for
//! virtualized address translation.
//!
//! *Efficient Memory Virtualization: Reducing Dimensionality of Nested Page
//! Walks* (Gandhi, Basu, Hill, Swift — MICRO 2014) proposes two levels of
//! direct-segment registers plus an escape filter, yielding three new
//! virtualized translation modes that flatten the 24-reference 2D nested
//! page walk down to 4 (VMM Direct, Guest Direct) or 0 (Dual Direct)
//! memory references. This crate models that hardware:
//!
//! * [`Segment`] — BASE/LIMIT/OFFSET register sets for each translation
//!   level (Section III).
//! * [`TranslationMode`] — the Figure 3 modes with the Table II trade-off
//!   matrix.
//! * [`EscapeFilter`] — the 256-bit H3 Bloom filter that lets faulty pages
//!   escape a segment back to paging (Section V).
//! * [`Mmu`] — the full translation pipeline of Figure 5: split L1 TLB,
//!   shared L2/nested TLB, page-walk caches, segment checks, and the
//!   per-mode walker implementing Table I, with exact event counting
//!   ([`MmuCounters`]) and a cycle cost model ([`CostParams`]).
//!
//! # Example
//!
//! ```
//! use mv_core::{Segment, TranslationMode};
//! use mv_types::{AddrRange, Gpa, Hpa, GIB};
//!
//! // A VMM segment mapping 4 GiB of guest-physical space at host offset 1 GiB.
//! let seg: Segment<Gpa, Hpa> = Segment::map(
//!     AddrRange::new(Gpa::new(0), Gpa::new(4 * GIB)),
//!     Hpa::new(GIB),
//! );
//! assert_eq!(seg.translate(Gpa::new(42)), Some(Hpa::new(GIB + 42)));
//! assert_eq!(TranslationMode::VmmDirect.common_walk_refs(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The translation hot path and the machine layer must degrade via typed
// errors, never abort (tests may still unwrap freely) — the same
// discipline as mv-vmm/mv-guestos, extended here with the layer-stack
// refactor.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod cost;
mod counters;
mod escape;
mod fault;
mod layer;
mod mmu;
mod mode;
mod segment;
mod trace;

pub use cost::{CostParams, PteCache};
pub use counters::MmuCounters;
pub use escape::{EscapeFilter, FILTER_BITS, NUM_HASHES};
pub use fault::TranslationFault;
pub use layer::{LayerMode, LayerStack, TranslationLayer};
pub use mmu::{AccessOutcome, HitPath, MemoryContext, Mmu, MmuConfig, ModeSwitch};
pub use mode::{SegmentCategory, Support, TranslationMode};
pub use segment::Segment;
pub use trace::{MissRecord, MissTrace};

// Observability vocabulary, re-exported so MMU users can attach observers
// without naming `mv-obs` directly.
pub use mv_obs::{EscapeOutcome, FaultKind, WalkClass, WalkEvent, WalkObserver};
