//! Translation modes and their trade-offs (Figure 3 / Table II).

use core::fmt;

use crate::layer::{LayerMode, LayerStack};

/// How freely a virtualization feature can be used under a mode (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Support {
    /// The feature works for all memory.
    Unrestricted,
    /// The feature works only for memory outside the direct segment(s).
    Limited,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Support::Unrestricted => "unrestricted",
            Support::Limited => "limited",
        })
    }
}

/// The six translation modes of Figure 3: two native (1D) and four
/// virtualized (2D) configurations, four of which use the proposed
/// direct-segment hardware (shaded in the figure).
///
/// # Example
///
/// ```
/// use mv_core::TranslationMode;
///
/// let m = TranslationMode::DualDirect;
/// assert_eq!(m.walk_dimensions(), 0);
/// assert_eq!(m.common_walk_refs(), 0);
/// assert!(m.requires_guest_os_changes() && m.requires_vmm_changes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranslationMode {
    /// Native execution with conventional 4-level paging (1D walk).
    BaseNative,
    /// Native execution with a direct segment (the original Basu et al.
    /// proposal, re-implemented on the less intrusive L2-parallel hardware
    /// of Section III.D).
    NativeDirect,
    /// Virtualized execution with hardware nested paging (2D walk, the
    /// x86-64 status quo).
    BaseVirtualized,
    /// Both levels mapped by direct segments: gVA→gPA *and* gPA→hPA by
    /// addition — a 0D walk for addresses inside both segments
    /// (Section III.A).
    DualDirect,
    /// Second level (gPA→hPA) mapped by the VMM segment; guest uses
    /// ordinary paging. TLB misses walk only the guest page table: a 1D
    /// walk with 4 references plus 5 base-bound checks (Section III.B).
    VmmDirect,
    /// First level (gVA→gPA) mapped by the guest segment; the VMM keeps
    /// nested paging (preserving sharing/migration). A 1D walk with 4
    /// references plus 1 check (Section III.C).
    GuestDirect,
    /// Nested-nested (L2) virtualization: an L2 guest runs on an L1
    /// hypervisor that itself runs on the L0 host, so translation stacks
    /// three layers (L2 gVA → L1 gPA → L0 gPA → hPA). Each flag maps the
    /// corresponding layer with a direct segment instead of paging —
    /// the study extending Table II's dimensionality argument to 3D walks.
    L2Nested {
        /// The top (L2-guest gVA→gPA) layer uses a direct segment.
        guest_ds: bool,
        /// The middle (L1-hypervisor gPA→gPA) layer uses a direct segment.
        mid_ds: bool,
        /// The bottom (L0-host gPA→hPA) layer uses a direct segment.
        host_ds: bool,
    },
}

impl TranslationMode {
    /// All modes, in Figure 3's left-to-right order.
    pub const ALL: [TranslationMode; 6] = [
        TranslationMode::BaseNative,
        TranslationMode::NativeDirect,
        TranslationMode::BaseVirtualized,
        TranslationMode::DualDirect,
        TranslationMode::VmmDirect,
        TranslationMode::GuestDirect,
    ];

    /// The four virtualized modes (Table II columns).
    pub const VIRTUALIZED: [TranslationMode; 4] = [
        TranslationMode::BaseVirtualized,
        TranslationMode::DualDirect,
        TranslationMode::VmmDirect,
        TranslationMode::GuestDirect,
    ];

    /// Whether the mode runs under a VMM.
    pub fn is_virtualized(self) -> bool {
        self.stack().is_virtualized()
    }

    /// The mode's canonical [`LayerStack`]: which stacked translation
    /// layers it pages and which it maps with a direct segment. All
    /// Table II cost rows derive from this shape.
    pub fn stack(self) -> LayerStack {
        use LayerMode::{Base4K, DirectSegment};
        match self {
            TranslationMode::BaseNative => LayerStack::native(Base4K),
            TranslationMode::NativeDirect => LayerStack::native(DirectSegment),
            TranslationMode::BaseVirtualized => LayerStack::virtualized(Base4K, Base4K),
            TranslationMode::DualDirect => {
                LayerStack::virtualized(DirectSegment, DirectSegment)
            }
            TranslationMode::VmmDirect => LayerStack::virtualized(Base4K, DirectSegment),
            TranslationMode::GuestDirect => LayerStack::virtualized(DirectSegment, Base4K),
            TranslationMode::L2Nested {
                guest_ds,
                mid_ds,
                host_ds,
            } => {
                let layer = |ds: bool| if ds { DirectSegment } else { Base4K };
                LayerStack::l2(layer(guest_ds), layer(mid_ds), layer(host_ds))
            }
        }
    }

    /// Page-walk dimensionality for addresses on the mode's fast path
    /// (Table II row 1), derived from the layer stack.
    pub fn walk_dimensions(self) -> u8 {
        self.stack().walk_dimensions()
    }

    /// Memory accesses for most page walks (Table II row 2), derived from
    /// the layer stack's walk recurrence. `NativeDirect` is 0 inside the
    /// segment (pure calculation).
    pub fn common_walk_refs(self) -> u32 {
        self.stack().common_walk_refs()
    }

    /// Base-bound checks per walk (Table II row 3), derived from the
    /// layer stack's fused-segment-run rule. VMM Direct checks each of
    /// the four guest page-table pointers plus the final gPA.
    pub fn bound_checks(self) -> u32 {
        self.stack().bound_checks()
    }

    /// Whether the MMU consults a guest segment (gVA→gPA by addition) on
    /// this mode's walk path.
    pub fn uses_guest_segment(self) -> bool {
        matches!(
            self,
            TranslationMode::GuestDirect
                | TranslationMode::DualDirect
                | TranslationMode::L2Nested { guest_ds: true, .. }
        )
    }

    /// Whether the MMU consults the mid segment (the L1 hypervisor's
    /// gPA→gPA mapping by addition); only L2 stacks have a mid layer.
    pub fn uses_mid_segment(self) -> bool {
        matches!(self, TranslationMode::L2Nested { mid_ds: true, .. })
    }

    /// Whether the MMU consults the VMM segment (the bottom gPA→hPA
    /// mapping by addition) on this mode's walk path.
    pub fn uses_vmm_segment(self) -> bool {
        matches!(
            self,
            TranslationMode::VmmDirect
                | TranslationMode::DualDirect
                | TranslationMode::L2Nested { host_ds: true, .. }
        )
    }

    /// Whether the guest OS must be modified (Table II row 4). For L2
    /// modes this is the *L2 guest's* OS, which must manage a primary
    /// region when its layer is a direct segment.
    pub fn requires_guest_os_changes(self) -> bool {
        matches!(
            self,
            TranslationMode::NativeDirect
                | TranslationMode::DualDirect
                | TranslationMode::GuestDirect
                | TranslationMode::L2Nested { guest_ds: true, .. }
        )
    }

    /// Whether the VMM must be modified (Table II row 5). For L2 modes,
    /// either hypervisor (L1 for the mid segment, L0 for the host one).
    pub fn requires_vmm_changes(self) -> bool {
        matches!(
            self,
            TranslationMode::DualDirect
                | TranslationMode::VmmDirect
                | TranslationMode::L2Nested { mid_ds: true, .. }
                | TranslationMode::L2Nested { host_ds: true, .. }
        )
    }

    /// Whether the mode suits arbitrary applications or only big-memory
    /// ones with a primary region (Table II row 6).
    pub fn suits_any_application(self) -> bool {
        matches!(
            self,
            TranslationMode::BaseNative
                | TranslationMode::BaseVirtualized
                | TranslationMode::VmmDirect
                | TranslationMode::L2Nested {
                    guest_ds: false,
                    mid_ds: false,
                    host_ds: false,
                }
        )
    }

    /// Content-based page sharing support (Table II row 7); `None` for
    /// native modes where the feature does not apply.
    pub fn page_sharing(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Limited, Support::Unrestricted)
    }

    /// Ballooning support (Table II row 8).
    pub fn ballooning(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Limited, Support::Unrestricted)
    }

    /// Guest swapping support (Table II row 9).
    pub fn guest_swapping(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Unrestricted, Support::Limited)
    }

    /// VMM swapping support (Table II row 10).
    pub fn vmm_swapping(self) -> Option<Support> {
        self.feature(Support::Unrestricted, Support::Limited, Support::Limited, Support::Unrestricted)
    }

    fn feature(
        self,
        base: Support,
        dual: Support,
        vmm: Support,
        guest: Support,
    ) -> Option<Support> {
        match self {
            TranslationMode::BaseVirtualized => Some(base),
            TranslationMode::DualDirect => Some(dual),
            TranslationMode::VmmDirect => Some(vmm),
            TranslationMode::GuestDirect => Some(guest),
            // L2 features route through the L0 host layer: any direct
            // segment in the stack limits them to memory outside it, a
            // fully paged stack leaves them unrestricted.
            TranslationMode::L2Nested {
                guest_ds,
                mid_ds,
                host_ds,
            } => {
                if guest_ds || mid_ds || host_ds {
                    Some(Support::Limited)
                } else {
                    Some(Support::Unrestricted)
                }
            }
            _ => None,
        }
    }

    /// Configuration label used in the paper's figures (e.g. `"DD"`,
    /// `"4K+VD"` uses this as suffix).
    pub fn label(self) -> &'static str {
        match self {
            TranslationMode::BaseNative => "base",
            TranslationMode::NativeDirect => "DS",
            TranslationMode::BaseVirtualized => "virt",
            TranslationMode::DualDirect => "DD",
            TranslationMode::VmmDirect => "VD",
            TranslationMode::GuestDirect => "GD",
            TranslationMode::L2Nested {
                guest_ds,
                mid_ds,
                host_ds,
            } => match (guest_ds, mid_ds, host_ds) {
                (false, false, false) => "L2",
                (true, false, false) => "L2+GD",
                (false, true, false) => "L2+MD",
                (false, false, true) => "L2+HD",
                (true, true, false) => "L2+GMD",
                (true, false, true) => "L2+GHD",
                (false, true, true) => "L2+MHD",
                (true, true, true) => "L2+TD",
            },
        }
    }
}

impl fmt::Display for TranslationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TranslationMode::BaseNative => "Base Native",
            TranslationMode::NativeDirect => "Direct Segment",
            TranslationMode::BaseVirtualized => "Base Virtualized",
            TranslationMode::DualDirect => "Dual Direct",
            TranslationMode::VmmDirect => "VMM Direct",
            TranslationMode::GuestDirect => "Guest Direct",
            TranslationMode::L2Nested {
                guest_ds,
                mid_ds,
                host_ds,
            } => match (guest_ds, mid_ds, host_ds) {
                (false, false, false) => "L2 Nested",
                (true, false, false) => "L2 Guest Direct",
                (false, true, false) => "L2 Mid Direct",
                (false, false, true) => "L2 Host Direct",
                (true, true, false) => "L2 Guest+Mid Direct",
                (true, false, true) => "L2 Guest+Host Direct",
                (false, true, true) => "L2 Mid+Host Direct",
                (true, true, true) => "L2 Triple Direct",
            },
        })
    }
}

/// Which segments a guest address fell into — the four columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentCategory {
    /// In both the guest and VMM segments: 0D translation by two additions.
    Both,
    /// Only the final gPA range is covered by the VMM segment: guest walk
    /// with nested references replaced by additions.
    VmmOnly,
    /// Only in the guest segment: gPA by addition, then a nested walk.
    GuestOnly,
    /// In neither segment: full 2D nested walk.
    Neither,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_row_1_dimensions() {
        use TranslationMode::*;
        assert_eq!(BaseVirtualized.walk_dimensions(), 2);
        assert_eq!(DualDirect.walk_dimensions(), 0);
        assert_eq!(VmmDirect.walk_dimensions(), 1);
        assert_eq!(GuestDirect.walk_dimensions(), 1);
    }

    #[test]
    fn table_ii_row_2_memory_accesses() {
        use TranslationMode::*;
        assert_eq!(BaseVirtualized.common_walk_refs(), 24);
        assert_eq!(DualDirect.common_walk_refs(), 0);
        assert_eq!(VmmDirect.common_walk_refs(), 4);
        assert_eq!(GuestDirect.common_walk_refs(), 4);
    }

    #[test]
    fn table_ii_row_3_bound_checks() {
        use TranslationMode::*;
        assert_eq!(BaseVirtualized.bound_checks(), 0);
        assert_eq!(DualDirect.bound_checks(), 1);
        assert_eq!(VmmDirect.bound_checks(), 5);
        assert_eq!(GuestDirect.bound_checks(), 1);
    }

    #[test]
    fn table_ii_rows_4_5_required_changes() {
        use TranslationMode::*;
        assert!(!BaseVirtualized.requires_guest_os_changes());
        assert!(!BaseVirtualized.requires_vmm_changes());
        assert!(DualDirect.requires_guest_os_changes());
        assert!(DualDirect.requires_vmm_changes());
        assert!(!VmmDirect.requires_guest_os_changes());
        assert!(VmmDirect.requires_vmm_changes());
        assert!(GuestDirect.requires_guest_os_changes());
        assert!(!GuestDirect.requires_vmm_changes());
    }

    #[test]
    fn table_ii_row_6_application_category() {
        use TranslationMode::*;
        assert!(BaseVirtualized.suits_any_application());
        assert!(VmmDirect.suits_any_application());
        assert!(!DualDirect.suits_any_application());
        assert!(!GuestDirect.suits_any_application());
    }

    #[test]
    fn table_ii_rows_7_to_10_feature_matrix() {
        use Support::*;
        use TranslationMode::*;
        // Page sharing
        assert_eq!(BaseVirtualized.page_sharing(), Some(Unrestricted));
        assert_eq!(DualDirect.page_sharing(), Some(Limited));
        assert_eq!(VmmDirect.page_sharing(), Some(Limited));
        assert_eq!(GuestDirect.page_sharing(), Some(Unrestricted));
        // Ballooning
        assert_eq!(VmmDirect.ballooning(), Some(Limited));
        assert_eq!(GuestDirect.ballooning(), Some(Unrestricted));
        // Guest swapping
        assert_eq!(VmmDirect.guest_swapping(), Some(Unrestricted));
        assert_eq!(GuestDirect.guest_swapping(), Some(Limited));
        // VMM swapping
        assert_eq!(VmmDirect.vmm_swapping(), Some(Limited));
        assert_eq!(GuestDirect.vmm_swapping(), Some(Unrestricted));
        // Features do not apply natively.
        assert_eq!(BaseNative.page_sharing(), None);
    }

    #[test]
    fn native_modes_are_not_virtualized() {
        assert!(!TranslationMode::BaseNative.is_virtualized());
        assert!(!TranslationMode::NativeDirect.is_virtualized());
        for m in TranslationMode::VIRTUALIZED {
            assert!(m.is_virtualized());
        }
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(TranslationMode::DualDirect.label(), "DD");
        assert_eq!(TranslationMode::DualDirect.to_string(), "Dual Direct");
        assert_eq!(TranslationMode::VmmDirect.label(), "VD");
    }

    /// Every L2 flag combination, with the costs its 3-deep stack derives.
    fn l2_modes() -> impl Iterator<Item = TranslationMode> {
        [false, true].into_iter().flat_map(|guest_ds| {
            [false, true].into_iter().flat_map(move |mid_ds| {
                [false, true].into_iter().map(move |host_ds| {
                    TranslationMode::L2Nested {
                        guest_ds,
                        mid_ds,
                        host_ds,
                    }
                })
            })
        })
    }

    #[test]
    fn l2_costs_extend_table_ii_to_three_dimensions() {
        use TranslationMode::L2Nested;
        let all_paged = L2Nested {
            guest_ds: false,
            mid_ds: false,
            host_ds: false,
        };
        assert_eq!(all_paged.walk_dimensions(), 3);
        assert_eq!(all_paged.common_walk_refs(), 124);
        assert_eq!(all_paged.bound_checks(), 0);
        let triple = L2Nested {
            guest_ds: true,
            mid_ds: true,
            host_ds: true,
        };
        assert_eq!(triple.walk_dimensions(), 0);
        assert_eq!(triple.common_walk_refs(), 0);
        assert_eq!(triple.bound_checks(), 1);
        // One segment in the middle collapses a dimension but leaves the
        // guest and host walks: ds on mid only → 2D at 24 refs.
        let mid_only = L2Nested {
            guest_ds: false,
            mid_ds: true,
            host_ds: false,
        };
        assert_eq!(mid_only.walk_dimensions(), 2);
        assert_eq!(mid_only.common_walk_refs(), 24);
        for m in l2_modes() {
            assert!(m.is_virtualized());
            assert_eq!(m.stack().depth(), 3);
        }
    }

    #[test]
    fn l2_segment_participation_follows_the_flags() {
        for m in l2_modes() {
            let TranslationMode::L2Nested {
                guest_ds,
                mid_ds,
                host_ds,
            } = m
            else {
                unreachable!()
            };
            assert_eq!(m.uses_guest_segment(), guest_ds);
            assert_eq!(m.uses_mid_segment(), mid_ds);
            assert_eq!(m.uses_vmm_segment(), host_ds);
            assert_eq!(m.requires_guest_os_changes(), guest_ds);
            assert_eq!(m.requires_vmm_changes(), mid_ds || host_ds);
            assert_eq!(m.suits_any_application(), !(guest_ds || mid_ds || host_ds));
            let expected = if guest_ds || mid_ds || host_ds {
                Support::Limited
            } else {
                Support::Unrestricted
            };
            assert_eq!(m.page_sharing(), Some(expected));
        }
    }

    #[test]
    fn l2_labels_name_the_segment_placement() {
        let label = |g, m, h| {
            TranslationMode::L2Nested {
                guest_ds: g,
                mid_ds: m,
                host_ds: h,
            }
            .label()
        };
        assert_eq!(label(false, false, false), "L2");
        assert_eq!(label(true, false, false), "L2+GD");
        assert_eq!(label(false, true, false), "L2+MD");
        assert_eq!(label(false, false, true), "L2+HD");
        assert_eq!(label(true, true, true), "L2+TD");
        assert_eq!(
            TranslationMode::L2Nested {
                guest_ds: false,
                mid_ds: true,
                host_ds: true,
            }
            .to_string(),
            "L2 Mid+Host Direct"
        );
    }
}
